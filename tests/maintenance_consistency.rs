//! Integration: INSERT/DELETE maintenance keeps every access structure
//! consistent — queries through any path remain correct after arbitrary
//! batches, the maintained CM equals a freshly rebuilt one, and the cost
//! asymmetry of Experiment 3 (CMs cheap, B+Trees expensive) holds through
//! the full Table/BufferPool/WAL stack.

use cm_core::{CmSpec, CorrelationMap};
use cm_datagen::ebay::{self, ebay, EbayConfig};
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{BufferPool, DiskSim, Rid, Wal};

fn small_table(disk: &std::sync::Arc<DiskSim>, seed: u64) -> (Table, ebay::EbayData) {
    let data = ebay(EbayConfig { categories: 200, min_items: 5, max_items: 12, seed });
    let t = Table::build(disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 450)
        .unwrap();
    (t, data)
}

#[test]
fn queries_stay_correct_across_insert_batches() {
    let disk = DiskSim::with_defaults();
    let (mut t, mut data) = small_table(&disk, 11);
    let sec = t.add_secondary(&disk, "price", vec![ebay::COL_PRICE]);
    let cm = t.add_cm("price_cm", CmSpec::single_pow2(ebay::COL_PRICE, 12));
    let pool = BufferPool::new(disk.clone(), 256);
    let mut wal = Wal::new(disk.clone());
    let q = Query::single(Pred::between(ebay::COL_PRICE, 100_000i64, 300_000i64));

    for batch_no in 0..5u64 {
        for row in data.insert_batch(300, batch_no) {
            t.insert_row(&pool, Some(&mut wal), row).unwrap();
        }
        wal.commit();
        let ctx = ExecContext::cold(&disk);
        let truth = t.exec_full_scan(&ctx, &q).matched;
        assert_eq!(t.exec_secondary_sorted(&ctx, sec, &q).unwrap().matched, truth, "batch {batch_no}");
        assert_eq!(t.exec_cm_scan(&ctx, cm, &q).matched, truth, "batch {batch_no}");
    }
}

#[test]
fn deletes_retract_from_every_structure() {
    let disk = DiskSim::with_defaults();
    let (mut t, _) = small_table(&disk, 12);
    let sec = t.add_secondary(&disk, "price", vec![ebay::COL_PRICE]);
    let cm = t.add_cm("price_cm", CmSpec::single_pow2(ebay::COL_PRICE, 10));
    let q = Query::single(Pred::between(ebay::COL_PRICE, 0i64, 1_000_000i64));
    let ctx = ExecContext::cold(&disk);
    let before = t.exec_full_scan(&ctx, &q).matched;

    // Delete every 7th row.
    let victims: Vec<Rid> = (0..t.heap().len()).step_by(7).map(Rid).collect();
    for &rid in &victims {
        t.delete_row(disk.as_ref(), None, rid).unwrap();
    }
    let truth = t.exec_full_scan(&ctx, &q).matched;
    assert_eq!(before - victims.len() as u64, truth);
    assert_eq!(t.exec_secondary_sorted(&ctx, sec, &q).unwrap().matched, truth);
    assert_eq!(t.exec_cm_scan(&ctx, cm, &q).matched, truth);
}

#[test]
fn maintained_cm_equals_rebuilt_cm_through_table_api() {
    let disk = DiskSim::with_defaults();
    let (mut t, mut data) = small_table(&disk, 13);
    let cm = t.add_cm("price_cm", CmSpec::single_pow2(ebay::COL_PRICE, 12));

    // Mix of inserts and deletes through the Table API.
    for row in data.insert_batch(500, 0) {
        t.insert_row(disk.as_ref(), None, row).unwrap();
    }
    for rid in (0..t.heap().len()).step_by(13).map(Rid) {
        t.delete_row(disk.as_ref(), None, rid).unwrap();
    }

    // Rebuild a CM from the surviving rows and compare.
    let mut rebuilt = CorrelationMap::new("rebuilt", CmSpec::single_pow2(ebay::COL_PRICE, 12));
    for (rid, row) in t.heap().iter() {
        if !row[ebay::COL_PRICE].is_null() {
            rebuilt.insert(row, rid, t.dir());
        }
    }
    let maintained = t.cm(cm);
    assert_eq!(maintained.num_keys(), rebuilt.num_keys());
    assert_eq!(maintained.num_pairs(), rebuilt.num_pairs());
    let a: Vec<_> = maintained.iter().collect();
    let b: Vec<_> = rebuilt.iter().collect();
    assert_eq!(a, b);
}

#[test]
fn btree_maintenance_costs_scale_with_index_count_cms_do_not() {
    // The Experiment 3 asymmetry, end to end.
    let measure = |n_sec: usize, n_cm: usize| -> f64 {
        let disk = DiskSim::with_defaults();
        let (mut t, mut data) = small_table(&disk, 14);
        for i in 0..n_sec {
            t.add_secondary(&disk, format!("idx{i}"), vec![1 + (i % 6)]);
        }
        for i in 0..n_cm {
            t.add_cm(format!("cm{i}"), CmSpec::single_raw(1 + (i % 6)));
        }
        let pool = BufferPool::new(disk.clone(), 128);
        let mut wal = Wal::new(disk.clone());
        disk.reset();
        for row in data.insert_batch(2_000, 1) {
            // Stand-in for the typed heap record the engine layer logs
            // per insert (constant across configurations, so the
            // asymmetry below is purely structure maintenance).
            wal.append_sized(64);
            t.insert_row(&pool, Some(&mut wal), row).unwrap();
        }
        wal.commit();
        pool.flush_all();
        disk.stats().elapsed_ms
    };
    let base = measure(0, 0);
    let five_btrees = measure(5, 0);
    let five_cms = measure(0, 5);
    assert!(
        five_btrees > 2.0 * base,
        "B+Trees inflate maintenance: {five_btrees} vs base {base}"
    );
    assert!(
        five_cms < 1.5 * base,
        "CMs barely inflate maintenance: {five_cms} vs base {base}"
    );
    assert!(five_btrees > 2.0 * five_cms);
}

#[test]
fn wal_records_grow_with_structure_count() {
    let disk = DiskSim::with_defaults();
    let (mut t, mut data) = small_table(&disk, 15);
    t.add_cm("cm1", CmSpec::single_raw(1));
    t.add_cm("cm2", CmSpec::single_raw(2));
    t.add_secondary(&disk, "idx", vec![ebay::COL_PRICE]);
    let mut wal = Wal::new(disk.clone());
    let batch = data.insert_batch(10, 2);
    for row in batch {
        t.insert_row(disk.as_ref(), Some(&mut wal), row).unwrap();
    }
    // 1 index + 2 CMs = 3 maintenance records per insert (the heap row
    // itself is the caller's typed `LogPayload::Insert` record).
    assert_eq!(wal.records(), 30);
    let io = wal.commit();
    assert!(io.page_writes >= 1);
    assert!(wal.durable_bytes() > 0);
}

#[test]
fn clustered_index_and_directory_track_appends() {
    let disk = DiskSim::with_defaults();
    let (mut t, mut data) = small_table(&disk, 16);
    let len_before = t.heap().len();
    let buckets_before = t.dir().num_buckets();
    for row in data.insert_batch(2_000, 3) {
        t.insert_row(disk.as_ref(), None, row).unwrap();
    }
    assert_eq!(t.heap().len(), len_before + 2_000);
    assert!(t.dir().num_buckets() > buckets_before, "tail buckets opened");
    assert_eq!(t.dir().heap_len(), t.heap().len());
    // Every appended rid resolves to a bucket.
    let last = Rid(t.heap().len() - 1);
    let b = t.dir().bucket_of(last);
    let (lo, hi) = t.dir().rid_range(b);
    assert!(lo <= last.0 && last.0 < hi);
}
