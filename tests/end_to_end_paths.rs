//! Integration: all four physical access paths return identical answers
//! on all three generated datasets, and the simulated costs order the
//! way the paper's experiments say they should.

use cm_core::{BucketSpec, CmAttr, CmSpec};
use cm_datagen::{ebay, sdss, tpch};
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{DiskSim, Value};

fn assert_paths_agree(table: &Table, disk: &std::sync::Arc<DiskSim>, sec: usize, cm: usize, q: &Query) {
    let ctx = ExecContext::cold(disk);
    let truth = table.exec_full_scan(&ctx, q).matched;
    assert_eq!(table.exec_secondary_sorted(&ctx, sec, q).unwrap().matched, truth, "{q:?}");
    assert_eq!(table.exec_secondary_pipelined(&ctx, sec, q).unwrap().matched, truth, "{q:?}");
    assert_eq!(table.exec_cm_scan(&ctx, cm, q).matched, truth, "{q:?}");
}

#[test]
fn ebay_price_queries_agree_on_all_paths() {
    let data = ebay::ebay(ebay::EbayConfig {
        categories: 300,
        min_items: 5,
        max_items: 15,
        seed: 1,
    });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 900)
        .unwrap();
    let sec = t.add_secondary(&disk, "price", vec![ebay::COL_PRICE]);
    let cm = t.add_cm("price_cm", CmSpec::single_pow2(ebay::COL_PRICE, 12));
    for q in [
        Query::single(Pred::between(ebay::COL_PRICE, 100_000i64, 150_000i64)),
        Query::single(Pred::eq(ebay::COL_PRICE, data.rows[42][ebay::COL_PRICE].clone().as_int().unwrap())),
        Query::single(Pred::is_in(
            ebay::COL_PRICE,
            (0..5).map(|i| data.rows[i * 37][ebay::COL_PRICE].clone()).collect(),
        )),
        Query::new(vec![
            Pred::between(ebay::COL_PRICE, 0i64, 500_000i64),
            Pred::eq(ebay::COL_CATID, 17i64),
        ]),
    ] {
        assert_paths_agree(&t, &disk, sec, cm, &q);
    }
}

#[test]
fn tpch_shipdate_queries_agree_and_order_correctly() {
    let data = tpch::tpch_lineitem(tpch::TpchConfig {
        rows: 30_000,
        parts: 1_000,
        suppliers: 50,
        seed: 2,
    });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        60,
        tpch::COL_RECEIPTDATE,
        600,
    )
    .unwrap();
    let sec = t.add_secondary(&disk, "ship", vec![tpch::COL_SHIPDATE]);
    let cm = t.add_cm("ship_cm", CmSpec::single_raw(tpch::COL_SHIPDATE));
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(5, 3)));
    assert_paths_agree(&t, &disk, sec, cm, &q);

    // Ordering: correlated sorted scan beats pipelined by a wide margin.
    let ctx = ExecContext::cold(&disk);
    let sorted = t.exec_secondary_sorted(&ctx, sec, &q).unwrap();
    let pipelined = t.exec_secondary_pipelined(&ctx, sec, &q).unwrap();
    // Postings come back rid-ascending per value, so even the pipelined
    // path gets some short-skip locality; the sorted scan still wins
    // clearly by merging across values.
    assert!(sorted.ms() * 1.5 < pipelined.ms(), "{} vs {}", sorted.ms(), pipelined.ms());
}

#[test]
fn sdss_composite_cm_agrees_and_wins() {
    let data = sdss::sdss(sdss::SdssConfig { rows: 20_000, fields: 251, stripes: 20, seed: 3 });
    let disk = DiskSim::with_defaults();
    let mut t =
        Table::build(&disk, data.schema.clone(), data.rows.clone(), 25, sdss::COL_OBJID, 250)
            .unwrap();
    let bt = t.add_secondary(&disk, "ra_dec", vec![sdss::COL_RA, sdss::COL_DEC]);
    let cm_pair = t.add_cm(
        "cm_pair",
        CmSpec::new(vec![
            CmAttr { col: sdss::COL_RA, bucket: BucketSpec::covering(0.0, 360.0, 4096) },
            CmAttr { col: sdss::COL_DEC, bucket: BucketSpec::covering(-10.0, 10.0, 16_384) },
        ]),
    );
    let cm_ra = t.add_cm(
        "cm_ra",
        CmSpec::new(vec![CmAttr { col: sdss::COL_RA, bucket: BucketSpec::covering(0.0, 360.0, 4096) }]),
    );
    let q = Query::new(vec![
        Pred::between(sdss::COL_RA, 120.0, 130.0),
        Pred::between(sdss::COL_DEC, 3.1, 3.4),
    ]);
    let ctx = ExecContext::cold(&disk);
    let truth = t.exec_full_scan(&ctx, &q).matched;
    assert!(truth > 0, "query selects something");
    assert_eq!(t.exec_secondary_sorted(&ctx, bt, &q).unwrap().matched, truth);
    assert_eq!(t.exec_cm_scan(&ctx, cm_pair, &q).matched, truth);
    assert_eq!(t.exec_cm_scan(&ctx, cm_ra, &q).matched, truth);

    // Experiment 5's ordering: composite CM beats the single-attribute CM
    // and the composite B+Tree on this two-range query.
    let r_pair = t.exec_cm_scan(&ctx, cm_pair, &q);
    let r_ra = t.exec_cm_scan(&ctx, cm_ra, &q);
    let r_bt = t.exec_secondary_sorted(&ctx, bt, &q).unwrap();
    assert!(r_pair.ms() < r_ra.ms(), "pair {} vs ra {}", r_pair.ms(), r_ra.ms());
    assert!(r_pair.ms() < r_bt.ms(), "pair {} vs btree {}", r_pair.ms(), r_bt.ms());
    // The fine-bucketed pair CM is smaller than the dense index even at
    // this tiny scale (where almost every object owns its own bucket
    // pair); a coarser composite shows the real compression, since its
    // entry count is bounded by occupied sky cells, not rows.
    assert!(t.cm(cm_pair).size_bytes() < t.secondary(bt).size_bytes());
    let mut t2 = Table::build(&disk, data.schema.clone(), data.rows.clone(), 25, sdss::COL_OBJID, 250)
        .unwrap();
    let coarse = t2.add_cm(
        "cm_coarse",
        CmSpec::new(vec![
            CmAttr { col: sdss::COL_RA, bucket: BucketSpec::covering(0.0, 360.0, 64) },
            CmAttr { col: sdss::COL_DEC, bucket: BucketSpec::covering(-10.0, 10.0, 64) },
        ]),
    );
    let bt2 = t2.add_secondary(&disk, "ra_dec", vec![sdss::COL_RA, sdss::COL_DEC]);
    assert!(
        t2.cm(coarse).size_bytes() * 4 < t2.secondary(bt2).size_bytes(),
        "coarse composite CM {} vs B+Tree {}",
        t2.cm(coarse).size_bytes(),
        t2.secondary(bt2).size_bytes()
    );
}

#[test]
fn cm_examined_rows_are_superset_of_matches() {
    let data = ebay::ebay(ebay::EbayConfig {
        categories: 200,
        min_items: 5,
        max_items: 10,
        seed: 9,
    });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 450)
        .unwrap();
    let cm = t.add_cm("price_cm", CmSpec::single_pow2(ebay::COL_PRICE, 14));
    let q = Query::single(Pred::between(ebay::COL_PRICE, 200_000i64, 220_000i64));
    let ctx = ExecContext::cold(&disk);
    let r = t.exec_cm_scan(&ctx, cm, &q);
    assert!(r.examined >= r.matched);
    assert_eq!(r.matched, t.exec_full_scan(&ctx, &q).matched);
}

#[test]
fn uncorrelated_cm_approaches_scan_cost() {
    // The §5.3 caveat: a CM over an attribute uncorrelated with the
    // clustering cannot localize access.
    let data = tpch::tpch_lineitem(tpch::TpchConfig {
        rows: 20_000,
        parts: 500,
        suppliers: 25,
        seed: 4,
    });
    let disk = DiskSim::with_defaults();
    // Cluster on orderkey; suppkey is uncorrelated with insertion order.
    let mut t = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        60,
        tpch::COL_ORDERKEY,
        600,
    )
    .unwrap();
    let cm = t.add_cm("supp_cm", CmSpec::single_raw(tpch::COL_SUPPKEY));
    let q = Query::single(Pred::eq(tpch::COL_SUPPKEY, 7i64));
    let ctx = ExecContext::cold(&disk);
    let r = t.exec_cm_scan(&ctx, cm, &q);
    let scan = t.exec_full_scan(&ctx, &q);
    assert!(
        r.io.pages() as f64 > 0.5 * scan.io.pages() as f64,
        "uncorrelated CM touches most of the table ({} vs {} pages)",
        r.io.pages(),
        scan.io.pages()
    );
}

#[test]
fn warm_pool_executions_cost_less_than_cold() {
    let data = ebay::ebay(ebay::EbayConfig {
        categories: 200,
        min_items: 5,
        max_items: 10,
        seed: 5,
    });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 450)
        .unwrap();
    let cm = t.add_cm("price_cm", CmSpec::single_pow2(ebay::COL_PRICE, 12));
    let q = Query::single(Pred::between(ebay::COL_PRICE, 100_000i64, 120_000i64));
    let pool = cm_storage::BufferPool::new(disk.clone(), 4096);
    let ctx = ExecContext::through(&disk, &pool);
    let cold = t.exec_cm_scan(&ctx, cm, &q);
    let warm = t.exec_cm_scan(&ctx, cm, &q);
    assert_eq!(cold.matched, warm.matched);
    assert!(warm.ms() < 0.1 * cold.ms(), "warm {} vs cold {}", warm.ms(), cold.ms());
}

#[test]
fn planner_prefers_index_paths_for_selective_lookup() {
    // Large enough that a scan clearly exceeds a few CM bucket visits.
    let data = ebay::ebay(ebay::EbayConfig {
        categories: 2_000,
        min_items: 10,
        max_items: 20,
        seed: 6,
    });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 900)
        .unwrap();
    t.analyze_cols(&[ebay::COL_PRICE]);
    t.add_secondary(&disk, "price", vec![ebay::COL_PRICE]);
    let cm = t.add_cm("price_cm", CmSpec::single_pow2(ebay::COL_PRICE, 12));
    let planner = cm_query::Planner::new(disk.config());
    let some_price = data.rows[100][ebay::COL_PRICE].clone();
    let choice = planner.choose(&t, &Query::single(Pred { col: ebay::COL_PRICE, op: cm_query::PredOp::Eq(some_price) }));
    // The planner must leave the scan behind for a selective correlated
    // lookup; whether the sorted index or the CM wins depends on the
    // estimated bucket fan-out, and both estimates must beat the scan.
    assert_ne!(choice.path, cm_query::AccessPath::FullScan, "alts {:?}", choice.alternatives);
    let scan_est = choice
        .alternatives
        .iter()
        .find(|(p, _)| *p == cm_query::AccessPath::FullScan)
        .unwrap()
        .1;
    assert!(choice.est_ms < scan_est);
    let cm_est = choice
        .alternatives
        .iter()
        .find(|(p, _)| *p == cm_query::AccessPath::CmScan(cm))
        .unwrap()
        .1;
    assert!(cm_est <= scan_est, "CM never estimated above the scan ceiling");
}

#[test]
fn values_survive_round_trip_through_all_layers() {
    // A smoke test that strings, floats, dates, and ints all work as CM
    // attributes and index keys simultaneously.
    let data = tpch::tpch_lineitem(tpch::TpchConfig {
        rows: 5_000,
        parts: 200,
        suppliers: 20,
        seed: 8,
    });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        60,
        tpch::COL_RECEIPTDATE,
        300,
    )
    .unwrap();
    let sec = t.add_secondary(&disk, "mode", vec![tpch::COL_SHIPMODE]);
    let cm = t.add_cm("mode_cm", CmSpec::single_raw(tpch::COL_SHIPMODE));
    let q = Query::single(Pred::eq(tpch::COL_SHIPMODE, Value::str("AIR")));
    assert_paths_agree(&t, &disk, sec, cm, &q);
}
