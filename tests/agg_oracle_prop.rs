//! Grouped-aggregation oracle: random data, filters, shard counts, and
//! worker counts through [`cm_engine::Engine::aggregate`] must match a
//! hand-rolled `HashMap` reference for `COUNT` / `SUM` / `MIN` / `MAX`,
//! `DISTINCT`, and `LIMIT`. Groups on the clustered column straddle
//! shard boundaries by construction (range partitioning splits the key
//! domain mid-group when duplicates span the cut), so every multi-shard
//! case exercises cross-leg state merges. The engine's output is
//! compared **unsorted** — ascending group-key order is part of the
//! contract, so any nondeterministic merge shows up as a failure, not
//! just a reordering.
//!
//! Case count is `AGG_PROP_CASES` (default 64) so CI smoke jobs can run
//! a reduced sweep.

use cm_engine::{AggFunc, AggSpec, Engine, EngineConfig};
use cm_query::{Pred, Query};
use cm_storage::{Column, Row, Schema, Value, ValueType};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn cases() -> ProptestConfig {
    let cases = std::env::var("AGG_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    ProptestConfig::with_cases(cases)
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("k", ValueType::Int),
        Column::new("cat", ValueType::Int),
        Column::new("x", ValueType::Int),
    ]))
}

/// Rows clustered on `k` (0..40): with up to 400 rows over 40 keys,
/// duplicate clustered keys are guaranteed, so any shard split lands
/// inside at least one group — the shard-boundary case the merge must
/// get right. `x` is signed to keep MIN/MAX honest.
fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((0i64..40, 0i64..8, -50i64..50), 1..400).prop_map(|v| {
        let mut rows: Vec<Row> = v
            .into_iter()
            .map(|(k, c, x)| vec![Value::Int(k), Value::Int(c), Value::Int(x)])
            .collect();
        // Pin one duplicated clustered key so even minimal cases have a
        // group that a 2+-shard split can cut in half.
        let pinned = rows[0][0].clone();
        for i in 0..3 {
            rows.push(vec![pinned.clone(), Value::Int(i), Value::Int(i - 1)]);
        }
        rows
    })
}

fn filter(kind: u8, lo: i64, span: i64) -> Query {
    match kind % 4 {
        0 => Query::default(),
        1 => Query::single(Pred::between(0, lo, lo + span)), // shard-pruning range
        2 => Query::single(Pred::between(2, lo - 50, lo - 50 + span)),
        _ => Query::single(Pred::between(1, 1_000, 2_000)), // matches nothing
    }
}

/// HashMap reference for an `AggSpec` over already-filtered rows: counts
/// every row, sums/mins/maxes `Int` values (the data has no NULLs, so
/// `None` accumulators survive only in the zero-row global group).
fn reference(rows: &[Row], q: &Query, spec: &AggSpec) -> Vec<Row> {
    type Acc = (u64, Option<i64>, Option<i64>, Option<i64>); // count, sum, min, max
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    for row in rows.iter().filter(|r| q.matches(r)) {
        let key: Vec<Value> = spec.group_by.iter().map(|&c| row[c].clone()).collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| vec![(0, None, None, None); spec.aggs.len()]);
        for (acc, f) in accs.iter_mut().zip(&spec.aggs) {
            let val = f.col().map(|c| match &row[c] {
                Value::Int(i) => *i,
                other => panic!("test data is Int-only, saw {other:?}"),
            });
            acc.0 += 1;
            if let Some(v) = val {
                acc.1 = Some(acc.1.unwrap_or(0) + v);
                acc.2 = Some(acc.2.map_or(v, |m| m.min(v)));
                acc.3 = Some(acc.3.map_or(v, |m| m.max(v)));
            }
        }
    }
    if spec.group_by.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), vec![(0, None, None, None); spec.aggs.len()]);
    }
    let mut out: Vec<Row> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            for (acc, f) in accs.iter().zip(&spec.aggs) {
                let int = |o: Option<i64>| o.map_or(Value::Null, Value::Int);
                key.push(match f {
                    AggFunc::Count => Value::Int(acc.0 as i64),
                    AggFunc::Sum(_) => int(acc.1),
                    AggFunc::Min(_) => int(acc.2),
                    AggFunc::Max(_) => int(acc.3),
                });
            }
            key
        })
        .collect();
    let keys = spec.group_by.len();
    out.sort_by(|a, b| a[..keys].cmp(&b[..keys]));
    out
}

fn build_engine(shards: usize, workers: usize, mvcc: bool, rows: &[Row]) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig { shards, workers, mvcc, ..EngineConfig::default() });
    engine.create_table("t", schema(), 0, 8, 16).unwrap();
    engine.load("t", rows.to_vec()).unwrap();
    engine
}

fn specs() -> Vec<AggSpec> {
    vec![
        // Per-category rollup: all four aggregate kinds at once.
        AggSpec::new(
            vec![1],
            vec![AggFunc::Count, AggFunc::Sum(2), AggFunc::Min(2), AggFunc::Max(2)],
        ),
        // Grouped by the clustered column: groups straddle shard splits.
        AggSpec::new(vec![0], vec![AggFunc::Count, AggFunc::Sum(2)]),
        // Multi-column key, including the clustered column last.
        AggSpec::new(vec![1, 0], vec![AggFunc::Count, AggFunc::Max(2)]),
        // Global aggregation: exactly one row even over zero matches.
        AggSpec::new(vec![], vec![AggFunc::Count, AggFunc::Sum(2), AggFunc::Min(0)]),
    ]
}

proptest! {
    #![proptest_config(cases())]

    /// Engine aggregation equals the HashMap reference — identical rows
    /// in identical (ascending group-key) order — for every spec shape,
    /// shard count, worker count, and MVCC mode.
    #[test]
    fn engine_aggregate_equals_reference(
        rows in rows_strategy(),
        shards in 1usize..9,
        par in any::<bool>(),
        mvcc in any::<bool>(),
        f in (0u8..4, 0i64..40, 0i64..20),
    ) {
        let q = filter(f.0, f.1, f.2);
        let engine = build_engine(shards, if par { 4 } else { 1 }, mvcc, &rows);
        for spec in specs() {
            let out = engine.aggregate("t", &q, &spec).unwrap();
            let want = reference(&rows, &q, &spec);
            prop_assert_eq!(
                &out.rows, &want,
                "spec {:?} diverges (shards={}, q={:?})", &spec, shards, &q
            );
            prop_assert_eq!(out.groups, want.len());
        }
    }

    /// `LIMIT n` output is exactly the first `n` rows of the unlimited
    /// result (and `groups` still reports the untruncated count), for
    /// aggregations and for DISTINCT.
    #[test]
    fn limit_is_a_stable_prefix(
        rows in rows_strategy(),
        shards in 1usize..9,
        par in any::<bool>(),
        limit in 0usize..12,
        f in (0u8..4, 0i64..40, 0i64..20),
    ) {
        let q = filter(f.0, f.1, f.2);
        let engine = build_engine(shards, if par { 4 } else { 1 }, false, &rows);
        let spec = AggSpec::new(vec![1], vec![AggFunc::Count, AggFunc::Sum(2)]);
        let full = engine.aggregate("t", &q, &spec).unwrap();
        let limited = engine
            .aggregate("t", &q, &spec.clone().with_limit(limit))
            .unwrap();
        let n = limit.min(full.rows.len());
        prop_assert_eq!(&limited.rows, &full.rows[..n].to_vec());
        prop_assert_eq!(limited.groups, full.groups, "limit truncates rows, not groups");

        let d_full = engine.select_distinct("t", &q, &[1, 0], None).unwrap();
        let d_lim = engine.select_distinct("t", &q, &[1, 0], Some(limit)).unwrap();
        let n = limit.min(d_full.rows.len());
        prop_assert_eq!(&d_lim.rows, &d_full.rows[..n].to_vec());
        // DISTINCT equals the dedup of the projected reference rows.
        let mut want: Vec<Row> = rows
            .iter()
            .filter(|r| q.matches(r))
            .map(|r| vec![r[1].clone(), r[0].clone()])
            .collect();
        want.sort();
        want.dedup();
        prop_assert_eq!(&d_full.rows, &want);
    }
}
