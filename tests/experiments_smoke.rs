//! Integration: every experiment regenerator runs end-to-end at smoke
//! scale, produces a non-empty report, and renders to both console text
//! and Markdown. This guards the `all_experiments` binary (and thereby
//! `EXPERIMENTS.md`) against bit-rot.

use cm_bench::datasets::BenchScale;
use cm_bench::experiments;

fn check(report: cm_bench::Report, expect_rows: bool) {
    assert!(!report.id.is_empty());
    assert!(!report.paper_expectation.is_empty(), "{}: paper context missing", report.id);
    if expect_rows {
        assert!(!report.rows.is_empty(), "{}: no data rows", report.id);
    }
    let text = report.to_text();
    assert!(text.contains(&report.id));
    let md = report.to_markdown();
    assert!(md.starts_with(&format!("## {}", report.id)));
}

#[test]
fn fig1_smoke() {
    let r = experiments::fig1_access_patterns::run(BenchScale::Smoke);
    assert!(r.preformatted.as_deref().unwrap_or("").contains('#'), "strips rendered");
    check(r, true);
}

#[test]
fn fig2_smoke() {
    let r = experiments::fig2_sdss_clusterings::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 39, "one row per clustering attribute");
    check(r, true);
}

#[test]
fn fig3_smoke() {
    let r = experiments::fig3_shipdate_lookups::run(BenchScale::Smoke);
    check(r, true);
}

#[test]
fn tab3_smoke() {
    let r = experiments::tab3_clustered_bucketing::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 6, "six bucket sizes");
    check(r, true);
}

#[test]
fn tab4_smoke() {
    let r = experiments::tab4_bucketing_candidates::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 4, "mode, type, psfMag_g, fieldID");
    // Few-valued attributes stay raw.
    assert_eq!(r.rows[0].cells[1], "none");
    check(r, true);
}

#[test]
fn tab5_smoke() {
    let r = experiments::tab5_advisor_designs::run(BenchScale::Smoke);
    assert!(r.commentary.contains("recommended"), "{}", r.commentary);
    check(r, true);
}

#[test]
fn fig6_smoke() {
    let r = experiments::fig6_cm_vs_btree::run(BenchScale::Smoke);
    check(r, true);
}

#[test]
fn fig7_smoke() {
    let r = experiments::fig7_bucket_sweep::run(BenchScale::Smoke);
    check(r, true);
}

#[test]
fn fig8_smoke() {
    let r = experiments::fig8_maintenance::run(BenchScale::Smoke);
    // The headline asymmetry must hold even at smoke scale.
    let last = r.rows.last().unwrap();
    let ratio: f64 = last.cells[2].trim_end_matches('x').parse().unwrap();
    assert!(ratio > 1.5, "B+Tree maintenance must cost more (ratio {ratio})");
    check(r, true);
}

#[test]
fn fig9_smoke() {
    let r = experiments::fig9_mixed_workload::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 4, "four configurations");
    check(r, true);
}

#[test]
fn fig10_smoke() {
    let r = experiments::fig10_cost_model::run(BenchScale::Smoke);
    assert!(r.rows.len() >= 4, "several c_per_u picks");
    check(r, true);
}

#[test]
fn tab6_smoke() {
    let r = experiments::tab6_composite::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 4, "three CMs + one B+Tree");
    check(r, true);
}

#[test]
fn ablation_equidepth_smoke() {
    let r = experiments::ablation_equidepth::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 3, "three query regions");
    check(r, true);
}

#[test]
fn engine_mixed_smoke() {
    let r = experiments::engine_mixed::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 4, "B+Tree and CM configurations at two mixes");
    // Reads were cost-routed: the routing cell accounts for every read.
    for row in &r.rows {
        assert!(row.cells[7].starts_with("cm:"), "routing cell: {}", row.cells[7]);
        // The write-latency cell renders ordered wall-clock percentiles.
        let wl: Vec<f64> =
            row.cells[6].split('/').map(|v| v.parse().expect("write pct")).collect();
        assert_eq!(wl.len(), 3, "write p50/p95/p99: {}", row.cells[6]);
        assert!(wl[0] <= wl[1] && wl[1] <= wl[2], "ordered: {}", row.cells[6]);
    }
    assert!(r.latency.is_some(), "mixed workload reports read latency");
    // JSON emission is well-formed enough to embed.
    let json = r.to_json();
    assert!(json.contains("\"id\":\"engine_mixed\""));
    assert!(json.contains("\"latency\":{\"p50_ms\":"));
    check(r, true);
}

#[test]
fn engine_join_smoke() {
    // `run()` itself asserts that every probe strategy agrees on the
    // join cardinality; the planner-selection and clamp-beats-hash gates
    // apply at full scale only (smoke heaps collapse to the scan
    // ceiling).
    let r = experiments::engine_join::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 8, "two keys x three strategies + two agg rows");
    for key in ["shipdate", "partkey"] {
        let row = |tag: &str| {
            let label = format!("{key} {tag}");
            r.rows
                .iter()
                .find(|row| row.label == label)
                .unwrap_or_else(|| panic!("row {label} present"))
        };
        assert_eq!(row("hash (forced)").cells[0], "hash");
        assert!(
            row("cm-clamp (forced)").cells[0].starts_with("cm-clamp"),
            "{}",
            row("cm-clamp (forced)").cells[0]
        );
        // The planner row priced both strategies on these CM-covered keys.
        assert_ne!(row("planner").cells[2], "-", "cm estimate priced for {key}");
    }
    let json = r.to_json();
    assert!(json.contains("\"id\":\"engine_join\""));
    check(r, true);
}

#[test]
fn engine_sharded_smoke() {
    let r = experiments::engine_sharded::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 10, "four shard counts at two mixes + WAL comparison");
    assert!(r.commentary.contains("group commit"), "{}", r.commentary);
    assert!(r.latency.is_some(), "sharded workload reports read latency");
    let json = r.to_json();
    assert!(json.contains("\"id\":\"engine_sharded\""));
    check(r, true);
}

#[test]
fn run_io_smoke() {
    let r = experiments::run_io::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 6, "three access paths x two session counts");
    let json = r.to_json();
    assert!(json.contains("\"id\":\"run_io\""));

    let cell = |label: &str, idx: usize| -> f64 {
        r.rows
            .iter()
            .find(|row| row.label == label)
            .unwrap_or_else(|| panic!("row {label} present"))
            .cells[idx]
            .trim_end_matches('x')
            .parse()
            .expect("numeric cell")
    };
    // The tentpole claim at smoke scale: under 8 interleaving sessions,
    // vectored runs keep cold CM / sorted sweeps >= 2x cheaper per query
    // than per-page charging, and seeks-per-page drops accordingly.
    for path in ["cm scan", "secondary sorted"] {
        let label = format!("{path} x 8 session(s)");
        let speedup = cell(&label, 3);
        assert!(speedup >= 2.0, "{label}: speedup {speedup} < 2x");
        let pp_seeks = cell(&label, 4);
        let vec_seeks = cell(&label, 5);
        assert!(
            vec_seeks < 0.5 * pp_seeks,
            "{label}: seeks/page {vec_seeks} vs per-page {pp_seeks}"
        );
    }
    // Alone, the two modes price identically: no free lunch.
    for path in ["full scan", "secondary sorted", "cm scan"] {
        let label = format!("{path} x 1 session(s)");
        let speedup = cell(&label, 3);
        assert!((speedup - 1.0).abs() < 0.01, "{label}: speedup {speedup} != 1x");
    }
    check(r, true);
}

#[test]
fn file_io_smoke() {
    // `run()` itself asserts the correctness invariants (modes agree on
    // matched rows and page counts) and the aggregate "vectored never
    // >10% slower on the wall clock" gate — reaching here means real
    // pread/pwrite happened and held them. Absolute wall timings are
    // NOT asserted (noisy shared machines); structure and sim-side
    // equalities are.
    let r = experiments::file_io::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 6, "three access paths x two session counts");
    assert!(r.to_json().contains("\"id\":\"file_io\""));
    let cell = |label: &str, idx: usize| -> String {
        r.rows
            .iter()
            .find(|row| row.label == label)
            .unwrap_or_else(|| panic!("row {label} present"))
            .cells[idx]
            .clone()
    };
    let num = |label: &str, idx: usize| -> f64 {
        cell(label, idx).trim_end_matches('x').parse().expect("numeric cell")
    };
    for path in ["full scan", "secondary sorted", "cm scan"] {
        // Alone, the two modes' *sim* pricing is identical on the
        // backed disk too — the backing never perturbs the accounting.
        let label = format!("{path} x 1 session(s)");
        let sim_speedup = num(&label, 3);
        assert!((sim_speedup - 1.0).abs() < 0.01, "{label}: sim speedup {sim_speedup} != 1x");
        // Wall times were actually measured: nonzero in every cell.
        for sessions in [1usize, 8] {
            let label = format!("{path} x {sessions} session(s)");
            assert!(num(&label, 4) > 0.0, "{label}: no per-page wall time measured");
            assert!(num(&label, 5) > 0.0, "{label}: no vectored wall time measured");
        }
    }
    check(r, true);
}

#[test]
fn advisor_mix_smoke() {
    let r = experiments::advisor_mix::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 8, "four configurations at two mixes");
    let ops_per_sim_s = |label: &str| -> f64 {
        r.rows
            .iter()
            .find(|row| row.label == label)
            .unwrap_or_else(|| panic!("row {label} present"))
            .cells[2]
            .parse()
            .expect("throughput cell is numeric")
    };
    for mix in ["90/10", "10/90"] {
        let btree = ops_per_sim_s(&format!("static 5 B+Trees {mix}"));
        let cm = ops_per_sim_s(&format!("static 5 CMs {mix}"));
        let advised = ops_per_sim_s(&format!("advised steady {mix}"));
        // The advised design must match the best static design for the
        // mix it profiled (within 10%), without being told the mix.
        assert!(
            advised >= 0.9 * btree.max(cm),
            "{mix}: advised {advised} vs best static {}",
            btree.max(cm)
        );
    }
    // And beat the wrong-way static design clearly on at least one mix.
    let margin = |mix: &str| -> f64 {
        let btree = ops_per_sim_s(&format!("static 5 B+Trees {mix}"));
        let cm = ops_per_sim_s(&format!("static 5 CMs {mix}"));
        ops_per_sim_s(&format!("advised steady {mix}")) / btree.min(cm)
    };
    assert!(
        margin("90/10") >= 1.5 || margin("10/90") >= 1.5,
        "advised beats the wrong-way static somewhere: {} / {}",
        margin("90/10"),
        margin("10/90")
    );
    // The mid-run re-plan actually fired and chose a design.
    for row in &r.rows {
        if row.label.starts_with("advised") {
            assert!(row.cells[7].contains("CAT"), "design label: {}", row.cells[7]);
        }
    }
    check(r, true);
}

#[test]
fn recovery_smoke() {
    let r = experiments::recovery::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 9, "three checkpoint policies x three WAL lengths");
    assert!(r.commentary.contains("workload seed"), "{}", r.commentary);
    let json = r.to_json();
    assert!(json.contains("\"id\":\"recovery\""));

    // "recover (sim)" cell, in simulated ms whatever unit it rendered in.
    let recover_ms = |label_prefix: &str, last: bool| -> f64 {
        let mut rows = r.rows.iter().filter(|row| row.label.starts_with(label_prefix));
        let row = if last { rows.next_back() } else { rows.next() }
            .unwrap_or_else(|| panic!("rows labelled {label_prefix}"));
        let cell = &row.cells[6];
        if let Some(s) = cell.strip_suffix(" ms") {
            s.parse::<f64>().expect("ms cell")
        } else if let Some(s) = cell.strip_suffix(" s") {
            s.parse::<f64>().expect("s cell") * 1000.0
        } else {
            panic!("unexpected duration cell: {cell}");
        }
    };
    // The tentpole claims at smoke scale: without checkpoints restart
    // cost grows with WAL length; fine checkpoints beat no checkpoints
    // on the largest log.
    let no_small = recover_ms("no ckpt", false);
    let no_large = recover_ms("no ckpt", true);
    let fine_large = recover_ms("ckpt/fine", true);
    assert!(
        no_large > 1.5 * no_small,
        "recovery grows with the log: {no_small} ms -> {no_large} ms"
    );
    assert!(
        fine_large < 0.7 * no_large,
        "fine checkpoints cut restart: {fine_large} ms vs {no_large} ms"
    );
    check(r, true);
}

#[test]
fn fanout_latency_smoke() {
    let r = experiments::fanout_latency::run(BenchScale::Smoke);
    assert_eq!(r.rows.len(), 12, "three shard counts x four worker counts");
    assert!(r.latency.is_some(), "headline percentiles at 4 workers / 4 shards");
    let json = r.to_json();
    assert!(json.contains("\"id\":\"fanout_latency\""));

    // The tentpole claim at smoke scale: at a fixed shard count, adding
    // workers cuts multi-shard p99 latency. Compare the 4-shard rows.
    let p99 = |label: &str| -> f64 {
        r.rows
            .iter()
            .find(|row| row.label == label)
            .unwrap_or_else(|| panic!("row {label} present"))
            .cells[3]
            .parse()
            .expect("p99 cell is numeric")
    };
    let one = p99("4 shards x 1 worker(s)");
    let four = p99("4 shards x 4 worker(s)");
    assert!(
        four < 0.7 * one,
        "4 workers improve 4-shard p99 ({four} ms) well below 1 worker ({one} ms)"
    );
    check(r, true);
}

#[test]
fn mvcc_reads_smoke() {
    // run() itself asserts the tentpole gate: >= 2x lower contended read
    // p99 under MVCC than under single-version locking.
    let r = experiments::mvcc_reads::run(BenchScale::Smoke);
    assert_eq!(
        r.rows.len(),
        14,
        "two modes x two shard counts x three write pressures + two redesign rows"
    );
    assert!(r.latency.is_some(), "headline percentiles at the contended MVCC point");
    assert!(r.commentary.contains("read-only baseline"), "{}", r.commentary);
    let json = r.to_json();
    assert!(json.contains("\"id\":\"mvcc_reads\""));
    // Idle rows see no bursts; contended rows see at least one.
    for row in &r.rows {
        let bursts: u64 = row.cells[1].parse().expect("burst cell");
        if row.label.contains("0 writers") {
            assert_eq!(bursts, 0, "{}", row.label);
        } else {
            assert!(bursts > 0, "{}: writers made no progress", row.label);
        }
    }
    check(r, true);
}
