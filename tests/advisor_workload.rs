//! Integration: the workload-aware design advisor tracks the read/write
//! crossover on the eBay schema — B+Tree-heavy sets when reads dominate,
//! CM-heavy sets when writes dominate — and `Engine::apply_design`
//! switches structures mid-run without changing query results.

use cm_datagen::ebay::{ebay, EbayConfig, EbayData, COL_CATID};
use cm_engine::{Engine, EngineConfig, WorkloadRecommendation};
use cm_query::{AccessPath, Pred, PredOp, Query};
use std::sync::Arc;

const EBAY_TPP: usize = 90;

fn ebay_data() -> EbayData {
    // Large enough that the heap dwarfs the pool (the pool-residency
    // discount is what separates tight B+Tree postings from bucket-
    // granularity CM reads), small enough for a test.
    ebay(EbayConfig { categories: 1_200, min_items: 40, max_items: 60, seed: 0xADAB })
}

fn bare_engine(data: &EbayData) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig { pool_pages: 256, ..EngineConfig::default() });
    engine
        .create_table("items", data.schema.clone(), COL_CATID, EBAY_TPP, (EBAY_TPP * 2) as u64)
        .unwrap();
    engine.load("items", data.rows.clone()).unwrap();
    engine
}

/// Sixteen point queries on the selective hierarchy levels (CAT4/CAT5).
fn cat_queries(data: &EbayData) -> Vec<Query> {
    (0..16)
        .map(|s| {
            let mut seed = 31 * s as u64 + 7;
            loop {
                let (col, v) = data.random_cat_predicate(seed);
                if (4..=5).contains(&col) {
                    return Query::single(Pred { col, op: PredOp::Eq(v) });
                }
                seed += 7919;
            }
        })
        .collect()
}

/// Drive `reads` read queries and `writes` inserts, then advise.
fn profile_and_advise(
    engine: &Arc<Engine>,
    data: &mut EbayData,
    reads: usize,
    writes: usize,
) -> WorkloadRecommendation {
    let queries = cat_queries(data);
    for i in 0..reads {
        engine.execute("items", &queries[i % queries.len()]).unwrap();
    }
    for row in data.insert_batch(writes, 0x77) {
        engine.insert("items", row).unwrap();
    }
    engine.commit();
    engine.advise_design("items").unwrap()
}

#[test]
fn read_heavy_mix_recommends_btree_heavy_set() {
    let mut data = ebay_data();
    let engine = bare_engine(&data);
    let rec = profile_and_advise(&engine, &mut data, 450, 50);
    let schema = engine.table_schema("items").unwrap();
    assert!(
        rec.best.btrees() >= 1 && rec.best.btrees() >= rec.best.cms(),
        "90/10 reads should favor B+Trees: chose {} (top sets:\n{})",
        rec.best.label(&schema),
        rec.table(&schema, 5)
    );
    // The profile the advisor saw matches what was driven.
    assert_eq!(rec.profile.reads, 450);
    assert_eq!(rec.profile.writes, 50);
    assert!(rec.profile.col(4).is_some() && rec.profile.col(5).is_some());
}

#[test]
fn write_heavy_mix_recommends_cm_heavy_set() {
    let mut data = ebay_data();
    let engine = bare_engine(&data);
    let rec = profile_and_advise(&engine, &mut data, 50, 450);
    let schema = engine.table_schema("items").unwrap();
    assert_eq!(
        rec.best.btrees(),
        0,
        "10/90 writes cannot afford B+Tree upkeep: chose {} (top sets:\n{})",
        rec.best.label(&schema),
        rec.table(&schema, 5)
    );
    assert!(
        rec.best.cms() >= 1,
        "the hot read columns still earn maintenance-free CMs: {}",
        rec.best.label(&schema)
    );
}

#[test]
fn apply_design_keeps_results_oracle_equal_across_a_replan() {
    let mut data = ebay_data();
    let engine = bare_engine(&data);
    let queries = cat_queries(&data);

    // Profile a read-heavy prefix, snapshot oracle results.
    let rec = profile_and_advise(&engine, &mut data, 120, 20);
    let collect = |q: &Query| -> Vec<Vec<cm_storage::Value>> {
        let mut rows = engine.execute_collect("items", q).unwrap().rows.unwrap();
        rows.sort();
        rows
    };
    let before: Vec<_> = queries.iter().take(6).map(collect).collect();

    // Mid-run re-plan: swap the structure set.
    let applied = engine.apply_design("items", &rec.best).unwrap();
    assert_eq!(applied.btrees + applied.cms, rec.best.btrees() + rec.best.cms());

    // Cost-routed results are unchanged, and agree with a forced scan.
    for (q, want) in queries.iter().take(6).zip(&before) {
        assert_eq!(&collect(q), want, "{q:?}");
        let mut scanned = engine
            .execute_via_collect("items", AccessPath::FullScan, q)
            .unwrap()
            .rows
            .unwrap();
        scanned.sort();
        assert_eq!(&scanned, want, "{q:?} vs scan oracle");
    }

    // Writes after the switch maintain the new structures: a fresh row
    // is visible through the routed path immediately.
    let row = data.insert_batch(1, 0x99).pop().unwrap();
    let q = Query::single(Pred { col: 4, op: PredOp::Eq(row[4].clone()) });
    let before_insert = engine.execute("items", &q).unwrap().run.matched;
    engine.insert("items", row).unwrap();
    engine.commit();
    assert_eq!(engine.execute("items", &q).unwrap().run.matched, before_insert + 1);
}
