//! Property tests for vectored run I/O: for arbitrary data, queries, and
//! pool capacities, the run-based full-scan / sorted / CM sweeps return
//! row-for-row identical results and touch identical page *counts* to
//! the per-page oracle ([`cm_storage::PerPageIo`] restores the
//! page-at-a-time charging the engine used before vectoring). Only the
//! seek/sequential pricing under concurrency may differ — which is the
//! entire point of the conversion.

use cm_core::CmSpec;
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{
    BufferPool, Column, DiskConfig, DiskSim, FileDisk, IoStats, PageAccessor, PerPageIo,
    Row, Schema, TempDir, Value, ValueType,
};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("k", ValueType::Int),
        Column::new("v", ValueType::Int),
    ]))
}

/// Clustered keys from a small domain with a correlated second column —
/// CM buckets then map value ranges to a few clustered page runs, the
/// access pattern under study.
fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..40, 0i64..30), 1..600)
        .prop_map(|v| v.into_iter().map(|(k, noise)| (k, k * 10 + noise)).collect())
}

fn build_table(disk: &Arc<DiskSim>, data: &[(i64, i64)]) -> Table {
    let rows: Vec<Row> =
        data.iter().map(|&(k, v)| vec![Value::Int(k), Value::Int(v)]).collect();
    let mut t = Table::build(disk, schema(), rows, 8, 0, 16).expect("rows conform");
    t.add_secondary(disk, "v_idx", vec![1]);
    t.add_cm("v_cm", CmSpec::single_pow2(1, 3));
    t
}

/// Brute-force oracle in heap (RID) order — every converted path visits
/// matching rows in ascending page order, so plain equality must hold.
fn oracle(t: &Table, q: &Query) -> Vec<Row> {
    t.heap().iter().filter(|(_, r)| q.matches(r)).map(|(_, r)| r.clone()).collect()
}

fn queries(lo: i64, span: i64, point: i64) -> Vec<Query> {
    vec![
        Query::single(Pred::eq(1, point)),
        Query::single(Pred::between(1, lo, lo + span)),
        Query::single(Pred::is_in(
            1,
            vec![Value::Int(point), Value::Int(lo), Value::Int(point), Value::Int(lo + span)],
        )),
        Query::new(vec![Pred::between(1, lo, lo + span), Pred::eq(0, point / 10)]),
        Query::single(Pred::between(1, 0, 1_000)),
    ]
}

/// Execute one access path through `io`, collecting the matched rows.
fn run_path(t: &Table, disk: &Arc<DiskSim>, io: &dyn PageAccessor, path: usize, q: &Query) -> Vec<Row> {
    let ctx = ExecContext::through(disk, io);
    let mut rows: Vec<Row> = Vec::new();
    let mut visit = |r: &[Value]| rows.push(r.to_vec());
    match path {
        0 => {
            t.exec_full_scan_visit(&ctx, q, &mut visit);
        }
        1 => {
            t.exec_secondary_sorted_visit(&ctx, 0, q, &mut visit).expect("v predicate");
        }
        _ => {
            t.exec_cm_scan_visit(&ctx, 0, q, &mut visit);
        }
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn run_sweeps_match_per_page_oracle_cold(
        data in rows_strategy(),
        lo in 0i64..400,
        span in 0i64..120,
        point in 0i64..400,
    ) {
        let disk = DiskSim::with_defaults();
        let t = build_table(&disk, &data);
        for q in queries(lo, span, point) {
            for path in 0..3usize {
                let before = disk.stats();
                let vectored = run_path(&t, &disk, disk.as_ref(), path, &q);
                let vec_io = disk.stats().since(&before);

                let per_page_io = PerPageIo(disk.as_ref());
                let before = disk.stats();
                let per_page = run_path(&t, &disk, &per_page_io, path, &q);
                let pp_io = disk.stats().since(&before);

                let want = oracle(&t, &q);
                prop_assert_eq!(&vectored, &want, "path {} q {:?}", path, &q);
                prop_assert_eq!(&per_page, &want, "path {} q {:?}", path, &q);
                prop_assert_eq!(
                    vec_io.pages(), pp_io.pages(),
                    "identical page counts: path {} q {:?}", path, &q
                );
            }
        }
    }

    #[test]
    fn run_sweeps_match_per_page_oracle_through_bounded_pool(
        data in rows_strategy(),
        capacity in 2usize..48,
        lo in 0i64..400,
        span in 0i64..120,
        point in 0i64..400,
    ) {
        // Two pools with the same capacity over the same disk: one serves
        // vectored runs, the other the per-page decomposition. Residency
        // evolves across the whole query sequence; classification,
        // eviction victims, and disk page counts must stay identical.
        let disk = DiskSim::with_defaults();
        let t = build_table(&disk, &data);
        let run_pool = BufferPool::new(disk.clone(), capacity);
        let page_pool = BufferPool::new(disk.clone(), capacity);
        for q in queries(lo, span, point) {
            for path in 0..3usize {
                let pool_before = run_pool.stats();
                let disk_before = disk.stats();
                let vectored = run_path(&t, &disk, &run_pool, path, &q);
                let run_pool_delta = run_pool.stats().since(&pool_before);
                let run_disk_delta = disk.stats().since(&disk_before);

                let per_page_io = PerPageIo(&page_pool);
                let pool_before = page_pool.stats();
                let disk_before = disk.stats();
                let per_page = run_path(&t, &disk, &per_page_io, path, &q);
                let page_pool_delta = page_pool.stats().since(&pool_before);
                let page_disk_delta = disk.stats().since(&disk_before);

                let want = oracle(&t, &q);
                prop_assert_eq!(&vectored, &want, "path {} q {:?}", path, &q);
                prop_assert_eq!(&per_page, &want, "path {} q {:?}", path, &q);
                prop_assert_eq!(
                    run_pool_delta, page_pool_delta,
                    "identical hit/miss/eviction behaviour: path {} q {:?}", path, &q
                );
                prop_assert_eq!(
                    run_disk_delta.pages(), page_disk_delta.pages(),
                    "identical disk page counts: path {} q {:?}", path, &q
                );
            }
        }
    }
}

/// Sim counters equal (the backing must never perturb the accounting);
/// the wall-clock fields are the only permitted difference.
fn sim_counters_equal(a: &IoStats, b: &IoStats) -> bool {
    a.seeks == b.seeks
        && a.seq_reads == b.seq_reads
        && a.page_writes == b.page_writes
        && a.write_seeks == b.write_seeks
        && (a.elapsed_ms - b.elapsed_ms).abs() < 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A `FileDisk`-backed disk is oracle-equal to the pure simulator on
    /// the same sweeps: row-for-row identical results, identical sim
    /// counters — only the clock (real `pread`/`pwrite` wall time)
    /// differs, and it must be nonzero where pages moved.
    #[test]
    fn filedisk_backed_sweeps_are_oracle_equal(
        data in rows_strategy(),
        lo in 0i64..400,
        span in 0i64..120,
        point in 0i64..400,
    ) {
        let tmp = TempDir::new("cm-runio-prop").expect("tempdir");
        let cfg = DiskConfig::default();
        let sim = DiskSim::new(cfg);
        let backed = DiskSim::with_backing(
            cfg,
            FileDisk::new(tmp.path().join("d"), cfg.page_bytes, false).expect("filedisk"),
        );
        let t_sim = build_table(&sim, &data);
        let t_backed = build_table(&backed, &data);
        prop_assert!(
            sim_counters_equal(&sim.stats(), &backed.stats()),
            "table build accounting: {:?} vs {:?}", sim.stats(), backed.stats()
        );
        for q in queries(lo, span, point) {
            for path in 0..3usize {
                let before_sim = sim.stats();
                let before_backed = backed.stats();
                let rows_sim = run_path(&t_sim, &sim, sim.as_ref(), path, &q);
                let rows_backed = run_path(&t_backed, &backed, backed.as_ref(), path, &q);
                let d_sim = sim.stats().since(&before_sim);
                let d_backed = backed.stats().since(&before_backed);

                let want = oracle(&t_sim, &q);
                prop_assert_eq!(&rows_sim, &want, "sim path {} q {:?}", path, &q);
                prop_assert_eq!(&rows_backed, &want, "backed path {} q {:?}", path, &q);
                prop_assert!(
                    sim_counters_equal(&d_sim, &d_backed),
                    "path {} q {:?}: {:?} vs {:?}", path, &q, d_sim, d_backed
                );
                prop_assert_eq!(d_sim.read_wall_ns, 0, "pure sim never touches a device");
                prop_assert!(
                    d_backed.pages() == 0 || d_backed.read_wall_ns > 0,
                    "backed reads must take wall time when pages moved: {:?}", d_backed
                );
            }
        }
    }
}
