//! Integration: the CM Advisor's recommendations are *actionable* — a
//! recommended design, once materialized as a real CM, answers the
//! training query correctly, beats the advisor's own size bound, and its
//! estimated statistics track the materialized structure.

use cm_advisor::{Advisor, AdvisorConfig};
use cm_core::CmSpec;
use cm_datagen::ebay::{self, ebay, EbayConfig};
use cm_datagen::sdss;
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{DiskSim, Value};

fn advisor() -> Advisor {
    Advisor::new(AdvisorConfig { sample_size: 5_000, ..AdvisorConfig::default() })
}

#[test]
fn recommended_design_materializes_and_answers_correctly() {
    let data = ebay(EbayConfig { categories: 400, min_items: 8, max_items: 16, seed: 21 });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 900)
        .unwrap();
    t.analyze_cols(&[ebay::COL_PRICE]);
    let q = Query::single(Pred::between(ebay::COL_PRICE, 200_000i64, 205_000i64));
    let rec = advisor().recommend(&t, &disk.config(), &q, 0.25);
    let chosen = rec.chosen_design().expect("qualifying design").clone();

    let cm = t.add_cm("advisor_cm", CmSpec::new(chosen.design.attrs.clone()));
    let ctx = ExecContext::cold(&disk);
    let truth = t.exec_full_scan(&ctx, &q).matched;
    let r = t.exec_cm_scan(&ctx, cm, &q);
    assert_eq!(r.matched, truth, "materialized recommendation answers correctly");

    // The estimated size tracks the materialized size within a small
    // factor (both are pair-count models; the estimate uses AE).
    let actual = t.cm(cm).size_bytes() as f64;
    assert!(
        chosen.size_bytes < 6.0 * actual && chosen.size_bytes * 6.0 > actual,
        "estimated {} vs actual {actual}",
        chosen.size_bytes
    );
}

#[test]
fn estimated_c_per_u_tracks_materialized_cm() {
    let data = ebay(EbayConfig { categories: 300, min_items: 6, max_items: 12, seed: 22 });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 450)
        .unwrap();
    t.analyze_cols(&[ebay::COL_PRICE]);
    let q = Query::single(Pred::eq(ebay::COL_PRICE, 123_456i64));
    let rec = advisor().recommend(&t, &disk.config(), &q, 0.5);
    for est in rec.designs.iter().take(6) {
        let cm = t.add_cm("probe", CmSpec::new(est.design.attrs.clone()));
        let actual = t.cm(cm).avg_cbuckets_per_key();
        assert!(
            est.c_per_u < 4.0 * actual + 2.0 && actual < 4.0 * est.c_per_u + 2.0,
            "design {:?}: estimated {} vs actual {}",
            est.design.attrs,
            est.c_per_u,
            actual
        );
    }
}

#[test]
fn advisor_prefers_composite_for_jointly_determining_attrs() {
    // The Experiment 5 situation: (ra, dec) jointly determine objID.
    let data = sdss::sdss(sdss::SdssConfig { rows: 20_000, fields: 251, stripes: 20, seed: 23 });
    let disk = DiskSim::with_defaults();
    let mut t =
        Table::build(&disk, data.schema.clone(), data.rows.clone(), 25, sdss::COL_OBJID, 250)
            .unwrap();
    t.analyze_cols(&[sdss::COL_RA, sdss::COL_DEC]);
    let q = Query::new(vec![
        Pred::between(sdss::COL_RA, 100.0, 101.4),
        Pred::between(sdss::COL_DEC, 2.0, 2.144),
    ]);
    let rec = advisor().recommend(&t, &disk.config(), &q, 0.10);
    // Among the cheapest few designs there must be a composite one, and
    // the single-attribute ra design must not be the best.
    let best = &rec.designs[0];
    assert!(
        rec.designs.iter().take(5).any(|d| d.design.attrs.len() == 2),
        "a composite design ranks near the top"
    );
    let ra_raw_cost = rec
        .designs
        .iter()
        .find(|d| d.design.attrs.len() == 1 && d.design.attrs[0].col == sdss::COL_RA)
        .map(|d| d.cost_ms);
    if let Some(ra_cost) = ra_raw_cost {
        assert!(best.cost_ms <= ra_cost, "best ({}) beats ra-alone ({ra_cost})", best.cost_ms);
    }
}

#[test]
fn advisor_never_recommends_over_threshold() {
    let data = ebay(EbayConfig { categories: 300, min_items: 6, max_items: 12, seed: 24 });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 450)
        .unwrap();
    t.analyze_cols(&[ebay::COL_PRICE, ebay::COL_CAT5]);
    let q = Query::new(vec![
        Pred::between(ebay::COL_PRICE, 100_000i64, 140_000i64),
        Pred::eq(ebay::COL_CAT5, Value::str("L5-00003")),
    ]);
    for threshold in [0.01, 0.10, 0.50] {
        let rec = advisor().recommend(&t, &disk.config(), &q, threshold);
        if let Some(c) = rec.chosen_design() {
            assert!(c.slowdown <= threshold + 1e-9, "threshold {threshold}: {}", c.slowdown);
        }
        // Designs are sorted by cost.
        for w in rec.designs.windows(2) {
            assert!(w[0].cost_ms <= w[1].cost_ms + 1e-9);
        }
    }
}

#[test]
fn tighter_thresholds_recommend_larger_faster_designs() {
    let data = ebay(EbayConfig { categories: 400, min_items: 8, max_items: 16, seed: 25 });
    let disk = DiskSim::with_defaults();
    let mut t = Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, ebay::COL_CATID, 900)
        .unwrap();
    t.analyze_cols(&[ebay::COL_PRICE]);
    let q = Query::single(Pred::between(ebay::COL_PRICE, 300_000i64, 302_000i64));
    let tight = advisor().recommend(&t, &disk.config(), &q, 0.02);
    let loose = advisor().recommend(&t, &disk.config(), &q, 1.0);
    let (Some(tc), Some(lc)) = (tight.chosen_design(), loose.chosen_design()) else {
        panic!("both thresholds should yield a recommendation");
    };
    assert!(
        lc.size_bytes <= tc.size_bytes + 1e-9,
        "looser threshold admits smaller designs: {} vs {}",
        lc.size_bytes,
        tc.size_bytes
    );
}
