//! Differential join oracle: random data, shard counts, join columns,
//! and side filters through [`cm_engine::Engine::join`] — the planner's
//! pick, a forced hash probe, and a forced correlation-clamped probe —
//! must all return exactly the rows of a naive nested-loop reference
//! join. The generators force the interesting shapes: duplicate join
//! keys (cross-product fan-out within a key), right-side keys outside
//! the left domain (empty-match rows), filters that empty one side
//! (probe phase must be skipped, not crash), self-joins (one table-level
//! guard), and MVCC on/off at 1–8 shards.
//!
//! Case count is `JOIN_PROP_CASES` (default 48) so CI smoke jobs can run
//! a reduced sweep.

use cm_core::CmSpec;
use cm_engine::{Engine, EngineConfig, JoinQuery, JoinStrategy};
use cm_query::{Pred, Query};
use cm_storage::{Column, Row, Schema, Value, ValueType};
use proptest::prelude::*;
use std::sync::Arc;

fn cases() -> ProptestConfig {
    let cases = std::env::var("JOIN_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    ProptestConfig::with_cases(cases)
}

fn left_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("k", ValueType::Int),
        Column::new("v", ValueType::Int),
    ]))
}

fn right_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("k", ValueType::Int),
        Column::new("w", ValueType::Int),
        Column::new("tag", ValueType::Int),
    ]))
}

/// Left rows over a small key domain (0..30): duplicates are the norm,
/// and the first row is cloned three extra times so even proptest's
/// minimal cases exercise duplicate-key fan-out.
fn left_rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((0i64..30, 0i64..30), 1..150).prop_map(|v| {
        let mut rows: Vec<Row> = v
            .into_iter()
            .map(|(k, a)| vec![Value::Int(k), Value::Int(a)])
            .collect();
        for _ in 0..3 {
            rows.push(rows[0].clone());
        }
        rows
    })
}

/// Right rows with keys drawn from 0..40: keys in 30..40 can never match
/// a left row, so every case carries empty-match rows.
fn right_rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((0i64..40, 0i64..30, 0i64..5), 1..150).prop_map(|v| {
        v.into_iter()
            .map(|(k, w, t)| vec![Value::Int(k), Value::Int(w), Value::Int(t)])
            .collect()
    })
}

/// A side filter: none, a satisfiable range, or an unsatisfiable range
/// (emptying that side — an empty build must short-circuit the probe).
fn side_filter(kind: u8, col: usize, lo: i64, span: i64) -> Query {
    match kind % 3 {
        0 => Query::default(),
        1 => Query::single(Pred::between(col, lo, lo + span)),
        _ => Query::single(Pred::between(col, 1_000, 2_000)),
    }
}

/// Naive nested-loop reference: filter both sides, cross-match on the
/// join columns, emit left columns then right columns.
fn nested_loop(left: &[Row], right: &[Row], jq: &JoinQuery) -> Vec<Row> {
    let mut out: Vec<Row> = Vec::new();
    for l in left.iter().filter(|r| jq.left_filter.matches(r)) {
        for r in right.iter().filter(|r| jq.right_filter.matches(r)) {
            if l[jq.left_col] == r[jq.right_col] {
                let mut row = l.clone();
                row.extend_from_slice(r);
                out.push(row);
            }
        }
    }
    out.sort();
    out
}

/// Engine with both tables loaded and one CM per table on its join
/// column (so a clamp can be forced whichever side ends up probing).
/// Returns the CM ids as (left, right).
fn build_engine(
    shards: usize,
    workers: usize,
    mvcc: bool,
    left: &[Row],
    right: &[Row],
    jq: &JoinQuery,
) -> (Arc<Engine>, usize, usize) {
    let engine = Engine::new(EngineConfig { shards, workers, mvcc, ..EngineConfig::default() });
    engine.create_table("l", left_schema(), 0, 8, 16).unwrap();
    engine.create_table("r", right_schema(), 0, 8, 16).unwrap();
    engine.load("l", left.to_vec()).unwrap();
    engine.load("r", right.to_vec()).unwrap();
    let lcm = engine
        .create_cm("l", "l_join_cm", CmSpec::single_raw(jq.left_col))
        .unwrap();
    let rcm = engine
        .create_cm("r", "r_join_cm", CmSpec::single_raw(jq.right_col))
        .unwrap();
    (engine, lcm, rcm)
}

proptest! {
    #![proptest_config(cases())]

    /// Planner-picked, forced-hash, and forced-clamp joins all equal the
    /// nested-loop oracle, rows and cardinality, across shard counts,
    /// worker counts, and MVCC modes.
    #[test]
    fn engine_join_equals_nested_loop_oracle(
        left in left_rows(),
        right in right_rows(),
        shards in 1usize..9,
        par in any::<bool>(),
        mvcc in any::<bool>(),
        lcol in 0usize..2,
        rcol in 0usize..2,
        lf in (0u8..3, 0i64..30, 0i64..15),
        rf in (0u8..3, 0i64..30, 0i64..15),
    ) {
        let jq = JoinQuery::on(lcol, rcol)
            .filter_left(side_filter(lf.0, 1, lf.1, lf.2))
            .filter_right(side_filter(rf.0, 1, rf.1, rf.2));
        let workers = if par { 4 } else { 1 };
        let (engine, lcm, rcm) = build_engine(shards, workers, mvcc, &left, &right, &jq);
        let want = nested_loop(&left, &right, &jq);

        // The engine builds the smaller side (ties go left), so the
        // probe table — whose CM a forced clamp must name — is the other.
        let probe_cm = if left.len() <= right.len() { rcm } else { lcm };
        let auto = engine.join_collect("l", "r", &jq).unwrap();
        let hash = engine
            .join_via_collect("l", "r", &jq, JoinStrategy::Hash)
            .unwrap();
        let clamp = engine
            .join_via_collect("l", "r", &jq, JoinStrategy::CmClamp(probe_cm))
            .unwrap();
        for (name, out) in [("auto", &auto), ("hash", &hash), ("clamp", &clamp)] {
            let mut got = out.rows.clone().unwrap();
            got.sort();
            prop_assert_eq!(
                &got, &want,
                "{} join diverges (shards={}, workers={}, mvcc={}, jq={:?})",
                name, shards, workers, mvcc, &jq
            );
            prop_assert_eq!(out.matched as usize, want.len());
        }
        prop_assert_eq!(hash.strategy, JoinStrategy::Hash);
        prop_assert_eq!(clamp.strategy, JoinStrategy::CmClamp(probe_cm));
        // The planner's pick is one of the two strategies it priced.
        match auto.strategy {
            JoinStrategy::Hash => {}
            JoinStrategy::CmClamp(id) => {
                prop_assert_eq!(id, probe_cm);
                prop_assert!(auto.est_cm_ms.unwrap() < auto.est_hash_ms);
            }
        }
    }

    /// A self-join (same table both sides, one table-level guard) equals
    /// the nested-loop oracle under every strategy.
    #[test]
    fn self_join_equals_nested_loop_oracle(
        left in left_rows(),
        shards in 1usize..5,
        par in any::<bool>(),
        mvcc in any::<bool>(),
        lcol in 0usize..2,
        rcol in 0usize..2,
    ) {
        let jq = JoinQuery::on(lcol, rcol);
        let workers = if par { 4 } else { 1 };
        let engine =
            Engine::new(EngineConfig { shards, workers, mvcc, ..EngineConfig::default() });
        engine.create_table("t", left_schema(), 0, 8, 16).unwrap();
        engine.load("t", left.clone()).unwrap();
        let cms = [
            engine.create_cm("t", "cm0", CmSpec::single_raw(0)).unwrap(),
            engine.create_cm("t", "cm1", CmSpec::single_raw(1)).unwrap(),
        ];
        let want = nested_loop(&left, &left, &jq);

        let auto = engine.join_collect("t", "t", &jq).unwrap();
        // Self-joins build left, probe right: the clamp CM is rcol's.
        let clamp = engine
            .join_via_collect("t", "t", &jq, JoinStrategy::CmClamp(cms[rcol]))
            .unwrap();
        for out in [&auto, &clamp] {
            let mut got = out.rows.clone().unwrap();
            got.sort();
            prop_assert_eq!(&got, &want, "self-join diverges for {:?}", &jq);
            prop_assert_eq!(out.matched as usize, want.len());
        }
    }

    /// Forcing a clamp through a CM that does not cover the probe join
    /// column is an error, never a wrong answer.
    #[test]
    fn forced_clamp_without_covering_cm_errors(
        left in left_rows(),
        right in right_rows(),
    ) {
        let jq = JoinQuery::on(0, 0);
        let engine = Engine::new(EngineConfig::default());
        engine.create_table("l", left_schema(), 0, 8, 16).unwrap();
        engine.create_table("r", right_schema(), 0, 8, 16).unwrap();
        engine.load("l", left.clone()).unwrap();
        engine.load("r", right.clone()).unwrap();
        // The probe table's only CM covers a non-join column.
        let probe = if left.len() <= right.len() { ("r", 1) } else { ("l", 1) };
        let off = engine
            .create_cm(probe.0, "off_cm", CmSpec::single_raw(probe.1))
            .unwrap();
        prop_assert!(engine.join_via("l", "r", &jq, JoinStrategy::CmClamp(off)).is_err());
        prop_assert!(
            engine.join_via("l", "r", &jq, JoinStrategy::CmClamp(off + 7)).is_err(),
            "a CM id the table lacks errors too"
        );
        // The planner path still answers (falls back to hash).
        let auto = engine.join_collect("l", "r", &jq).unwrap();
        let mut got = auto.rows.unwrap();
        got.sort();
        prop_assert_eq!(got, nested_loop(&left, &right, &jq));
    }
}
