//! Property tests for clustered-key shard routing: for arbitrary data,
//! shard counts, and predicates, the union of rows returned across
//! shards equals a brute-force oracle over the input rows (sharding may
//! reroute work, never change answers), point queries on the clustered
//! attribute touch exactly one shard, and the parallel executor's
//! fan-out returns the same rows as sequential execution — including
//! while a concurrent writer mutates a different shard.

use cm_engine::{Backend, Engine, EngineConfig};
use cm_query::{Pred, Query};
use cm_storage::{Column, Row, Schema, TempDir, Value, ValueType};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("k", ValueType::Int),
        Column::new("v", ValueType::Int),
    ]))
}

/// Rows with clustered keys drawn from a small domain (so shard splits
/// land between ties) and a correlated second attribute.
fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..60, 0i64..40), 1..800)
        .prop_map(|v| v.into_iter().map(|(k, noise)| (k, k * 10 + noise)).collect())
}

fn build_engine_workers(shards: usize, workers: usize, data: &[(i64, i64)]) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig { shards, workers, ..EngineConfig::default() });
    engine.create_table("t", schema(), 0, 8, 16).unwrap();
    let rows: Vec<Row> = data
        .iter()
        .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
        .collect();
    engine.load("t", rows).unwrap();
    engine
}

fn build_engine(shards: usize, data: &[(i64, i64)]) -> Arc<Engine> {
    build_engine_workers(shards, 1, data)
}

/// Brute-force oracle: filter the input rows directly.
fn oracle(data: &[(i64, i64)], q: &Query) -> Vec<Row> {
    let mut out: Vec<Row> = data
        .iter()
        .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
        .filter(|r| q.matches(r))
        .collect();
    out.sort();
    out
}

fn queries(qlo: i64, qspan: i64, point: i64) -> Vec<Query> {
    vec![
        Query::single(Pred::eq(0, point)),
        Query::single(Pred::between(0, qlo, qlo + qspan)),
        Query::single(Pred::is_in(
            0,
            vec![Value::Int(point), Value::Int(qlo), Value::Int(qlo + qspan)],
        )),
        Query::single(Pred::between(1, qlo * 10, (qlo + qspan) * 10)),
        Query::new(vec![Pred::between(0, qlo, qlo + qspan), Pred::eq(1, point * 10)]),
        Query::new(vec![Pred::between(0, qlo, qlo + qspan), Pred::eq(0, point)]),
        Query::default(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_union_equals_oracle(
        data in rows_strategy(),
        shards in 1usize..6,
        qlo in 0i64..60,
        qspan in 0i64..25,
        point in 0i64..60,
    ) {
        let engine = build_engine(shards, &data);
        for q in queries(qlo, qspan, point) {
            let out = engine.execute_collect("t", &q).unwrap();
            let mut got = out.rows.unwrap();
            got.sort();
            let want = oracle(&data, &q);
            assert_eq!(got, want, "shards={shards} q={q:?}");
            assert_eq!(out.run.matched as usize, want.len());
        }
    }

    #[test]
    fn point_queries_touch_exactly_one_shard(
        data in rows_strategy(),
        shards in 2usize..6,
        point in 0i64..60,
    ) {
        let engine = build_engine(shards, &data);
        let q = Query::single(Pred::eq(0, point));
        let routed = engine.route_shards("t", &q).unwrap();
        assert_eq!(routed.len(), 1, "point routing is single-shard");
        let before = engine.shard_io();
        let out = engine.execute("t", &q).unwrap();
        assert_eq!(out.shards, routed, "execution visited the routed shard");
        let after = engine.shard_io();
        for (i, (b, a)) in before.iter().zip(after.iter()).enumerate() {
            if i == routed[0] {
                assert!(a.pages() > b.pages(), "owning shard did the I/O");
            } else {
                assert_eq!(a.pages(), b.pages(), "shard {i} untouched");
            }
        }
        // Every row with that key lives on the routed shard.
        let expected = data.iter().filter(|&&(k, _)| k == point).count() as u64;
        assert_eq!(out.run.matched, expected);
    }

    #[test]
    fn parallel_fanout_equals_sequential_oracle_under_concurrent_inserts(
        data in rows_strategy(),
        qlo in 0i64..60,
        qspan in 0i64..25,
        point in 0i64..60,
    ) {
        // The parallel engine executes legs on 4 workers while a writer
        // session streams inserts into the *last* shard (keys >= 1000,
        // values < 0 — matched by none of the queries below, so every
        // read has a stable expected answer).
        let par = build_engine_workers(4, 4, &data);
        let seq = build_engine_workers(4, 1, &data);
        let stable_queries = vec![
            Query::single(Pred::eq(0, point)),
            Query::single(Pred::between(0, qlo, qlo + qspan)),
            Query::single(Pred::is_in(
                0,
                vec![Value::Int(point), Value::Int(qlo), Value::Int(qlo + qspan)],
            )),
            Query::single(Pred::between(1, qlo * 10, (qlo + qspan) * 10)),
            Query::new(vec![Pred::between(0, qlo, qlo + qspan), Pred::eq(1, point * 10)]),
        ];
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer = par.session();
            let stop_ref = &stop;
            scope.spawn(move || {
                let mut i = 0i64;
                while !stop_ref.load(Ordering::Acquire) {
                    writer
                        .insert("t", vec![Value::Int(1000 + i % 40), Value::Int(-1 - i)])
                        .unwrap();
                    if i % 16 == 0 {
                        writer.commit();
                    }
                    i += 1;
                }
                writer.commit();
            });
            for q in &stable_queries {
                let a = par.execute_collect("t", q).unwrap();
                let b = seq.execute_collect("t", q).unwrap();
                let mut ra = a.rows.unwrap();
                let mut rb = b.rows.unwrap();
                ra.sort();
                rb.sort();
                assert_eq!(ra, rb, "parallel == sequential for {q:?}");
                assert_eq!(ra, oracle(&data, q), "both match the brute-force oracle");
                assert!(
                    a.parallel_ms <= a.run.ms() + 1e-9,
                    "fan-out makespan never exceeds the serial sum"
                );
            }
            stop.store(true, Ordering::Release);
        });
    }

    /// A whole engine on the real-file backend (shard disks *and* WAL)
    /// is row-for-row oracle-equal to the simulated one: same routing,
    /// same answers, same insert visibility — only the clock differs.
    #[test]
    fn file_backend_engine_equals_sim_engine(
        data in rows_strategy(),
        shards in 1usize..5,
        qlo in 0i64..60,
        qspan in 0i64..25,
        point in 0i64..60,
    ) {
        let tmp = TempDir::new("cm-routing-prop").expect("tempdir");
        let sim = build_engine(shards, &data);
        let file = Engine::new(EngineConfig {
            shards,
            backend: Backend::File { dir: tmp.path().to_path_buf(), direct: false },
            ..EngineConfig::default()
        });
        file.create_table("t", schema(), 0, 8, 16).unwrap();
        let rows: Vec<Row> = data
            .iter()
            .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
            .collect();
        file.load("t", rows).unwrap();

        for q in queries(qlo, qspan, point) {
            let a = sim.execute_collect("t", &q).unwrap();
            let b = file.execute_collect("t", &q).unwrap();
            let mut ra = a.rows.unwrap();
            let mut rb = b.rows.unwrap();
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb, "file backend answers diverge for {q:?}");
            assert_eq!(ra, oracle(&data, &q), "both match the brute-force oracle");
            assert_eq!(a.shards, b.shards, "identical shard routing for {q:?}");
            assert!(
                (a.run.ms() - b.run.ms()).abs() < 1e-6,
                "identical sim pricing for {q:?}: {} vs {}", a.run.ms(), b.run.ms()
            );
        }
        // Mutations go through the file-backed WAL and stay oracle-equal.
        for eng in [&sim, &file] {
            eng.insert("t", vec![Value::Int(point), Value::Int(-7)]).unwrap();
            eng.commit();
        }
        let q = Query::single(Pred::eq(0, point));
        let mut ra = sim.execute_collect("t", &q).unwrap().rows.unwrap();
        let mut rb = file.execute_collect("t", &q).unwrap().rows.unwrap();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb, "post-insert answers diverge");
        // The real device actually saw the traffic: wall time accrued on
        // the file engine, never on the sim engine.
        let wall = |io: &[cm_storage::IoStats]| {
            io.iter().map(|s| s.read_wall_ns + s.write_wall_ns).sum::<u64>()
        };
        assert_eq!(wall(&sim.shard_io()), 0, "pure sim never touches a device");
        assert!(wall(&file.shard_io()) > 0, "file backend did real shard I/O");
        assert!(
            file.log_disk().stats().write_wall_ns > 0,
            "file backend did real WAL I/O"
        );
    }

    #[test]
    fn inserts_route_to_the_queried_shard(
        data in rows_strategy(),
        shards in 2usize..6,
        key in 0i64..60,
    ) {
        let engine = build_engine(shards, &data);
        let rid = engine.insert("t", vec![Value::Int(key), Value::Int(-1)]).unwrap();
        engine.commit();
        let q = Query::single(Pred::eq(0, key));
        let routed = engine.route_shards("t", &q).unwrap();
        assert_eq!(rid.shard_index(), routed[0], "insert lands where reads look");
        let out = engine.execute_collect("t", &q).unwrap();
        assert!(
            out.rows.unwrap().contains(&vec![Value::Int(key), Value::Int(-1)]),
            "inserted row visible via point routing"
        );
    }
}
