//! Integration: the `cm-engine` facade end to end — catalog, loading,
//! cost-based access-path routing, result correctness against a full-scan
//! oracle, maintenance consistency under inserts/deletes, and concurrent
//! sessions over one engine.

use cm_core::CmSpec;
use cm_datagen::tpch::{self, tpch_lineitem, TpchConfig};
use cm_engine::{
    run_mixed, AggFunc, AggSpec, Engine, EngineConfig, JoinQuery, JoinStrategy,
    MixedWorkloadConfig,
};
use cm_query::{AccessPath, Pred, Query};
use cm_storage::{Column, Row, Schema, Value, ValueType};
use std::sync::Arc;

/// A TPC-H lineitem table served by an engine: clustered on receiptdate,
/// with a B+Tree and a CM on the correlated shipdate column.
fn tpch_engine() -> (Arc<Engine>, cm_datagen::TpchData, usize, usize) {
    tpch_engine_with(30_000)
}

fn tpch_engine_with(rows: usize) -> (Arc<Engine>, cm_datagen::TpchData, usize, usize) {
    let data = tpch_lineitem(TpchConfig { rows, parts: 1_000, suppliers: 50, seed: 77 });
    let engine = Engine::new(EngineConfig::default());
    engine
        .create_table("lineitem", data.schema.clone(), tpch::COL_RECEIPTDATE, 60, 600)
        .unwrap();
    engine.load("lineitem", data.rows.clone()).unwrap();
    let sec = engine.create_btree("lineitem", "ship_idx", vec![tpch::COL_SHIPDATE]).unwrap();
    let cm = engine
        .create_cm("lineitem", "ship_cm", CmSpec::single_raw(tpch::COL_SHIPDATE))
        .unwrap();
    (engine, data, sec, cm)
}

#[test]
fn cm_and_btree_routes_match_full_scan_oracle() {
    let (engine, data, sec, cm) = tpch_engine();
    let queries = [
        Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(5, 3))),
        Query::single(Pred::eq(
            tpch::COL_SHIPDATE,
            data.rows[17][tpch::COL_SHIPDATE].clone(),
        )),
        Query::new(vec![
            Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(3, 9)),
            Pred::between(tpch::COL_QUANTITY, 1i64, 25i64),
        ]),
    ];
    for q in &queries {
        let oracle = engine
            .execute_via_collect("lineitem", AccessPath::FullScan, q)
            .unwrap();
        for path in [
            AccessPath::CmScan(cm),
            AccessPath::SecondarySorted(sec),
            AccessPath::SecondaryPipelined(sec),
        ] {
            let got = engine.execute_via_collect("lineitem", path, q).unwrap();
            assert_eq!(got.run.matched, oracle.run.matched, "{path:?} {q:?}");
            let mut a = got.rows.unwrap();
            let mut b = oracle.rows.clone().unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{path:?} returns the oracle's rows for {q:?}");
        }
    }
}

#[test]
fn cost_model_routes_by_selectivity() {
    // Large enough that a full scan (2000 pages, ~156 ms) clearly exceeds
    // a few CM bucket visits — at tiny scale every estimate collapses to
    // the scan ceiling and the planner rightly just scans.
    let (engine, data, _sec, cm) = tpch_engine_with(120_000);

    // A selective lookup (a handful of shipdates out of ~2500 distinct)
    // must leave the scan behind and go through the correlated CM.
    let selective = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(1, 4)));
    let out = engine.execute("lineitem", &selective).unwrap();
    assert_eq!(
        out.plan.path,
        AccessPath::CmScan(cm),
        "selective predicate routes to the CM; alts {:?}",
        out.plan.alternatives
    );

    // A predicate spanning the whole shipdate domain degenerates to a
    // full scan (the cost model's scan ceiling).
    let wide = Query::single(Pred::between(
        tpch::COL_SHIPDATE,
        Value::Date(0),
        Value::Date(100_000),
    ));
    let out = engine.execute("lineitem", &wide).unwrap();
    assert_eq!(
        out.plan.path,
        AccessPath::FullScan,
        "wide predicate routes to the scan; alts {:?}",
        out.plan.alternatives
    );

    let routes = engine.route_counts();
    assert_eq!(routes.cm_scan, 1);
    assert_eq!(routes.full_scan, 1);
}

#[test]
fn chosen_path_estimate_is_cheapest_candidate() {
    let (engine, data, _sec, _cm) = tpch_engine();
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(8, 1)));
    let plan = engine.explain("lineitem", &q).unwrap().primary();
    for (alt, est) in &plan.alternatives {
        assert!(
            plan.est_ms <= *est + 1e-9,
            "chosen {:?} ({} ms) beats {alt:?} ({est} ms)",
            plan.path,
            plan.est_ms
        );
    }
}

#[test]
fn inserts_and_deletes_keep_cm_routed_results_consistent() {
    let (engine, data, _sec, _cm) = tpch_engine();
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(5, 5)));

    for batch_no in 0..3u64 {
        // Insert a batch through the engine (resampled real rows, so some
        // hit the queried shipdates).
        for row in data.insert_batch(500, batch_no) {
            engine.insert("lineitem", row).unwrap();
        }
        engine.commit();

        // Delete a stripe of rows by predicate.
        if batch_no == 1 {
            let victims = engine
                .delete_where(
                    "lineitem",
                    &Query::single(Pred::eq(
                        tpch::COL_SUPPKEY,
                        Value::Int(7 + batch_no as i64),
                    )),
                )
                .unwrap();
            assert!(!victims.is_empty());
        }

        // After every batch, the CM-routed result equals the oracle.
        let oracle = engine
            .execute_via("lineitem", AccessPath::FullScan, &q)
            .unwrap();
        let routed = engine.execute("lineitem", &q).unwrap();
        assert_eq!(routed.run.matched, oracle.run.matched, "batch {batch_no}");
    }

    // The maintained CM equals one rebuilt from the surviving rows.
    engine
        .with_table("lineitem", |t| {
            let mut rebuilt = cm_core::CorrelationMap::new(
                "rebuilt",
                CmSpec::single_raw(tpch::COL_SHIPDATE),
            );
            for (rid, row) in t.heap().iter() {
                if !row[tpch::COL_SHIPDATE].is_null() {
                    rebuilt.insert(row, rid, t.dir());
                }
            }
            let maintained = t.cm(0);
            assert_eq!(maintained.num_keys(), rebuilt.num_keys());
            assert_eq!(maintained.num_pairs(), rebuilt.num_pairs());
        })
        .unwrap();
}

#[test]
fn concurrent_mixed_workload_stays_consistent() {
    let (engine, data, _sec, _cm) = tpch_engine();
    let reads: Vec<Query> = (0..10)
        .map(|i| Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(2, i))))
        .collect();
    let fresh = data.clone();
    let report = run_mixed(
        &engine,
        &MixedWorkloadConfig {
            table: "lineitem".into(),
            reads,
            insert_rows: fresh.insert_batch(2_000, 99),
            read_fraction: 0.9,
            ops: 600,
            threads: 4,
            commit_every: 20,
            seed: 0xBEEF,
            advise_after: None,
        },
    )
    .unwrap();
    assert_eq!(report.ops, 600);
    assert!(report.reads > 0 && report.writes > 0);
    assert_eq!(report.routes.total(), report.reads);

    // Every inserted row is visible and every path still agrees.
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(4, 2)));
    let oracle = engine.execute_via("lineitem", AccessPath::FullScan, &q).unwrap();
    let routed = engine.execute("lineitem", &q).unwrap();
    assert_eq!(routed.run.matched, oracle.run.matched);
    assert_eq!(engine.stats().inserts, report.writes);
}

#[test]
fn sharded_engine_mixed_workload_matches_oracle() {
    // Same TPC-H table, partitioned across 4 shards: the concurrent
    // mixed workload must stay consistent, reads must fan out only to
    // the shards they overlap, and group commit must account for every
    // session commit.
    let data = tpch_lineitem(TpchConfig { rows: 30_000, parts: 1_000, suppliers: 50, seed: 77 });
    let engine = Engine::new(EngineConfig { shards: 4, ..EngineConfig::default() });
    engine
        .create_table("lineitem", data.schema.clone(), tpch::COL_RECEIPTDATE, 60, 600)
        .unwrap();
    engine.load("lineitem", data.rows.clone()).unwrap();
    engine
        .create_cm("lineitem", "ship_cm", CmSpec::single_raw(tpch::COL_SHIPDATE))
        .unwrap();
    assert_eq!(engine.table_info("lineitem").unwrap().shards, 4);

    let reads: Vec<Query> = (0..10)
        .map(|i| Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(2, i))))
        .collect();
    let fresh = data.clone();
    let report = run_mixed(
        &engine,
        &MixedWorkloadConfig {
            table: "lineitem".into(),
            reads,
            insert_rows: fresh.insert_batch(2_000, 99),
            read_fraction: 0.5,
            ops: 600,
            threads: 4,
            commit_every: 20,
            seed: 0xBEEF,
            advise_after: None,
        },
    )
    .unwrap();
    assert_eq!(report.ops, 600);
    assert_eq!(report.per_shard_io.len(), 4);
    assert!(
        report.per_shard_io.iter().filter(|io| io.pages() > 0).count() >= 2,
        "traffic lands on multiple shards"
    );
    assert!(report.sim_makespan_ms <= report.io.elapsed_ms + 1e-9);
    assert_eq!(report.wal.commit_requests, report.wal.flushes + report.wal.absorbed);

    // Every path agrees with the full-scan oracle after the run.
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(4, 2)));
    let oracle = engine.execute_via("lineitem", AccessPath::FullScan, &q).unwrap();
    let routed = engine.execute("lineitem", &q).unwrap();
    assert_eq!(routed.run.matched, oracle.run.matched);
    assert_eq!(engine.stats().inserts, report.writes);

    // A clustered-range query prunes shards.
    let dates = data.random_shipdates(1, 5);
    let clustered = Query::single(Pred::between(
        tpch::COL_RECEIPTDATE,
        dates[0].clone(),
        dates[0].clone(),
    ));
    assert_eq!(engine.route_shards("lineitem", &clustered).unwrap().len(), 1);
}

fn two_int_schema(a: &str, b: &str) -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new(a, ValueType::Int),
        Column::new(b, ValueType::Int),
    ]))
}

/// All live rows of a table (full clustered range, excludes tombstones).
fn live_rows(engine: &Engine, table: &str) -> Vec<Row> {
    let q = Query::single(Pred::between(0, i64::MIN, i64::MAX));
    engine.execute_collect(table, &q).unwrap().rows.unwrap()
}

fn nested_loop(left: &[Row], right: &[Row], jq: &JoinQuery) -> Vec<Row> {
    let mut out: Vec<Row> = Vec::new();
    for l in left.iter().filter(|r| jq.left_filter.matches(r)) {
        for r in right.iter().filter(|r| jq.right_filter.matches(r)) {
            if l[jq.left_col] == r[jq.right_col] {
                let mut row = l.clone();
                row.extend_from_slice(r);
                out.push(row);
            }
        }
    }
    out.sort();
    out
}

/// Kill–replay for joins: kill an MVCC engine at several log offsets —
/// after a committed batch, inside an uncommitted tail — recover, and
/// join the two recovered tables. At every cut the join must equal a
/// nested-loop over the recovered tables' live rows, and no row of the
/// never-committed batch may ever appear in the output: the join sees
/// exactly the committed snapshot the recovery rebuilt.
#[test]
fn join_after_crash_sees_only_the_committed_snapshot() {
    let config = EngineConfig { shards: 2, mvcc: true, ..EngineConfig::default() };
    let engine = Engine::new(config.clone());
    engine.create_table("orders", two_int_schema("cust", "qty"), 0, 8, 16).unwrap();
    engine.create_table("cust", two_int_schema("cust", "region"), 0, 8, 16).unwrap();
    let orders: Vec<Row> = (0..240i64)
        .map(|i| vec![Value::Int(i % 30), Value::Int(i)])
        .collect();
    let custs: Vec<Row> = (0..30i64)
        .map(|c| vec![Value::Int(c), Value::Int(c % 4)])
        .collect();
    engine.load("orders", orders).unwrap();
    engine.load("cust", custs).unwrap();

    // Batch A commits; batch B never does (qty markers tell them apart).
    let session = engine.session();
    for i in 0..40i64 {
        session.insert("orders", vec![Value::Int(i % 30), Value::Int(10_000 + i)]).unwrap();
    }
    session.commit();
    for i in 0..40i64 {
        session.insert("orders", vec![Value::Int(i % 30), Value::Int(20_000 + i)]).unwrap();
    }

    let jq = JoinQuery::on(0, 0);
    let full = engine.appended_log().len() as u64;
    for frac in [0u64, 400, 800, 1000] {
        let state = engine.crash_state(Some(full * frac / 1000));
        let (recovered, _) = Engine::recover(config.clone(), &state).unwrap();
        let want = nested_loop(&live_rows(&recovered, "orders"), &live_rows(&recovered, "cust"), &jq);
        let out = recovered.join_collect("orders", "cust", &jq).unwrap();
        let mut got = out.rows.unwrap();
        got.sort();
        assert_eq!(got, want, "join equals the recovered tables at cut {frac}/1000");
        assert!(
            got.iter().all(|r| r[1] < Value::Int(20_000)),
            "no uncommitted row ever joins (cut {frac}/1000)"
        );
        if frac == 1000 {
            let committed = got.iter().filter(|r| r[1] >= Value::Int(10_000)).count();
            assert_eq!(committed, 40, "every committed insert joins after a clean cut");
        }
    }
}

/// Determinism regression for the explicit leg merge key: the same join
/// and aggregation must return byte-identical rows *in the same order*
/// on a 1-worker and an 8-worker engine — merge order is the legs'
/// merge keys, never their completion order.
#[test]
fn join_and_aggregate_order_is_stable_across_worker_counts() {
    let build = |workers: usize| {
        let engine =
            Engine::new(EngineConfig { shards: 8, workers, ..EngineConfig::default() });
        engine.create_table("l", two_int_schema("k", "v"), 0, 8, 16).unwrap();
        engine.create_table("r", two_int_schema("k", "w"), 0, 8, 16).unwrap();
        let lrows: Vec<Row> = (0..800i64)
            .map(|i| vec![Value::Int(i % 40), Value::Int(i)])
            .collect();
        let rrows: Vec<Row> = (0..300i64)
            .map(|i| vec![Value::Int(i % 50), Value::Int(i % 7)])
            .collect();
        engine.load("l", lrows).unwrap();
        engine.load("r", rrows).unwrap();
        engine.create_cm("l", "k_cm", CmSpec::single_raw(0)).unwrap();
        engine
    };
    let seq = build(1);
    let par = build(8);
    let jq = JoinQuery::on(0, 0);
    let spec = AggSpec::new(vec![1], vec![AggFunc::Count, AggFunc::Sum(0)]);
    let want_join = seq.join_collect("l", "r", &jq).unwrap().rows.unwrap();
    let want_clamp =
        seq.join_via_collect("l", "r", &jq, JoinStrategy::CmClamp(0)).unwrap().rows.unwrap();
    let want_agg = seq.aggregate("r", &Query::default(), &spec).unwrap().rows;
    // Re-run the parallel engine a few times: a completion-order merge
    // would be flaky, a merge-key merge is byte-stable.
    for round in 0..5 {
        let join = par.join_collect("l", "r", &jq).unwrap().rows.unwrap();
        assert_eq!(join, want_join, "hash join row order (round {round})");
        let clamp = par
            .join_via_collect("l", "r", &jq, JoinStrategy::CmClamp(0))
            .unwrap()
            .rows
            .unwrap();
        assert_eq!(clamp, want_clamp, "clamped join row order (round {round})");
        let agg = par.aggregate("r", &Query::default(), &spec).unwrap().rows;
        assert_eq!(agg, want_agg, "aggregate row order (round {round})");
    }
}

#[test]
fn multi_table_catalog_is_independent() {
    let (engine, _data, _sec, _cm) = tpch_engine();
    let ebay = cm_datagen::ebay::ebay(cm_datagen::ebay::EbayConfig {
        categories: 100,
        min_items: 5,
        max_items: 10,
        seed: 5,
    });
    engine
        .create_table("items", ebay.schema.clone(), cm_datagen::ebay::COL_CATID, 90, 450)
        .unwrap();
    engine.load("items", ebay.rows.clone()).unwrap();
    engine
        .create_cm("items", "price_cm", CmSpec::single_pow2(cm_datagen::ebay::COL_PRICE, 12))
        .unwrap();
    assert_eq!(engine.tables(), vec!["items".to_string(), "lineitem".to_string()]);
    let items = engine.table_info("items").unwrap();
    let lineitem = engine.table_info("lineitem").unwrap();
    assert_eq!(items.cms, 1);
    assert_eq!(lineitem.secondaries, 1);
    let out = engine
        .execute(
            "items",
            &Query::single(Pred::between(cm_datagen::ebay::COL_PRICE, 0i64, 1_000_000i64)),
        )
        .unwrap();
    assert_eq!(out.run.matched, items.rows);
}
