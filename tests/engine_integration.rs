//! Integration: the `cm-engine` facade end to end — catalog, loading,
//! cost-based access-path routing, result correctness against a full-scan
//! oracle, maintenance consistency under inserts/deletes, and concurrent
//! sessions over one engine.

use cm_core::CmSpec;
use cm_datagen::tpch::{self, tpch_lineitem, TpchConfig};
use cm_engine::{run_mixed, Engine, EngineConfig, MixedWorkloadConfig};
use cm_query::{AccessPath, Pred, Query};
use cm_storage::Value;
use std::sync::Arc;

/// A TPC-H lineitem table served by an engine: clustered on receiptdate,
/// with a B+Tree and a CM on the correlated shipdate column.
fn tpch_engine() -> (Arc<Engine>, cm_datagen::TpchData, usize, usize) {
    tpch_engine_with(30_000)
}

fn tpch_engine_with(rows: usize) -> (Arc<Engine>, cm_datagen::TpchData, usize, usize) {
    let data = tpch_lineitem(TpchConfig { rows, parts: 1_000, suppliers: 50, seed: 77 });
    let engine = Engine::new(EngineConfig::default());
    engine
        .create_table("lineitem", data.schema.clone(), tpch::COL_RECEIPTDATE, 60, 600)
        .unwrap();
    engine.load("lineitem", data.rows.clone()).unwrap();
    let sec = engine.create_btree("lineitem", "ship_idx", vec![tpch::COL_SHIPDATE]).unwrap();
    let cm = engine
        .create_cm("lineitem", "ship_cm", CmSpec::single_raw(tpch::COL_SHIPDATE))
        .unwrap();
    (engine, data, sec, cm)
}

#[test]
fn cm_and_btree_routes_match_full_scan_oracle() {
    let (engine, data, sec, cm) = tpch_engine();
    let queries = [
        Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(5, 3))),
        Query::single(Pred::eq(
            tpch::COL_SHIPDATE,
            data.rows[17][tpch::COL_SHIPDATE].clone(),
        )),
        Query::new(vec![
            Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(3, 9)),
            Pred::between(tpch::COL_QUANTITY, 1i64, 25i64),
        ]),
    ];
    for q in &queries {
        let oracle = engine
            .execute_via_collect("lineitem", AccessPath::FullScan, q)
            .unwrap();
        for path in [
            AccessPath::CmScan(cm),
            AccessPath::SecondarySorted(sec),
            AccessPath::SecondaryPipelined(sec),
        ] {
            let got = engine.execute_via_collect("lineitem", path, q).unwrap();
            assert_eq!(got.run.matched, oracle.run.matched, "{path:?} {q:?}");
            let mut a = got.rows.unwrap();
            let mut b = oracle.rows.clone().unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{path:?} returns the oracle's rows for {q:?}");
        }
    }
}

#[test]
fn cost_model_routes_by_selectivity() {
    // Large enough that a full scan (2000 pages, ~156 ms) clearly exceeds
    // a few CM bucket visits — at tiny scale every estimate collapses to
    // the scan ceiling and the planner rightly just scans.
    let (engine, data, _sec, cm) = tpch_engine_with(120_000);

    // A selective lookup (a handful of shipdates out of ~2500 distinct)
    // must leave the scan behind and go through the correlated CM.
    let selective = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(1, 4)));
    let out = engine.execute("lineitem", &selective).unwrap();
    assert_eq!(
        out.plan.path,
        AccessPath::CmScan(cm),
        "selective predicate routes to the CM; alts {:?}",
        out.plan.alternatives
    );

    // A predicate spanning the whole shipdate domain degenerates to a
    // full scan (the cost model's scan ceiling).
    let wide = Query::single(Pred::between(
        tpch::COL_SHIPDATE,
        Value::Date(0),
        Value::Date(100_000),
    ));
    let out = engine.execute("lineitem", &wide).unwrap();
    assert_eq!(
        out.plan.path,
        AccessPath::FullScan,
        "wide predicate routes to the scan; alts {:?}",
        out.plan.alternatives
    );

    let routes = engine.route_counts();
    assert_eq!(routes.cm_scan, 1);
    assert_eq!(routes.full_scan, 1);
}

#[test]
fn chosen_path_estimate_is_cheapest_candidate() {
    let (engine, data, _sec, _cm) = tpch_engine();
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(8, 1)));
    let plan = engine.explain("lineitem", &q).unwrap().primary();
    for (alt, est) in &plan.alternatives {
        assert!(
            plan.est_ms <= *est + 1e-9,
            "chosen {:?} ({} ms) beats {alt:?} ({est} ms)",
            plan.path,
            plan.est_ms
        );
    }
}

#[test]
fn inserts_and_deletes_keep_cm_routed_results_consistent() {
    let (engine, data, _sec, _cm) = tpch_engine();
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(5, 5)));

    for batch_no in 0..3u64 {
        // Insert a batch through the engine (resampled real rows, so some
        // hit the queried shipdates).
        for row in data.insert_batch(500, batch_no) {
            engine.insert("lineitem", row).unwrap();
        }
        engine.commit();

        // Delete a stripe of rows by predicate.
        if batch_no == 1 {
            let victims = engine
                .delete_where(
                    "lineitem",
                    &Query::single(Pred::eq(
                        tpch::COL_SUPPKEY,
                        Value::Int(7 + batch_no as i64),
                    )),
                )
                .unwrap();
            assert!(!victims.is_empty());
        }

        // After every batch, the CM-routed result equals the oracle.
        let oracle = engine
            .execute_via("lineitem", AccessPath::FullScan, &q)
            .unwrap();
        let routed = engine.execute("lineitem", &q).unwrap();
        assert_eq!(routed.run.matched, oracle.run.matched, "batch {batch_no}");
    }

    // The maintained CM equals one rebuilt from the surviving rows.
    engine
        .with_table("lineitem", |t| {
            let mut rebuilt = cm_core::CorrelationMap::new(
                "rebuilt",
                CmSpec::single_raw(tpch::COL_SHIPDATE),
            );
            for (rid, row) in t.heap().iter() {
                if !row[tpch::COL_SHIPDATE].is_null() {
                    rebuilt.insert(row, rid, t.dir());
                }
            }
            let maintained = t.cm(0);
            assert_eq!(maintained.num_keys(), rebuilt.num_keys());
            assert_eq!(maintained.num_pairs(), rebuilt.num_pairs());
        })
        .unwrap();
}

#[test]
fn concurrent_mixed_workload_stays_consistent() {
    let (engine, data, _sec, _cm) = tpch_engine();
    let reads: Vec<Query> = (0..10)
        .map(|i| Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(2, i))))
        .collect();
    let fresh = data.clone();
    let report = run_mixed(
        &engine,
        &MixedWorkloadConfig {
            table: "lineitem".into(),
            reads,
            insert_rows: fresh.insert_batch(2_000, 99),
            read_fraction: 0.9,
            ops: 600,
            threads: 4,
            commit_every: 20,
            seed: 0xBEEF,
            advise_after: None,
        },
    )
    .unwrap();
    assert_eq!(report.ops, 600);
    assert!(report.reads > 0 && report.writes > 0);
    assert_eq!(report.routes.total(), report.reads);

    // Every inserted row is visible and every path still agrees.
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(4, 2)));
    let oracle = engine.execute_via("lineitem", AccessPath::FullScan, &q).unwrap();
    let routed = engine.execute("lineitem", &q).unwrap();
    assert_eq!(routed.run.matched, oracle.run.matched);
    assert_eq!(engine.stats().inserts, report.writes);
}

#[test]
fn sharded_engine_mixed_workload_matches_oracle() {
    // Same TPC-H table, partitioned across 4 shards: the concurrent
    // mixed workload must stay consistent, reads must fan out only to
    // the shards they overlap, and group commit must account for every
    // session commit.
    let data = tpch_lineitem(TpchConfig { rows: 30_000, parts: 1_000, suppliers: 50, seed: 77 });
    let engine = Engine::new(EngineConfig { shards: 4, ..EngineConfig::default() });
    engine
        .create_table("lineitem", data.schema.clone(), tpch::COL_RECEIPTDATE, 60, 600)
        .unwrap();
    engine.load("lineitem", data.rows.clone()).unwrap();
    engine
        .create_cm("lineitem", "ship_cm", CmSpec::single_raw(tpch::COL_SHIPDATE))
        .unwrap();
    assert_eq!(engine.table_info("lineitem").unwrap().shards, 4);

    let reads: Vec<Query> = (0..10)
        .map(|i| Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(2, i))))
        .collect();
    let fresh = data.clone();
    let report = run_mixed(
        &engine,
        &MixedWorkloadConfig {
            table: "lineitem".into(),
            reads,
            insert_rows: fresh.insert_batch(2_000, 99),
            read_fraction: 0.5,
            ops: 600,
            threads: 4,
            commit_every: 20,
            seed: 0xBEEF,
            advise_after: None,
        },
    )
    .unwrap();
    assert_eq!(report.ops, 600);
    assert_eq!(report.per_shard_io.len(), 4);
    assert!(
        report.per_shard_io.iter().filter(|io| io.pages() > 0).count() >= 2,
        "traffic lands on multiple shards"
    );
    assert!(report.sim_makespan_ms <= report.io.elapsed_ms + 1e-9);
    assert_eq!(report.wal.commit_requests, report.wal.flushes + report.wal.absorbed);

    // Every path agrees with the full-scan oracle after the run.
    let q = Query::single(Pred::is_in(tpch::COL_SHIPDATE, data.random_shipdates(4, 2)));
    let oracle = engine.execute_via("lineitem", AccessPath::FullScan, &q).unwrap();
    let routed = engine.execute("lineitem", &q).unwrap();
    assert_eq!(routed.run.matched, oracle.run.matched);
    assert_eq!(engine.stats().inserts, report.writes);

    // A clustered-range query prunes shards.
    let dates = data.random_shipdates(1, 5);
    let clustered = Query::single(Pred::between(
        tpch::COL_RECEIPTDATE,
        dates[0].clone(),
        dates[0].clone(),
    ));
    assert_eq!(engine.route_shards("lineitem", &clustered).unwrap().len(), 1);
}

#[test]
fn multi_table_catalog_is_independent() {
    let (engine, _data, _sec, _cm) = tpch_engine();
    let ebay = cm_datagen::ebay::ebay(cm_datagen::ebay::EbayConfig {
        categories: 100,
        min_items: 5,
        max_items: 10,
        seed: 5,
    });
    engine
        .create_table("items", ebay.schema.clone(), cm_datagen::ebay::COL_CATID, 90, 450)
        .unwrap();
    engine.load("items", ebay.rows.clone()).unwrap();
    engine
        .create_cm("items", "price_cm", CmSpec::single_pow2(cm_datagen::ebay::COL_PRICE, 12))
        .unwrap();
    assert_eq!(engine.tables(), vec!["items".to_string(), "lineitem".to_string()]);
    let items = engine.table_info("items").unwrap();
    let lineitem = engine.table_info("lineitem").unwrap();
    assert_eq!(items.cms, 1);
    assert_eq!(lineitem.secondaries, 1);
    let out = engine
        .execute(
            "items",
            &Query::single(Pred::between(cm_datagen::ebay::COL_PRICE, 0i64, 1_000_000i64)),
        )
        .unwrap();
    assert_eq!(out.run.matched, items.rows);
}
