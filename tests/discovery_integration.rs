//! Integration: soft-FD discovery and the clustering designer find the
//! correlations the generated datasets were built to contain.

use cm_advisor::{discover_soft_fds, recommend_clustering, DiscoveryConfig};
use cm_datagen::{sdss, tpch};
use cm_query::{Pred, Query, Table};
use cm_storage::{DiskSim, Value};

fn cfg() -> DiscoveryConfig {
    DiscoveryConfig { sample_size: 8_000, ..DiscoveryConfig::default() }
}

#[test]
fn tpch_shipdate_receiptdate_fd_is_discovered() {
    let data = tpch::tpch_lineitem(tpch::TpchConfig {
        rows: 40_000,
        parts: 2_000,
        suppliers: 100,
        seed: 31,
    });
    let disk = DiskSim::with_defaults();
    let t = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        60,
        tpch::COL_RECEIPTDATE,
        600,
    )
    .unwrap();
    let fds = discover_soft_fds(
        &t,
        &[tpch::COL_SHIPDATE, tpch::COL_SHIPMODE, tpch::COL_QUANTITY],
        tpch::COL_RECEIPTDATE,
        &cfg(),
    );
    let ship = fds
        .iter()
        .find(|f| f.determinant == vec![tpch::COL_SHIPDATE])
        .expect("shipdate -> receiptdate discovered");
    assert!(ship.c_per_u < 8.0, "strength {}", ship.c_per_u);
    // shipmode (7 values) and quantity (50 values) do not determine
    // receiptdate.
    assert!(!fds.iter().any(|f| f.determinant == vec![tpch::COL_SHIPMODE]));
    assert!(!fds.iter().any(|f| f.determinant == vec![tpch::COL_QUANTITY]));
}

#[test]
fn tpch_partkey_suppkey_fd_is_discovered() {
    let data = tpch::tpch_lineitem(tpch::TpchConfig {
        rows: 40_000,
        parts: 2_000,
        suppliers: 100,
        seed: 32,
    });
    let disk = DiskSim::with_defaults();
    let t = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        60,
        tpch::COL_SUPPKEY,
        600,
    )
    .unwrap();
    let fds = discover_soft_fds(&t, &[tpch::COL_PARTKEY], tpch::COL_SUPPKEY, &cfg());
    let part = fds.first().expect("partkey -> suppkey discovered");
    assert!(part.c_per_u <= 4.5, "each part has at most 4 suppliers: {}", part.c_per_u);
}

#[test]
fn sdss_ra_dec_pair_fd_is_discovered() {
    // The Experiment 5 discovery: neither ra nor dec determines the sky
    // block, the pair does. Discovery runs against a coarse position
    // column (objID blocks) like the CM advisor's clustered bucketing.
    let data = sdss::sdss(sdss::SdssConfig { rows: 30_000, fields: 251, stripes: 20, seed: 33 });
    let disk = DiskSim::with_defaults();
    // Derive a block column so the dependent has workable cardinality.
    let mut rows = data.rows.clone();
    let block_col = data.schema.arity();
    let schema = {
        let mut cols = data.schema.columns().to_vec();
        cols.push(cm_storage::Column::new("objBlock", cm_storage::ValueType::Int));
        std::sync::Arc::new(cm_storage::Schema::new(cols))
    };
    for (i, row) in rows.iter_mut().enumerate() {
        row.push(Value::Int(i as i64 / 100));
    }
    let t = Table::build(&disk, schema, rows, 25, block_col, 250).unwrap();

    // Discretize ra/dec as the advisor's bucketings would.
    let fds = discover_soft_fds(
        &t,
        &[sdss::COL_FIELDID, sdss::COL_MODE],
        block_col,
        &cfg(),
    );
    let field = fds
        .iter()
        .find(|f| f.determinant == vec![sdss::COL_FIELDID])
        .expect("fieldID determines the position block");
    assert!(field.c_per_u < 3.0);
    assert!(!fds.iter().any(|f| f.determinant == vec![sdss::COL_MODE]));
}

#[test]
fn clustering_designer_picks_position_attr_for_position_workload() {
    // Large enough that a few correlated clustered-value groups beat
    // half the scan cost.
    let data = sdss::sdss(sdss::SdssConfig { rows: 80_000, fields: 251, stripes: 20, seed: 34 });
    let disk = DiskSim::with_defaults();
    let t = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        25,
        sdss::COL_OBJID,
        250,
    )
    .unwrap();
    // Workload of fieldID point lookups.
    let workload: Vec<Query> = (0..8)
        .map(|i| Query::single(Pred::eq(sdss::COL_FIELDID, (i * 30) as i64)))
        .collect();
    // Candidates: a position-family attribute vs an independent one.
    let mjd = t.heap().schema().col_index("mjd").unwrap();
    let status = t.heap().schema().col_index("status").unwrap();
    let ranked = recommend_clustering(&t, &disk.config(), &workload, &[mjd, status], &cfg());
    assert_eq!(ranked[0].col, mjd, "position attr wins: {ranked:?}");
    assert!(ranked[0].workload_ms < ranked[1].workload_ms);
    assert!(
        ranked[0].accelerated >= ranked[1].accelerated,
        "correlated clustering accelerates at least as many queries: {ranked:?}"
    );
    assert!(ranked[0].accelerated >= 6, "{ranked:?}");
}
