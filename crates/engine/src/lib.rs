//! # cm-engine
//!
//! A concurrent database-engine facade over the Correlation Maps (VLDB
//! 2009) reproduction. The lower crates provide the parts — simulated
//! disk and buffer pool (`cm-storage`), B+Trees (`cm-index`), CMs
//! (`cm-core`), access paths and cost-based planning (`cm-query` /
//! `cm-cost`) — but until this crate existed, every experiment hand-wired
//! them and picked its access path by hand. [`Engine`] assembles them
//! into one runnable system:
//!
//! * a **catalog** of named tables, each bundling its clustered heap,
//!   sparse clustered index, bucket directory, secondary B+Trees, and
//!   CMs, guarded by a per-table `RwLock` so readers run concurrently and
//!   writers serialize per table, not per engine;
//! * a shared [`cm_storage::DiskSim`] + [`cm_storage::BufferPool`] and a
//!   single engine [`cm_storage::Wal`], so maintenance pressure and
//!   query traffic interact exactly as in the paper's Experiment 3;
//! * **cost-based routing**: every [`Engine::execute`] call consults the
//!   paper's §3–§6 cost model via [`cm_query::Planner`] and routes the
//!   query to the cheapest of the four physical access paths (full scan,
//!   pipelined or sorted secondary B+Tree scan, CM-guided scan) — the
//!   integration the paper argues for in §8;
//! * a **session layer** ([`Session`]): cheap per-connection handles over
//!   an `Arc<Engine>` with per-session statistics and an optional
//!   cold-read mode for cache-flushed experiments;
//! * a **mixed-workload driver** ([`workload`]): multi-threaded 90/10
//!   read/write traffic through sessions, reporting throughput, simulated
//!   I/O, and per-path routing counts.
//!
//! ```
//! use cm_engine::{Engine, EngineConfig};
//! use cm_core::CmSpec;
//! use cm_query::{Pred, Query};
//! use cm_storage::{Column, Schema, Value, ValueType};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let schema = Arc::new(Schema::new(vec![
//!     Column::new("state", ValueType::Str),
//!     Column::new("city", ValueType::Str),
//! ]));
//! engine.create_table("people", schema, 0, 64, 128).unwrap();
//! engine.load("people", vec![vec![Value::str("MA"), Value::str("boston")]]).unwrap();
//! engine.create_cm("people", "city_cm", CmSpec::single_raw(1)).unwrap();
//! let out = engine
//!     .execute("people", &cm_query::Query::single(Pred::eq(1, "boston")))
//!     .unwrap();
//! assert_eq!(out.run.matched, 1);
//! let _ = Query::default();
//! ```

mod engine;
mod error;
mod session;
pub mod workload;

pub use engine::{Engine, EngineConfig, EngineStats, QueryOutcome, RouteCounts, TableInfo};
pub use error::EngineError;
pub use session::{Session, SessionStats};
pub use workload::{run_mixed, MixedWorkloadConfig, WorkloadReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
