//! # cm-engine
//!
//! A concurrent database-engine facade over the Correlation Maps (VLDB
//! 2009) reproduction. The lower crates provide the parts — simulated
//! disk and buffer pool (`cm-storage`), B+Trees (`cm-index`), CMs
//! (`cm-core`), access paths and cost-based planning (`cm-query` /
//! `cm-cost`) — but until this crate existed, every experiment hand-wired
//! them and picked its access path by hand. [`Engine`] assembles them
//! into one runnable system:
//!
//! * a **catalog** of named tables, each range-partitioned on its
//!   clustered attribute across N **storage shards** — every partition
//!   bundles its clustered heap, sparse clustered index, bucket
//!   directory, secondary B+Trees, and CMs behind its own `RwLock`, so
//!   readers run concurrently and writers serialize per *shard*, not per
//!   engine or even per table;
//! * one [`cm_storage::StorageShard`] (simulated disk + buffer pool) per
//!   shard, so concurrent scans on different shards stop interleaving a
//!   single disk head, plus a dedicated log disk behind a
//!   [`cm_storage::GroupCommitWal`] whose leader-elected batched flushes
//!   make concurrent commits share tail writes;
//! * a **range router** ([`RangeRouter`]): point predicates on the
//!   clustered column reach exactly one shard, ranges fan out only to
//!   the shards they overlap, and each shard executes the query
//!   intersected with its ownership range
//!   ([`cm_query::restrict_to_shard`]);
//! * a **two-phase executor** ([`Executor`]): queries split into a plan
//!   phase (a [`cm_query::QueryPlan`] of per-shard legs, each carrying
//!   its restricted predicate and cost-chosen access path) and an
//!   execute phase that fans the legs out on a shared worker pool
//!   (`EngineConfig::workers`), so a multi-shard query's latency
//!   approaches its longest leg instead of the per-shard sum;
//! * **cost-based routing**: every [`Engine::execute`] call consults the
//!   paper's §3–§6 cost model via [`cm_query::Planner`] and routes the
//!   query to the cheapest of the four physical access paths (full scan,
//!   pipelined or sorted secondary B+Tree scan, CM-guided scan) — the
//!   integration the paper argues for in §8;
//! * **multi-table execution**: partitioned hash joins with a
//!   cost-picked *correlation-clamped* probe ([`Engine::join`] — when the
//!   probe table carries a CM on the join column, the build keys clamp
//!   the probe to co-clustered page runs) and mergeable grouped
//!   aggregation / DISTINCT / LIMIT ([`Engine::aggregate`],
//!   [`Engine::select_distinct`]), both fanned out per shard and merged
//!   in explicit merge-key order;
//! * a **session layer** ([`Session`]): cheap per-connection handles over
//!   an `Arc<Engine>` with per-session statistics and an optional
//!   cold-read mode for cache-flushed experiments;
//! * a **mixed-workload driver** ([`workload`]): multi-threaded 90/10
//!   read/write traffic through sessions, reporting throughput, simulated
//!   I/O, and per-path routing counts;
//! * **MVCC snapshot reads** (`EngineConfig::mvcc`): heap versions carry
//!   begin/end timestamps, every query pins a commit-time snapshot and
//!   reads under shard *read* locks (writers stop blocking readers —
//!   categorical deletes scan without the write lock, and
//!   [`Engine::apply_design`] rebuilds structures online behind a brief
//!   swap), while [`Engine::vacuum`] — on demand or every
//!   `EngineConfig::gc_every` deletes — reclaims versions no live
//!   snapshot can see;
//! * a **workload-aware design-advisor loop**: the engine records a
//!   per-table [`WorkloadProfile`] online (per-column read traffic +
//!   write count), [`Engine::advise_design`] enumerates mixed
//!   `{B+Tree, CM, none}` structure sets per column and prices each
//!   with read costs *plus* per-write maintenance, and
//!   [`Engine::apply_design`] swaps the table's structure set per shard
//!   atomically (the driver can re-plan mid-run via
//!   [`MixedWorkloadConfig::advise_after`]).
//!
//! The full loop, runnable:
//!
//! ```
//! use cm_engine::{Engine, EngineConfig};
//! use cm_query::{Pred, Query};
//! use cm_storage::{Column, Schema, Value, ValueType};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let schema = Arc::new(Schema::new(vec![
//!     Column::new("catid", ValueType::Int),
//!     Column::new("price", ValueType::Int),
//! ]));
//! engine.create_table("items", schema, 0, 20, 100).unwrap();
//! let rows = (0..4000i64)
//!     .map(|i| vec![Value::Int(i % 80), Value::Int((i % 80) * 100 + i % 100)])
//!     .collect();
//! engine.load("items", rows).unwrap();
//!
//! // Read-mostly traffic on price builds the profile...
//! for i in 0..40i64 {
//!     engine.execute("items", &Query::single(Pred::eq(1, (i % 8) * 321))).unwrap();
//! }
//! engine.insert("items", vec![Value::Int(1), Value::Int(1)]).unwrap();
//!
//! // ...the advisor picks a structure for the hot column, the engine
//! // applies it, and the planner routes through it from then on.
//! let rec = engine.advise_design("items").unwrap();
//! assert!(rec.best.columns.iter().any(|c| c.col == 1 && c.structure.is_some()));
//! let applied = engine.apply_design("items", &rec.best).unwrap();
//! assert_eq!(applied.btrees + applied.cms, rec.best.btrees() + rec.best.cms());
//! ```
//!
//! Basic catalog + cost-routed execution:
//!
//! ```
//! use cm_engine::{Engine, EngineConfig};
//! use cm_core::CmSpec;
//! use cm_query::{Pred, Query};
//! use cm_storage::{Column, Schema, Value, ValueType};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let schema = Arc::new(Schema::new(vec![
//!     Column::new("state", ValueType::Str),
//!     Column::new("city", ValueType::Str),
//! ]));
//! engine.create_table("people", schema, 0, 64, 128).unwrap();
//! engine.load("people", vec![vec![Value::str("MA"), Value::str("boston")]]).unwrap();
//! engine.create_cm("people", "city_cm", CmSpec::single_raw(1)).unwrap();
//! let out = engine
//!     .execute("people", &cm_query::Query::single(Pred::eq(1, "boston")))
//!     .unwrap();
//! assert_eq!(out.run.matched, 1);
//! let _ = Query::default();
//! ```

#![warn(missing_docs)]

mod agg;
mod engine;
mod error;
pub mod executor;
mod join;
pub mod recovery;
mod session;
pub mod shard;
pub mod workload;

pub use agg::AggOutcome;
pub use engine::{
    AppliedDesign, Engine, EngineConfig, EngineStats, LegOutcome, QueryOutcome, RouteCounts,
    TableInfo,
};
pub use join::JoinOutcome;
pub use error::EngineError;
pub use executor::{scheduled_makespan, Executor};
pub use recovery::{CrashState, DurableImage, RecoveryReport, ShardImage, TableImage};
pub use session::{Session, SessionStats};
pub use shard::{partition_rows, RangeRouter};
pub use workload::{run_mixed, AdviceOutcome, LatencyStats, MixedWorkloadConfig, WorkloadReport};

// The backend knob, re-exported so engine callers can pick the device
// ([`EngineConfig::backend`]) without naming cm-storage directly.
pub use cm_storage::Backend;

// The multi-table vocabulary, re-exported so engine callers can build
// joins and aggregations without naming cm-query directly.
pub use cm_query::{AggFunc, AggSpec, JoinQuery, JoinSide, JoinStrategy};

// The workload-aware advisor vocabulary, re-exported so engine callers
// can advise/apply without naming cm-advisor directly.
pub use cm_advisor::{
    ColumnDesign, DesignSet, Structure, WorkloadAdvisorConfig, WorkloadProfile,
    WorkloadRecommendation,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
