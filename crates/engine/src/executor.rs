//! Shared worker pool for intra-query parallelism.
//!
//! A multi-shard query decomposes into independent per-shard legs, each
//! reading its own [`cm_storage::StorageShard`] (disk + pool). The
//! [`Executor`] runs a batch of such legs on up to `workers` scoped
//! threads: tasks are claimed from a shared counter (dynamic load
//! balancing — a cheap point-lookup leg doesn't hold up a worker while a
//! wide range leg runs elsewhere), results come back in submission
//! order, and a panicking task propagates to the caller once every
//! worker has drained (never a hang, never a silently dropped leg).
//!
//! Scoped threads keep the design borrow-friendly: tasks may capture
//! references to engine state (table partitions behind their locks,
//! shard backends) without `Arc`-wrapping each leg.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width worker pool. Construction is free of OS resources —
/// threads are spawned per [`Executor::run`] call inside a scope, so an
/// idle engine holds no parked threads.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// An executor running at most `workers` tasks concurrently
    /// (clamped to at least 1; 1 means strictly sequential execution on
    /// the calling thread).
    pub fn new(workers: usize) -> Self {
        Executor { workers: workers.max(1) }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run every task, returning their results in submission order.
    ///
    /// With one worker or one task this degrades to a plain sequential
    /// loop on the calling thread — no spawn cost for the single-shard /
    /// single-worker fast path. Otherwise `min(workers, tasks)` scoped
    /// threads claim tasks from a shared counter until none remain.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is propagated to the caller after all
    /// workers have joined (via [`std::thread::scope`]'s panic
    /// propagation); remaining claimed tasks on other workers still run.
    pub fn run<F, R>(&self, tasks: Vec<F>) -> Vec<R>
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let slots: Vec<Mutex<Option<F>>> =
            tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = slots[i].lock().take().expect("each slot drained once");
                    let out = task();
                    *results[i].lock() = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every task ran to completion"))
            .collect()
    }
}

/// The simulated wall-clock of running legs with the given durations on
/// `workers` parallel spindles/threads: greedy list scheduling in
/// submission order (each leg goes to the worker that frees up first).
///
/// With one worker this is the serial sum — the pre-fan-out latency —
/// and with `workers >= legs` it is the longest single leg. The engine
/// reports this alongside the serial sum so a latency benchmark charges
/// the parallel fan-out honestly: four balanced legs on two workers cost
/// two legs' time, not one leg's.
pub fn scheduled_makespan(leg_ms: &[f64], workers: usize) -> f64 {
    if workers <= 1 {
        return leg_ms.iter().sum();
    }
    let lanes = workers.min(leg_ms.len()).max(1);
    let mut finish = vec![0.0f64; lanes];
    for &t in leg_ms {
        let earliest = finish
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one lane");
        finish[earliest] += t;
    }
    finish.iter().fold(0.0, |a, &b| a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_submission_order() {
        let ex = Executor::new(4);
        let tasks: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // Stagger so late submissions often finish first.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((32 - i) % 7) as u64 * 50,
                    ));
                    i * 10
                }
            })
            .collect();
        let got = ex.run(tasks);
        assert_eq!(got, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_single_task_run_inline() {
        // Sequential fallback: the task observes the calling thread.
        let caller = std::thread::current().id();
        let ex = Executor::new(1);
        let ids = ex.run(vec![|| std::thread::current().id(), || std::thread::current().id()]);
        assert!(ids.iter().all(|&id| id == caller));
        let ex = Executor::new(8);
        let ids = ex.run(vec![|| std::thread::current().id()]);
        assert_eq!(ids, vec![caller]);
        let empty: Vec<i32> = ex.run(Vec::<fn() -> i32>::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn concurrency_never_exceeds_worker_count() {
        let live = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        let ex = Executor::new(3);
        let tasks: Vec<_> = (0..24)
            .map(|_| {
                let live = &live;
                let peak = &peak;
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        ex.run(tasks);
        let p = peak.load(Ordering::SeqCst);
        assert!((1..=3).contains(&p), "peak concurrency {p} within 1..=3");
    }

    #[test]
    fn a_panicking_task_propagates_instead_of_hanging() {
        let ex = Executor::new(4);
        let completed = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8)
                .map(|i| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 3 {
                            panic!("leg {i} exploded");
                        }
                        completed.fetch_add(1, Ordering::SeqCst)
                    }) as Box<dyn FnOnce() -> u64 + Send>
                })
                .collect();
            ex.run(tasks)
        }));
        assert!(result.is_err(), "the leg's panic reached the caller");
        // The pool drained rather than deadlocking: the other legs ran.
        assert_eq!(completed.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn makespan_schedules_greedily() {
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        // One worker: serial sum.
        assert!(close(scheduled_makespan(&[3.0, 1.0, 2.0], 1), 6.0));
        // Enough workers: longest leg.
        assert!(close(scheduled_makespan(&[3.0, 1.0, 2.0], 8), 3.0));
        // Two workers, list order: {3}, {1,2} -> 3.
        assert!(close(scheduled_makespan(&[3.0, 1.0, 2.0], 2), 3.0));
        // Imbalance shows: {5}, {1,1} -> 5.
        assert!(close(scheduled_makespan(&[5.0, 1.0, 1.0], 2), 5.0));
        // Degenerate inputs.
        assert!(close(scheduled_makespan(&[], 4), 0.0));
        assert!(close(scheduled_makespan(&[2.5], 4), 2.5));
    }
}
