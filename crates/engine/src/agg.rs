//! Grouped aggregation, DISTINCT, and LIMIT through the engine.
//!
//! Aggregation reuses the whole single-table pipeline — routing,
//! per-shard cost-based access paths, MVCC snapshots, the fan-out
//! executor — but folds each leg's matching rows into a per-leg
//! [`AggState`] instead of buffering them. Leg states merge in explicit
//! merge-key order (mergeability is `AggState`'s contract), so grouped
//! results are identical on 1 or N workers, and `LIMIT` applies only
//! after the merge — a limited result is always a stable prefix of the
//! key-sorted unlimited one.

use crate::engine::{Engine, LegOutcome};
use crate::error::EngineError;
use crate::executor::scheduled_makespan;
use crate::Result;
use cm_query::{AggSpec, AggState, Query, RunResult, ShardLeg};
use cm_storage::{IoStats, Row};
use std::sync::atomic::Ordering;

/// Outcome of one grouped-aggregation (or DISTINCT) execution.
#[derive(Debug, Clone)]
pub struct AggOutcome {
    /// Result rows: group-key columns then aggregate values, ascending
    /// by group key, truncated to the spec's `limit`.
    pub rows: Vec<Row>,
    /// Groups before the `limit` truncation.
    pub groups: usize,
    /// Measured (simulated) execution, summed across the legs.
    pub run: RunResult,
    /// Simulated wall-clock of the fan-out on the engine's workers.
    pub parallel_ms: f64,
    /// Per-leg choices and timings, ascending by merge key.
    pub legs: Vec<LegOutcome>,
}

impl Engine {
    /// Execute `SELECT group_by, aggs FROM table WHERE q GROUP BY
    /// group_by ORDER BY group_by LIMIT limit`, folding per-shard legs
    /// and merging their states deterministically.
    ///
    /// ```
    /// use cm_engine::{Engine, EngineConfig};
    /// use cm_query::{AggFunc, AggSpec, Query};
    /// use cm_storage::{Column, Schema, Value, ValueType};
    /// use std::sync::Arc;
    ///
    /// let engine = Engine::new(EngineConfig::default());
    /// let schema = Arc::new(Schema::new(vec![
    ///     Column::new("id", ValueType::Int),
    ///     Column::new("cat", ValueType::Int),
    /// ]));
    /// engine.create_table("items", schema, 0, 32, 64).unwrap();
    /// let rows = (0..100i64).map(|i| vec![Value::Int(i), Value::Int(i % 4)]).collect();
    /// engine.load("items", rows).unwrap();
    ///
    /// // SELECT cat, COUNT(*) FROM items GROUP BY cat
    /// let spec = AggSpec::new(vec![1], vec![AggFunc::Count]);
    /// let out = engine.aggregate("items", &Query::default(), &spec).unwrap();
    /// assert_eq!(out.rows.len(), 4);
    /// assert_eq!(out.rows[0], vec![Value::Int(0), Value::Int(25)]);
    /// ```
    pub fn aggregate(&self, table: &str, q: &Query, spec: &AggSpec) -> Result<AggOutcome> {
        let entry = self.entry(table)?;
        let arity = entry.schema.arity();
        for &col in &spec.group_by {
            if col >= arity {
                return Err(EngineError::BadColumn { table: table.into(), col });
            }
        }
        for f in &spec.aggs {
            if let Some(col) = f.col() {
                if col >= arity {
                    return Err(EngineError::BadColumn { table: table.into(), col });
                }
            }
        }

        let waited = std::time::Instant::now();
        let loaded = entry.loaded.read();
        self.note_read_stall(waited.elapsed());
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        self.profile_read(&entry, lt, q);
        let snap = self.mvcc.as_ref().map(|mv| mv.begin());
        let snap_ref = snap.as_ref();

        let plan = self.plan_query(lt, q, None);
        let fold_leg = |leg: &ShardLeg| -> Result<(RunResult, AggState)> {
            let mut state = AggState::new(spec);
            let r = self.run_leg_visit(lt, leg, false, snap_ref, |row| state.observe(row))?;
            Ok((r, state))
        };
        let leg_results: Vec<Result<(RunResult, AggState)>> =
            if plan.legs.len() <= 1 || self.executor.workers() == 1 {
                plan.legs.iter().map(&fold_leg).collect()
            } else {
                let fl = &fold_leg;
                self.executor.run(plan.legs.iter().map(|leg| move || fl(leg)).collect())
            };

        let mut run = RunResult { matched: 0, examined: 0, io: IoStats::default() };
        let mut legs: Vec<LegOutcome> = Vec::with_capacity(plan.legs.len());
        let mut leg_ms: Vec<f64> = Vec::with_capacity(plan.legs.len());
        let mut merged = AggState::new(spec);
        let mut paired: Vec<(ShardLeg, Result<(RunResult, AggState)>)> =
            plan.legs.into_iter().zip(leg_results).collect();
        paired.sort_by_key(|(leg, _)| leg.merge_key());
        for (leg, res) in paired {
            let (r, state) = res?;
            merged.merge(&state);
            run.matched += r.matched;
            run.examined += r.examined;
            run.io.add(&r.io);
            leg_ms.push(r.io.elapsed_ms);
            self.note_route(leg.choice.path);
            legs.push(LegOutcome { shard: leg.shard, choice: leg.choice, run: r });
        }
        let parallel_ms = scheduled_makespan(&leg_ms, self.executor.workers());
        self.queries.fetch_add(1, Ordering::Relaxed);
        // A global aggregation yields its one row even over zero
        // matches, so it always has exactly one group.
        let groups = if spec.group_by.is_empty() { 1 } else { merged.num_groups() };
        Ok(AggOutcome { rows: merged.finish(), groups, run, parallel_ms, legs })
    }

    /// `SELECT DISTINCT cols FROM table WHERE q [LIMIT n]`: grouped
    /// aggregation with no aggregates — the key-sorted group keys are
    /// the result.
    ///
    /// ```
    /// use cm_engine::{Engine, EngineConfig};
    /// use cm_query::Query;
    /// use cm_storage::{Column, Schema, Value, ValueType};
    /// use std::sync::Arc;
    ///
    /// let engine = Engine::new(EngineConfig::default());
    /// let schema = Arc::new(Schema::new(vec![
    ///     Column::new("id", ValueType::Int),
    ///     Column::new("cat", ValueType::Int),
    /// ]));
    /// engine.create_table("items", schema, 0, 32, 64).unwrap();
    /// let rows = (0..100i64).map(|i| vec![Value::Int(i), Value::Int(i % 4)]).collect();
    /// engine.load("items", rows).unwrap();
    ///
    /// let out = engine.select_distinct("items", &Query::default(), &[1], Some(2)).unwrap();
    /// assert_eq!(out.rows, vec![vec![Value::Int(0)], vec![Value::Int(1)]]);
    /// assert_eq!(out.groups, 4, "limit truncates output, not the group count");
    /// ```
    pub fn select_distinct(
        &self,
        table: &str,
        q: &Query,
        cols: &[usize],
        limit: Option<usize>,
    ) -> Result<AggOutcome> {
        let mut spec = AggSpec::distinct(cols.to_vec());
        if let Some(n) = limit {
            spec = spec.with_limit(n);
        }
        self.aggregate(table, q, &spec)
    }
}
