//! Engine error type.

use cm_query::QueryError;
use cm_storage::StorageError;
use std::fmt;

/// Errors surfaced by the engine facade.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A storage-layer failure (bad row, out-of-range RID, ...).
    Storage(StorageError),
    /// A query-execution failure (e.g. a forced secondary path with no
    /// predicate on the index's first key column).
    Query(QueryError),
    /// No table with this name in the catalog.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// The table was created but `load` has not run yet.
    NotLoaded(String),
    /// `load` was already called for this table (it bulk-builds the
    /// clustered heap once; use `insert` afterwards).
    AlreadyLoaded(String),
    /// A column index is out of range for the table's schema.
    BadColumn {
        /// Table name.
        table: String,
        /// Offending column position.
        col: usize,
    },
    /// A RID's shard tag does not address a shard of this table.
    BadRid {
        /// Table name.
        table: String,
        /// The offending RID (or shard index).
        rid: u64,
    },
    /// The operation requires a single-shard table but this table is
    /// partitioned (use the per-shard accessors instead).
    ShardedTable(String),
    /// The configuration asks for more storage shards than a RID's shard
    /// tag can address (the high bits of [`cm_storage::Rid`]).
    TooManyShards {
        /// Shards the configuration requested.
        requested: usize,
        /// The addressable maximum ([`cm_storage::Rid::MAX_SHARDS`]).
        max: usize,
    },
    /// A forced correlation-clamped join probe named a CM the probe
    /// table does not have, or one whose key does not include the join
    /// column.
    NoClampCm {
        /// Probe-side table name.
        table: String,
        /// The join (probe) column the clamp needed.
        col: usize,
    },
    /// Crash recovery could not reconstruct a consistent state from the
    /// checkpoint image and surviving log prefix.
    Recovery(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            EngineError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            EngineError::NotLoaded(t) => write!(f, "table {t:?} has not been loaded"),
            EngineError::AlreadyLoaded(t) => write!(f, "table {t:?} is already loaded"),
            EngineError::BadColumn { table, col } => {
                write!(f, "column {col} out of range for table {table:?}")
            }
            EngineError::BadRid { table, rid } => {
                write!(f, "rid {rid} addresses no shard of table {table:?}")
            }
            EngineError::ShardedTable(t) => {
                write!(f, "table {t:?} is sharded; use a per-shard accessor")
            }
            EngineError::TooManyShards { requested, max } => {
                write!(f, "{requested} shards exceed the RID-addressable maximum of {max}")
            }
            EngineError::NoClampCm { table, col } => {
                write!(f, "table {table:?} has no CM covering join column {col} to clamp with")
            }
            EngineError::Recovery(why) => write!(f, "recovery failed: {why}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}
