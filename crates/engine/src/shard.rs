//! Clustered-key range routing across storage shards.
//!
//! A sharded table is partitioned into contiguous clustered-key ranges,
//! one per storage shard. The [`RangeRouter`] is the routing table the
//! engine derives from the clustered attribute at load time: split keys
//! mark where each shard's ownership begins, so point predicates route
//! to exactly one shard, range predicates fan out only to the shards
//! they overlap, and unpredicated queries fan out to all of them.

use cm_query::{PredOp, Query, ShardRange};
use cm_storage::{Row, Value};

/// Routing table: `splits[i]` is the smallest clustered key shard `i+1`
/// owns; shard 0 owns everything below `splits[0]` and the last shard
/// everything from `splits.last()` up.
#[derive(Debug, Clone)]
pub struct RangeRouter {
    col: usize,
    splits: Vec<Value>,
}

impl RangeRouter {
    /// A router over `splits.len() + 1` shards, partitioning on `col`.
    /// `splits` must be strictly increasing.
    pub fn new(col: usize, splits: Vec<Value>) -> Self {
        debug_assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "split keys are strictly increasing"
        );
        RangeRouter { col, splits }
    }

    /// The clustered column routing keys come from.
    pub fn col(&self) -> usize {
        self.col
    }

    /// The split keys (shard `i+1`'s smallest owned key) — enough to
    /// reconstruct the router, e.g. from a checkpoint image.
    pub fn splits(&self) -> &[Value] {
        &self.splits
    }

    /// Number of shards this router addresses.
    pub fn num_shards(&self) -> usize {
        self.splits.len() + 1
    }

    /// The shard owning key `v`. Always `< num_shards()`: the partition
    /// point over the splits is at most `splits.len()`, and the clamp
    /// pins that invariant here so write paths can index their partition
    /// vector directly instead of re-clamping at every call site.
    pub fn shard_of_key(&self, v: &Value) -> usize {
        self.splits.partition_point(|s| s <= v).min(self.num_shards() - 1)
    }

    /// The shard owning `row` (routes by its clustered column); like
    /// [`RangeRouter::shard_of_key`], always a valid partition index.
    pub fn shard_of_row(&self, row: &Row) -> usize {
        self.shard_of_key(&row[self.col])
    }

    /// The ownership interval of shard `i`.
    pub fn range_of(&self, i: usize) -> ShardRange {
        debug_assert!(i < self.num_shards());
        ShardRange {
            lo: i.checked_sub(1).map(|p| self.splits[p].clone()),
            hi: self.splits.get(i).cloned(),
        }
    }

    /// The shards `q` must fan out to, in ascending order: the owners of
    /// the clustered-column predicate's keys, or every shard when the
    /// query does not restrict the clustered column.
    pub fn shards_for(&self, q: &Query) -> Vec<usize> {
        let Some(pred) = q.pred_on(self.col) else {
            return (0..self.num_shards()).collect();
        };
        match &pred.op {
            PredOp::Eq(v) => vec![self.shard_of_key(v)],
            PredOp::In(vs) => {
                let mut ids: Vec<usize> = vs.iter().map(|v| self.shard_of_key(v)).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            }
            PredOp::Between(lo, hi) => {
                if hi < lo {
                    return Vec::new();
                }
                (self.shard_of_key(lo)..=self.shard_of_key(hi)).collect()
            }
        }
    }
}

/// Partition `rows` into at most `shards` contiguous clustered-key
/// chunks of near-equal size, never splitting one key value across two
/// chunks (so point queries stay single-shard). Returns the chunks plus
/// the split keys (each chunk's smallest key, from the second chunk on)
/// for [`RangeRouter::new`]. Fewer chunks come back when the data has
/// too few distinct keys to fill every shard.
pub fn partition_rows(mut rows: Vec<Row>, col: usize, shards: usize) -> (Vec<Vec<Row>>, Vec<Value>) {
    rows.sort_by(|a, b| a[col].cmp(&b[col]));
    if shards <= 1 || rows.len() < 2 {
        return (vec![rows], Vec::new());
    }
    let target = rows.len().div_ceil(shards);
    let mut chunks: Vec<Vec<Row>> = Vec::with_capacity(shards);
    let mut splits: Vec<Value> = Vec::with_capacity(shards - 1);
    let mut rest = rows;
    while chunks.len() + 1 < shards && rest.len() > target {
        // Advance the cut past ties so one key never straddles a split.
        let mut cut = target;
        while cut < rest.len() && rest[cut][col] == rest[cut - 1][col] {
            cut += 1;
        }
        if cut >= rest.len() {
            break;
        }
        let tail = rest.split_off(cut);
        chunks.push(std::mem::replace(&mut rest, tail));
        splits.push(rest[0][col].clone());
    }
    chunks.push(rest);
    (chunks, splits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_query::Pred;

    fn router() -> RangeRouter {
        RangeRouter::new(0, vec![Value::Int(10), Value::Int(20), Value::Int(30)])
    }

    #[test]
    fn keys_route_to_owning_shard() {
        let r = router();
        assert_eq!(r.num_shards(), 4);
        assert_eq!(r.shard_of_key(&Value::Int(-5)), 0);
        assert_eq!(r.shard_of_key(&Value::Int(9)), 0);
        assert_eq!(r.shard_of_key(&Value::Int(10)), 1, "split key belongs to the right");
        assert_eq!(r.shard_of_key(&Value::Int(29)), 2);
        assert_eq!(r.shard_of_key(&Value::Int(1000)), 3);
    }

    #[test]
    fn ranges_tile_the_key_space() {
        let r = router();
        assert_eq!(r.range_of(0), ShardRange { lo: None, hi: Some(Value::Int(10)) });
        assert_eq!(
            r.range_of(2),
            ShardRange { lo: Some(Value::Int(20)), hi: Some(Value::Int(30)) }
        );
        assert_eq!(r.range_of(3), ShardRange { lo: Some(Value::Int(30)), hi: None });
        for i in 0..r.num_shards() {
            let range = r.range_of(i);
            for k in -5i64..45 {
                let v = Value::Int(k);
                assert_eq!(range.contains(&v), r.shard_of_key(&v) == i, "key {k} shard {i}");
            }
        }
    }

    #[test]
    fn point_and_range_fanout() {
        let r = router();
        assert_eq!(r.shards_for(&Query::single(Pred::eq(0, 15i64))), vec![1]);
        assert_eq!(
            r.shards_for(&Query::single(Pred::is_in(
                0,
                vec![Value::Int(5), Value::Int(35), Value::Int(6)],
            ))),
            vec![0, 3]
        );
        assert_eq!(
            r.shards_for(&Query::single(Pred::between(0, 12i64, 22i64))),
            vec![1, 2]
        );
        assert_eq!(
            r.shards_for(&Query::single(Pred::eq(1, 7i64))),
            vec![0, 1, 2, 3],
            "no clustered predicate: all shards"
        );
        assert!(r.shards_for(&Query::single(Pred::between(0, 9i64, 2i64))).is_empty());
    }

    #[test]
    fn partitioning_balances_without_splitting_keys() {
        let rows: Vec<Row> = (0..1000i64).map(|i| vec![Value::Int(i % 50)]).collect();
        let (chunks, splits) = partition_rows(rows, 0, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(splits.len(), 3);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 1000);
        for chunk in &chunks {
            assert!((200..=300).contains(&chunk.len()), "near-equal: {}", chunk.len());
        }
        // No key appears in two chunks, and splits are each chunk's min.
        for (i, s) in splits.iter().enumerate() {
            assert_eq!(&chunks[i + 1][0][0], s);
            assert!(chunks[i].last().unwrap()[0] < *s);
        }
    }

    #[test]
    fn partitioning_degenerates_gracefully() {
        // One distinct key: everything lands in one chunk.
        let rows: Vec<Row> = (0..100).map(|_| vec![Value::Int(7)]).collect();
        let (chunks, splits) = partition_rows(rows, 0, 4);
        assert_eq!(chunks.len(), 1);
        assert!(splits.is_empty());
        // Fewer rows than shards.
        let rows: Vec<Row> = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let (chunks, _) = partition_rows(rows, 0, 8);
        assert!(chunks.len() <= 2);
        // Zero rows.
        let (chunks, splits) = partition_rows(Vec::new(), 0, 4);
        assert_eq!(chunks.len(), 1);
        assert!(splits.is_empty());
    }

    #[test]
    fn shard_of_key_is_always_a_valid_partition_index() {
        // Keys far beyond the last split (append-heavy tails) and far
        // below the first both land on real shards — no caller-side
        // clamp needed.
        let r = router();
        assert_eq!(r.shard_of_key(&Value::Int(i64::MAX)), r.num_shards() - 1);
        assert_eq!(r.shard_of_key(&Value::Int(i64::MIN)), 0);
        let single = RangeRouter::new(0, Vec::new());
        assert_eq!(single.num_shards(), 1);
        assert_eq!(single.shard_of_key(&Value::Int(123)), 0);
    }

    #[test]
    fn partitioning_preserves_rows_and_order() {
        let rows: Vec<Row> = (0..300i64).rev().map(|i| vec![Value::Int(i / 3)]).collect();
        let (chunks, splits) = partition_rows(rows, 0, 3);
        let flat: Vec<i64> = chunks
            .iter()
            .flatten()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        assert_eq!(flat, sorted, "concatenated chunks are globally sorted");
        assert_eq!(flat.len(), 300);
        let router = RangeRouter::new(0, splits);
        for (i, chunk) in chunks.iter().enumerate() {
            for row in chunk {
                assert_eq!(router.shard_of_row(row), i, "router agrees with the split");
            }
        }
    }
}
