//! Mixed read/write workload driver.
//!
//! Drives concurrent sessions against one engine table with a configured
//! read fraction (e.g. 90/10), reproducing the *system-level* shape of
//! the paper's Experiment 3: query traffic and index-maintenance traffic
//! compete for the same buffer pool and disk, so every extra secondary
//! B+Tree taxes both sides while CMs stay memory-resident.

use crate::engine::{Engine, RouteCounts};
use crate::Result;
use cm_query::Query;
use cm_storage::{IoStats, PoolStats, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Mixed-workload parameters.
#[derive(Debug, Clone)]
pub struct MixedWorkloadConfig {
    /// Target table.
    pub table: String,
    /// Pool of read queries; the driver draws from it uniformly.
    pub reads: Vec<Query>,
    /// Rows available for insertion; each is inserted at most once.
    pub insert_rows: Vec<Row>,
    /// Fraction of operations that are reads (e.g. `0.9`).
    pub read_fraction: f64,
    /// Total operations across all threads.
    pub ops: usize,
    /// Concurrent sessions.
    pub threads: usize,
    /// Operations between WAL group commits on each writer.
    pub commit_every: usize,
    /// Workload RNG seed (deterministic op mix per thread).
    pub seed: u64,
}

/// What the driver measured.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Operations completed (reads + writes).
    pub ops: u64,
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Rows matched across all reads.
    pub rows_matched: u64,
    /// Simulated disk I/O charged during the run.
    pub io: IoStats,
    /// Buffer-pool deltas during the run.
    pub pool: PoolStats,
    /// Planner routing decisions during the run.
    pub routes: RouteCounts,
    /// Wall-clock milliseconds the driver ran for.
    pub wall_ms: f64,
    /// Operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Operations per simulated second (simulated-I/O throughput).
    pub ops_per_sim_sec: f64,
}

/// Run a mixed workload against `engine`; blocks until every op is done.
///
/// Operations are split evenly across `threads` sessions. Each session
/// draws its own deterministic op sequence: with probability
/// `read_fraction` a read from `reads`, otherwise the next unclaimed row
/// from `insert_rows` (writers fall back to reads once rows run out).
pub fn run_mixed(engine: &Arc<Engine>, cfg: &MixedWorkloadConfig) -> Result<WorkloadReport> {
    assert!(!cfg.reads.is_empty(), "workload needs at least one read query");
    assert!((0.0..=1.0).contains(&cfg.read_fraction), "read_fraction in [0,1]");
    assert!(cfg.threads > 0, "workload needs at least one thread");

    let io_before = engine.disk().stats();
    let pool_before = engine.pool().stats();
    let routes_before = engine.route_counts();

    let next_row = AtomicU64::new(0);
    let reads_done = AtomicU64::new(0);
    let writes_done = AtomicU64::new(0);
    let matched = AtomicU64::new(0);
    let first_err: parking_lot::Mutex<Option<crate::EngineError>> =
        parking_lot::Mutex::new(None);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let ops = cfg.ops / cfg.threads + usize::from(t < cfg.ops % cfg.threads);
            let session = engine.session();
            let next_row = &next_row;
            let reads_done = &reads_done;
            let writes_done = &writes_done;
            let matched = &matched;
            let first_err = &first_err;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9E37));
                let mut since_commit = 0usize;
                for _ in 0..ops {
                    let is_read = rng.gen_bool(cfg.read_fraction);
                    let claimed = if is_read {
                        None
                    } else {
                        let i = next_row.fetch_add(1, Ordering::Relaxed) as usize;
                        cfg.insert_rows.get(i).cloned()
                    };
                    let result = match claimed {
                        Some(row) => {
                            since_commit += 1;
                            let r = session.insert(&cfg.table, row).map(|_| ());
                            if since_commit >= cfg.commit_every.max(1) {
                                session.commit();
                                since_commit = 0;
                            }
                            writes_done.fetch_add(1, Ordering::Relaxed);
                            r
                        }
                        None => {
                            let q = &cfg.reads[rng.gen_range(0..cfg.reads.len())];
                            let r = session.execute(&cfg.table, q).map(|out| {
                                matched.fetch_add(out.run.matched, Ordering::Relaxed);
                            });
                            reads_done.fetch_add(1, Ordering::Relaxed);
                            r
                        }
                    };
                    if let Err(e) = result {
                        first_err.lock().get_or_insert(e);
                        return;
                    }
                }
                if since_commit > 0 {
                    session.commit();
                }
            });
        }
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;

    if let Some(e) = first_err.into_inner() {
        return Err(e);
    }

    let io = engine.disk().stats().since(&io_before);
    let pool_after = engine.pool().stats();
    let routes_after = engine.route_counts();
    let reads = reads_done.load(Ordering::Relaxed);
    let writes = writes_done.load(Ordering::Relaxed);
    let ops = reads + writes;
    Ok(WorkloadReport {
        ops,
        reads,
        writes,
        rows_matched: matched.load(Ordering::Relaxed),
        io,
        pool: PoolStats {
            hits: pool_after.hits - pool_before.hits,
            misses: pool_after.misses - pool_before.misses,
            dirty_evictions: pool_after.dirty_evictions - pool_before.dirty_evictions,
            clean_evictions: pool_after.clean_evictions - pool_before.clean_evictions,
        },
        routes: RouteCounts {
            full_scan: routes_after.full_scan - routes_before.full_scan,
            secondary_sorted: routes_after.secondary_sorted - routes_before.secondary_sorted,
            secondary_pipelined: routes_after.secondary_pipelined
                - routes_before.secondary_pipelined,
            cm_scan: routes_after.cm_scan - routes_before.cm_scan,
        },
        wall_ms,
        ops_per_sec: if wall_ms > 0.0 { ops as f64 / (wall_ms / 1000.0) } else { 0.0 },
        ops_per_sim_sec: if io.elapsed_ms > 0.0 {
            ops as f64 / (io.elapsed_ms / 1000.0)
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use cm_core::CmSpec;
    use cm_query::Pred;
    use cm_storage::{Column, Schema, Value, ValueType};

    fn engine_with_cm() -> Arc<Engine> {
        let engine = Engine::new(EngineConfig::default());
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
        ]));
        engine.create_table("items", schema, 0, 20, 100).unwrap();
        let rows: Vec<Row> = (0..4000i64)
            .map(|i| {
                let cat = i % 80;
                vec![Value::Int(cat), Value::Int(cat * 100 + (i * 13) % 100)]
            })
            .collect();
        engine.load("items", rows).unwrap();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        engine
    }

    fn workload(read_fraction: f64, ops: usize, threads: usize) -> MixedWorkloadConfig {
        MixedWorkloadConfig {
            table: "items".into(),
            reads: (0..20)
                .map(|i| Query::single(Pred::eq(1, (i * 397) % 8000i64)))
                .collect(),
            insert_rows: (0..ops as i64)
                .map(|i| vec![Value::Int(80 + i % 5), Value::Int(8000 + i)])
                .collect(),
            read_fraction,
            ops,
            threads,
            commit_every: 16,
            seed: 0xC0FFEE,
        }
    }

    #[test]
    fn mixed_run_completes_all_ops() {
        let engine = engine_with_cm();
        let report = run_mixed(&engine, &workload(0.9, 400, 4)).unwrap();
        assert_eq!(report.ops, 400);
        assert!(report.reads > report.writes, "90/10 mix skews to reads");
        assert!(report.io.elapsed_ms > 0.0);
        assert!(report.ops_per_sim_sec > 0.0);
        // Reads were cost-routed (mostly to the CM for these selective
        // predicates).
        assert_eq!(report.routes.total(), report.reads);
        assert!(report.routes.cm_scan > 0, "routes: {:?}", report.routes);
        // Inserted rows are visible afterwards.
        let out = engine
            .execute("items", &Query::single(Pred::between(1, 8000i64, 100_000i64)))
            .unwrap();
        assert_eq!(out.run.matched, report.writes);
    }

    #[test]
    fn pure_read_workload_never_writes() {
        let engine = engine_with_cm();
        let report = run_mixed(&engine, &workload(1.0, 100, 2)).unwrap();
        assert_eq!(report.writes, 0);
        assert_eq!(report.reads, 100);
        assert_eq!(engine.stats().inserts, 0);
    }

    #[test]
    fn single_thread_is_deterministic_in_op_mix() {
        let e1 = engine_with_cm();
        let e2 = engine_with_cm();
        let r1 = run_mixed(&e1, &workload(0.8, 200, 1)).unwrap();
        let r2 = run_mixed(&e2, &workload(0.8, 200, 1)).unwrap();
        assert_eq!(r1.reads, r2.reads);
        assert_eq!(r1.writes, r2.writes);
        assert_eq!(r1.rows_matched, r2.rows_matched);
        assert!((r1.io.elapsed_ms - r2.io.elapsed_ms).abs() < 1e-6);
    }
}
