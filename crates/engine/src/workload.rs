//! Mixed read/write workload driver.
//!
//! Drives concurrent sessions against one engine table with a configured
//! read fraction (e.g. 90/10), reproducing the *system-level* shape of
//! the paper's Experiment 3: query traffic and index-maintenance traffic
//! compete for the same buffer pools and disks, so every extra secondary
//! B+Tree taxes both sides while CMs stay memory-resident. On a sharded
//! engine the driver also exposes the sharding win: per-shard I/O, the
//! makespan over the parallel spindles, and WAL group-commit counters.

use crate::engine::{Engine, RouteCounts};
use crate::Result;
use cm_advisor::DesignSet;
use cm_query::Query;
use cm_storage::{makespan_ms, GroupCommitStats, IoStats, PoolStats, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Mixed-workload parameters.
#[derive(Debug, Clone)]
pub struct MixedWorkloadConfig {
    /// Target table.
    pub table: String,
    /// Pool of read queries; the driver draws from it uniformly.
    pub reads: Vec<Query>,
    /// Rows available for insertion; each is inserted at most once.
    pub insert_rows: Vec<Row>,
    /// Fraction of operations that are reads (e.g. `0.9`).
    pub read_fraction: f64,
    /// Total operations across all threads.
    pub ops: usize,
    /// Concurrent sessions.
    pub threads: usize,
    /// Operations between WAL group commits on each writer.
    pub commit_every: usize,
    /// Workload RNG seed (deterministic op mix per thread).
    pub seed: u64,
    /// Advise mode: after this many completed operations (across all
    /// threads), the crossing thread harvests the table's workload
    /// profile, runs [`Engine::advise_design`], and applies the
    /// recommended set with [`Engine::apply_design`] — a mid-run
    /// re-plan while the other sessions keep working. `None` disables.
    pub advise_after: Option<usize>,
}

/// What a mid-run [`Engine::advise_design`] re-plan did (reported when
/// [`MixedWorkloadConfig::advise_after`] fired).
#[derive(Debug, Clone)]
pub struct AdviceOutcome {
    /// The operation count at which the re-plan ran.
    pub at_op: u64,
    /// The design set the advisor chose and the driver applied.
    pub design: DesignSet,
    /// Human-readable set summary (`col:btree col:cm(2^12) ...`).
    pub label: String,
    /// Structures dropped by the switch.
    pub dropped: usize,
}

/// Per-query latency percentiles over a full sample of simulated
/// per-query times (nearest-rank percentiles; no reservoir — the driver
/// keeps every sample, op counts here are small enough).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Samples observed.
    pub count: u64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median (ms).
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// Worst sample (ms).
    pub max_ms: f64,
}

impl LatencyStats {
    /// Summarise a full sample (consumed; sorted internally). Zeros for
    /// an empty sample.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len() as u64;
        let mean_ms = samples.iter().sum::<f64>() / count as f64;
        let pct = |q: f64| -> f64 {
            // Nearest-rank: the smallest sample with at least q of the
            // distribution at or below it.
            let rank = ((q * count as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        LatencyStats {
            count,
            mean_ms,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: *samples.last().expect("non-empty"),
        }
    }
}

/// What the driver measured.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Operations completed (reads + writes).
    pub ops: u64,
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Rows matched across all reads.
    pub rows_matched: u64,
    /// Simulated disk I/O charged during the run, summed over every
    /// shard disk and the log disk.
    pub io: IoStats,
    /// Per-shard I/O deltas (shard disks only, in shard order).
    pub per_shard_io: Vec<IoStats>,
    /// Simulated time of the busiest disk (shards + log) — the run's
    /// makespan with all spindles working in parallel.
    pub sim_makespan_ms: f64,
    /// Buffer-pool deltas during the run, summed over every shard pool.
    pub pool: PoolStats,
    /// WAL group-commit deltas during the run.
    pub wal: GroupCommitStats,
    /// Planner routing decisions during the run (one per executed leg,
    /// so multi-shard queries count once per shard they ran on).
    pub routes: RouteCounts,
    /// The mid-run design re-plan, when `advise_after` fired.
    pub advice: Option<AdviceOutcome>,
    /// Per-read-query simulated latency percentiles. Each sample is the
    /// query's fan-out makespan ([`crate::QueryOutcome::parallel_ms`]):
    /// on a 1-worker engine that is the serial per-shard sum, with
    /// workers it is the legs list-scheduled over the pool.
    pub read_latency: LatencyStats,
    /// Per-write wall-clock latency percentiles: each sample times one
    /// `insert` call (lock wait included — the number that exposes
    /// writer stalls behind long scans), plus its share of the periodic
    /// group commit when this op triggered one.
    pub write_latency: LatencyStats,
    /// Wall-clock milliseconds the driver ran for.
    pub wall_ms: f64,
    /// Operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Operations per simulated second, charging the disks serially
    /// (total I/O time).
    pub ops_per_sim_sec: f64,
    /// Operations per simulated second with the disks working in
    /// parallel (makespan time) — the aggregate-throughput figure for a
    /// sharded engine.
    pub ops_per_sim_sec_parallel: f64,
    /// The RNG seed the run used ([`MixedWorkloadConfig::seed`]) —
    /// reported so a bench line can be re-run bit-identically.
    pub seed: u64,
}

/// Run a mixed workload against `engine`; blocks until every op is done.
///
/// Operations are split evenly across `threads` sessions. Each session
/// draws its own deterministic op sequence: with probability
/// `read_fraction` a read from `reads`, otherwise the next unclaimed row
/// from `insert_rows` (writers fall back to reads once rows run out).
pub fn run_mixed(engine: &Arc<Engine>, cfg: &MixedWorkloadConfig) -> Result<WorkloadReport> {
    assert!(!cfg.reads.is_empty(), "workload needs at least one read query");
    assert!((0.0..=1.0).contains(&cfg.read_fraction), "read_fraction in [0,1]");
    assert!(cfg.threads > 0, "workload needs at least one thread");

    let io_before = engine.io_totals();
    let shard_before = engine.shard_io();
    let log_before = engine.log_disk().stats();
    let pool_before = engine.pool_totals();
    let wal_before = engine.wal_stats();
    let routes_before = engine.route_counts();

    let next_row = AtomicU64::new(0);
    let reads_done = AtomicU64::new(0);
    let writes_done = AtomicU64::new(0);
    let matched = AtomicU64::new(0);
    let ops_done = AtomicU64::new(0);
    let latencies: parking_lot::Mutex<Vec<f64>> =
        parking_lot::Mutex::new(Vec::with_capacity(cfg.ops));
    let write_latencies: parking_lot::Mutex<Vec<f64>> = parking_lot::Mutex::new(Vec::new());
    let first_err: parking_lot::Mutex<Option<crate::EngineError>> =
        parking_lot::Mutex::new(None);
    let advice: parking_lot::Mutex<Option<AdviceOutcome>> = parking_lot::Mutex::new(None);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let ops = cfg.ops / cfg.threads + usize::from(t < cfg.ops % cfg.threads);
            let session = engine.session();
            let next_row = &next_row;
            let reads_done = &reads_done;
            let writes_done = &writes_done;
            let matched = &matched;
            let ops_done = &ops_done;
            let latencies = &latencies;
            let write_latencies = &write_latencies;
            let first_err = &first_err;
            let advice = &advice;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9E37));
                let mut since_commit = 0usize;
                let mut local_lat: Vec<f64> = Vec::new();
                let mut local_wlat: Vec<f64> = Vec::new();
                for _ in 0..ops {
                    let is_read = rng.gen_bool(cfg.read_fraction);
                    let claimed = if is_read {
                        None
                    } else {
                        let i = next_row.fetch_add(1, Ordering::Relaxed) as usize;
                        cfg.insert_rows.get(i).cloned()
                    };
                    let result = match claimed {
                        Some(row) => {
                            since_commit += 1;
                            let begun = Instant::now();
                            let r = session.insert(&cfg.table, row).map(|_| ());
                            if since_commit >= cfg.commit_every.max(1) {
                                session.commit();
                                since_commit = 0;
                            }
                            local_wlat.push(begun.elapsed().as_secs_f64() * 1000.0);
                            writes_done.fetch_add(1, Ordering::Relaxed);
                            r
                        }
                        None => {
                            let q = &cfg.reads[rng.gen_range(0..cfg.reads.len())];
                            let r = session.execute(&cfg.table, q).map(|out| {
                                matched.fetch_add(out.run.matched, Ordering::Relaxed);
                                local_lat.push(out.parallel_ms);
                            });
                            reads_done.fetch_add(1, Ordering::Relaxed);
                            r
                        }
                    };
                    if let Err(e) = result {
                        latencies.lock().append(&mut local_lat);
                        write_latencies.lock().append(&mut local_wlat);
                        first_err.lock().get_or_insert(e);
                        return;
                    }
                    // Advise mode: the thread that crosses the threshold
                    // re-plans the physical design mid-run — profile
                    // harvest, recommendation, and the structure switch
                    // all happen while the other sessions keep going.
                    let done = ops_done.fetch_add(1, Ordering::Relaxed) + 1;
                    if cfg.advise_after == Some(done as usize) {
                        let replan = session.engine().advise_design(&cfg.table).and_then(
                            |rec| {
                                let applied =
                                    session.engine().apply_design(&cfg.table, &rec.best)?;
                                let schema = session.engine().table_schema(&cfg.table)?;
                                Ok(AdviceOutcome {
                                    at_op: done,
                                    label: rec.best.label(&schema),
                                    design: rec.best,
                                    dropped: applied.dropped,
                                })
                            },
                        );
                        match replan {
                            Ok(outcome) => *advice.lock() = Some(outcome),
                            Err(e) => {
                                latencies.lock().append(&mut local_lat);
                                write_latencies.lock().append(&mut local_wlat);
                                first_err.lock().get_or_insert(e);
                                return;
                            }
                        }
                    }
                }
                if since_commit > 0 {
                    session.commit();
                }
                latencies.lock().append(&mut local_lat);
                write_latencies.lock().append(&mut local_wlat);
            });
        }
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;

    if let Some(e) = first_err.into_inner() {
        return Err(e);
    }

    let io = engine.io_totals().since(&io_before);
    let per_shard_io: Vec<IoStats> = engine
        .shard_io()
        .iter()
        .zip(shard_before.iter())
        .map(|(after, before)| after.since(before))
        .collect();
    let log_io = engine.log_disk().stats().since(&log_before);
    let mut parallel_legs = per_shard_io.clone();
    parallel_legs.push(log_io);
    let sim_makespan_ms = makespan_ms(parallel_legs.iter());
    let reads = reads_done.load(Ordering::Relaxed);
    let writes = writes_done.load(Ordering::Relaxed);
    let ops = reads + writes;
    let read_latency = LatencyStats::from_samples(latencies.into_inner());
    let write_latency = LatencyStats::from_samples(write_latencies.into_inner());
    Ok(WorkloadReport {
        ops,
        reads,
        writes,
        rows_matched: matched.load(Ordering::Relaxed),
        io,
        per_shard_io,
        sim_makespan_ms,
        pool: engine.pool_totals().since(&pool_before),
        wal: engine.wal_stats().since(&wal_before),
        routes: engine.route_counts().since(&routes_before),
        advice: advice.into_inner(),
        read_latency,
        write_latency,
        wall_ms,
        ops_per_sec: if wall_ms > 0.0 { ops as f64 / (wall_ms / 1000.0) } else { 0.0 },
        ops_per_sim_sec: if io.elapsed_ms > 0.0 {
            ops as f64 / (io.elapsed_ms / 1000.0)
        } else {
            0.0
        },
        ops_per_sim_sec_parallel: if sim_makespan_ms > 0.0 {
            ops as f64 / (sim_makespan_ms / 1000.0)
        } else {
            0.0
        },
        seed: cfg.seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use cm_core::CmSpec;
    use cm_query::Pred;
    use cm_storage::{Column, Schema, Value, ValueType};

    fn engine_with_cm_sharded(shards: usize) -> Arc<Engine> {
        let engine = Engine::new(EngineConfig { shards, ..EngineConfig::default() });
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
        ]));
        engine.create_table("items", schema, 0, 20, 100).unwrap();
        let rows: Vec<Row> = (0..4000i64)
            .map(|i| {
                let cat = i % 80;
                vec![Value::Int(cat), Value::Int(cat * 100 + (i * 13) % 100)]
            })
            .collect();
        engine.load("items", rows).unwrap();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        engine
    }

    fn engine_with_cm() -> Arc<Engine> {
        engine_with_cm_sharded(1)
    }

    fn workload(read_fraction: f64, ops: usize, threads: usize) -> MixedWorkloadConfig {
        MixedWorkloadConfig {
            table: "items".into(),
            reads: (0..20)
                .map(|i| Query::single(Pred::eq(1, (i * 397) % 8000i64)))
                .collect(),
            insert_rows: (0..ops as i64)
                .map(|i| vec![Value::Int(80 + i % 5), Value::Int(8000 + i)])
                .collect(),
            read_fraction,
            ops,
            threads,
            commit_every: 16,
            seed: 0xC0FFEE,
            advise_after: None,
        }
    }

    #[test]
    fn mixed_run_completes_all_ops() {
        let engine = engine_with_cm();
        let report = run_mixed(&engine, &workload(0.9, 400, 4)).unwrap();
        assert_eq!(report.ops, 400);
        assert!(report.reads > report.writes, "90/10 mix skews to reads");
        assert!(report.io.elapsed_ms > 0.0);
        assert!(report.ops_per_sim_sec > 0.0);
        assert!(report.sim_makespan_ms > 0.0);
        assert!(report.sim_makespan_ms <= report.io.elapsed_ms + 1e-9);
        assert_eq!(report.per_shard_io.len(), 1);
        // Every read contributed a latency sample.
        assert_eq!(report.read_latency.count, report.reads);
        // ... and every write a wall-clock sample.
        assert_eq!(report.write_latency.count, report.writes);
        assert!(report.write_latency.p50_ms <= report.write_latency.p95_ms);
        assert!(report.write_latency.p95_ms <= report.write_latency.p99_ms);
        assert!(report.write_latency.max_ms > 0.0);
        assert!(report.read_latency.p50_ms <= report.read_latency.p95_ms);
        assert!(report.read_latency.p95_ms <= report.read_latency.p99_ms);
        assert!(report.read_latency.p99_ms <= report.read_latency.max_ms);
        assert!(report.read_latency.max_ms > 0.0);
        // Reads were cost-routed (mostly to the CM for these selective
        // predicates; one leg per read on a single-shard engine).
        assert_eq!(report.routes.total(), report.reads);
        assert!(report.routes.cm_scan > 0, "routes: {:?}", report.routes);
        // Writers committed through the group-commit WAL.
        assert!(report.wal.commit_requests > 0);
        assert_eq!(
            report.wal.commit_requests,
            report.wal.flushes + report.wal.absorbed
        );
        // Inserted rows are visible afterwards.
        let out = engine
            .execute("items", &Query::single(Pred::between(1, 8000i64, 100_000i64)))
            .unwrap();
        assert_eq!(out.run.matched, report.writes);
    }

    #[test]
    fn latency_percentiles_from_samples() {
        let s = LatencyStats::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert_eq!(LatencyStats::from_samples(Vec::new()), LatencyStats::default());
        let one = LatencyStats::from_samples(vec![7.0]);
        assert_eq!((one.p50_ms, one.p99_ms, one.count), (7.0, 7.0, 1));
        // Unsorted input is handled.
        let s = LatencyStats::from_samples(vec![5.0, 1.0, 3.0]);
        assert_eq!(s.p50_ms, 3.0);
        assert_eq!(s.max_ms, 5.0);
    }

    #[test]
    fn fanout_workers_cut_read_latency_percentiles() {
        // Same sharded data, same read-only workload: an engine with
        // fan-out workers must report lower per-query latency than the
        // sequential engine, with identical matched counts.
        let run_with = |workers: usize| {
            let engine = Engine::new(EngineConfig {
                shards: 4,
                workers,
                ..EngineConfig::default()
            });
            let schema = Arc::new(Schema::new(vec![
                Column::new("catid", ValueType::Int),
                Column::new("price", ValueType::Int),
            ]));
            engine.create_table("items", schema, 0, 20, 100).unwrap();
            let rows: Vec<Row> = (0..4000i64)
                .map(|i| vec![Value::Int(i % 80), Value::Int(i)])
                .collect();
            engine.load("items", rows).unwrap();
            let wl = MixedWorkloadConfig {
                table: "items".into(),
                // Wide clustered ranges spanning every shard.
                reads: (0..8)
                    .map(|i| Query::single(Pred::between(0, i, 79i64)))
                    .collect(),
                insert_rows: Vec::new(),
                read_fraction: 1.0,
                ops: 40,
                threads: 1,
                commit_every: 16,
                seed: 7,
                advise_after: None,
            };
            run_mixed(&engine, &wl).unwrap()
        };
        let seq = run_with(1);
        let par = run_with(4);
        assert_eq!(seq.rows_matched, par.rows_matched);
        assert!(
            par.read_latency.p99_ms < 0.7 * seq.read_latency.p99_ms,
            "4 workers beat 1: {} vs {}",
            par.read_latency.p99_ms,
            seq.read_latency.p99_ms
        );
    }

    #[test]
    fn advise_mode_replans_mid_run_and_stays_correct() {
        // Start with no secondary structures: the profiling prefix
        // routes scans, then the crossing thread advises and applies a
        // design mid-run while the other sessions keep operating.
        let engine = Engine::new(EngineConfig::default());
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
        ]));
        engine.create_table("items", schema, 0, 20, 100).unwrap();
        let rows: Vec<Row> = (0..4000i64)
            .map(|i| {
                let cat = i % 80;
                vec![Value::Int(cat), Value::Int(cat * 100 + (i * 13) % 100)]
            })
            .collect();
        engine.load("items", rows).unwrap();

        let mut wl = workload(0.9, 400, 4);
        wl.advise_after = Some(100);
        let report = run_mixed(&engine, &wl).unwrap();
        assert_eq!(report.ops, 400);
        let advice = report.advice.expect("re-plan fired");
        assert_eq!(advice.at_op, 100);
        assert!(!advice.label.is_empty());
        assert!(
            advice.design.columns.iter().any(|c| c.col == 1 && c.structure.is_some()),
            "the hot price column earned a structure: {advice:?}"
        );
        // The applied design is live on the table.
        let info = engine.table_info("items").unwrap();
        assert_eq!(
            info.secondaries + info.cms,
            advice.design.btrees() + advice.design.cms()
        );
        // Results after the mid-run switch agree with a scan oracle.
        let q = Query::single(Pred::eq(1, 397i64));
        let routed = engine.execute_collect("items", &q).unwrap();
        let oracle = engine
            .execute_via_collect("items", cm_query::AccessPath::FullScan, &q)
            .unwrap();
        let (mut a, mut b) = (routed.rows.unwrap(), oracle.rows.unwrap());
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Without the threshold no advice is reported.
        let engine2 = engine_with_cm();
        let report2 = run_mixed(&engine2, &workload(0.9, 100, 2)).unwrap();
        assert!(report2.advice.is_none());
    }

    #[test]
    fn pure_read_workload_never_writes() {
        let engine = engine_with_cm();
        let report = run_mixed(&engine, &workload(1.0, 100, 2)).unwrap();
        assert_eq!(report.writes, 0);
        assert_eq!(report.reads, 100);
        assert_eq!(engine.stats().inserts, 0);
    }

    #[test]
    fn single_thread_is_deterministic_in_op_mix() {
        let e1 = engine_with_cm();
        let e2 = engine_with_cm();
        let r1 = run_mixed(&e1, &workload(0.8, 200, 1)).unwrap();
        let r2 = run_mixed(&e2, &workload(0.8, 200, 1)).unwrap();
        assert_eq!(r1.reads, r2.reads);
        assert_eq!(r1.writes, r2.writes);
        assert_eq!(r1.rows_matched, r2.rows_matched);
        assert!((r1.io.elapsed_ms - r2.io.elapsed_ms).abs() < 1e-6);
    }

    #[test]
    fn sharded_run_spreads_io_and_stays_correct() {
        let engine = engine_with_cm_sharded(4);
        let report = run_mixed(&engine, &workload(0.5, 400, 4)).unwrap();
        assert_eq!(report.ops, 400);
        assert_eq!(report.per_shard_io.len(), 4);
        let busy = report.per_shard_io.iter().filter(|io| io.pages() > 0).count();
        assert!(busy >= 2, "work lands on multiple shards");
        assert!(report.ops_per_sim_sec_parallel >= report.ops_per_sim_sec);
        // Inserted rows are visible afterwards (all inserts carry
        // catid 80..85, owned by the last shard).
        let out = engine
            .execute("items", &Query::single(Pred::between(1, 8000i64, 100_000i64)))
            .unwrap();
        assert_eq!(out.run.matched, report.writes);
    }
}
