//! The engine facade: catalog, sharded I/O substrate, and cost-based
//! access-path routing.
//!
//! Storage is split across N [`StorageShard`]s (each its own simulated
//! disk + buffer pool). Every table is partitioned by clustered-key
//! range, one partition per shard, with a [`RangeRouter`] derived from
//! the clustered attribute at load time: point predicates on the
//! clustered column route to exactly one shard, ranges fan out only to
//! the shards they overlap, and each shard executes the query
//! intersected with its ownership range. Log records go to one engine
//! WAL on a dedicated log disk, flushed through leader-elected group
//! commit ([`GroupCommitWal`]).
//!
//! Query execution is a two-phase pipeline: a **plan phase** snapshots
//! the routing and per-shard cost decisions into a
//! [`cm_query::QueryPlan`] (one [`cm_query::ShardLeg`] per overlapping
//! shard, carrying the shard-restricted predicate and that shard's
//! chosen access path), and an **execute phase** runs the legs on the
//! engine's shared [`Executor`] worker pool — each leg against its own
//! shard backend — merging rows and per-leg timings deterministically in
//! shard order.

use crate::error::EngineError;
use crate::executor::{scheduled_makespan, Executor};
use crate::session::Session;
use crate::shard::{partition_rows, RangeRouter};
use crate::Result;
use cm_advisor::{
    recommend_for_workload, DesignSet, Structure, WorkloadAdvisorConfig, WorkloadProfile,
    WorkloadRecommendation,
};
use cm_core::CmSpec;
use cm_query::{
    restrict_to_shard, AccessPath, ExecContext, PlanChoice, Planner, PredOp, Query, QueryPlan,
    RunResult, ShardLeg, Table,
};
use crate::recovery::ImageInstall;
use cm_storage::{
    aggregate_io, aggregate_pool, makespan_ms, pending_stamp, Backend, BufferPool,
    DiskConfig, DiskSim, GroupCommitConfig, GroupCommitStats, GroupCommitWal, IoStats,
    LogPayload, MvccState, MvccStats, PoolStats, Rid, Row, Schema, Snapshot,
    StorageShard, Wal, WalBatch, AUTOCOMMIT_TXN, LIVE_TS,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated-disk hardware parameters (paper, Table 1 by default) —
    /// every shard disk and the log disk use the same constants.
    pub disk: DiskConfig,
    /// Which device the disks run on: [`Backend::Sim`] (pure simulation,
    /// the deterministic default) or [`Backend::File`] (every shard disk
    /// *and* the WAL log disk additionally perform real `pread`/`pwrite`
    /// against files under the given directory — `shard0/`, `shard1/`,
    /// …, `wal/` — and report wall-clock alongside sim-ms). The sim
    /// accounting is identical on both, so results stay oracle-equal.
    pub backend: Backend,
    /// Total buffer-pool capacity in pages, divided evenly across the
    /// shards (so sweeping the shard count compares equal RAM).
    pub pool_pages: usize,
    /// Number of storage shards tables are range-partitioned across.
    pub shards: usize,
    /// Executor worker threads for intra-query shard fan-out: a
    /// multi-shard query's legs run on up to this many threads (1 =
    /// strictly sequential, the default — single-shard and single-worker
    /// engines never pay a spawn).
    pub workers: usize,
    /// WAL group-commit batching knobs.
    pub group_commit: GroupCommitConfig,
    /// Workload-aware design-advisor knobs ([`Engine::advise_design`]
    /// uses these defaults; `advise_design_with` overrides per call).
    pub advisor: WorkloadAdvisorConfig,
    /// Appended WAL records between automatic fuzzy checkpoints: when a
    /// [`Engine::commit`] observes at least this many records since the
    /// last checkpoint, it runs [`Engine::checkpoint`] before returning
    /// (skipped if another session's checkpoint is already in flight).
    /// `0` disables automatic checkpoints (the default; call
    /// [`Engine::checkpoint`] explicitly).
    pub checkpoint_every: u64,
    /// Multi-version concurrency for reads: every query reads at a
    /// snapshot timestamp under shard *read* locks, writers stamp
    /// `begin`/`end` versions instead of physically removing rows, and
    /// [`Engine::apply_design`] swaps structure sets online. Off by
    /// default (the pre-MVCC `RwLock` behaviour, kept for comparison —
    /// the `mvcc_reads` bench sweeps both).
    pub mvcc: bool,
    /// MVCC deletes between automatic vacuum passes: when at least this
    /// many versions have been ended since the last pass, the next
    /// [`Engine::commit`] runs [`Engine::vacuum`] before returning
    /// (skipped when one is already in flight). `0` disables automatic
    /// GC (the default; call [`Engine::vacuum`] explicitly). Ignored
    /// when `mvcc` is off.
    pub gc_every: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            disk: DiskConfig::default(),
            backend: Backend::Sim,
            pool_pages: 1024,
            shards: 1,
            workers: 1,
            group_commit: GroupCommitConfig::default(),
            advisor: WorkloadAdvisorConfig::default(),
            checkpoint_every: 0,
            mvcc: false,
            gc_every: 0,
        }
    }
}

/// A table definition plus (once loaded) its per-shard partitions.
pub(crate) struct TableEntry {
    pub(crate) name: String,
    pub(crate) schema: Arc<Schema>,
    pub(crate) clustered_col: usize,
    pub(crate) tups_per_page: usize,
    pub(crate) bucket_target: u64,
    /// `None` until [`Engine::load`] runs. Queries take this read lock
    /// plus per-partition locks, so readers on different shards (and
    /// writers on different shards) proceed in parallel.
    /// [`Engine::apply_design`] takes it **exclusively**, so a design
    /// switch never interleaves with an in-flight query's plan/execute
    /// phases.
    pub(crate) loaded: RwLock<Option<LoadedTable>>,
    /// Online workload profile: per-column read traffic plus the write
    /// count, recorded by every execute/insert/delete and harvested by
    /// [`Engine::advise_design`].
    pub(crate) profile: parking_lot::Mutex<WorkloadProfile>,
}

/// The loaded state: contiguous clustered-key partitions, one per
/// storage shard, plus the routing table over their boundaries.
pub(crate) struct LoadedTable {
    pub(crate) router: RangeRouter,
    /// `parts[i]` lives on the engine's shard backend `i`.
    pub(crate) parts: Vec<RwLock<Table>>,
    /// Each partition's heap length right after its bulk build — the
    /// sorted-prefix length [`Table::restore`] needs to rebuild the
    /// clustered index and bucket directory from a checkpoint image
    /// (rows past it arrived through `insert` and are re-learned as
    /// appends).
    pub(crate) base_lens: Vec<u64>,
}

/// Per-access-path routing counters (cumulative since engine start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCounts {
    /// Queries routed to a full table scan.
    pub full_scan: u64,
    /// Queries routed to a sorted (bitmap) secondary index scan.
    pub secondary_sorted: u64,
    /// Queries routed to a pipelined secondary index scan.
    pub secondary_pipelined: u64,
    /// Queries routed to a CM-guided scan.
    pub cm_scan: u64,
}

impl RouteCounts {
    /// Total routed queries.
    pub fn total(&self) -> u64 {
        self.full_scan + self.secondary_sorted + self.secondary_pipelined + self.cm_scan
    }

    /// `self - earlier`, for snapshot-delta reporting.
    pub fn since(&self, earlier: &RouteCounts) -> RouteCounts {
        RouteCounts {
            full_scan: self.full_scan - earlier.full_scan,
            secondary_sorted: self.secondary_sorted - earlier.secondary_sorted,
            secondary_pipelined: self.secondary_pipelined - earlier.secondary_pipelined,
            cm_scan: self.cm_scan - earlier.cm_scan,
        }
    }
}

/// Cumulative engine statistics.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Queries executed (routed + forced).
    pub queries: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Routing decisions by chosen path.
    pub routes: RouteCounts,
    /// Simulated disk counters summed over every shard disk and the log
    /// disk since engine start.
    pub io: IoStats,
    /// Buffer-pool behaviour summed over every shard pool.
    pub pool: PoolStats,
    /// WAL records appended since engine start.
    pub wal_records: u64,
    /// WAL bytes made durable since engine start.
    pub wal_durable_bytes: u64,
    /// WAL group-commit behaviour (requests, absorbed commits, flushes,
    /// pages flushed).
    pub wal: GroupCommitStats,
    /// Tables in the catalog.
    pub tables: usize,
    /// Rows across every loaded table (live + tombstoned slots).
    pub total_rows: u64,
    /// MVCC clock / snapshot / vacuum counters (`Some` iff
    /// [`EngineConfig::mvcc`]).
    pub mvcc: Option<MvccStats>,
    /// Total wall-clock time query legs spent waiting to acquire shard
    /// read locks (ms). This is real blocking — readers queued behind a
    /// writer's (or vacuum's) write-lock hold — not simulated I/O.
    pub read_stall_ms: f64,
    /// Read-lock acquisitions that waited longer than
    /// [`Engine::STALL_FLOOR`] — i.e. actual stalls, not the
    /// nanosecond-scale cost of an uncontended acquisition.
    pub read_stalls: u64,
    /// Longest single read-lock wait a query leg observed (ms).
    pub read_stall_max_ms: f64,
}

/// One executed leg of a query: the shard it ran on, the path chosen
/// for that shard, and what it measured there.
#[derive(Debug, Clone)]
pub struct LegOutcome {
    /// The shard the leg executed on.
    pub shard: usize,
    /// The planner's decision for this shard (per-shard statistics can
    /// send different shards down different paths). For forced-path runs
    /// the chosen path is the forced one.
    pub choice: PlanChoice,
    /// Measured (simulated) execution of this leg alone, charged to its
    /// shard's disk.
    pub run: RunResult,
}

/// Outcome of one query execution through the engine.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The first leg's planner decision — the single-shard summary (for
    /// a point query this is *the* plan). Multi-shard consumers should
    /// read [`QueryOutcome::legs`] for every shard's choice.
    pub plan: PlanChoice,
    /// Measured (simulated) execution, summed across the shards the
    /// query fanned out to — the *serial* time, as if the legs shared
    /// one thread and one spindle.
    pub run: RunResult,
    /// Per-leg choices and timings, ascending by shard.
    pub legs: Vec<LegOutcome>,
    /// Simulated wall-clock of the fan-out: the legs' times list-scheduled
    /// onto the engine's worker count (equals `run.ms()` on a 1-worker
    /// engine, the longest leg when workers cover every shard).
    pub parallel_ms: f64,
    /// The shard ids the query executed on, ascending.
    pub shards: Vec<usize>,
    /// Matching rows, if collection was requested (merged in shard
    /// order, so results are deterministic however the legs ran).
    pub rows: Option<Vec<Row>>,
}

/// Catalog summary for one table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// Whether `load` has run.
    pub loaded: bool,
    /// Row count across all shards (0 until loaded).
    pub rows: u64,
    /// Heap pages across all shards (0 until loaded).
    pub pages: u64,
    /// Number of shards the table is partitioned across (0 until loaded).
    pub shards: usize,
    /// Number of secondary B+Trees (per shard; every shard has the same
    /// set).
    pub secondaries: usize,
    /// Number of CMs (per shard).
    pub cms: usize,
}

/// What [`Engine::apply_design`] changed (per shard; every shard gets
/// the same set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedDesign {
    /// Secondary B+Trees built.
    pub btrees: usize,
    /// Correlation Maps built.
    pub cms: usize,
    /// Pre-existing structures dropped.
    pub dropped: usize,
}

/// The concurrent engine facade. Construct with [`Engine::new`], share as
/// `Arc<Engine>`, open per-connection handles with [`Engine::session`].
pub struct Engine {
    pub(crate) config: EngineConfig,
    pub(crate) backends: Vec<StorageShard>,
    pub(crate) log_disk: Arc<DiskSim>,
    pub(crate) wal: GroupCommitWal,
    pub(crate) planner: Planner,
    pub(crate) executor: Executor,
    pub(crate) catalog: RwLock<HashMap<String, Arc<TableEntry>>>,
    pub(crate) queries: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    route_full: AtomicU64,
    route_sorted: AtomicU64,
    route_pipelined: AtomicU64,
    route_cm: AtomicU64,
    /// Transaction ids handed to sessions (0 is [`AUTOCOMMIT_TXN`]).
    pub(crate) next_txn: AtomicU64,
    /// Durable checkpoint images, ascending by install offset. The first
    /// entry is the base image installed by [`Engine::load`]; each
    /// completed checkpoint appends one.
    pub(crate) images: parking_lot::Mutex<Vec<ImageInstall>>,
    /// Serializes checkpoints ([`Engine::checkpoint`] blocks on it; the
    /// auto-checkpoint in [`Engine::commit`] skips when it is held).
    pub(crate) ckpt_lock: parking_lot::Mutex<()>,
    /// WAL record count at the last image install (drives the
    /// `checkpoint_every` trigger).
    pub(crate) ckpt_records: AtomicU64,
    /// The MVCC commit clock / commit table / snapshot registry
    /// (`Some` iff [`EngineConfig::mvcc`]).
    pub(crate) mvcc: Option<Arc<MvccState>>,
    /// Versions ended since the last vacuum pass (drives the
    /// `gc_every` trigger).
    gc_deletes: AtomicU64,
    /// Serializes vacuum passes (the auto-vacuum in [`Engine::commit`]
    /// skips when one is in flight; explicit [`Engine::vacuum`] blocks).
    vacuum_lock: parking_lot::Mutex<()>,
    /// Serializes online (MVCC) design swaps — two concurrent
    /// [`Engine::apply_design`] calls must not interleave their per-shard
    /// build/install phases. Queries never take this lock.
    design_lock: parking_lot::Mutex<()>,
    /// Wall-clock nanoseconds query legs spent waiting on shard read
    /// locks (see [`EngineStats::read_stall_ms`]).
    read_stall_ns: AtomicU64,
    /// Read-lock acquisitions that waited past [`Engine::STALL_FLOOR`].
    read_stalls: AtomicU64,
    /// Longest single read-lock wait (ns).
    read_stall_max_ns: AtomicU64,
}

/// One leg's execution result: its run measurement plus any collected
/// rows.
pub(crate) type LegRun = Result<(RunResult, Vec<Row>)>;

/// Versions a vacuum pass physically reclaims per shard write-lock
/// hold. Between chunks the lock is released, bounding how long any
/// concurrent reader can be held up by garbage collection.
const VACUUM_CHUNK: usize = 128;

/// Rows a batched insert lands per shard write-lock hold, for the same
/// reason: one hold per chunk amortizes the per-row lock and WAL
/// round-trips without turning a large batch into a single long
/// exclusive hold that stalls every concurrent reader.
const INSERT_CHUNK: usize = 128;

impl Engine {
    /// Build an engine with `config.shards` storage shards (each its own
    /// simulated disk + buffer pool), a dedicated log disk, and a
    /// group-commit WAL.
    ///
    /// Panics on a configuration [`Engine::try_new`] rejects (more
    /// shards than a RID's shard tag can address).
    pub fn new(config: EngineConfig) -> Arc<Self> {
        Self::try_new(config).expect("valid engine configuration")
    }

    /// [`Engine::new`], surfacing configuration errors instead of
    /// panicking. A shard count above [`Rid::MAX_SHARDS`] is rejected
    /// with [`EngineError::TooManyShards`]: RIDs carry their shard in a
    /// fixed-width tag, so a 300-shard engine would silently alias
    /// shards 256.. onto 0.. — a clamp used to hide exactly that. A
    /// shard count of 0 still means "one shard" (sequential default).
    pub fn try_new(config: EngineConfig) -> Result<Arc<Self>> {
        if config.shards > Rid::MAX_SHARDS {
            return Err(EngineError::TooManyShards {
                requested: config.shards,
                max: Rid::MAX_SHARDS,
            });
        }
        let shards = config.shards.max(1);
        let per_shard_pages = (config.pool_pages / shards).max(1);
        let backends: Vec<StorageShard> = (0..shards)
            .map(|i| {
                StorageShard::with_backend(
                    config.disk,
                    per_shard_pages,
                    &config.backend,
                    &format!("shard{i}"),
                )
            })
            .collect::<std::result::Result<_, _>>()?;
        // The log gets its own spindle (as a real deployment would), so
        // commits do not drag every shard head to the log tail.
        let log_disk = config.backend.make_disk(config.disk, "wal")?;
        let wal = GroupCommitWal::new(Wal::new(log_disk.clone()), config.group_commit);
        let planner = Planner::new(config.disk);
        Ok(Arc::new(Engine {
            config: config.clone(),
            backends,
            log_disk,
            wal,
            planner,
            executor: Executor::new(config.workers),
            catalog: RwLock::new(HashMap::new()),
            queries: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            route_full: AtomicU64::new(0),
            route_sorted: AtomicU64::new(0),
            route_pipelined: AtomicU64::new(0),
            route_cm: AtomicU64::new(0),
            next_txn: AtomicU64::new(AUTOCOMMIT_TXN + 1),
            images: parking_lot::Mutex::new(Vec::new()),
            ckpt_lock: parking_lot::Mutex::new(()),
            ckpt_records: AtomicU64::new(0),
            mvcc: config.mvcc.then(|| Arc::new(MvccState::new())),
            gc_deletes: AtomicU64::new(0),
            vacuum_lock: parking_lot::Mutex::new(()),
            design_lock: parking_lot::Mutex::new(()),
            read_stall_ns: AtomicU64::new(0),
            read_stalls: AtomicU64::new(0),
            read_stall_max_ns: AtomicU64::new(0),
        }))
    }

    /// The engine's MVCC state, when [`EngineConfig::mvcc`] is on.
    pub fn mvcc_state(&self) -> Option<&Arc<MvccState>> {
        self.mvcc.as_ref()
    }

    /// MVCC counters (commit clock, live snapshots, GC work); `None`
    /// when MVCC is off.
    pub fn mvcc_stats(&self) -> Option<MvccStats> {
        self.mvcc.as_ref().map(|mv| mv.stats())
    }

    /// Versions that have ended but not yet been reclaimed, summed over
    /// every loaded table — the version-chain-length signal a vacuum
    /// pass would work through. Always 0 when MVCC is off.
    pub fn dead_versions(&self) -> u64 {
        if self.mvcc.is_none() {
            return 0;
        }
        let entries: Vec<Arc<TableEntry>> = self.catalog.read().values().cloned().collect();
        let mut dead = 0u64;
        for entry in entries {
            let loaded = entry.loaded.read();
            let Some(lt) = loaded.as_ref() else { continue };
            for part in &lt.parts {
                dead += part.read().dead_versions();
            }
        }
        dead
    }

    /// Number of storage shards.
    pub fn num_shards(&self) -> usize {
        self.backends.len()
    }

    /// Number of executor workers multi-shard query legs fan out over.
    pub fn num_workers(&self) -> usize {
        self.executor.workers()
    }

    /// The shard storage backends (disk + pool pairs).
    pub fn shard_backends(&self) -> &[StorageShard] {
        &self.backends
    }

    /// The first shard's simulated disk. For single-shard engines this
    /// is *the* data disk (the pre-sharding behaviour); sharded engines
    /// should aggregate via [`Engine::io_totals`].
    pub fn disk(&self) -> &Arc<DiskSim> {
        self.backends[0].disk()
    }

    /// The first shard's buffer pool (see [`Engine::disk`]).
    pub fn pool(&self) -> &BufferPool {
        self.backends[0].pool()
    }

    /// The dedicated log disk the WAL flushes to.
    pub fn log_disk(&self) -> &Arc<DiskSim> {
        &self.log_disk
    }

    /// I/O counters summed over every shard disk and the log disk.
    pub fn io_totals(&self) -> IoStats {
        let mut per: Vec<IoStats> = self.backends.iter().map(|b| b.io_stats()).collect();
        per.push(self.log_disk.stats());
        aggregate_io(per.iter())
    }

    /// Per-shard I/O counters (shard disks only, in shard order).
    pub fn shard_io(&self) -> Vec<IoStats> {
        self.backends.iter().map(|b| b.io_stats()).collect()
    }

    /// The busiest disk's simulated elapsed time — the makespan of the
    /// engine's history with all spindles working in parallel.
    pub fn sim_makespan_ms(&self) -> f64 {
        let mut per: Vec<IoStats> = self.backends.iter().map(|b| b.io_stats()).collect();
        per.push(self.log_disk.stats());
        makespan_ms(per.iter())
    }

    /// Pool counters summed over every shard pool.
    pub fn pool_totals(&self) -> PoolStats {
        let per: Vec<PoolStats> = self.backends.iter().map(|b| b.pool_stats()).collect();
        aggregate_pool(per.iter())
    }

    /// Reset every disk's counters and head position (between-trial
    /// measurement hygiene).
    pub fn reset_io(&self) {
        for b in &self.backends {
            b.reset_io();
        }
        self.log_disk.reset();
    }

    /// Open a session handle (cheap; one per connection/thread).
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(self.clone())
    }

    // ---- catalog ------------------------------------------------------

    /// Register a table: its schema, clustered column, tuples per heap
    /// page, and the clustered-bucket target (tuples per CM bucket).
    /// The heap is built by the first [`Engine::load`] call.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Arc<Schema>,
        clustered_col: usize,
        tups_per_page: usize,
        bucket_target: u64,
    ) -> Result<()> {
        let name = name.into();
        if clustered_col >= schema.arity() {
            return Err(EngineError::BadColumn { table: name, col: clustered_col });
        }
        let mut cat = self.catalog.write();
        if cat.contains_key(&name) {
            return Err(EngineError::DuplicateTable(name));
        }
        cat.insert(
            name.clone(),
            Arc::new(TableEntry {
                name,
                schema,
                clustered_col,
                tups_per_page,
                bucket_target,
                loaded: RwLock::new(None),
                profile: parking_lot::Mutex::new(WorkloadProfile::new()),
            }),
        );
        Ok(())
    }

    /// Bulk-load rows: sort on the clustered column, partition into
    /// contiguous clustered-key ranges (one per shard, never splitting a
    /// key), and build each partition's heap, clustered index, and
    /// bucket directory on its own shard backend. One-shot: subsequent
    /// writes go through [`Engine::insert`].
    pub fn load(&self, table: &str, rows: Vec<Row>) -> Result<u64> {
        let entry = self.entry(table)?;
        let mut loaded = entry.loaded.write();
        if loaded.is_some() {
            return Err(EngineError::AlreadyLoaded(entry.name.clone()));
        }
        let (chunks, splits) = partition_rows(rows, entry.clustered_col, self.backends.len());
        let router = RangeRouter::new(entry.clustered_col, splits);
        debug_assert_eq!(
            router.num_shards(),
            chunks.len(),
            "router addresses exactly the partitions built"
        );
        let mut parts = Vec::with_capacity(chunks.len());
        let mut base_lens = Vec::with_capacity(chunks.len());
        let mut total = 0u64;
        for (i, chunk) in chunks.into_iter().enumerate() {
            let t = Table::build(
                self.backends[i].disk(),
                entry.schema.clone(),
                chunk,
                entry.tups_per_page,
                entry.clustered_col,
                entry.bucket_target,
            )?;
            total += t.heap().len();
            base_lens.push(t.heap().len());
            parts.push(RwLock::new(t));
        }
        *loaded = Some(LoadedTable { router, parts, base_lens });
        // The bulk build is not logged record by record, so recovery
        // starts from an image of the freshly-loaded state; install it
        // before any logged mutation can land (the load lock is still
        // released first — the image snapshot re-takes read locks).
        drop(loaded);
        self.install_base_image();
        Ok(total)
    }

    /// Create (and bulk-build) a secondary B+Tree on `cols` — one tree
    /// per shard, covering that shard's rows; returns its id (the same
    /// on every shard). Statistics for the leading column are refreshed
    /// so the planner can cost the new index immediately.
    pub fn create_btree(
        &self,
        table: &str,
        index_name: impl Into<String>,
        cols: Vec<usize>,
    ) -> Result<usize> {
        let entry = self.entry(table)?;
        let arity = entry.schema.arity();
        if let Some(&bad) = cols.iter().find(|&&c| c >= arity) {
            return Err(EngineError::BadColumn { table: entry.name.clone(), col: bad });
        }
        let index_name = index_name.into();
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let mut id = None;
        for (i, part) in lt.parts.iter().enumerate() {
            let mut t = part.write();
            let part_id =
                t.add_secondary(self.backends[i].disk(), index_name.clone(), cols.clone());
            t.analyze_cols(&cols);
            debug_assert!(id.is_none_or(|prev| prev == part_id), "uniform ids across shards");
            id = Some(part_id);
        }
        self.log_design_change(&entry.name, &lt.parts[0].read());
        Ok(id.expect("loaded tables have at least one partition"))
    }

    /// Create (and build via the paper's Algorithm 1) a Correlation Map —
    /// one per shard, over that shard's bucket directory; returns its id
    /// (the same on every shard). Statistics for the CM's key columns
    /// are refreshed so the planner can compare the CM against index
    /// paths.
    pub fn create_cm(
        &self,
        table: &str,
        cm_name: impl Into<String>,
        spec: CmSpec,
    ) -> Result<usize> {
        let entry = self.entry(table)?;
        let arity = entry.schema.arity();
        if let Some(&bad) = spec.cols().iter().find(|&&c| c >= arity) {
            return Err(EngineError::BadColumn { table: entry.name.clone(), col: bad });
        }
        let cm_name = cm_name.into();
        let analyze = spec.cols();
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let mut id = None;
        for part in lt.parts.iter() {
            let mut t = part.write();
            let part_id = t.add_cm(cm_name.clone(), spec.clone());
            t.analyze_cols(&analyze);
            debug_assert!(id.is_none_or(|prev| prev == part_id), "uniform ids across shards");
            id = Some(part_id);
        }
        self.log_design_change(&entry.name, &lt.parts[0].read());
        Ok(id.expect("loaded tables have at least one partition"))
    }

    /// Refresh planner statistics for the given columns on every shard
    /// (the paper's statistics scan; uncharged, as in the seed's
    /// `Table`).
    pub fn analyze(&self, table: &str, cols: &[usize]) -> Result<()> {
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        for part in lt.parts.iter() {
            part.write().analyze_cols(cols);
        }
        Ok(())
    }

    // ---- workload-aware design advisor --------------------------------

    /// Snapshot the table's online workload profile (per-column read
    /// traffic + write count recorded since engine start or the last
    /// [`Engine::reset_workload_profile`]).
    pub fn workload_profile(&self, table: &str) -> Result<WorkloadProfile> {
        Ok(self.entry(table)?.profile.lock().clone())
    }

    /// Start a fresh profiling window for the table.
    pub fn reset_workload_profile(&self, table: &str) -> Result<()> {
        self.entry(table)?.profile.lock().reset();
        Ok(())
    }

    /// Recommend the per-column structure set for the table's profiled
    /// workload, with the engine's configured advisor knobs
    /// (`EngineConfig::advisor`). See [`Engine::advise_design_with`].
    pub fn advise_design(&self, table: &str) -> Result<WorkloadRecommendation> {
        self.advise_design_with(table, &self.config.advisor)
    }

    /// [`Engine::advise_design`] with explicit knobs: harvest the
    /// table's [`WorkloadProfile`], refresh statistics for the profiled
    /// read columns, and run
    /// [`cm_advisor::recommend_for_workload`] against the largest
    /// partition's statistics (table-wide row count, engine-wide pool
    /// budget). Apply the result with [`Engine::apply_design`].
    pub fn advise_design_with(
        &self,
        table: &str,
        cfg: &WorkloadAdvisorConfig,
    ) -> Result<WorkloadRecommendation> {
        let entry = self.entry(table)?;
        let profile = entry.profile.lock().clone();
        let arity = entry.schema.arity();
        let cand: Vec<usize> = profile
            .cols()
            .iter()
            .map(|c| c.col)
            .filter(|&c| c != entry.clustered_col && c < arity)
            .collect();
        drop(entry);
        if !cand.is_empty() {
            self.analyze(table, &cand)?;
        }
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let total: u64 = lt.parts.iter().map(|p| p.read().heap().len()).sum();
        let largest = (0..lt.parts.len())
            .max_by_key(|&i| lt.parts[i].read().heap().len())
            .expect("loaded tables have at least one partition");
        let part = lt.parts[largest].read();
        Ok(recommend_for_workload(
            &part,
            &self.config.disk,
            total,
            self.config.pool_pages,
            &profile,
            cfg,
        ))
    }

    /// Replace the table's secondary access structures with a
    /// [`DesignSet`] (build/drop per shard): every existing secondary
    /// B+Tree and CM is dropped, then each column choice builds its
    /// structure on every shard, and statistics are refreshed so the
    /// planner can route through the new set immediately.
    ///
    /// Without MVCC the table's load lock is taken **exclusively** for
    /// the switch, so no in-flight query observes a half-applied design —
    /// queries planned after the switch see only the new structures.
    /// With [`EngineConfig::mvcc`] the switch is **online**: the new set
    /// is built per shard under the shard *read* lock (readers and
    /// writers proceed), then installed in a brief write-locked flip
    /// that first catches up any rows appended during the build
    /// ([`Table::catch_up_structures`]).
    pub fn apply_design(&self, table: &str, design: &DesignSet) -> Result<AppliedDesign> {
        let entry = self.entry(table)?;
        let arity = entry.schema.arity();
        if let Some(bad) = design.columns.iter().find(|c| c.col >= arity) {
            return Err(EngineError::BadColumn { table: entry.name.clone(), col: bad.col });
        }
        let analyze: Vec<usize> = design
            .columns
            .iter()
            .filter(|c| c.structure.is_some())
            .map(|c| c.col)
            .collect();
        if self.mvcc.is_some() {
            return self.apply_design_online(&entry, design, &analyze);
        }
        let loaded = entry.loaded.write();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let mut applied = AppliedDesign { btrees: 0, cms: 0, dropped: 0 };
        for (i, part) in lt.parts.iter().enumerate() {
            let mut t = part.write();
            if i == 0 {
                applied.dropped = t.secondaries().len() + t.cms().len();
            }
            t.clear_access_structures();
            for cd in &design.columns {
                match &cd.structure {
                    Structure::None => {}
                    Structure::BTree => {
                        t.add_secondary(
                            self.backends[i].disk(),
                            format!("adv_btree_{}", cd.col),
                            vec![cd.col],
                        );
                        applied.btrees += usize::from(i == 0);
                    }
                    Structure::Cm(spec) => {
                        t.add_cm(format!("adv_cm_{}", cd.col), spec.clone());
                        applied.cms += usize::from(i == 0);
                    }
                }
            }
            if !analyze.is_empty() {
                t.analyze_cols(&analyze);
            }
        }
        self.log_design_change(&entry.name, &lt.parts[0].read());
        Ok(applied)
    }

    /// The online (MVCC) design switch: per shard, build the new
    /// structure set from the current heap under the shard **read**
    /// lock — concurrent queries keep running, writers keep appending —
    /// then take the write lock only to replay the rows appended during
    /// the build into the new set and flip it in
    /// ([`Table::install_access_structures`] bumps the design epoch).
    /// Rows whose version has ended are still indexed: older snapshots
    /// reach them through the structures and filter at visit time.
    fn apply_design_online(
        &self,
        entry: &TableEntry,
        design: &DesignSet,
        analyze: &[usize],
    ) -> Result<AppliedDesign> {
        let _serialized = self.design_lock.lock();
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let mut applied = AppliedDesign { btrees: 0, cms: 0, dropped: 0 };
        for (i, part) in lt.parts.iter().enumerate() {
            // Build phase (read lock): construct the new set from a
            // consistent view of the shard heap.
            let t = part.read();
            let built_len = t.heap().len();
            let mut secs = Vec::new();
            let mut cms = Vec::new();
            for cd in &design.columns {
                match &cd.structure {
                    Structure::None => {}
                    Structure::BTree => secs.push(t.build_secondary(
                        self.backends[i].disk(),
                        format!("adv_btree_{}", cd.col),
                        vec![cd.col],
                    )),
                    Structure::Cm(spec) => {
                        cms.push(t.build_cm(format!("adv_cm_{}", cd.col), spec.clone()))
                    }
                }
            }
            drop(t);
            // Swap phase (brief write lock): catch up and install.
            let mut t = part.write();
            if i == 0 {
                applied.dropped = t.secondaries().len() + t.cms().len();
                applied.btrees = secs.len();
                applied.cms = cms.len();
            }
            t.catch_up_structures(self.backends[i].pool(), built_len, &mut secs, &mut cms)
                .map_err(EngineError::Storage)?;
            t.install_access_structures(secs, cms);
            if !analyze.is_empty() {
                t.analyze_cols(analyze);
            }
        }
        self.log_design_change(&entry.name, &lt.parts[0].read());
        Ok(applied)
    }

    /// Append a [`LogPayload::DesignChange`] record describing `t`'s
    /// complete access-structure set (every shard carries the same set),
    /// so a restart whose checkpoint image predates the change rebuilds
    /// the structures during redo. Design changes are auto-committed —
    /// like the DDL itself, they are never rolled back.
    fn log_design_change(&self, table: &str, t: &Table) {
        let design = crate::recovery::encode_structures(t);
        self.wal.log(
            AUTOCOMMIT_TXN,
            &LogPayload::DesignChange { table: table.to_string(), design },
        );
    }

    /// Names of every table in the catalog (sorted).
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Catalog summary for one table.
    pub fn table_info(&self, table: &str) -> Result<TableInfo> {
        let entry = self.entry(table)?;
        Ok(Self::entry_info(&entry))
    }

    /// A table's schema (available as soon as the table is created).
    pub fn table_schema(&self, table: &str) -> Result<Arc<Schema>> {
        Ok(self.entry(table)?.schema.clone())
    }

    /// Catalog summaries for every table, sorted by name. The catalog
    /// lock is held only to snapshot the entry `Arc`s; per-table state
    /// is read outside it, so a long-running DDL on one table cannot
    /// stall the listing of the others.
    pub fn table_infos(&self) -> Vec<TableInfo> {
        let entries: Vec<Arc<TableEntry>> =
            self.catalog.read().values().cloned().collect();
        let mut infos: Vec<TableInfo> =
            entries.iter().map(|e| Self::entry_info(e)).collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    fn entry_info(entry: &TableEntry) -> TableInfo {
        let loaded = entry.loaded.read();
        match loaded.as_ref() {
            Some(lt) => {
                let (mut rows, mut pages) = (0u64, 0u64);
                let (mut secondaries, mut cms) = (0usize, 0usize);
                for (i, part) in lt.parts.iter().enumerate() {
                    let t = part.read();
                    rows += t.heap().len();
                    pages += t.heap().num_pages();
                    if i == 0 {
                        secondaries = t.secondaries().len();
                        cms = t.cms().len();
                    }
                }
                TableInfo {
                    name: entry.name.clone(),
                    loaded: true,
                    rows,
                    pages,
                    shards: lt.parts.len(),
                    secondaries,
                    cms,
                }
            }
            None => TableInfo {
                name: entry.name.clone(),
                loaded: false,
                rows: 0,
                pages: 0,
                shards: 0,
                secondaries: 0,
                cms: 0,
            },
        }
    }

    /// Run `f` with shared (read-locked) access to a single-shard
    /// table's partition — the escape hatch for tooling layered on the
    /// engine, e.g. the CM Advisor. Errors on multi-shard tables; use
    /// [`Engine::with_shard`] there.
    pub fn with_table<R>(&self, table: &str, f: impl FnOnce(&Table) -> R) -> Result<R> {
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        if lt.parts.len() != 1 {
            return Err(EngineError::ShardedTable(entry.name.clone()));
        }
        let part = lt.parts[0].read();
        let out = f(&part);
        drop(part);
        Ok(out)
    }

    /// Run `f` with shared access to one shard's partition of a table.
    pub fn with_shard<R>(
        &self,
        table: &str,
        shard: usize,
        f: impl FnOnce(&Table) -> R,
    ) -> Result<R> {
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let part = lt
            .parts
            .get(shard)
            .ok_or_else(|| EngineError::BadRid { table: entry.name.clone(), rid: shard as u64 })?;
        let part = part.read();
        let out = f(&part);
        drop(part);
        Ok(out)
    }

    /// Run `f` over every shard's partition of a table, in shard order.
    pub fn with_each_shard(
        &self,
        table: &str,
        mut f: impl FnMut(usize, &Table),
    ) -> Result<()> {
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        for (i, part) in lt.parts.iter().enumerate() {
            f(i, &part.read());
        }
        Ok(())
    }

    // ---- queries ------------------------------------------------------

    /// Execute a query, routing it to the shards it overlaps and, on
    /// each shard, to the access path the cost model estimates cheapest
    /// for the shard-restricted predicate. Reads go through the shards'
    /// buffer pools.
    pub fn execute(&self, table: &str, q: &Query) -> Result<QueryOutcome> {
        self.execute_inner(table, q, None, false, false)
    }

    /// [`Engine::execute`], also collecting the matching rows.
    pub fn execute_collect(&self, table: &str, q: &Query) -> Result<QueryOutcome> {
        self.execute_inner(table, q, None, true, false)
    }

    /// Execute through a specific access path (experiments and oracles).
    pub fn execute_via(
        &self,
        table: &str,
        path: AccessPath,
        q: &Query,
    ) -> Result<QueryOutcome> {
        self.execute_inner(table, q, Some(path), false, false)
    }

    /// [`Engine::execute_via`], also collecting the matching rows.
    pub fn execute_via_collect(
        &self,
        table: &str,
        path: AccessPath,
        q: &Query,
    ) -> Result<QueryOutcome> {
        self.execute_inner(table, q, Some(path), true, false)
    }

    /// The planner's decisions for a query, without executing it: one
    /// leg per shard the query would touch, each carrying that shard's
    /// restricted predicate and chosen access path. Use
    /// [`cm_query::QueryPlan::primary`] for the first leg's choice.
    pub fn explain(&self, table: &str, q: &Query) -> Result<QueryPlan> {
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        Ok(self.plan_query(lt, q, None))
    }

    /// The shard ids a query fans out to (routing diagnostics).
    pub fn route_shards(&self, table: &str, q: &Query) -> Result<Vec<usize>> {
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        Ok(lt.router.shards_for(q))
    }

    /// **Plan phase**: snapshot routing and per-shard cost decisions
    /// into a [`QueryPlan`]. Each overlapping shard contributes one leg
    /// with the query intersected with the shard's ownership range (so
    /// CM lookups, planner estimates, and index probes on that shard see
    /// only the in-range slice) and the access path the cost model
    /// picked against the shard's own statistics. A forced path
    /// overrides every leg's choice; a forced path the planner didn't
    /// cost (no statistics, or no predicate on the index's leading
    /// column) keeps a NaN estimate instead of borrowing the cheapest
    /// path's number.
    pub(crate) fn plan_query(
        &self,
        lt: &LoadedTable,
        q: &Query,
        forced: Option<AccessPath>,
    ) -> QueryPlan {
        let mut legs = Vec::new();
        for i in lt.router.shards_for(q) {
            let Some(sub) = restrict_to_shard(q, lt.router.col(), &lt.router.range_of(i))
            else {
                continue;
            };
            let waited = std::time::Instant::now();
            let part = lt.parts[i].read();
            self.note_read_stall(waited.elapsed());
            let mut choice = self.planner.choose(&part, &sub);
            drop(part);
            if let Some(p) = forced {
                choice.est_ms = choice
                    .alternatives
                    .iter()
                    .find(|(alt, _)| *alt == p)
                    .map(|(_, est)| *est)
                    .unwrap_or(f64::NAN);
                choice.path = p;
            }
            legs.push(ShardLeg { shard: i, query: sub, choice });
        }
        QueryPlan::new(legs)
    }

    /// **Execute phase**, one leg: run the planned path against the
    /// leg's shard backend with its own [`ExecContext`], buffering any
    /// collected rows per leg (merged by the caller in shard order).
    /// The scan paths (full, sorted, CM) sweep their heap pages as
    /// vectored runs; the pipelined path deliberately keeps per-fetch
    /// charging (the paper's §3.1 model). A forced secondary path the
    /// index cannot serve (no predicate on its first key column)
    /// surfaces as [`EngineError::Query`].
    pub(crate) fn run_leg(
        &self,
        lt: &LoadedTable,
        leg: &ShardLeg,
        collect: bool,
        cold: bool,
        snap: Option<&Snapshot>,
    ) -> Result<(RunResult, Vec<Row>)> {
        let mut rows: Vec<Row> = Vec::new();
        let r = self.run_leg_visit(lt, leg, cold, snap, |row| {
            if collect {
                rows.push(row.to_vec());
            }
        })?;
        Ok((r, rows))
    }

    /// [`Engine::run_leg`] with an arbitrary visitor over the leg's
    /// matching rows — the shared execute core single-table collection,
    /// per-leg aggregation folds, and hash-join probes all drive.
    pub(crate) fn run_leg_visit(
        &self,
        lt: &LoadedTable,
        leg: &ShardLeg,
        cold: bool,
        snap: Option<&Snapshot>,
        mut visit: impl FnMut(&[cm_storage::Value]),
    ) -> Result<RunResult> {
        let waited = std::time::Instant::now();
        let part = lt.parts[leg.shard].read();
        self.note_read_stall(waited.elapsed());
        let t = &*part;
        let backend = &self.backends[leg.shard];
        let mut ctx = if cold {
            ExecContext::cold(backend.disk())
        } else {
            ExecContext::through(backend.disk(), backend.pool())
        };
        if let Some(s) = snap {
            ctx = ctx.at_snapshot(s);
        }
        let q = &leg.query;
        let r = match leg.choice.path {
            AccessPath::FullScan => t.exec_full_scan_visit(&ctx, q, &mut visit),
            AccessPath::SecondarySorted(id) => {
                t.exec_secondary_sorted_visit(&ctx, id, q, &mut visit)?
            }
            AccessPath::SecondaryPipelined(id) => {
                t.exec_secondary_pipelined_visit(&ctx, id, q, &mut visit)?
            }
            AccessPath::CmScan(id) => t.exec_cm_scan_visit(&ctx, id, q, &mut visit),
        };
        Ok(r)
    }

    /// Record one read query in the table's workload profile: per
    /// predicated column, the estimated lookup-key count and the hashes
    /// of the predicated values (the column's hot set). Only range
    /// predicates need statistics (estimated from shard 0's partition,
    /// whose read lock is taken lazily and only then, so point-query
    /// profiling never couples shards); columns without statistics fall
    /// back to one lookup key.
    pub(crate) fn profile_read(&self, entry: &TableEntry, lt: &LoadedTable, q: &Query) {
        let cols = q.predicated_cols();
        let mut noted: Vec<(usize, f64, Vec<u64>)> = Vec::with_capacity(cols.len());
        let mut t0 = None;
        for col in cols {
            let Some(pred) = q.pred_on(col) else { continue };
            let (keys, hashes) = match &pred.op {
                PredOp::Eq(v) => (1.0, vec![WorkloadProfile::hash_value(v)]),
                PredOp::In(vs) => (
                    vs.len() as f64,
                    vs.iter().map(WorkloadProfile::hash_value).collect(),
                ),
                PredOp::Between(lo, hi) => {
                    let t0 = t0.get_or_insert_with(|| lt.parts[0].read());
                    let keys = Planner::range_fraction(t0, col, lo, hi)
                        .and_then(|f| {
                            t0.col_stats(col)
                                .map(|s| (f * s.corr.distinct_u as f64).max(1.0))
                        })
                        .unwrap_or(1.0);
                    (keys, vec![WorkloadProfile::hash_value(&(lo, hi))])
                }
            };
            noted.push((col, keys, hashes));
        }
        drop(t0);
        let mut profile = entry.profile.lock();
        profile.note_read();
        for (col, keys, hashes) in noted {
            profile.note_pred(col, keys, &hashes);
        }
    }

    pub(crate) fn execute_inner(
        &self,
        table: &str,
        q: &Query,
        forced: Option<AccessPath>,
        collect: bool,
        cold: bool,
    ) -> Result<QueryOutcome> {
        let entry = self.entry(table)?;
        // The table-level lock is the reader's first blocking point: an
        // offline (non-MVCC) `apply_design` holds its *write* side for
        // the whole rebuild, so the wait belongs in the stall counters
        // alongside the shard-lock waits.
        let waited = std::time::Instant::now();
        let loaded = entry.loaded.read();
        self.note_read_stall(waited.elapsed());
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        self.profile_read(&entry, lt, q);

        // MVCC engines read at a snapshot: acquired once, before the
        // plan phase, so every fan-out leg filters row visibility at
        // the same clock tick however the legs are scheduled. The
        // registration pins the timestamp against vacuum until the
        // query (all legs) is done.
        let snap = self.mvcc.as_ref().map(|mv| mv.begin());
        let snap_ref = snap.as_ref();

        // Plan phase: routing + per-shard path choices, snapshotted.
        let plan = self.plan_query(lt, q, forced);

        // Execute phase: single-leg (or single-worker) plans run inline;
        // multi-leg plans fan out on the shared worker pool, each leg on
        // its own shard backend. Results come back in leg (shard) order
        // either way, so merging is deterministic. Legs are read-only, so
        // surfacing the first failed leg's error loses nothing.
        let leg_runs: Vec<Result<(RunResult, Vec<Row>)>> =
            if plan.legs.len() <= 1 || self.executor.workers() == 1 {
                plan.legs
                    .iter()
                    .map(|leg| self.run_leg(lt, leg, collect, cold, snap_ref))
                    .collect()
            } else {
                self.executor.run(
                    plan.legs
                        .iter()
                        .map(|leg| move || self.run_leg(lt, leg, collect, cold, snap_ref))
                        .collect(),
                )
            };

        let mut run = RunResult { matched: 0, examined: 0, io: IoStats::default() };
        let mut rows: Vec<Row> = Vec::new();
        let mut legs: Vec<LegOutcome> = Vec::with_capacity(plan.legs.len());
        let mut leg_ms: Vec<f64> = Vec::with_capacity(plan.legs.len());
        // Merge in explicit `merge_key` order — never completion order.
        // The executor returns results in submission order and
        // `QueryPlan::new` normalised submission to ascending merge key,
        // so however many workers raced the legs, this pairing (and the
        // concatenated row order below) is identical on 1 or N workers.
        let mut paired: Vec<(ShardLeg, LegRun)> =
            plan.legs.into_iter().zip(leg_runs).collect();
        paired.sort_by_key(|(leg, _)| leg.merge_key());
        for (leg, leg_run) in paired {
            let (r, leg_rows) = leg_run?;
            run.matched += r.matched;
            run.examined += r.examined;
            run.io.add(&r.io);
            leg_ms.push(r.io.elapsed_ms);
            rows.extend(leg_rows);
            if forced.is_none() {
                // Every leg is a routing decision of its own: per-shard
                // statistics can pick different paths per shard, and an
                // under-counted multi-shard query would skew the route
                // tallies.
                self.note_route(leg.choice.path);
            }
            legs.push(LegOutcome { shard: leg.shard, choice: leg.choice, run: r });
        }
        let parallel_ms = scheduled_makespan(&leg_ms, self.executor.workers());

        let plan_summary = legs.first().map(|l| l.choice.clone()).unwrap_or_else(|| {
            // Every shard was pruned (e.g. an inverted range): report the
            // forced path or a zero-cost scan, with no alternatives.
            let mut p = PlanChoice::empty();
            if let Some(f) = forced {
                p.path = f;
                p.est_ms = f64::NAN;
            }
            p
        });
        self.queries.fetch_add(1, Ordering::Relaxed);
        let shards = legs.iter().map(|l| l.shard).collect();
        Ok(QueryOutcome {
            plan: plan_summary,
            run,
            legs,
            parallel_ms,
            shards,
            rows: collect.then_some(rows),
        })
    }

    // ---- writes -------------------------------------------------------

    /// INSERT one row, routed to the shard owning its clustered key and
    /// maintaining every access structure there (heap write through the
    /// shard's pool, B+Tree postings charged, CM updates memory-only),
    /// with WAL records appended to the engine log. Call
    /// [`Engine::commit`] to force the log. The returned RID carries the
    /// shard tag.
    pub fn insert(&self, table: &str, row: Row) -> Result<Rid> {
        self.insert_txn(table, row, AUTOCOMMIT_TXN)
    }

    /// [`Engine::insert`] tagged with a session transaction id: the
    /// typed [`LogPayload::Insert`] record carries `txn`, and recovery
    /// rolls the insert back unless a matching commit record survives
    /// ([`AUTOCOMMIT_TXN`] is always committed).
    pub fn insert_txn(&self, table: &str, row: Row, txn: u64) -> Result<Rid> {
        let entry = self.entry(table)?;
        entry.schema.validate(&row).map_err(EngineError::Storage)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let shard = lt.router.shard_of_row(&row);
        // The maintenance volume is gathered into a detached batch, the
        // typed redo record is appended to it, and the whole batch goes
        // to the shared log *before the shard lock drops*: a fuzzy
        // checkpoint snapshots shards under this lock, so every mutation
        // its image can contain is already in the log, and per-shard
        // record order always matches mutation order (redo replays a
        // shard's history exactly as it happened).
        let mut batch = WalBatch::new();
        let rid = {
            let mut t = lt.parts[shard].write();
            let redo_row = row.clone();
            let rid = t.insert_row(self.backends[shard].pool(), Some(&mut batch), row)?;
            if let Some(mv) = &self.mvcc {
                // Autocommit single-shard writes stamp a plain commit
                // timestamp directly: any snapshot new enough to see it
                // is still waiting on this shard's write lock. Session
                // transactions stamp their txn marker, resolved by the
                // commit table at `log_commit`.
                let begin =
                    if txn == AUTOCOMMIT_TXN { mv.next_ts() } else { pending_stamp(txn) };
                t.set_begin_stamp(rid, begin);
            }
            batch.push(
                txn,
                &LogPayload::Insert {
                    table: entry.name.clone(),
                    shard: shard as u16,
                    rid: rid.0,
                    row: redo_row,
                },
            );
            self.wal.append_batch(&batch);
            rid
        };
        self.inserts.fetch_add(1, Ordering::Relaxed);
        entry.profile.lock().note_write();
        Ok(Rid::sharded(shard, rid))
    }

    /// INSERT a batch of rows with one shard-lock hold per touched
    /// shard (autocommit).
    pub fn insert_many(&self, table: &str, rows: Vec<Row>) -> Result<Vec<Rid>> {
        self.insert_many_txn(table, rows, AUTOCOMMIT_TXN)
    }

    /// [`Engine::insert_many`] tagged with a session transaction id.
    ///
    /// Rows are routed to their shards up front, then each shard group
    /// is inserted — heap append, access-structure maintenance, MVCC
    /// begin stamps, and the typed redo records — under a *single*
    /// write-lock acquisition, with one WAL batch appended before that
    /// lock drops. Row-at-a-time ingest takes the lock and logs once
    /// per row, so a burst of inserts becomes a stream of short
    /// exclusive holds that concurrent readers keep tripping over;
    /// batching amortizes both. Groups larger than `INSERT_CHUNK` (128)
    /// rows release the lock between chunks so a bulk load never
    /// becomes one long exclusive hold. Returned rids line up with the
    /// input row order.
    pub fn insert_many_txn(&self, table: &str, rows: Vec<Row>, txn: u64) -> Result<Vec<Rid>> {
        let entry = self.entry(table)?;
        for row in &rows {
            entry.schema.validate(row).map_err(EngineError::Storage)?;
        }
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let total = rows.len();
        let mut by_shard: Vec<Vec<(usize, Row)>> = vec![Vec::new(); lt.parts.len()];
        for (pos, row) in rows.into_iter().enumerate() {
            by_shard[lt.router.shard_of_row(&row)].push((pos, row));
        }
        let mut rids: Vec<Rid> = vec![Rid(0); total];
        for (shard, group) in by_shard.into_iter().enumerate() {
            let mut queued = group.into_iter().peekable();
            while queued.peek().is_some() {
                let mut batch = WalBatch::new();
                let mut t = lt.parts[shard].write();
                let mut failed = None;
                for (pos, row) in queued.by_ref().take(INSERT_CHUNK) {
                    let redo_row = row.clone();
                    match t.insert_row(self.backends[shard].pool(), Some(&mut batch), row) {
                        Ok(rid) => {
                            if let Some(mv) = &self.mvcc {
                                // Same stamping rule as `insert_txn`:
                                // plain commit timestamps for autocommit
                                // (no snapshot new enough to see them
                                // can be running — it would be waiting
                                // on this write lock), pending markers
                                // for session transactions.
                                let begin = if txn == AUTOCOMMIT_TXN {
                                    mv.next_ts()
                                } else {
                                    pending_stamp(txn)
                                };
                                t.set_begin_stamp(rid, begin);
                            }
                            batch.push(
                                txn,
                                &LogPayload::Insert {
                                    table: entry.name.clone(),
                                    shard: shard as u16,
                                    rid: rid.0,
                                    row: redo_row,
                                },
                            );
                            self.inserts.fetch_add(1, Ordering::Relaxed);
                            rids[pos] = Rid::sharded(shard, rid);
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                // Even on a mid-chunk failure the records gathered so
                // far go to the log before the lock drops: a fuzzy
                // checkpoint may already have imaged the rows that
                // *did* land, so the log must cover them (same
                // ordering rule as `insert_txn`).
                self.wal.append_batch(&batch);
                drop(t);
                if let Some(e) = failed {
                    return Err(e.into());
                }
            }
        }
        entry.profile.lock().note_writes(total as u64);
        Ok(rids)
    }

    /// DELETE one row by (shard-tagged) RID, retracting it from every
    /// access structure on its shard.
    pub fn delete(&self, table: &str, rid: Rid) -> Result<Row> {
        self.delete_txn(table, rid, AUTOCOMMIT_TXN)
    }

    /// [`Engine::delete`] tagged with a session transaction id: the
    /// typed [`LogPayload::Delete`] record carries the before-image of
    /// the victim row so recovery can undo the delete when `txn` never
    /// committed.
    pub fn delete_txn(&self, table: &str, rid: Rid, txn: u64) -> Result<Row> {
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let shard = rid.shard_index();
        if shard >= lt.parts.len() {
            return Err(EngineError::BadRid { table: entry.name.clone(), rid: rid.0 });
        }
        let mut batch = WalBatch::new();
        // Appended inside the shard lock for the same fuzzy-checkpoint
        // ordering guarantee as `insert_txn`.
        let row = {
            let mut t = lt.parts[shard].write();
            let row = if let Some(mv) = &self.mvcc {
                // MVCC delete: only end-stamp the version. Heap bytes and
                // access-structure entries stay for older snapshots; vacuum
                // reclaims them once no live snapshot can see the version.
                if t.stamp_of(rid.local()).1 != LIVE_TS {
                    return Err(EngineError::BadRid { table: entry.name.clone(), rid: rid.0 });
                }
                let end =
                    if txn == AUTOCOMMIT_TXN { mv.next_ts() } else { pending_stamp(txn) };
                t.end_version(self.backends[shard].pool(), rid.local(), end)
                    .map_err(EngineError::Storage)?
            } else {
                t.delete_row(self.backends[shard].pool(), Some(&mut batch), rid.local())?
            };
            batch.push(
                txn,
                &LogPayload::Delete {
                    table: entry.name.clone(),
                    shard: shard as u16,
                    rid: rid.local().0,
                    row: row.clone(),
                },
            );
            self.wal.append_batch(&batch);
            row
        };
        if self.mvcc.is_some() {
            self.gc_deletes.fetch_add(1, Ordering::Relaxed);
        }
        self.deletes.fetch_add(1, Ordering::Relaxed);
        entry.profile.lock().note_write();
        Ok(row)
    }

    /// DELETE every row matching `q` on one shard (scan under the shard
    /// write lock, WAL records gathered into a detached batch and
    /// appended — with one typed [`LogPayload::DeleteSet`] carrying the
    /// victims' before-images — before the lock drops): the per-shard
    /// leg of [`Engine::delete_where`].
    fn delete_where_leg(
        &self,
        entry: &TableEntry,
        lt: &LoadedTable,
        shard: usize,
        sub: &Query,
        txn: u64,
    ) -> Result<Vec<Rid>> {
        if let Some(mv) = &self.mvcc {
            return self.delete_where_leg_mvcc(entry, lt, shard, sub, txn, mv);
        }
        let mut batch = WalBatch::new();
        let mut tagged: Vec<Rid> = Vec::new();
        let mut t = lt.parts[shard].write();
        let pool = self.backends[shard].pool();
        let mut local: Vec<Rid> = Vec::new();
        // The victim scan sweeps the whole shard heap as one vectored run
        // through the pool — one seek even while other shards' legs (or
        // the WAL) share their devices.
        let pages = t.heap().num_pages();
        if pages > 0 {
            let tpp = t.heap().tups_per_page() as u64;
            t.heap().read_run_visit(pool, 0, pages - 1, |page, page_rows| {
                let start = page * tpp;
                for (j, row) in page_rows.iter().enumerate() {
                    if sub.matches(row) {
                        local.push(Rid(start + j as u64));
                    }
                }
            })?;
        }
        let mut victims_log: Vec<(u64, Row)> = Vec::with_capacity(local.len());
        for &rid in &local {
            let row = t.delete_row(pool, Some(&mut batch), rid)?;
            victims_log.push((rid.0, row));
            tagged.push(Rid::sharded(shard, rid));
        }
        if !victims_log.is_empty() {
            batch.push(
                txn,
                &LogPayload::DeleteSet {
                    table: entry.name.clone(),
                    shard: shard as u16,
                    victims: victims_log,
                },
            );
        }
        self.wal.append_batch(&batch);
        Ok(tagged)
    }

    /// The MVCC shape of [`Engine::delete_where`]'s per-shard leg: the
    /// victim scan runs under the shard *read* lock against a fresh
    /// snapshot (concurrent readers keep flowing), then a brief write
    /// lock end-stamps the victims with the transaction's pending mark.
    /// Rows whose end stamp changed between the two phases — another
    /// writer got there first, or vacuum reclaimed the slot — are
    /// skipped, so the delete never clobbers a concurrent writer. The
    /// [`LogPayload::DeleteSet`] record is appended inside the write
    /// lock for the same fuzzy-checkpoint ordering guarantee as the
    /// non-MVCC leg.
    fn delete_where_leg_mvcc(
        &self,
        entry: &TableEntry,
        lt: &LoadedTable,
        shard: usize,
        sub: &Query,
        txn: u64,
        mv: &Arc<MvccState>,
    ) -> Result<Vec<Rid>> {
        let pool = self.backends[shard].pool();
        // Phase 1: snapshot scan under the read lock.
        let mut local: Vec<Rid> = Vec::new();
        {
            let t = lt.parts[shard].read();
            let snap = mv.begin();
            let pages = t.heap().num_pages();
            if pages > 0 {
                let tpp = t.heap().tups_per_page() as u64;
                t.heap().read_run_visit(pool, 0, pages - 1, |page, page_rows| {
                    let start = page * tpp;
                    for (j, row) in page_rows.iter().enumerate() {
                        let rid = Rid(start + j as u64);
                        let (b, e) = t.stamp_of(rid);
                        if sub.matches(row) && snap.sees(b, e) {
                            local.push(rid);
                        }
                    }
                })?;
            }
        }
        // Phase 2: brief write lock — stamp, log, done.
        let mut batch = WalBatch::new();
        let mut tagged: Vec<Rid> = Vec::new();
        let mut victims_log: Vec<(u64, Row)> = Vec::with_capacity(local.len());
        {
            let mut t = lt.parts[shard].write();
            for &rid in &local {
                if t.stamp_of(rid).1 != LIVE_TS {
                    continue;
                }
                let row = t
                    .end_version(pool, rid, pending_stamp(txn))
                    .map_err(EngineError::Storage)?;
                victims_log.push((rid.0, row));
                tagged.push(Rid::sharded(shard, rid));
            }
            if !victims_log.is_empty() {
                batch.push(
                    txn,
                    &LogPayload::DeleteSet {
                        table: entry.name.clone(),
                        shard: shard as u16,
                        victims: victims_log,
                    },
                );
            }
            self.wal.append_batch(&batch);
        }
        self.gc_deletes.fetch_add(tagged.len() as u64, Ordering::Relaxed);
        Ok(tagged)
    }

    /// DELETE every row matching `q` (found by a charged scan of the
    /// overlapping shards); returns the victims' shard-tagged RIDs, in
    /// shard order. Like reads, the per-shard legs fan out on the worker
    /// pool — each leg holds only its own shard's write lock, so a
    /// multi-shard purge doesn't serialize the scans.
    pub fn delete_where(&self, table: &str, q: &Query) -> Result<Vec<Rid>> {
        self.delete_where_txn(table, q, AUTOCOMMIT_TXN)
    }

    /// [`Engine::delete_where`] tagged with a session transaction id:
    /// each shard leg logs one [`LogPayload::DeleteSet`] record carrying
    /// its victims' before-images under `txn`.
    pub fn delete_where_txn(&self, table: &str, q: &Query, txn: u64) -> Result<Vec<Rid>> {
        // An MVCC autocommit purge spans shards, so it cannot use plain
        // timestamps (a snapshot taken between two legs would see a torn
        // half-delete). It borrows an internal transaction instead: legs
        // stamp its pending mark, and visibility flips atomically at the
        // commit record appended below once every leg succeeded. On a leg
        // error the commit never happens — the stamps stay unresolvable
        // (invisible as deletes) and recovery rolls the log records back.
        let (txn, implicit) = match &self.mvcc {
            Some(_) if txn == AUTOCOMMIT_TXN => (self.alloc_txn(), true),
            _ => (txn, false),
        };
        let entry = self.entry(table)?;
        let loaded = entry.loaded.read();
        let lt = loaded.as_ref().ok_or_else(|| EngineError::NotLoaded(entry.name.clone()))?;
        let legs: Vec<(usize, Query)> = lt
            .router
            .shards_for(q)
            .into_iter()
            .filter_map(|i| {
                restrict_to_shard(q, lt.router.col(), &lt.router.range_of(i))
                    .map(|sub| (i, sub))
            })
            .collect();
        let results: Vec<Result<Vec<Rid>>> =
            if legs.len() <= 1 || self.executor.workers() == 1 {
                legs.iter()
                    .map(|(i, sub)| self.delete_where_leg(&entry, lt, *i, sub, txn))
                    .collect()
            } else {
                self.executor.run(
                    legs.iter()
                        .map(|(i, sub)| {
                            let entry = &entry;
                            move || self.delete_where_leg(entry, lt, *i, sub, txn)
                        })
                        .collect(),
                )
            };
        // Merge in shard order. Legs that succeeded have already mutated
        // their shard and appended their WAL batch, so their counters and
        // victim RIDs are recorded even when another leg failed — only
        // then is the first error surfaced.
        let mut victims: Vec<Rid> = Vec::new();
        let mut first_err: Option<EngineError> = None;
        for res in results {
            match res {
                Ok(tagged) => {
                    self.deletes.fetch_add(tagged.len() as u64, Ordering::Relaxed);
                    entry.profile.lock().note_writes(tagged.len() as u64);
                    victims.extend(tagged);
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                if implicit {
                    self.log_commit(txn);
                }
                Ok(victims)
            }
        }
    }

    /// Make every appended WAL record durable (group commit point);
    /// returns the I/O this call charged — zero when a concurrent
    /// leader's flush covered it. May also trigger an automatic fuzzy
    /// checkpoint when [`EngineConfig::checkpoint_every`] records have
    /// accumulated since the last one.
    pub fn commit(&self) -> IoStats {
        let io = self.wal.commit();
        self.maybe_checkpoint();
        self.maybe_vacuum();
        io
    }

    /// Multi-version garbage collection: under each shard's write lock,
    /// rewrite every resolvable pending stamp to its plain commit
    /// timestamp, then physically reclaim (heap tombstone + access
    /// structure retraction) the versions whose end timestamp is at or
    /// below the oldest live snapshot — no current or future reader can
    /// see them. Returns `(stamps_resolved, versions_reclaimed)`; a
    /// no-op `(0, 0)` without MVCC. Logs nothing: the logical deletes
    /// that ended these versions are already in the WAL, and a
    /// checkpoint image materializes ended versions as tombstones.
    ///
    /// Reclaim work is chunked (see [`vacuum_locked`](Self::vacuum)
    /// internals): each shard write-lock hold retracts at most
    /// `VACUUM_CHUNK` versions, keeping reader stalls bounded however
    /// large the dead backlog has grown.
    pub fn vacuum(&self) -> Result<(u64, u64)> {
        let _serialized = self.vacuum_lock.lock();
        self.vacuum_locked()
    }

    /// The vacuum pass body; callers must hold `vacuum_lock`.
    ///
    /// Physical reclaim chunks its shard write-lock holds at
    /// [`VACUUM_CHUNK`] versions, so a reader arriving mid-vacuum waits
    /// for one bounded chunk instead of the whole backlog.
    fn vacuum_locked(&self) -> Result<(u64, u64)> {
        let Some(mv) = &self.mvcc else { return Ok((0, 0)) };
        // Commit-table entries at or below the clock *now* are prunable
        // afterwards: a transaction's stamps are all written before its
        // commit record, so this pass rewrites every one of them.
        let cutoff = mv.now();
        let oldest = mv.oldest_live();
        let entries: Vec<Arc<TableEntry>> = self.catalog.read().values().cloned().collect();
        let mut resolved = 0u64;
        let mut reclaimed = 0u64;
        for entry in entries {
            let loaded = entry.loaded.read();
            let Some(lt) = loaded.as_ref() else { continue };
            for (i, part) in lt.parts.iter().enumerate() {
                // One hold rewrites stamps and collects the victims...
                let victims = {
                    let mut t = part.write();
                    resolved += t.resolve_stamps(|stamp| mv.resolve(stamp));
                    t.reclaimable(oldest)
                };
                // ...then the physical reclaim runs in bounded holds so
                // concurrent readers never wait out a full pass. Rids
                // are stable slot ids, nothing resurrects an ended
                // version, and `vacuum_lock` keeps other vacuums out,
                // so releasing the shard between chunks is safe.
                for chunk in victims.chunks(VACUUM_CHUNK) {
                    let mut t = part.write();
                    for rid in chunk {
                        t.delete_row(self.backends[i].pool(), None, *rid)?;
                        reclaimed += 1;
                    }
                }
            }
        }
        mv.prune_commits(cutoff);
        mv.note_resolved(resolved);
        mv.note_reclaimed(reclaimed);
        mv.note_vacuum();
        Ok((resolved, reclaimed))
    }

    /// Auto-vacuum trigger, piggybacked on commit points: runs a
    /// [`Engine::vacuum`] pass once [`EngineConfig::gc_every`] MVCC
    /// deletes have accumulated. Skips (rather than queues) when a
    /// vacuum is already running.
    pub(crate) fn maybe_vacuum(&self) {
        if self.mvcc.is_none() || self.config.gc_every == 0 {
            return;
        }
        if self.gc_deletes.load(Ordering::Relaxed) < self.config.gc_every {
            return;
        }
        if let Some(_serialized) = self.vacuum_lock.try_lock() {
            self.gc_deletes.store(0, Ordering::Relaxed);
            let _ = self.vacuum_locked();
        }
    }

    /// Allocate a fresh transaction id for a session's write batch.
    /// Ids are never reused; [`AUTOCOMMIT_TXN`] (0) is reserved for
    /// writes that commit implicitly.
    pub(crate) fn alloc_txn(&self) -> u64 {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// Append a commit record for `txn` (no-op for [`AUTOCOMMIT_TXN`]).
    /// Durability still requires a subsequent [`Engine::commit`] flush.
    ///
    /// Under MVCC this is also the *visibility* point: the transaction
    /// gets its commit timestamp from the global clock, the commit
    /// table resolves the transaction's pending stamps, and the record
    /// carries the timestamp so recovery can restore the clock.
    /// Non-MVCC engines log `ts = 0`.
    pub fn log_commit(&self, txn: u64) {
        if txn != AUTOCOMMIT_TXN {
            let ts = match &self.mvcc {
                Some(mv) => mv.commit_txn(txn),
                None => 0,
            };
            self.wal.log(txn, &LogPayload::Commit { ts });
            self.maybe_vacuum();
        }
    }

    /// The durable (flushed) prefix of the framed WAL stream — what a
    /// crash after the last commit would leave behind.
    pub fn durable_log(&self) -> Vec<u8> {
        self.wal.durable_log()
    }

    /// The entire appended WAL stream, including the not-yet-durable
    /// tail. Crash simulations cut this at arbitrary byte offsets.
    pub fn appended_log(&self) -> Vec<u8> {
        self.wal.appended_log()
    }

    /// Flush every shard's buffer pool (between-trial cache flushing, as
    /// in the paper's methodology); returns the I/O charged.
    pub fn flush_pool(&self) -> IoStats {
        let mut io = IoStats::default();
        for b in &self.backends {
            io.add(&b.flush());
        }
        io
    }

    // ---- statistics ---------------------------------------------------

    /// Cumulative engine statistics. Catalog-derived aggregates snapshot
    /// the entry `Arc`s under one brief catalog read lock, then read
    /// per-table state outside it.
    pub fn stats(&self) -> EngineStats {
        let infos = self.table_infos();
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            routes: self.route_counts(),
            io: self.io_totals(),
            pool: self.pool_totals(),
            wal_records: self.wal.records(),
            wal_durable_bytes: self.wal.durable_bytes(),
            wal: self.wal.stats(),
            tables: infos.len(),
            total_rows: infos.iter().map(|i| i.rows).sum(),
            mvcc: self.mvcc_stats(),
            read_stall_ms: self.read_stall_ns.load(Ordering::Relaxed) as f64 / 1e6,
            read_stalls: self.read_stalls.load(Ordering::Relaxed),
            read_stall_max_ms: self.read_stall_max_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }

    /// Shortest read-lock wait counted as a stall in
    /// [`EngineStats::read_stalls`]: waits under 50µs are the ordinary
    /// cost of an uncontended acquisition (plus timer noise), not a
    /// reader blocked behind a writer. The *total* in
    /// [`EngineStats::read_stall_ms`] accumulates every wait regardless,
    /// so mean wait-per-read stays unbiased.
    pub const STALL_FLOOR: Duration = Duration::from_micros(50);

    /// Fold one shard-read-lock acquisition wait into the stall counters
    /// (see [`EngineStats::read_stall_ms`]).
    pub(crate) fn note_read_stall(&self, waited: Duration) {
        let ns = waited.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.read_stall_ns.fetch_add(ns, Ordering::Relaxed);
        if waited >= Self::STALL_FLOOR {
            self.read_stalls.fetch_add(1, Ordering::Relaxed);
            self.read_stall_max_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// WAL group-commit behaviour counters.
    pub fn wal_stats(&self) -> GroupCommitStats {
        self.wal.stats()
    }

    /// Routing decisions by chosen path (cost-based executions only;
    /// forced paths are not counted).
    pub fn route_counts(&self) -> RouteCounts {
        RouteCounts {
            full_scan: self.route_full.load(Ordering::Relaxed),
            secondary_sorted: self.route_sorted.load(Ordering::Relaxed),
            secondary_pipelined: self.route_pipelined.load(Ordering::Relaxed),
            cm_scan: self.route_cm.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_route(&self, path: AccessPath) {
        let counter = match path {
            AccessPath::FullScan => &self.route_full,
            AccessPath::SecondarySorted(_) => &self.route_sorted,
            AccessPath::SecondaryPipelined(_) => &self.route_pipelined,
            AccessPath::CmScan(_) => &self.route_cm,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn entry(&self, table: &str) -> Result<Arc<TableEntry>> {
        self.catalog
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))
    }
}

// The engine must be shareable across session threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::CmSpec;
    use cm_query::Pred;
    use cm_storage::{Column, Value, ValueType};

    fn demo_rows(n: i64, cats: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                let cat = i % cats;
                vec![Value::Int(cat), Value::Int(cat * 100 + (i * 7) % 100)]
            })
            .collect()
    }

    fn demo_engine_with(config: EngineConfig) -> Arc<Engine> {
        let engine = Engine::new(config);
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
        ]));
        engine.create_table("items", schema, 0, 20, 100).unwrap();
        engine.load("items", demo_rows(5000, 100)).unwrap();
        engine
    }

    fn demo_engine() -> Arc<Engine> {
        demo_engine_with(EngineConfig::default())
    }

    #[test]
    fn create_load_query_roundtrip() {
        let engine = demo_engine();
        let info = engine.table_info("items").unwrap();
        assert!(info.loaded);
        assert_eq!(info.rows, 5000);
        assert_eq!(info.shards, 1);
        let out = engine
            .execute("items", &Query::single(Pred::eq(0, 42i64)))
            .unwrap();
        assert_eq!(out.run.matched, 50);
    }

    #[test]
    fn unknown_table_and_duplicates_error() {
        let engine = demo_engine();
        assert!(matches!(
            engine.execute("nope", &Query::default()),
            Err(EngineError::UnknownTable(_))
        ));
        let schema = Arc::new(Schema::new(vec![Column::new("x", ValueType::Int)]));
        assert!(matches!(
            engine.create_table("items", schema.clone(), 0, 10, 10),
            Err(EngineError::DuplicateTable(_))
        ));
        engine.create_table("empty", schema, 0, 10, 10).unwrap();
        assert!(matches!(
            engine.execute("empty", &Query::default()),
            Err(EngineError::NotLoaded(_))
        ));
    }

    #[test]
    fn load_twice_rejected() {
        let engine = demo_engine();
        assert!(matches!(
            engine.load("items", vec![]),
            Err(EngineError::AlreadyLoaded(_))
        ));
    }

    #[test]
    fn bad_columns_rejected() {
        let engine = demo_engine();
        assert!(matches!(
            engine.create_btree("items", "bad", vec![7]),
            Err(EngineError::BadColumn { col: 7, .. })
        ));
        assert!(matches!(
            engine.create_cm("items", "bad", CmSpec::single_raw(9)),
            Err(EngineError::BadColumn { col: 9, .. })
        ));
    }

    #[test]
    fn cost_based_routing_prefers_cm_for_selective_predicate() {
        let engine = demo_engine();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let out = engine
            .execute("items", &Query::single(Pred::eq(1, 4217i64)))
            .unwrap();
        assert!(
            matches!(out.plan.path, AccessPath::CmScan(_)),
            "chose {:?}",
            out.plan.path
        );
        assert_eq!(engine.route_counts().cm_scan, 1);
    }

    #[test]
    fn routing_falls_back_to_scan_for_wide_predicate() {
        let engine = demo_engine();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        // The whole price domain: every bucket qualifies, the scan wins.
        let out = engine
            .execute("items", &Query::single(Pred::between(1, 0i64, 1_000_000i64)))
            .unwrap();
        assert_eq!(out.plan.path, AccessPath::FullScan, "alts {:?}", out.plan.alternatives);
        assert_eq!(out.run.matched, 5000);
    }

    #[test]
    fn forced_paths_agree_with_oracle() {
        let engine = demo_engine();
        let sec = engine.create_btree("items", "price_idx", vec![1]).unwrap();
        let cm = engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let q = Query::single(Pred::between(1, 4200i64, 4400i64));
        let oracle = engine
            .execute_via_collect("items", AccessPath::FullScan, &q)
            .unwrap();
        for path in [
            AccessPath::SecondarySorted(sec),
            AccessPath::SecondaryPipelined(sec),
            AccessPath::CmScan(cm),
        ] {
            let got = engine.execute_via_collect("items", path, &q).unwrap();
            let mut a = got.rows.clone().unwrap();
            let mut b = oracle.rows.clone().unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{path:?}");
        }
        // Forced paths are not counted as routing decisions.
        assert_eq!(engine.route_counts().total(), 0);
    }

    #[test]
    fn forced_secondary_without_prefix_predicate_surfaces_query_error() {
        let engine = demo_engine();
        let sec = engine.create_btree("items", "cat_price", vec![0, 1]).unwrap();
        // Predicate on price only: the (catid, price) index has no usable
        // prefix. A forced run must error cleanly, not panic.
        let q = Query::single(Pred::eq(1, 4217i64));
        let err = engine
            .execute_via("items", AccessPath::SecondarySorted(sec), &q)
            .unwrap_err();
        assert!(
            matches!(
                &err,
                EngineError::Query(cm_query::QueryError::NoIndexPredicate { index, col: 0 })
                    if index == "cat_price"
            ),
            "got {err:?}"
        );
        assert!(engine
            .execute_via("items", AccessPath::SecondaryPipelined(sec), &q)
            .is_err());
        // Cost-based routing never picks the unusable path, so the same
        // query executes fine un-forced.
        assert!(engine.execute("items", &q).is_ok());
        // The parallel fan-out path surfaces the error too.
        let par = parallel_engine(4, 4);
        let sec = par.create_btree("items", "cat_price", vec![0, 1]).unwrap();
        assert!(matches!(
            par.execute_via("items", AccessPath::SecondarySorted(sec), &q),
            Err(EngineError::Query(_))
        ));
    }

    #[test]
    fn insert_delete_maintain_structures() {
        let engine = demo_engine();
        engine.create_btree("items", "price_idx", vec![1]).unwrap();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let q = Query::single(Pred::eq(1, 999_999i64));
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 0);
        let rid = engine
            .insert("items", vec![Value::Int(99), Value::Int(999_999)])
            .unwrap();
        engine.commit();
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 1);
        let row = engine.delete("items", rid).unwrap();
        assert_eq!(row[1], Value::Int(999_999));
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 0);
        let stats = engine.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.deletes, 1);
        assert!(stats.wal_records >= 3, "heap + index + CM records");
    }

    #[test]
    fn delete_where_removes_matches() {
        let engine = demo_engine();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let q = Query::single(Pred::eq(0, 7i64));
        let victims = engine.delete_where("items", &q).unwrap();
        assert_eq!(victims.len(), 50);
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 0);
        // The rest of the table is intact (tombstones are NULL rows, so a
        // ranged predicate excludes them).
        let rest = engine
            .execute("items", &Query::single(Pred::between(0, 0i64, 1_000_000i64)))
            .unwrap();
        assert_eq!(rest.run.matched, 5000 - 50);
    }

    #[test]
    fn explain_matches_execute_choice() {
        let engine = demo_engine();
        engine.create_btree("items", "price_idx", vec![1]).unwrap();
        let q = Query::single(Pred::eq(1, 1234i64));
        let plan = engine.explain("items", &q).unwrap();
        let out = engine.execute("items", &q).unwrap();
        assert_eq!(plan.primary().path, out.plan.path);
        assert!(plan.primary().alternatives.len() >= 3);
    }

    #[test]
    fn explain_reports_every_leg() {
        let engine = sharded_engine(4);
        // Unpredicated on the clustered column: one leg per shard.
        let plan = engine.explain("items", &Query::single(Pred::eq(1, 4217i64))).unwrap();
        assert_eq!(plan.shards(), vec![0, 1, 2, 3]);
        // A point query plans a single leg on the owning shard.
        let plan = engine.explain("items", &Query::single(Pred::eq(0, 42i64))).unwrap();
        assert_eq!(plan.legs.len(), 1);
        // An unsatisfiable range plans no legs and summarises as a
        // zero-cost scan.
        let plan = engine.explain("items", &Query::single(Pred::between(0, 9i64, 2i64))).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.primary().est_ms, 0.0);
    }

    #[test]
    fn warm_pool_makes_repeats_cheap() {
        let engine = demo_engine();
        let q = Query::single(Pred::eq(0, 3i64));
        let cold = engine.execute("items", &q).unwrap();
        let warm = engine.execute("items", &q).unwrap();
        assert_eq!(cold.run.matched, warm.run.matched);
        assert!(warm.run.ms() < 0.5 * cold.run.ms(), "{} vs {}", warm.run.ms(), cold.run.ms());
    }

    // ---- sharded behaviour -------------------------------------------

    fn sharded_engine(shards: usize) -> Arc<Engine> {
        demo_engine_with(EngineConfig { shards, ..EngineConfig::default() })
    }

    fn parallel_engine(shards: usize, workers: usize) -> Arc<Engine> {
        demo_engine_with(EngineConfig { shards, workers, ..EngineConfig::default() })
    }

    // ---- parallel fan-out --------------------------------------------

    #[test]
    fn parallel_fanout_matches_sequential_results() {
        let par = parallel_engine(4, 4);
        let seq = sharded_engine(4);
        let queries = [
            Query::single(Pred::eq(0, 13i64)),
            Query::single(Pred::between(0, 10i64, 60i64)),
            Query::single(Pred::eq(1, 4217i64)),
            Query::default(),
        ];
        for q in &queries {
            let a = par.execute_collect("items", q).unwrap();
            let b = seq.execute_collect("items", q).unwrap();
            let mut ra = a.rows.unwrap();
            let mut rb = b.rows.unwrap();
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb, "{q:?}");
            assert_eq!(a.run.matched, b.run.matched);
            assert_eq!(a.shards, b.shards);
        }
    }

    #[test]
    fn parallel_rows_merge_in_shard_order() {
        // Full-table collection must come back shard 0 rows first,
        // whatever order the worker threads finished in.
        let par = parallel_engine(4, 4);
        let out = par.execute_collect("items", &Query::default()).unwrap();
        let rows = out.rows.unwrap();
        let keys: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "clustered partitions concatenate in key order");
    }

    #[test]
    fn parallel_ms_reports_fanout_makespan() {
        let par = parallel_engine(4, 4);
        let out = par.execute("items", &Query::default()).unwrap();
        assert_eq!(out.legs.len(), 4);
        let longest = out.legs.iter().map(|l| l.run.ms()).fold(0.0, f64::max);
        assert!((out.parallel_ms - longest).abs() < 1e-9, "4 workers cover 4 legs");
        assert!(out.parallel_ms < out.run.ms(), "fan-out beats the serial sum");
        // Per-leg serial times sum to the run total.
        let sum: f64 = out.legs.iter().map(|l| l.run.ms()).sum();
        assert!((sum - out.run.ms()).abs() < 1e-9);

        // A 1-worker engine reports the serial sum for the same query.
        let seq = sharded_engine(4);
        let out = seq.execute("items", &Query::default()).unwrap();
        assert!((out.parallel_ms - out.run.ms()).abs() < 1e-9);
    }

    #[test]
    fn each_leg_counts_as_a_routing_decision() {
        let engine = sharded_engine(4);
        engine.execute("items", &Query::single(Pred::eq(1, 4217i64))).unwrap();
        assert_eq!(engine.route_counts().total(), 4, "one decision per leg");
        let engine = sharded_engine(4);
        engine.execute("items", &Query::single(Pred::eq(0, 42i64))).unwrap();
        assert_eq!(engine.route_counts().total(), 1, "point query: one leg");
        // A query pruned everywhere makes no routing decision at all.
        let engine = sharded_engine(4);
        engine.execute("items", &Query::single(Pred::between(0, 9i64, 2i64))).unwrap();
        assert_eq!(engine.route_counts().total(), 0);
        assert_eq!(engine.stats().queries, 1);
    }

    #[test]
    fn per_leg_choices_are_surfaced() {
        let engine = parallel_engine(4, 2);
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let out = engine.execute("items", &Query::single(Pred::eq(1, 4217i64))).unwrap();
        assert_eq!(out.legs.len(), 4);
        assert_eq!(out.plan.path, out.legs[0].choice.path, "summary is the first leg");
        for leg in &out.legs {
            assert!(!leg.choice.alternatives.is_empty(), "every leg was costed");
        }
    }

    #[test]
    fn parallel_delete_where_spans_shards() {
        let engine = parallel_engine(4, 4);
        let victims = engine
            .delete_where("items", &Query::single(Pred::between(0, 24i64, 26i64)))
            .unwrap();
        assert_eq!(victims.len(), 3 * 50);
        // Victims come back in shard order.
        let shards: Vec<usize> = victims.iter().map(|r| r.shard_index()).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted);
        assert_eq!(engine.stats().deletes, 150);
        let rest = engine
            .execute("items", &Query::single(Pred::between(0, 0i64, 1_000i64)))
            .unwrap();
        assert_eq!(rest.run.matched, 5000 - 150);
    }

    #[test]
    fn worker_count_is_clamped_and_visible() {
        assert_eq!(sharded_engine(2).num_workers(), 1);
        assert_eq!(parallel_engine(2, 6).num_workers(), 6);
        let zero = demo_engine_with(EngineConfig { workers: 0, ..EngineConfig::default() });
        assert_eq!(zero.num_workers(), 1, "0 workers clamps to sequential");
    }

    #[test]
    fn load_partitions_across_shards() {
        let engine = sharded_engine(4);
        let info = engine.table_info("items").unwrap();
        assert_eq!(info.shards, 4);
        assert_eq!(info.rows, 5000);
        let mut per_shard = Vec::new();
        engine
            .with_each_shard("items", |_, t| per_shard.push(t.heap().len()))
            .unwrap();
        assert_eq!(per_shard.iter().sum::<u64>(), 5000);
        assert!(per_shard.iter().all(|&n| n > 0), "every shard holds rows: {per_shard:?}");
        assert!(matches!(
            engine.with_table("items", |_| ()),
            Err(EngineError::ShardedTable(_))
        ));
    }

    #[test]
    fn point_query_touches_exactly_one_shard() {
        let engine = sharded_engine(4);
        let q = Query::single(Pred::eq(0, 42i64));
        assert_eq!(engine.route_shards("items", &q).unwrap().len(), 1);
        let io_before = engine.shard_io();
        let out = engine.execute("items", &q).unwrap();
        assert_eq!(out.run.matched, 50);
        assert_eq!(out.shards.len(), 1);
        let io_after = engine.shard_io();
        let touched: Vec<usize> = (0..4)
            .filter(|&i| io_after[i].pages() > io_before[i].pages())
            .collect();
        assert_eq!(touched, out.shards, "I/O only on the owning shard");
    }

    #[test]
    fn range_query_fans_out_to_overlapping_shards_only() {
        let engine = sharded_engine(4);
        // Keys 0..100, four shards of ~25 keys: a [0, 30] range overlaps
        // the first two shards.
        let q = Query::single(Pred::between(0, 0i64, 30i64));
        let shards = engine.route_shards("items", &q).unwrap();
        assert!(shards.len() < 4, "narrow range prunes shards: {shards:?}");
        let out = engine.execute("items", &q).unwrap();
        assert_eq!(out.run.matched, 31 * 50);
        assert_eq!(out.shards, shards);
        // An unpredicated-column query fans out everywhere.
        let all = engine
            .execute("items", &Query::single(Pred::eq(1, 4217i64)))
            .unwrap();
        assert_eq!(all.shards, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sharded_results_match_unsharded_oracle() {
        let sharded = sharded_engine(4);
        let flat = demo_engine();
        let queries = [
            Query::single(Pred::eq(0, 13i64)),
            Query::single(Pred::between(0, 10i64, 60i64)),
            Query::single(Pred::is_in(0, vec![Value::Int(3), Value::Int(55), Value::Int(99)])),
            Query::single(Pred::eq(1, 4217i64)),
            Query::new(vec![Pred::between(0, 20i64, 80i64), Pred::eq(1, 4217i64)]),
            Query::default(),
        ];
        for q in &queries {
            let a = sharded.execute_collect("items", q).unwrap();
            let b = flat.execute_collect("items", q).unwrap();
            let mut ra = a.rows.unwrap();
            let mut rb = b.rows.unwrap();
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb, "{q:?}");
        }
    }

    #[test]
    fn conjunction_on_the_clustered_column_is_preserved() {
        // Regression: a range AND an equality on the clustered column
        // must both survive shard restriction (the equality used to be
        // overwritten by the restricted range).
        let q = Query::new(vec![Pred::between(0, 0i64, 99i64), Pred::eq(0, 5i64)]);
        for shards in [1, 4] {
            let engine = sharded_engine(shards);
            let out = engine.execute("items", &q).unwrap();
            assert_eq!(out.run.matched, 50, "{shards} shard(s)");
        }
    }

    #[test]
    fn sharded_inserts_route_to_owner_and_deletes_roundtrip() {
        let engine = sharded_engine(4);
        engine.create_btree("items", "price_idx", vec![1]).unwrap();
        // Key 99 lives in the last shard; key 0 in the first.
        let hi = engine.insert("items", vec![Value::Int(99), Value::Int(777_777)]).unwrap();
        let lo = engine.insert("items", vec![Value::Int(0), Value::Int(888_888)]).unwrap();
        engine.commit();
        assert_eq!(hi.shard_index(), 3);
        assert_eq!(lo.shard_index(), 0);
        let q = Query::single(Pred::eq(1, 777_777i64));
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 1);
        let row = engine.delete("items", hi).unwrap();
        assert_eq!(row[0], Value::Int(99));
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 0);
        // A RID tagged with a nonexistent shard errors cleanly.
        assert!(matches!(
            engine.delete("items", Rid::sharded(7, Rid(0))),
            Err(EngineError::BadRid { .. })
        ));
    }

    #[test]
    fn sharded_delete_where_spans_shards() {
        let engine = sharded_engine(4);
        let victims = engine
            .delete_where("items", &Query::single(Pred::between(0, 24i64, 26i64)))
            .unwrap();
        assert_eq!(victims.len(), 3 * 50);
        let rest = engine
            .execute("items", &Query::single(Pred::between(0, 0i64, 1_000i64)))
            .unwrap();
        assert_eq!(rest.run.matched, 5000 - 150);
    }

    #[test]
    fn group_commit_absorbs_redundant_commits() {
        let engine = demo_engine();
        engine.insert("items", vec![Value::Int(1), Value::Int(1)]).unwrap();
        let io1 = engine.commit();
        assert!(io1.page_writes >= 1, "first commit flushes");
        let io2 = engine.commit();
        assert_eq!(io2, IoStats::default(), "nothing new: absorbed");
        let wal = engine.wal_stats();
        assert_eq!(wal.commit_requests, 2);
        assert_eq!(wal.absorbed, 1);
        assert_eq!(wal.flushes, 1);
    }

    #[test]
    fn wal_flushes_land_on_the_log_disk() {
        let engine = demo_engine();
        let shard_before = engine.shard_io();
        engine.insert("items", vec![Value::Int(1), Value::Int(1)]).unwrap();
        let shard_after_insert = engine.shard_io();
        let log_before = engine.log_disk().stats();
        engine.commit();
        assert_eq!(engine.shard_io(), shard_after_insert, "commit touches no shard disk");
        assert!(engine.log_disk().stats().page_writes > log_before.page_writes);
        // The insert itself touched shard storage, not the log.
        assert!(shard_after_insert[0].pages() > shard_before[0].pages());
    }

    // ---- workload-aware design advisor -------------------------------

    #[test]
    fn workload_profile_records_reads_and_writes() {
        let engine = demo_engine();
        engine.execute("items", &Query::single(Pred::eq(1, 4217i64))).unwrap();
        engine.execute("items", &Query::single(Pred::eq(1, 999i64))).unwrap();
        engine
            .execute("items", &Query::single(Pred::between(0, 3i64, 9i64)))
            .unwrap();
        engine.insert("items", vec![Value::Int(1), Value::Int(1)]).unwrap();
        let p = engine.workload_profile("items").unwrap();
        assert_eq!(p.reads, 3);
        assert_eq!(p.writes, 1);
        let price = p.col(1).unwrap();
        assert_eq!(price.reads, 2);
        assert_eq!(price.distinct_queried() as u64, 2, "two distinct point values");
        assert!(p.col(0).unwrap().avg_lookup_keys() >= 1.0, "range estimated");
        engine.reset_workload_profile("items").unwrap();
        assert_eq!(engine.workload_profile("items").unwrap().ops(), 0);
    }

    #[test]
    fn advise_and_apply_roundtrip_with_oracle_equality() {
        let engine = demo_engine();
        // Read-mostly traffic on price.
        for i in 0..50i64 {
            engine
                .execute("items", &Query::single(Pred::eq(1, (i % 16) * 321)))
                .unwrap();
        }
        engine.insert("items", vec![Value::Int(1), Value::Int(1)]).unwrap();
        let rec = engine.advise_design("items").unwrap();
        assert_eq!(rec.best.columns.len(), 1, "price is the only candidate");
        assert_eq!(rec.best.columns[0].col, 1);
        assert!(rec.best.columns[0].structure.is_some(), "hot column earns a structure");

        // Oracle snapshot before the switch.
        let queries = [
            Query::single(Pred::eq(1, 321i64)),
            Query::single(Pred::between(1, 100i64, 3000i64)),
            Query::default(),
        ];
        let before: Vec<Vec<Row>> = queries
            .iter()
            .map(|q| {
                let mut rows =
                    engine.execute_collect("items", q).unwrap().rows.unwrap();
                rows.sort();
                rows
            })
            .collect();
        let applied = engine.apply_design("items", &rec.best).unwrap();
        assert_eq!(applied.btrees + applied.cms, 1);
        assert_eq!(applied.dropped, 0);
        let info = engine.table_info("items").unwrap();
        assert_eq!(info.secondaries + info.cms, 1);
        for (q, want) in queries.iter().zip(&before) {
            let mut rows = engine.execute_collect("items", q).unwrap().rows.unwrap();
            rows.sort();
            assert_eq!(&rows, want, "{q:?}");
        }
        // Re-applying replaces, not accumulates.
        let applied = engine.apply_design("items", &rec.best).unwrap();
        assert_eq!(applied.dropped, 1);
        let info = engine.table_info("items").unwrap();
        assert_eq!(info.secondaries + info.cms, 1);
    }

    #[test]
    fn apply_design_spans_every_shard() {
        let engine = sharded_engine(4);
        for _ in 0..20 {
            engine.execute("items", &Query::single(Pred::eq(1, 4217i64))).unwrap();
        }
        let rec = engine.advise_design("items").unwrap();
        engine.apply_design("items", &rec.best).unwrap();
        let expect = rec.best.btrees() + rec.best.cms();
        engine
            .with_each_shard("items", |_, t| {
                assert_eq!(t.secondaries().len() + t.cms().len(), expect);
            })
            .unwrap();
        // Routed queries agree with a freshly-built flat oracle.
        let q = Query::single(Pred::eq(1, 4217i64));
        let a = engine.execute_collect("items", &q).unwrap();
        let flat = demo_engine();
        let b = flat.execute_collect("items", &q).unwrap();
        let (mut ra, mut rb) = (a.rows.unwrap(), b.rows.unwrap());
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn apply_design_rejects_bad_columns_and_unloaded_tables() {
        let engine = demo_engine();
        let design = DesignSet {
            columns: vec![cm_advisor::ColumnDesign {
                col: 9,
                structure: Structure::BTree,
                cold_read_ms: 0.0,
                maintenance_ms: 0.0,
            }],
            read_ms: 0.0,
            write_ms: 0.0,
            total_ms: 0.0,
            working_set_pages: 0.0,
            miss_rate: 0.0,
        };
        assert!(matches!(
            engine.apply_design("items", &design),
            Err(EngineError::BadColumn { col: 9, .. })
        ));
        let schema = Arc::new(Schema::new(vec![Column::new("x", ValueType::Int)]));
        engine.create_table("empty", schema, 0, 10, 10).unwrap();
        assert!(matches!(
            engine.advise_design("empty"),
            Err(EngineError::NotLoaded(_))
        ));
    }

    #[test]
    fn stats_stay_consistent_while_a_writer_is_active() {
        let engine = sharded_engine(2);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer_engine = engine.clone();
            let stop_ref = &stop;
            scope.spawn(move || {
                for i in 0..500i64 {
                    writer_engine
                        .insert("items", vec![Value::Int(i % 100), Value::Int(i)])
                        .unwrap();
                }
                writer_engine.commit();
                stop_ref.store(true, Ordering::Release);
            });
            // Reader: aggregate stats must never go backwards and never
            // deadlock against the writer's per-shard locks.
            let mut last_rows = 0u64;
            let mut last_inserts = 0u64;
            while !stop.load(Ordering::Acquire) {
                let s = engine.stats();
                assert!(s.total_rows >= last_rows, "{} < {last_rows}", s.total_rows);
                assert!(s.inserts >= last_inserts);
                assert_eq!(s.tables, 1);
                last_rows = s.total_rows;
                last_inserts = s.inserts;
            }
        });
        let s = engine.stats();
        assert_eq!(s.inserts, 500);
        assert_eq!(s.total_rows, 5000 + 500);
        assert_eq!(engine.table_infos().len(), 1);
    }

    #[test]
    fn too_many_shards_rejected() {
        let config = EngineConfig { shards: Rid::MAX_SHARDS + 44, ..EngineConfig::default() };
        match Engine::try_new(config) {
            Err(EngineError::TooManyShards { requested, max }) => {
                assert_eq!(requested, Rid::MAX_SHARDS + 44);
                assert_eq!(max, Rid::MAX_SHARDS);
            }
            other => panic!("expected TooManyShards, got {:?}", other.map(|_| ())),
        }
        // The boundary itself is fine.
        let config = EngineConfig { shards: Rid::MAX_SHARDS, ..EngineConfig::default() };
        assert_eq!(Engine::try_new(config).unwrap().num_shards(), Rid::MAX_SHARDS);
    }

    /// A full query over the live (non-tombstone) rows of the demo
    /// table: `Between` on the clustered column excludes all-NULL
    /// tombstone slots, unlike an empty `Query`.
    fn all_live() -> Query {
        Query::single(Pred::between(0, i64::MIN, i64::MAX))
    }

    fn sorted_rows(engine: &Engine, q: &Query) -> Vec<Row> {
        let mut rows = engine.execute_collect("items", q).unwrap().rows.unwrap();
        rows.sort();
        rows
    }

    #[test]
    fn checkpoint_races_an_active_writer_without_losing_updates() {
        // Satellite: `flush_all` (inside checkpoint) racing an active
        // writer session must lose no updates and keep stats coherent.
        let engine = demo_engine_with(EngineConfig { shards: 2, ..EngineConfig::default() });
        std::thread::scope(|scope| {
            let writer_engine = engine.clone();
            scope.spawn(move || {
                let session = writer_engine.session();
                for i in 0..300i64 {
                    session
                        .insert("items", vec![Value::Int(i % 100), Value::Int(20_000 + i)])
                        .unwrap();
                    if i % 25 == 24 {
                        session.commit();
                    }
                }
                session.commit();
            });
            for _ in 0..8 {
                engine.checkpoint();
            }
        });
        let out = engine
            .execute("items", &Query::single(Pred::between(1, 20_000i64, 20_299i64)))
            .unwrap();
        assert_eq!(out.run.matched, 300, "no writer update lost across checkpoints");
        let s = engine.stats();
        assert_eq!(s.inserts, 300);
        assert_eq!(s.total_rows, 5000 + 300);
        assert!(engine.checkpoint_count() >= 9, "base image + 8 checkpoints");
        // After the race quiesces, one flush drains every dirty page and
        // a second finds nothing left to write.
        engine.flush_pool();
        assert_eq!(engine.flush_pool().page_writes, 0, "pools fully clean after quiesce");
    }

    #[test]
    fn recovery_replays_committed_work() {
        let engine = demo_engine();
        let session = engine.session();
        for i in 0..40i64 {
            session.insert("items", vec![Value::Int(i % 100), Value::Int(9000 + i)]).unwrap();
        }
        session.delete_where("items", &Query::single(Pred::eq(0, 17i64))).unwrap();
        session.commit();
        let expect = sorted_rows(&engine, &all_live());

        let state = engine.crash_state(None);
        let (recovered, report) =
            Engine::recover(EngineConfig::default(), &state).unwrap();
        assert_eq!(sorted_rows(&recovered, &all_live()), expect);
        assert!(report.redone > 0);
        assert_eq!(report.undone, 0);
        assert_eq!(report.committed_txns, 1);
        assert!(report.sim_ms > 0.0, "recovery I/O is charged");
        // The recovered engine keeps working: insert + query. Category 1
        // had 50 loaded rows, one from the pre-crash loop, one now.
        recovered.insert("items", vec![Value::Int(1), Value::Int(1)]).unwrap();
        let out = recovered.execute("items", &Query::single(Pred::eq(0, 1i64))).unwrap();
        assert_eq!(out.run.matched, 52);
    }

    #[test]
    fn recovery_rolls_back_the_uncommitted_tail() {
        let engine = demo_engine();
        let committed = engine.session();
        committed.insert("items", vec![Value::Int(3), Value::Int(333_333)]).unwrap();
        committed.commit();
        let expect = sorted_rows(&engine, &all_live());

        // A second session writes — including deletes — but never commits.
        let doomed = engine.session();
        doomed.insert("items", vec![Value::Int(5), Value::Int(555_555)]).unwrap();
        doomed.delete_where("items", &Query::single(Pred::eq(0, 42i64))).unwrap();
        assert!(doomed.txn_id().is_some());

        // Crash with the whole log surviving: commit records decide, not
        // flush timing.
        let state = engine.crash_state(Some(engine.appended_log().len() as u64));
        let (recovered, report) =
            Engine::recover(EngineConfig::default(), &state).unwrap();
        assert_eq!(
            sorted_rows(&recovered, &all_live()),
            expect,
            "uncommitted insert gone, uncommitted deletes reinstated"
        );
        assert_eq!(report.uncommitted_txns, 1);
        assert!(report.undone > 0);
    }

    #[test]
    fn torn_log_tail_is_detected_and_truncated() {
        let engine = demo_engine();
        let session = engine.session();
        session.insert("items", vec![Value::Int(8), Value::Int(800_800)]).unwrap();
        session.commit();
        let full = engine.appended_log().len() as u64;
        // Cut mid-frame: 3 bytes short of the end rips the last frame.
        let state = engine.crash_state(Some(full - 3));
        assert_eq!(state.log.len() as u64, full - 3);
        let (recovered, report) =
            Engine::recover(EngineConfig::default(), &state).unwrap();
        assert!(report.torn, "mid-frame cut is detected by checksum");
        assert!(report.valid_bytes < report.log_bytes);
        // The recovered engine still answers queries consistently.
        let rows = sorted_rows(&recovered, &all_live());
        assert!(rows.len() >= 5000 - 1);
    }

    #[test]
    fn checkpoints_advance_the_redo_point() {
        let engine = demo_engine();
        let session = engine.session();
        for i in 0..30i64 {
            session.insert("items", vec![Value::Int(i % 100), Value::Int(100 + i)]).unwrap();
        }
        session.commit();
        let no_ckpt = engine.crash_state(None);
        engine.checkpoint();
        for i in 0..5i64 {
            session.insert("items", vec![Value::Int(i), Value::Int(200 + i)]).unwrap();
        }
        session.commit();
        let with_ckpt = engine.crash_state(None);
        assert!(with_ckpt.redo_lsn > no_ckpt.redo_lsn, "checkpoint advanced redo");

        let (_, rep_no) = Engine::recover(EngineConfig::default(), &no_ckpt).unwrap();
        let (eng_ck, rep_ck) = Engine::recover(EngineConfig::default(), &with_ckpt).unwrap();
        assert!(
            rep_ck.redone <= rep_no.redone + 5,
            "the checkpoint absorbed the pre-checkpoint mutations ({} vs {})",
            rep_ck.redone,
            rep_no.redone
        );
        let out = eng_ck.execute("items", &Query::single(Pred::between(1, 200i64, 204i64)));
        assert_eq!(out.unwrap().run.matched, 5);
    }

    #[test]
    fn automatic_checkpoints_fire_on_commit() {
        let engine =
            demo_engine_with(EngineConfig { checkpoint_every: 20, ..EngineConfig::default() });
        let base_images = engine.checkpoint_count();
        let session = engine.session();
        for i in 0..60i64 {
            session.insert("items", vec![Value::Int(i % 100), Value::Int(i)]).unwrap();
            if i % 10 == 9 {
                session.commit();
            }
        }
        assert!(
            engine.checkpoint_count() > base_images,
            "commits past the record threshold checkpointed automatically"
        );
    }

    #[test]
    fn design_changes_survive_recovery() {
        let engine = demo_engine();
        engine.create_btree("items", "price_ix", vec![1]).unwrap();
        engine.create_cm("items", "price_cm", CmSpec::single_raw(1)).unwrap();
        engine.commit();
        let state = engine.crash_state(None);
        let (recovered, _) = Engine::recover(EngineConfig::default(), &state).unwrap();
        let info = recovered.table_info("items").unwrap();
        assert_eq!(info.secondaries, 1, "B+Tree rebuilt from the design record");
        assert_eq!(info.cms, 1, "CM rebuilt from the design record");
        // The rebuilt structures are queryable.
        let out = recovered
            .execute_via(
                "items",
                AccessPath::SecondaryPipelined(0),
                &Query::single(Pred::eq(1, 4217i64)),
            )
            .unwrap();
        let direct = engine
            .execute_via(
                "items",
                AccessPath::SecondaryPipelined(0),
                &Query::single(Pred::eq(1, 4217i64)),
            )
            .unwrap();
        assert_eq!(out.run.matched, direct.run.matched);
    }

    #[test]
    fn sharded_recovery_restores_routing() {
        let engine = demo_engine_with(EngineConfig { shards: 4, ..EngineConfig::default() });
        let session = engine.session();
        for i in 0..40i64 {
            session.insert("items", vec![Value::Int(i % 100), Value::Int(4000 + i)]).unwrap();
        }
        session.delete_where("items", &Query::single(Pred::eq(0, 66i64))).unwrap();
        session.commit();
        let expect = sorted_rows(&engine, &all_live());
        let state = engine.crash_state(None);
        let (recovered, _) = Engine::recover(
            EngineConfig { shards: 4, ..EngineConfig::default() },
            &state,
        )
        .unwrap();
        assert_eq!(recovered.num_shards(), 4);
        assert_eq!(sorted_rows(&recovered, &all_live()), expect);
        // Point queries still route to a single shard.
        let out = recovered.execute("items", &Query::single(Pred::eq(0, 10i64))).unwrap();
        assert_eq!(out.shards.len(), 1);
        // An image spanning more shards than the new engine is rejected.
        assert!(matches!(
            Engine::recover(EngineConfig::default(), &state),
            Err(EngineError::Recovery(_))
        ));
    }

    // ---------------------------------------------------------- MVCC

    fn mvcc_engine_with(config: EngineConfig) -> Arc<Engine> {
        demo_engine_with(EngineConfig { mvcc: true, ..config })
    }

    /// A hand-rolled design set (cost fields zeroed — tests apply it
    /// directly rather than ranking it).
    fn design_of(columns: Vec<(usize, Structure)>) -> DesignSet {
        DesignSet {
            columns: columns
                .into_iter()
                .map(|(col, structure)| cm_advisor::ColumnDesign {
                    col,
                    structure,
                    cold_read_ms: 0.0,
                    maintenance_ms: 0.0,
                })
                .collect(),
            read_ms: 0.0,
            write_ms: 0.0,
            total_ms: 0.0,
            working_set_pages: 0.0,
            miss_rate: 0.0,
        }
    }

    #[test]
    fn mvcc_autocommit_writes_are_immediately_visible() {
        let engine = mvcc_engine_with(EngineConfig::default());
        let rid = engine.insert("items", vec![Value::Int(7), Value::Int(90_001)]).unwrap();
        let hit = engine.execute("items", &Query::single(Pred::eq(1, 90_001i64))).unwrap();
        assert_eq!(hit.run.matched, 1, "autocommit insert visible to the next query");
        engine.delete("items", rid).unwrap();
        let gone = engine.execute("items", &Query::single(Pred::eq(1, 90_001i64))).unwrap();
        assert_eq!(gone.run.matched, 0, "autocommit delete visible to the next query");
        // The version is end-stamped, not physically removed.
        assert_eq!(engine.dead_versions(), 1);
    }

    #[test]
    fn mvcc_session_writes_invisible_until_commit() {
        let engine = mvcc_engine_with(EngineConfig::default());
        let session = engine.session();
        session.insert("items", vec![Value::Int(3), Value::Int(91_000)]).unwrap();
        session.delete_where("items", &Query::single(Pred::eq(0, 42i64))).unwrap();
        // Pending stamps: the transaction has not committed, so readers
        // (including this session's own queries — reads run at a fresh
        // snapshot, there is no read-your-own-writes) see the old state.
        let ins = engine.execute("items", &Query::single(Pred::eq(1, 91_000i64))).unwrap();
        assert_eq!(ins.run.matched, 0, "uncommitted insert invisible");
        let del = engine.execute("items", &Query::single(Pred::eq(0, 42i64))).unwrap();
        assert_eq!(del.run.matched, 50, "uncommitted delete invisible");
        session.commit();
        let ins = engine.execute("items", &Query::single(Pred::eq(1, 91_000i64))).unwrap();
        assert_eq!(ins.run.matched, 1, "committed insert visible");
        let del = engine.execute("items", &Query::single(Pred::eq(0, 42i64))).unwrap();
        assert_eq!(del.run.matched, 0, "committed delete visible");
    }

    #[test]
    fn mvcc_multi_shard_delete_where_flips_atomically() {
        let engine = mvcc_engine_with(EngineConfig { shards: 4, ..EngineConfig::default() });
        // A clustered range spanning every shard.
        let victims = engine
            .delete_where("items", &Query::single(Pred::between(0, 0i64, 99i64)))
            .unwrap();
        assert_eq!(victims.len(), 5000);
        let left = engine.execute("items", &all_live()).unwrap();
        assert_eq!(left.run.matched, 0, "the purge is visible after the internal commit");
        assert_eq!(engine.dead_versions(), 5000);
    }

    #[test]
    fn mvcc_vacuum_reclaims_dead_versions() {
        let engine = mvcc_engine_with(EngineConfig::default());
        engine.delete_where("items", &Query::single(Pred::eq(0, 5i64))).unwrap();
        assert_eq!(engine.dead_versions(), 50);
        let (resolved, reclaimed) = engine.vacuum().unwrap();
        assert!(resolved >= 50, "pending end stamps rewritten to commit timestamps");
        assert_eq!(reclaimed, 50, "no live snapshot pins the versions");
        assert_eq!(engine.dead_versions(), 0);
        let stats = engine.mvcc_stats().unwrap();
        assert_eq!(stats.reclaimed_versions, 50);
        assert!(stats.vacuum_runs >= 1);
        // The reclaim is physical: a repeat vacuum finds nothing.
        assert_eq!(engine.vacuum().unwrap(), (0, 0));
        // Reads over the reclaimed range still answer correctly.
        let out = engine.execute("items", &Query::single(Pred::eq(0, 5i64))).unwrap();
        assert_eq!(out.run.matched, 0);
        assert_eq!(engine.execute("items", &all_live()).unwrap().run.matched, 4950);
    }

    #[test]
    fn mvcc_vacuum_spares_versions_a_live_snapshot_sees() {
        let engine = mvcc_engine_with(EngineConfig::default());
        let mv = engine.mvcc_state().unwrap().clone();
        let pin = mv.begin(); // a reader that started before the delete
        engine.delete_where("items", &Query::single(Pred::eq(0, 9i64))).unwrap();
        let (_, reclaimed) = engine.vacuum().unwrap();
        assert_eq!(reclaimed, 0, "the pinned snapshot still sees the versions");
        assert!(pin.sees(1, LIVE_TS));
        drop(pin);
        let (_, reclaimed) = engine.vacuum().unwrap();
        assert_eq!(reclaimed, 50, "reclaimable once the snapshot closes");
    }

    #[test]
    fn mvcc_auto_vacuum_fires_on_commit_threshold() {
        let engine =
            mvcc_engine_with(EngineConfig { gc_every: 10, ..EngineConfig::default() });
        let session = engine.session();
        session.delete_where("items", &Query::single(Pred::eq(0, 3i64))).unwrap();
        session.commit();
        let stats = engine.mvcc_stats().unwrap();
        assert!(stats.vacuum_runs >= 1, "50 deletes crossed the gc_every=10 threshold");
        assert_eq!(engine.dead_versions(), 0);
    }

    #[test]
    fn mvcc_uncommitted_delete_where_leg_error_leaves_rows_readable() {
        // First-writer-wins: a second delete_where racing the same rows
        // skips already-ended versions instead of clobbering them.
        let engine = mvcc_engine_with(EngineConfig::default());
        let s1 = engine.session();
        let v1 = s1.delete_where("items", &Query::single(Pred::eq(0, 8i64))).unwrap();
        assert_eq!(v1.len(), 50);
        let s2 = engine.session();
        let v2 = s2.delete_where("items", &Query::single(Pred::eq(0, 8i64))).unwrap();
        // s1's pending end stamps are invisible to s2's victim snapshot,
        // so s2 scans the same rows — but the write phase skips every
        // already-stamped version.
        assert!(v2.is_empty(), "second writer cannot re-delete pending-ended versions");
    }

    #[test]
    fn mvcc_snapshot_pins_a_consistent_read_under_a_racing_purge() {
        let engine = mvcc_engine_with(EngineConfig { shards: 2, ..EngineConfig::default() });
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let purger = engine.clone();
            let stop_ref = &stop;
            scope.spawn(move || {
                for round in 0..30i64 {
                    purger
                        .delete_where("items", &Query::single(Pred::eq(0, round % 100)))
                        .unwrap();
                    for i in 0..50i64 {
                        purger
                            .insert(
                                "items",
                                vec![Value::Int(round % 100), Value::Int((round % 100) * 100 + i)],
                            )
                            .unwrap();
                    }
                }
                stop_ref.store(true, Ordering::Relaxed);
            });
            // Each query sees every category either fully present (50
            // rows) or fully purged (0) — never a torn prefix, even while
            // the purge's legs span both shards.
            while !stop.load(Ordering::Relaxed) {
                let out = engine
                    .execute("items", &Query::single(Pred::eq(0, 17i64)))
                    .unwrap();
                assert!(
                    out.run.matched == 50 || out.run.matched == 0,
                    "torn category read: {} rows",
                    out.run.matched
                );
            }
        });
    }

    #[test]
    fn mvcc_apply_design_stays_online_under_readers() {
        // The rebuild must hold only read locks while it builds: readers
        // that start after the rebuild begins keep completing before it
        // ends. (The pre-MVCC path takes `loaded.write()` up front, which
        // would stall every one of them for the whole rebuild.)
        let engine = mvcc_engine_with(EngineConfig::default());
        let design = design_of(vec![
            (1, Structure::BTree),
            (1, Structure::Cm(CmSpec::single_pow2(1, 4))),
        ]);
        let in_flight = std::sync::atomic::AtomicBool::new(false);
        let overlapped = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            let designer = engine.clone();
            let in_flight_ref = &in_flight;
            scope.spawn(move || {
                in_flight_ref.store(true, Ordering::SeqCst);
                for _ in 0..40 {
                    designer.apply_design("items", &design).unwrap();
                }
                in_flight_ref.store(false, Ordering::SeqCst);
            });
            while !in_flight.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            while in_flight.load(Ordering::SeqCst) {
                let out = engine
                    .execute("items", &Query::single(Pred::eq(0, 33i64)))
                    .unwrap();
                assert_eq!(out.run.matched, 50);
                if in_flight.load(Ordering::SeqCst) {
                    // Started and finished while a rebuild was running.
                    overlapped.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert!(
            overlapped.load(Ordering::Relaxed) > 0,
            "no read completed during 40 consecutive rebuilds — readers were blocked"
        );
        let info = engine.table_info("items").unwrap();
        assert_eq!((info.secondaries, info.cms), (1, 1), "the design landed");
        // The swapped-in structures answer queries.
        let out = engine
            .execute_via(
                "items",
                AccessPath::SecondarySorted(0),
                &Query::single(Pred::eq(1, 1_719i64)),
            )
            .unwrap();
        assert_eq!(out.run.matched, 50);
    }

    #[test]
    fn mvcc_online_design_swap_indexes_rows_appended_mid_build() {
        // Rows inserted between the read-locked build and the
        // write-locked swap must land in the new structures (the
        // catch-up step). Single-threaded shape: build against a loaded
        // table, insert more rows, apply, then force the secondary path.
        let engine = mvcc_engine_with(EngineConfig::default());
        std::thread::scope(|scope| {
            let writer = engine.clone();
            scope.spawn(move || {
                for i in 0..200i64 {
                    writer
                        .insert("items", vec![Value::Int(i % 100), Value::Int(70_000 + i)])
                        .unwrap();
                }
            });
            let design = design_of(vec![(1, Structure::BTree)]);
            for _ in 0..10 {
                engine.apply_design("items", &design).unwrap();
            }
        });
        let q = Query::single(Pred::between(1, 70_000i64, 70_199i64));
        let via_index =
            engine.execute_via("items", AccessPath::SecondarySorted(0), &q).unwrap();
        assert_eq!(via_index.run.matched, 200, "mid-build appends are indexed");
    }

    #[test]
    fn table_infos_and_stats_stay_coherent_under_an_active_writer() {
        // Satellite: the stats snapshot path (catalog read lock, then
        // per-entry reads) must neither deadlock with nor tear against a
        // writer holding shard write locks.
        let engine = demo_engine_with(EngineConfig { shards: 2, ..EngineConfig::default() });
        std::thread::scope(|scope| {
            let writer = engine.clone();
            scope.spawn(move || {
                let session = writer.session();
                for i in 0..400i64 {
                    session
                        .insert("items", vec![Value::Int(i % 100), Value::Int(40_000 + i)])
                        .unwrap();
                    if i % 50 == 49 {
                        session.commit();
                    }
                }
                session.commit();
            });
            for _ in 0..200 {
                let infos = engine.table_infos();
                assert_eq!(infos.len(), 1);
                assert!(
                    (5000..=5400).contains(&infos[0].rows),
                    "row count within the write window: {}",
                    infos[0].rows
                );
                let s = engine.stats();
                assert!(s.total_rows >= 5000);
                assert!(s.inserts <= 400);
            }
        });
        assert_eq!(engine.table_infos()[0].rows, 5400);
        assert_eq!(engine.stats().inserts, 400);
    }

    #[test]
    fn mvcc_recovery_restores_the_committed_prefix_and_clock() {
        let config = EngineConfig { mvcc: true, ..EngineConfig::default() };
        let engine = mvcc_engine_with(EngineConfig::default());
        let committed = engine.session();
        for i in 0..30i64 {
            committed
                .insert("items", vec![Value::Int(i % 100), Value::Int(50_000 + i)])
                .unwrap();
        }
        committed.delete_where("items", &Query::single(Pred::eq(0, 77i64))).unwrap();
        committed.commit();
        let expect = sorted_rows(&engine, &all_live());
        // An uncommitted tail that must vanish.
        let doomed = engine.session();
        doomed.insert("items", vec![Value::Int(1), Value::Int(60_000)]).unwrap();
        doomed.delete_where("items", &Query::single(Pred::eq(0, 50i64))).unwrap();
        let clock_before = engine.mvcc_stats().unwrap().clock;
        // Cut at the appended end: the doomed records survive the crash
        // and must be rolled back by undo (their commit never logged).
        let state = engine.crash_state(Some(engine.appended_log().len() as u64));
        let (recovered, report) = Engine::recover(config, &state).unwrap();
        assert_eq!(sorted_rows(&recovered, &all_live()), expect);
        assert!(report.uncommitted_txns >= 1);
        let clock_after = recovered.mvcc_stats().unwrap().clock;
        assert!(
            clock_after >= clock_before.saturating_sub(1),
            "clock restored past the last durable commit: {clock_after} vs {clock_before}"
        );
        // The survivor allocates fresh timestamps and stays MVCC.
        recovered.insert("items", vec![Value::Int(2), Value::Int(61_000)]).unwrap();
        let hit = recovered
            .execute("items", &Query::single(Pred::eq(1, 61_000i64)))
            .unwrap();
        assert_eq!(hit.run.matched, 1);
        assert!(recovered.mvcc_stats().unwrap().clock > clock_after);
    }

    #[test]
    fn mvcc_checkpoint_image_does_not_resurrect_committed_deletes() {
        // A committed MVCC delete leaves real bytes end-stamped in the
        // heap. A checkpoint image taken after it must materialize the
        // slot as a tombstone: the delete record precedes `redo_lsn`, so
        // nothing replays it.
        let config = EngineConfig { mvcc: true, ..EngineConfig::default() };
        let engine = mvcc_engine_with(EngineConfig::default());
        let session = engine.session();
        session.delete_where("items", &Query::single(Pred::eq(0, 21i64))).unwrap();
        session.commit();
        engine.checkpoint();
        let expect = sorted_rows(&engine, &all_live());
        let state = engine.crash_state(None);
        let (recovered, _) = Engine::recover(config, &state).unwrap();
        assert_eq!(sorted_rows(&recovered, &all_live()), expect);
        let out = recovered.execute("items", &Query::single(Pred::eq(0, 21i64))).unwrap();
        assert_eq!(out.run.matched, 0, "the purged category stays purged");
    }

    #[test]
    fn insert_many_spans_shards_and_preserves_order() {
        let engine = demo_engine_with(EngineConfig { shards: 4, ..EngineConfig::default() });
        let rows: Vec<Row> = (0..300i64)
            .map(|i| vec![Value::Int(i % 100), Value::Int(90_000 + i)])
            .collect();
        let rids = engine.insert_many("items", rows).unwrap();
        assert_eq!(rids.len(), 300);
        // Returned rids line up with input order even though the rows
        // interleave across all four shards: deleting by the i-th rid
        // must yield the i-th row.
        let sampled: Vec<usize> = (0..300).step_by(37).collect();
        for &i in &sampled {
            let row = engine.delete("items", rids[i]).unwrap();
            assert_eq!(row[1], Value::Int(90_000 + i as i64), "rid {i} maps to its row");
        }
        let out = engine
            .execute("items", &Query::single(Pred::between(1, 90_000i64, 90_299i64)))
            .unwrap();
        assert_eq!(out.run.matched as usize, 300 - sampled.len());
        assert_eq!(engine.stats().inserts, 300);
    }

    #[test]
    fn insert_many_txn_stays_invisible_until_commit() {
        let engine = mvcc_engine_with(EngineConfig { shards: 2, ..EngineConfig::default() });
        let txn = engine.alloc_txn();
        let rows: Vec<Row> = (0..150i64)
            .map(|i| vec![Value::Int(i % 100), Value::Int(70_000 + i)])
            .collect();
        engine.insert_many_txn("items", rows, txn).unwrap();
        let probe = Query::single(Pred::between(1, 70_000i64, 70_149i64));
        let hidden = engine.execute("items", &probe).unwrap();
        assert_eq!(hidden.run.matched, 0, "pending batch is invisible to snapshots");
        engine.log_commit(txn);
        let seen = engine.execute("items", &probe).unwrap();
        assert_eq!(seen.run.matched, 150, "committed batch is fully visible");
    }
}
