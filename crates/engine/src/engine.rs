//! The engine facade: catalog, shared I/O substrate, and cost-based
//! access-path routing.

use crate::error::EngineError;
use crate::session::Session;
use crate::Result;
use cm_core::CmSpec;
use cm_query::{AccessPath, ExecContext, PlanChoice, Planner, Query, RunResult, Table};
use cm_storage::{
    BufferPool, DiskConfig, DiskSim, IoStats, PoolStats, Rid, Row, Schema, Wal,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Simulated-disk hardware parameters (paper, Table 1 by default).
    pub disk: DiskConfig,
    /// Shared buffer-pool capacity in pages.
    pub pool_pages: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { disk: DiskConfig::default(), pool_pages: 1024 }
    }
}

/// A table definition plus (once loaded) the table itself.
struct TableSlot {
    name: String,
    schema: Arc<Schema>,
    clustered_col: usize,
    tups_per_page: usize,
    bucket_target: u64,
    table: Option<Table>,
}

impl TableSlot {
    fn table(&self) -> Result<&Table> {
        self.table.as_ref().ok_or_else(|| EngineError::NotLoaded(self.name.clone()))
    }

    fn table_mut(&mut self) -> Result<&mut Table> {
        match self.table.as_mut() {
            Some(t) => Ok(t),
            None => Err(EngineError::NotLoaded(self.name.clone())),
        }
    }
}

/// Per-access-path routing counters (cumulative since engine start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCounts {
    /// Queries routed to a full table scan.
    pub full_scan: u64,
    /// Queries routed to a sorted (bitmap) secondary index scan.
    pub secondary_sorted: u64,
    /// Queries routed to a pipelined secondary index scan.
    pub secondary_pipelined: u64,
    /// Queries routed to a CM-guided scan.
    pub cm_scan: u64,
}

impl RouteCounts {
    /// Total routed queries.
    pub fn total(&self) -> u64 {
        self.full_scan + self.secondary_sorted + self.secondary_pipelined + self.cm_scan
    }
}

/// Cumulative engine statistics.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Queries executed (routed + forced).
    pub queries: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Routing decisions by chosen path.
    pub routes: RouteCounts,
    /// Simulated disk counters since engine start.
    pub io: IoStats,
    /// Buffer-pool behaviour since engine start.
    pub pool: PoolStats,
    /// WAL records appended since engine start.
    pub wal_records: u64,
    /// WAL bytes made durable since engine start.
    pub wal_durable_bytes: u64,
}

/// Outcome of one query execution through the engine.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The planner's decision (estimates for every candidate path). For
    /// forced-path runs the chosen path is the forced one.
    pub plan: PlanChoice,
    /// Measured (simulated) execution of the chosen path.
    pub run: RunResult,
    /// Matching rows, if collection was requested.
    pub rows: Option<Vec<Row>>,
}

/// Catalog summary for one table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// Whether `load` has run.
    pub loaded: bool,
    /// Row count (0 until loaded).
    pub rows: u64,
    /// Heap pages (0 until loaded).
    pub pages: u64,
    /// Number of secondary B+Trees.
    pub secondaries: usize,
    /// Number of CMs.
    pub cms: usize,
}

/// The concurrent engine facade. Construct with [`Engine::new`], share as
/// `Arc<Engine>`, open per-connection handles with [`Engine::session`].
pub struct Engine {
    disk: Arc<DiskSim>,
    pool: BufferPool,
    wal: Mutex<Wal>,
    planner: Planner,
    catalog: RwLock<HashMap<String, Arc<RwLock<TableSlot>>>>,
    queries: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    route_full: AtomicU64,
    route_sorted: AtomicU64,
    route_pipelined: AtomicU64,
    route_cm: AtomicU64,
}

impl Engine {
    /// Build an engine with its own simulated disk, buffer pool, and WAL.
    pub fn new(config: EngineConfig) -> Arc<Self> {
        let disk = DiskSim::new(config.disk);
        let pool = BufferPool::new(disk.clone(), config.pool_pages);
        let wal = Mutex::new(Wal::new(disk.clone()));
        let planner = Planner::new(config.disk);
        Arc::new(Engine {
            disk,
            pool,
            wal,
            planner,
            catalog: RwLock::new(HashMap::new()),
            queries: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            route_full: AtomicU64::new(0),
            route_sorted: AtomicU64::new(0),
            route_pipelined: AtomicU64::new(0),
            route_cm: AtomicU64::new(0),
        })
    }

    /// The shared simulated disk.
    pub fn disk(&self) -> &Arc<DiskSim> {
        &self.disk
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Open a session handle (cheap; one per connection/thread).
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(self.clone())
    }

    // ---- catalog ------------------------------------------------------

    /// Register a table: its schema, clustered column, tuples per heap
    /// page, and the clustered-bucket target (tuples per CM bucket).
    /// The heap is built by the first [`Engine::load`] call.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Arc<Schema>,
        clustered_col: usize,
        tups_per_page: usize,
        bucket_target: u64,
    ) -> Result<()> {
        let name = name.into();
        if clustered_col >= schema.arity() {
            return Err(EngineError::BadColumn { table: name, col: clustered_col });
        }
        let mut cat = self.catalog.write();
        if cat.contains_key(&name) {
            return Err(EngineError::DuplicateTable(name));
        }
        cat.insert(
            name.clone(),
            Arc::new(RwLock::new(TableSlot {
                name,
                schema,
                clustered_col,
                tups_per_page,
                bucket_target,
                table: None,
            })),
        );
        Ok(())
    }

    /// Bulk-load rows, building the clustered heap, clustered index, and
    /// bucket directory (rows are sorted on the clustered column by the
    /// loader). One-shot: subsequent writes go through [`Engine::insert`].
    pub fn load(&self, table: &str, rows: Vec<Row>) -> Result<u64> {
        let slot = self.slot(table)?;
        let mut slot = slot.write();
        if slot.table.is_some() {
            return Err(EngineError::AlreadyLoaded(slot.name.clone()));
        }
        let built = Table::build(
            &self.disk,
            slot.schema.clone(),
            rows,
            slot.tups_per_page,
            slot.clustered_col,
            slot.bucket_target,
        )?;
        let n = built.heap().len();
        slot.table = Some(built);
        Ok(n)
    }

    /// Create (and bulk-build) a secondary B+Tree on `cols`; returns its
    /// id. Statistics for the leading column are refreshed so the planner
    /// can cost the new index immediately.
    pub fn create_btree(
        &self,
        table: &str,
        index_name: impl Into<String>,
        cols: Vec<usize>,
    ) -> Result<usize> {
        let slot = self.slot(table)?;
        let mut slot = slot.write();
        let arity = slot.schema.arity();
        if let Some(&bad) = cols.iter().find(|&&c| c >= arity) {
            return Err(EngineError::BadColumn { table: slot.name.clone(), col: bad });
        }
        let disk = self.disk.clone();
        let analyze: Vec<usize> = cols.clone();
        let t = slot.table_mut()?;
        let id = t.add_secondary(&disk, index_name, cols);
        t.analyze_cols(&analyze);
        Ok(id)
    }

    /// Create (and build via the paper's Algorithm 1) a Correlation Map;
    /// returns its id. Statistics for the CM's key columns are refreshed
    /// so the planner can compare the CM against index paths.
    pub fn create_cm(
        &self,
        table: &str,
        cm_name: impl Into<String>,
        spec: CmSpec,
    ) -> Result<usize> {
        let slot = self.slot(table)?;
        let mut slot = slot.write();
        let arity = slot.schema.arity();
        if let Some(&bad) = spec.cols().iter().find(|&&c| c >= arity) {
            return Err(EngineError::BadColumn { table: slot.name.clone(), col: bad });
        }
        let analyze = spec.cols();
        let t = slot.table_mut()?;
        let id = t.add_cm(cm_name, spec);
        t.analyze_cols(&analyze);
        Ok(id)
    }

    /// Refresh planner statistics for the given columns (the paper's
    /// statistics scan; uncharged, as in the seed's `Table`).
    pub fn analyze(&self, table: &str, cols: &[usize]) -> Result<()> {
        let slot = self.slot(table)?;
        let mut slot = slot.write();
        slot.table_mut()?.analyze_cols(cols);
        Ok(())
    }

    /// Names of every table in the catalog (sorted).
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Catalog summary for one table.
    pub fn table_info(&self, table: &str) -> Result<TableInfo> {
        let slot = self.slot(table)?;
        let slot = slot.read();
        Ok(match &slot.table {
            Some(t) => TableInfo {
                name: slot.name.clone(),
                loaded: true,
                rows: t.heap().len(),
                pages: t.heap().num_pages(),
                secondaries: t.secondaries().len(),
                cms: t.cms().len(),
            },
            None => TableInfo {
                name: slot.name.clone(),
                loaded: false,
                rows: 0,
                pages: 0,
                secondaries: 0,
                cms: 0,
            },
        })
    }

    /// Run `f` with shared (read-locked) access to a table — the escape
    /// hatch for tooling layered on the engine, e.g. the CM Advisor.
    pub fn with_table<R>(&self, table: &str, f: impl FnOnce(&Table) -> R) -> Result<R> {
        let slot = self.slot(table)?;
        let slot = slot.read();
        Ok(f(slot.table()?))
    }

    // ---- queries ------------------------------------------------------

    /// Execute a query, routing it to the access path the cost model
    /// estimates cheapest. Reads go through the shared buffer pool.
    pub fn execute(&self, table: &str, q: &Query) -> Result<QueryOutcome> {
        self.execute_inner(table, q, None, false, false)
    }

    /// [`Engine::execute`], also collecting the matching rows.
    pub fn execute_collect(&self, table: &str, q: &Query) -> Result<QueryOutcome> {
        self.execute_inner(table, q, None, true, false)
    }

    /// Execute through a specific access path (experiments and oracles).
    pub fn execute_via(
        &self,
        table: &str,
        path: AccessPath,
        q: &Query,
    ) -> Result<QueryOutcome> {
        self.execute_inner(table, q, Some(path), false, false)
    }

    /// [`Engine::execute_via`], also collecting the matching rows.
    pub fn execute_via_collect(
        &self,
        table: &str,
        path: AccessPath,
        q: &Query,
    ) -> Result<QueryOutcome> {
        self.execute_inner(table, q, Some(path), true, false)
    }

    /// The planner's decision for a query, without executing it.
    pub fn explain(&self, table: &str, q: &Query) -> Result<PlanChoice> {
        let slot = self.slot(table)?;
        let slot = slot.read();
        Ok(self.planner.choose(slot.table()?, q))
    }

    pub(crate) fn execute_inner(
        &self,
        table: &str,
        q: &Query,
        forced: Option<AccessPath>,
        collect: bool,
        cold: bool,
    ) -> Result<QueryOutcome> {
        let slot = self.slot(table)?;
        let slot = slot.read();
        let t = slot.table()?;
        let mut plan = self.planner.choose(t, q);
        let path = match forced {
            Some(p) => {
                plan.path = p;
                // A forced path the planner didn't cost (no statistics, or
                // no predicate on the index's leading column) has no
                // estimate; NaN keeps that visible instead of borrowing
                // the cheapest path's number.
                plan.est_ms = plan
                    .alternatives
                    .iter()
                    .find(|(alt, _)| *alt == p)
                    .map(|(_, est)| *est)
                    .unwrap_or(f64::NAN);
                p
            }
            None => {
                self.note_route(plan.path);
                plan.path
            }
        };
        let ctx = if cold {
            ExecContext::cold(&self.disk)
        } else {
            ExecContext::through(&self.disk, &self.pool)
        };
        let mut rows: Vec<Row> = Vec::new();
        let run = {
            let mut visit = |row: &[cm_storage::Value]| {
                if collect {
                    rows.push(row.to_vec());
                }
            };
            match path {
                AccessPath::FullScan => t.exec_full_scan_visit(&ctx, q, &mut visit),
                AccessPath::SecondarySorted(id) => {
                    t.exec_secondary_sorted_visit(&ctx, id, q, &mut visit)
                }
                AccessPath::SecondaryPipelined(id) => {
                    t.exec_secondary_pipelined_visit(&ctx, id, q, &mut visit)
                }
                AccessPath::CmScan(id) => t.exec_cm_scan_visit(&ctx, id, q, &mut visit),
            }
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(QueryOutcome { plan, run, rows: collect.then_some(rows) })
    }

    // ---- writes -------------------------------------------------------

    /// INSERT one row, maintaining every access structure (heap write
    /// through the shared pool, B+Tree postings charged, CM updates
    /// memory-only) and logging to the engine WAL. Call
    /// [`Engine::commit`] to force the log.
    pub fn insert(&self, table: &str, row: Row) -> Result<Rid> {
        let slot = self.slot(table)?;
        let mut slot = slot.write();
        let t = slot.table_mut()?;
        let mut wal = self.wal.lock();
        let rid = t.insert_row(&self.pool, Some(&mut wal), row)?;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(rid)
    }

    /// DELETE one row by RID, retracting it from every access structure.
    pub fn delete(&self, table: &str, rid: Rid) -> Result<Row> {
        let slot = self.slot(table)?;
        let mut slot = slot.write();
        let t = slot.table_mut()?;
        let mut wal = self.wal.lock();
        let row = t.delete_row(&self.pool, Some(&mut wal), rid)?;
        self.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(row)
    }

    /// DELETE every row matching `q` (found by a charged full scan);
    /// returns the victims' RIDs.
    pub fn delete_where(&self, table: &str, q: &Query) -> Result<Vec<Rid>> {
        let slot = self.slot(table)?;
        let mut slot = slot.write();
        let t = slot.table_mut()?;
        let mut victims: Vec<Rid> = Vec::new();
        for page in 0..t.heap().num_pages() {
            let (start, _) = t.heap().page_rid_range(page);
            let rows = t.heap().read_page(&self.pool, page)?;
            for (i, row) in rows.iter().enumerate() {
                if q.matches(row) {
                    victims.push(Rid(start.0 + i as u64));
                }
            }
        }
        let mut wal = self.wal.lock();
        for &rid in &victims {
            t.delete_row(&self.pool, Some(&mut wal), rid)?;
            self.deletes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(victims)
    }

    /// Force the WAL to disk (group commit point); returns the I/O
    /// charged for the flush.
    pub fn commit(&self) -> IoStats {
        self.wal.lock().commit()
    }

    /// Flush the buffer pool (between-trial cache flushing, as in the
    /// paper's methodology); returns the I/O charged.
    pub fn flush_pool(&self) -> IoStats {
        self.pool.flush_all()
    }

    // ---- statistics ---------------------------------------------------

    /// Cumulative engine statistics.
    pub fn stats(&self) -> EngineStats {
        let wal = self.wal.lock();
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            routes: self.route_counts(),
            io: self.disk.stats(),
            pool: self.pool.stats(),
            wal_records: wal.records(),
            wal_durable_bytes: wal.durable_bytes(),
        }
    }

    /// Routing decisions by chosen path (cost-based executions only;
    /// forced paths are not counted).
    pub fn route_counts(&self) -> RouteCounts {
        RouteCounts {
            full_scan: self.route_full.load(Ordering::Relaxed),
            secondary_sorted: self.route_sorted.load(Ordering::Relaxed),
            secondary_pipelined: self.route_pipelined.load(Ordering::Relaxed),
            cm_scan: self.route_cm.load(Ordering::Relaxed),
        }
    }

    fn note_route(&self, path: AccessPath) {
        let counter = match path {
            AccessPath::FullScan => &self.route_full,
            AccessPath::SecondarySorted(_) => &self.route_sorted,
            AccessPath::SecondaryPipelined(_) => &self.route_pipelined,
            AccessPath::CmScan(_) => &self.route_cm,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn slot(&self, table: &str) -> Result<Arc<RwLock<TableSlot>>> {
        self.catalog
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))
    }
}

// The engine must be shareable across session threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::CmSpec;
    use cm_query::Pred;
    use cm_storage::{Column, Value, ValueType};

    fn demo_engine() -> Arc<Engine> {
        let engine = Engine::new(EngineConfig::default());
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
        ]));
        engine.create_table("items", schema, 0, 20, 100).unwrap();
        let rows: Vec<Row> = (0..5000i64)
            .map(|i| {
                let cat = i % 100;
                vec![Value::Int(cat), Value::Int(cat * 100 + (i * 7) % 100)]
            })
            .collect();
        engine.load("items", rows).unwrap();
        engine
    }

    #[test]
    fn create_load_query_roundtrip() {
        let engine = demo_engine();
        let info = engine.table_info("items").unwrap();
        assert!(info.loaded);
        assert_eq!(info.rows, 5000);
        let out = engine
            .execute("items", &Query::single(Pred::eq(0, 42i64)))
            .unwrap();
        assert_eq!(out.run.matched, 50);
    }

    #[test]
    fn unknown_table_and_duplicates_error() {
        let engine = demo_engine();
        assert!(matches!(
            engine.execute("nope", &Query::default()),
            Err(EngineError::UnknownTable(_))
        ));
        let schema = Arc::new(Schema::new(vec![Column::new("x", ValueType::Int)]));
        assert!(matches!(
            engine.create_table("items", schema.clone(), 0, 10, 10),
            Err(EngineError::DuplicateTable(_))
        ));
        engine.create_table("empty", schema, 0, 10, 10).unwrap();
        assert!(matches!(
            engine.execute("empty", &Query::default()),
            Err(EngineError::NotLoaded(_))
        ));
    }

    #[test]
    fn load_twice_rejected() {
        let engine = demo_engine();
        assert!(matches!(
            engine.load("items", vec![]),
            Err(EngineError::AlreadyLoaded(_))
        ));
    }

    #[test]
    fn bad_columns_rejected() {
        let engine = demo_engine();
        assert!(matches!(
            engine.create_btree("items", "bad", vec![7]),
            Err(EngineError::BadColumn { col: 7, .. })
        ));
        assert!(matches!(
            engine.create_cm("items", "bad", CmSpec::single_raw(9)),
            Err(EngineError::BadColumn { col: 9, .. })
        ));
    }

    #[test]
    fn cost_based_routing_prefers_cm_for_selective_predicate() {
        let engine = demo_engine();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let out = engine
            .execute("items", &Query::single(Pred::eq(1, 4217i64)))
            .unwrap();
        assert!(
            matches!(out.plan.path, AccessPath::CmScan(_)),
            "chose {:?}",
            out.plan.path
        );
        assert_eq!(engine.route_counts().cm_scan, 1);
    }

    #[test]
    fn routing_falls_back_to_scan_for_wide_predicate() {
        let engine = demo_engine();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        // The whole price domain: every bucket qualifies, the scan wins.
        let out = engine
            .execute("items", &Query::single(Pred::between(1, 0i64, 1_000_000i64)))
            .unwrap();
        assert_eq!(out.plan.path, AccessPath::FullScan, "alts {:?}", out.plan.alternatives);
        assert_eq!(out.run.matched, 5000);
    }

    #[test]
    fn forced_paths_agree_with_oracle() {
        let engine = demo_engine();
        let sec = engine.create_btree("items", "price_idx", vec![1]).unwrap();
        let cm = engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let q = Query::single(Pred::between(1, 4200i64, 4400i64));
        let oracle = engine
            .execute_via_collect("items", AccessPath::FullScan, &q)
            .unwrap();
        for path in [
            AccessPath::SecondarySorted(sec),
            AccessPath::SecondaryPipelined(sec),
            AccessPath::CmScan(cm),
        ] {
            let got = engine.execute_via_collect("items", path, &q).unwrap();
            let mut a = got.rows.clone().unwrap();
            let mut b = oracle.rows.clone().unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{path:?}");
        }
        // Forced paths are not counted as routing decisions.
        assert_eq!(engine.route_counts().total(), 0);
    }

    #[test]
    fn insert_delete_maintain_structures() {
        let engine = demo_engine();
        engine.create_btree("items", "price_idx", vec![1]).unwrap();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let q = Query::single(Pred::eq(1, 999_999i64));
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 0);
        let rid = engine
            .insert("items", vec![Value::Int(99), Value::Int(999_999)])
            .unwrap();
        engine.commit();
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 1);
        let row = engine.delete("items", rid).unwrap();
        assert_eq!(row[1], Value::Int(999_999));
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 0);
        let stats = engine.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.deletes, 1);
        assert!(stats.wal_records >= 3, "heap + index + CM records");
    }

    #[test]
    fn delete_where_removes_matches() {
        let engine = demo_engine();
        engine.create_cm("items", "price_cm", CmSpec::single_pow2(1, 4)).unwrap();
        let q = Query::single(Pred::eq(0, 7i64));
        let victims = engine.delete_where("items", &q).unwrap();
        assert_eq!(victims.len(), 50);
        assert_eq!(engine.execute("items", &q).unwrap().run.matched, 0);
        // The rest of the table is intact (tombstones are NULL rows, so a
        // ranged predicate excludes them).
        let rest = engine
            .execute("items", &Query::single(Pred::between(0, 0i64, 1_000_000i64)))
            .unwrap();
        assert_eq!(rest.run.matched, 5000 - 50);
    }

    #[test]
    fn explain_matches_execute_choice() {
        let engine = demo_engine();
        engine.create_btree("items", "price_idx", vec![1]).unwrap();
        let q = Query::single(Pred::eq(1, 1234i64));
        let plan = engine.explain("items", &q).unwrap();
        let out = engine.execute("items", &q).unwrap();
        assert_eq!(plan.path, out.plan.path);
        assert!(plan.alternatives.len() >= 3);
    }

    #[test]
    fn warm_pool_makes_repeats_cheap() {
        let engine = demo_engine();
        let q = Query::single(Pred::eq(0, 3i64));
        let cold = engine.execute("items", &q).unwrap();
        let warm = engine.execute("items", &q).unwrap();
        assert_eq!(cold.run.matched, warm.run.matched);
        assert!(warm.run.ms() < 0.5 * cold.run.ms(), "{} vs {}", warm.run.ms(), cold.run.ms());
    }
}
