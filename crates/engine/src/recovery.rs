//! ARIES-style crash recovery: fuzzy checkpoints, redo, and undo.
//!
//! The engine's WAL carries typed, checksummed, LSN-stamped records
//! ([`cm_storage::LogPayload`]) for every logical mutation. This module
//! adds the other half of the durability story:
//!
//! * **Fuzzy checkpoints** — [`Engine::checkpoint`] logs a
//!   `CheckpointBegin`, snapshots every loaded table shard-by-shard
//!   *without* quiescing writers (only one shard's read lock is held at
//!   a time), flushes the buffer pools, and seals the image with a
//!   `CheckpointEnd { redo_lsn }` record. The image is usable exactly
//!   when its end record fully survives a crash; redo then starts at
//!   `redo_lsn`, the `CheckpointBegin` offset. The fuzziness is safe
//!   because every mutation appends its WAL record *inside* its shard's
//!   write-lock critical section: any record with `lsn < redo_lsn` has
//!   its heap effect visible to the snapshot (the snapshot's lock
//!   acquisition happens after that critical section), and records with
//!   `lsn >= redo_lsn` replay idempotently whether or not the snapshot
//!   caught them.
//! * **Crash simulation** — [`Engine::crash_state`] freezes what a kill
//!   at an arbitrary byte offset of the log stream would leave on disk:
//!   the newest checkpoint image whose end record survived, plus the
//!   surviving log prefix (possibly ending mid-frame — the decoder
//!   detects the torn tail by checksum and truncates).
//! * **Restart** — [`Engine::recover`] rebuilds a fresh engine from that
//!   state: restore each table from the image, redo every logged
//!   mutation from `redo_lsn` forward (repeating history, uncommitted
//!   work included), then undo the uncommitted tail in reverse using the
//!   before-images the records carry. The result answers queries with
//!   committed-prefix semantics: every transaction whose commit record
//!   survived is fully present, every other transaction fully absent.
//!
//! Recovery I/O is charged to the simulated disks — the log is read
//! sequentially from the log disk and undo/redo page touches go through
//! the shard pools — so the [`RecoveryReport`]'s simulated time is a
//! faithful time-to-first-query figure for the bench harness.

use crate::engine::{Engine, EngineConfig, LoadedTable, TableEntry};
use crate::error::EngineError;
use crate::shard::RangeRouter;
use crate::Result;
use cm_core::CmSpec;
use cm_query::Table;
use cm_storage::{
    decode_stream, LogPayload, Lsn, PageAccessor, Rid, Row, Schema, Value, AUTOCOMMIT_TXN,
    FRAME_HEADER_BYTES, LIVE_TS, PAYLOAD_HEADER_BYTES,
};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Byte length of a `CheckpointEnd` frame: header + payload header +
/// the 8-byte `redo_lsn`. A checkpoint image is usable for a crash cut
/// iff the cut lies at or past its end record's last byte.
const CHECKPOINT_END_FRAME_BYTES: u64 =
    (FRAME_HEADER_BYTES + PAYLOAD_HEADER_BYTES + 8) as u64;

/// One shard's slice of a checkpoint image.
#[derive(Debug, Clone)]
pub struct ShardImage {
    /// Every heap slot in RID order, tombstones (all-NULL rows) included.
    pub rows: Vec<Row>,
    /// The bulk-loaded sorted-prefix length ([`cm_query::Table::restore`]
    /// rebuilds the clustered index and bucket directory from it; rows
    /// past it are re-learned as appends).
    pub base_len: u64,
}

/// One table's slice of a checkpoint image: enough to re-create the
/// catalog entry, re-partition, and rebuild every access structure.
#[derive(Debug, Clone)]
pub struct TableImage {
    /// Table name.
    pub name: String,
    /// Table schema.
    pub schema: Arc<Schema>,
    /// Clustered column position.
    pub clustered_col: usize,
    /// Heap tuples per page.
    pub tups_per_page: usize,
    /// Bucket-directory target (tuples per CM bucket).
    pub bucket_target: u64,
    /// The range router's split keys (shard `i+1`'s smallest owned key).
    pub splits: Vec<Value>,
    /// Per-shard heap images, in shard order.
    pub shards: Vec<ShardImage>,
    /// Secondary B+Trees at snapshot time: `(name, key columns)`, the
    /// same set on every shard.
    pub btrees: Vec<(String, Vec<usize>)>,
    /// Correlation Maps at snapshot time: `(name, spec)`.
    pub cms: Vec<(String, CmSpec)>,
}

/// A consistent-enough snapshot of every loaded table (fuzzy: shards are
/// copied one at a time while writers proceed elsewhere; redo from the
/// paired `redo_lsn` squares it up).
#[derive(Debug, Clone, Default)]
pub struct DurableImage {
    /// Snapshots of every loaded table, sorted by name.
    pub tables: Vec<TableImage>,
}

/// A checkpoint image plus its placement in the log stream.
pub(crate) struct ImageInstall {
    /// First log offset at which this image is durable: the byte just
    /// past its `CheckpointEnd` frame (for the base image installed by
    /// `load`, the append position at install time). A crash cut at or
    /// past `at` may recover from this image.
    pub(crate) at: u64,
    /// Where redo starts when recovering from this image.
    pub(crate) redo_lsn: Lsn,
    /// The image itself.
    pub(crate) image: Arc<DurableImage>,
}

/// What a crash leaves behind: the newest usable checkpoint image and
/// the log prefix that survived. Produced by [`Engine::crash_state`],
/// consumed by [`Engine::recover`].
#[derive(Clone)]
pub struct CrashState {
    /// The newest checkpoint image whose end record survived the cut
    /// (the load-time base image when no checkpoint completed).
    pub image: Arc<DurableImage>,
    /// Where redo starts: the image's paired `CheckpointBegin` offset.
    pub redo_lsn: Lsn,
    /// The surviving log stream prefix, offset 0 = LSN 0. May end
    /// mid-frame; the decoder truncates the torn tail.
    pub log: Vec<u8>,
}

/// What [`Engine::recover`] did, and what it cost.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Bytes of log the crash left behind.
    pub log_bytes: u64,
    /// Bytes that decoded cleanly (`<= log_bytes`).
    pub valid_bytes: u64,
    /// Whether a torn tail was detected and truncated.
    pub torn: bool,
    /// Records decoded from the surviving prefix.
    pub records: u64,
    /// Logical mutations reapplied during the redo pass.
    pub redone: u64,
    /// Logical mutations rolled back during the undo pass.
    pub undone: u64,
    /// Distinct committed transactions observed (excluding autocommit).
    pub committed_txns: u64,
    /// Distinct uncommitted transactions rolled back.
    pub uncommitted_txns: u64,
    /// Where redo started.
    pub redo_lsn: Lsn,
    /// Simulated milliseconds the whole restart charged (log read +
    /// redo/undo page traffic): the engine's time-to-first-query.
    pub sim_ms: f64,
}

// ------------------------------------------------------- design codec

/// Encode a table's complete access-structure set (secondary B+Trees +
/// CMs) for a `DesignChange` record. Self-delimiting; decoded by
/// [`decode_structures`].
pub(crate) fn encode_structures(t: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    let put_str = |out: &mut Vec<u8>, s: &str| {
        out.extend_from_slice(&(s.len() as u16).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    };
    out.extend_from_slice(&(t.secondaries().len() as u16).to_le_bytes());
    for sec in t.secondaries() {
        put_str(&mut out, sec.name());
        out.extend_from_slice(&(sec.cols().len() as u16).to_le_bytes());
        for &c in sec.cols() {
            out.extend_from_slice(&(c as u32).to_le_bytes());
        }
    }
    out.extend_from_slice(&(t.cms().len() as u16).to_le_bytes());
    for cm in t.cms() {
        put_str(&mut out, cm.name());
        out.extend_from_slice(&cm.spec().encode());
    }
    out
}

type DecodedStructures = (Vec<(String, Vec<usize>)>, Vec<(String, CmSpec)>);

/// Decode a [`encode_structures`] payload. `None` on malformed bytes.
pub(crate) fn decode_structures(bytes: &[u8]) -> Option<DecodedStructures> {
    let mut at = 0usize;
    let take_u16 = |at: &mut usize| -> Option<u16> {
        let v = u16::from_le_bytes(bytes.get(*at..*at + 2)?.try_into().ok()?);
        *at += 2;
        Some(v)
    };
    let take_str = |at: &mut usize| -> Option<String> {
        let len = u16::from_le_bytes(bytes.get(*at..*at + 2)?.try_into().ok()?) as usize;
        *at += 2;
        let s = std::str::from_utf8(bytes.get(*at..*at + len)?).ok()?.to_string();
        *at += len;
        Some(s)
    };
    let n_btrees = take_u16(&mut at)?;
    let mut btrees = Vec::with_capacity(n_btrees as usize);
    for _ in 0..n_btrees {
        let name = take_str(&mut at)?;
        let ncols = take_u16(&mut at)? as usize;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let c = u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?);
            at += 4;
            cols.push(c as usize);
        }
        btrees.push((name, cols));
    }
    let n_cms = take_u16(&mut at)?;
    let mut cms = Vec::with_capacity(n_cms as usize);
    for _ in 0..n_cms {
        let name = take_str(&mut at)?;
        let (spec, used) = CmSpec::decode(bytes.get(at..)?)?;
        at += used;
        cms.push((name, spec));
    }
    (at == bytes.len()).then_some((btrees, cms))
}

// -------------------------------------------------------- checkpoints

impl Engine {
    /// Snapshot every loaded table, one shard read-lock at a time
    /// (writers on other shards — and on this shard, before/after the
    /// copy — proceed concurrently; the paired `redo_lsn` squares up
    /// anything the fuzzy copy raced with).
    fn snapshot_image(&self) -> DurableImage {
        let entries: Vec<Arc<TableEntry>> = self.catalog.read().values().cloned().collect();
        let mut tables = Vec::new();
        for entry in entries {
            let loaded = entry.loaded.read();
            let Some(lt) = loaded.as_ref() else { continue };
            let mut shards = Vec::with_capacity(lt.parts.len());
            for (i, part) in lt.parts.iter().enumerate() {
                let t = part.read();
                // Under MVCC, end-stamped versions image as all-NULL
                // tombstones: a *committed* delete whose record precedes
                // `redo_lsn` is never replayed, so the image must not
                // carry the dead bytes — while an *uncommitted* delete is
                // reinstated by undo from its record's before-image
                // either way. Pending-begin rows (uncommitted inserts)
                // keep their bytes; undo tombstones them if the
                // transaction never commits.
                let mvcc = self.mvcc.is_some();
                let rows: Vec<Row> = t
                    .heap()
                    .iter()
                    .map(|(rid, r)| {
                        if mvcc && t.stamp_of(rid).1 != LIVE_TS {
                            vec![Value::Null; r.len()]
                        } else {
                            r.clone()
                        }
                    })
                    .collect();
                shards.push(ShardImage { rows, base_len: lt.base_lens[i] });
            }
            let t0 = lt.parts[0].read();
            let btrees = t0
                .secondaries()
                .iter()
                .map(|s| (s.name().to_string(), s.cols().to_vec()))
                .collect();
            let cms = t0
                .cms()
                .iter()
                .map(|c| (c.name().to_string(), c.spec().clone()))
                .collect();
            drop(t0);
            tables.push(TableImage {
                name: entry.name.clone(),
                schema: entry.schema.clone(),
                clustered_col: entry.clustered_col,
                tups_per_page: entry.tups_per_page,
                bucket_target: entry.bucket_target,
                splits: lt.router.splits().to_vec(),
                shards,
                btrees,
                cms,
            });
        }
        tables.sort_by(|a, b| a.name.cmp(&b.name));
        DurableImage { tables }
    }

    /// Install the load-time base image: bulk loads are not logged
    /// record by record, so recovery needs a starting image even before
    /// the first checkpoint. Conservative placement: usable only for
    /// cuts at or past the current append position.
    pub(crate) fn install_base_image(&self) {
        let image = Arc::new(self.snapshot_image());
        let at = self.wal.appended_bytes();
        self.images.lock().push(ImageInstall { at, redo_lsn: at, image });
        self.ckpt_records.store(self.wal.records(), Ordering::Relaxed);
    }

    /// Take a fuzzy checkpoint now (blocking if another is in flight);
    /// returns the new image's redo LSN. See the module docs for the
    /// protocol and why it tolerates concurrent writers.
    pub fn checkpoint(&self) -> Lsn {
        let _serialized = self.ckpt_lock.lock();
        self.checkpoint_locked()
    }

    /// Auto-checkpoint hook run by [`Engine::commit`]: fires when
    /// `checkpoint_every` records have accumulated since the last image
    /// install, and skips (rather than queues) when a checkpoint is
    /// already in flight.
    pub(crate) fn maybe_checkpoint(&self) {
        let every = self.config.checkpoint_every;
        if every == 0 {
            return;
        }
        let since =
            self.wal.records().saturating_sub(self.ckpt_records.load(Ordering::Relaxed));
        if since < every {
            return;
        }
        if let Some(_serialized) = self.ckpt_lock.try_lock() {
            self.checkpoint_locked();
        }
    }

    /// The checkpoint protocol body; callers must hold `ckpt_lock`.
    fn checkpoint_locked(&self) -> Lsn {
        // Begin marker first: its offset is where redo will start, so it
        // must precede every mutation the snapshot could miss.
        let redo_lsn = self.wal.log(AUTOCOMMIT_TXN, &LogPayload::CheckpointBegin);
        let image = Arc::new(self.snapshot_image());
        // Push dirty pages out so the (simulated) on-disk heaps are no
        // older than the image; charges the flush to the shard disks.
        for b in &self.backends {
            b.flush();
        }
        let end_lsn =
            self.wal.log(AUTOCOMMIT_TXN, &LogPayload::CheckpointEnd { redo_lsn });
        self.wal.commit();
        let at = end_lsn + CHECKPOINT_END_FRAME_BYTES;
        self.images.lock().push(ImageInstall { at, redo_lsn, image });
        self.ckpt_records.store(self.wal.records(), Ordering::Relaxed);
        redo_lsn
    }

    /// Number of checkpoint images installed (the load-time base image
    /// included).
    pub fn checkpoint_count(&self) -> usize {
        self.images.lock().len()
    }

    // ------------------------------------------------ crash + restart

    /// Freeze what a crash at log offset `cut` would leave on disk: the
    /// surviving log prefix (possibly mid-frame) and the newest
    /// checkpoint image whose end record survived. `None` cuts at the
    /// durable boundary — everything flushed survives, the un-flushed
    /// tail is lost — which is what a power cut between commits does.
    pub fn crash_state(&self, cut: Option<u64>) -> CrashState {
        let full = self.wal.appended_log();
        let cut = cut.unwrap_or_else(|| self.wal.durable_bytes()).min(full.len() as u64);
        let log = full[..cut as usize].to_vec();
        let images = self.images.lock();
        match images.iter().rev().find(|im| im.at <= cut) {
            Some(im) => CrashState { image: im.image.clone(), redo_lsn: im.redo_lsn, log },
            None => CrashState {
                image: Arc::new(DurableImage::default()),
                redo_lsn: 0,
                log,
            },
        }
    }

    /// Restart from a crash: build a fresh engine, restore every table
    /// from the checkpoint image, redo history from the image's
    /// `redo_lsn`, and undo uncommitted transactions in reverse. The
    /// recovered engine answers queries with committed-prefix semantics
    /// and is itself checkpointable and crashable (its log restarts at
    /// offset 0 over the restored base image).
    ///
    /// All restart I/O is charged to the new engine's simulated disks;
    /// [`RecoveryReport::sim_ms`] is its time-to-first-query.
    pub fn recover(
        config: EngineConfig,
        state: &CrashState,
    ) -> Result<(Arc<Engine>, RecoveryReport)> {
        let engine = Engine::try_new(config)?;
        // Analysis + redo read the surviving log once, sequentially,
        // from the log disk.
        let log_bytes = state.log.len() as u64;
        if log_bytes > 0 {
            let pages = log_bytes.div_ceil(engine.config.disk.page_bytes as u64);
            let f = engine.log_disk.alloc_file();
            engine.log_disk.read_run(f, 0, pages - 1);
        }
        let decoded = decode_stream(&state.log);

        for ti in &state.image.tables {
            restore_table(&engine, ti)?;
        }

        // Analysis: committed set and high-water transaction id.
        let mut committed: HashSet<u64> = HashSet::new();
        committed.insert(AUTOCOMMIT_TXN);
        let mut seen_txns: HashSet<u64> = HashSet::new();
        let mut max_txn = AUTOCOMMIT_TXN;
        let mut max_commit_ts = 0u64;
        for rec in &decoded.records {
            max_txn = max_txn.max(rec.txn);
            if rec.txn != AUTOCOMMIT_TXN {
                seen_txns.insert(rec.txn);
            }
            if let LogPayload::Commit { ts } = rec.payload {
                committed.insert(rec.txn);
                max_commit_ts = max_commit_ts.max(ts);
            }
        }

        // Redo: repeat history (uncommitted work included) from the
        // image's redo point. Per-shard record order is mutation order,
        // so replay in LSN order is replay in causal order.
        let mut redone = 0u64;
        for rec in &decoded.records {
            if rec.lsn < state.redo_lsn {
                continue;
            }
            match &rec.payload {
                LogPayload::Insert { table, shard, rid, row } => {
                    redo_insert(&engine, table, *shard as usize, Rid(*rid), row)?;
                    redone += 1;
                }
                LogPayload::Delete { table, shard, rid, .. } => {
                    redo_delete(&engine, table, *shard as usize, Rid(*rid))?;
                    redone += 1;
                }
                LogPayload::DeleteSet { table, shard, victims } => {
                    for (rid, _) in victims {
                        redo_delete(&engine, table, *shard as usize, Rid(*rid))?;
                    }
                    redone += 1;
                }
                LogPayload::DesignChange { table, design } => {
                    redo_design(&engine, table, design)?;
                    redone += 1;
                }
                LogPayload::Maintenance { .. }
                | LogPayload::Commit { .. }
                | LogPayload::CheckpointBegin
                | LogPayload::CheckpointEnd { .. } => {}
            }
        }

        // Undo: roll the uncommitted tail back in reverse, restoring
        // before-images. Records before `redo_lsn` participate too — an
        // uncommitted write can predate the checkpoint that imaged it.
        let mut undone = 0u64;
        for rec in decoded.records.iter().rev() {
            if committed.contains(&rec.txn) {
                continue;
            }
            match &rec.payload {
                LogPayload::Insert { table, shard, rid, .. } => {
                    undo_insert(&engine, table, *shard as usize, Rid(*rid))?;
                    undone += 1;
                }
                LogPayload::Delete { table, shard, rid, row } => {
                    undo_delete(&engine, table, *shard as usize, Rid(*rid), row)?;
                    undone += 1;
                }
                LogPayload::DeleteSet { table, shard, victims } => {
                    for (rid, row) in victims.iter().rev() {
                        undo_delete(&engine, table, *shard as usize, Rid(*rid), row)?;
                    }
                    undone += 1;
                }
                _ => {}
            }
        }

        // Sessions on the recovered engine must not reuse a logged txn id.
        engine.next_txn.store(max_txn + 1, Ordering::Relaxed);
        // The restart rebuilt a single-version heap (every surviving row
        // stamped live-at-1): restart the commit clock past the largest
        // logged commit timestamp so new commits never reuse one.
        if let Some(mv) = &engine.mvcc {
            mv.reset_clock(max_commit_ts.max(1));
        }
        // The recovered state is the new baseline: its log restarts at
        // offset 0, so install the post-recovery image there.
        engine.install_base_image();

        let committed_named = committed.len() as u64 - 1; // minus autocommit
        let report = RecoveryReport {
            log_bytes,
            valid_bytes: decoded.valid_bytes,
            torn: decoded.torn,
            records: decoded.records.len() as u64,
            redone,
            undone,
            committed_txns: committed_named,
            uncommitted_txns: seen_txns.iter().filter(|t| !committed.contains(t)).count()
                as u64,
            redo_lsn: state.redo_lsn,
            sim_ms: engine.io_totals().elapsed_ms,
        };
        Ok((engine, report))
    }
}

// ---------------------------------------------------- redo / undo ops

fn table_entry(engine: &Engine, table: &str) -> Result<Arc<TableEntry>> {
    engine
        .catalog
        .read()
        .get(table)
        .cloned()
        .ok_or_else(|| EngineError::Recovery(format!("log names unknown table {table:?}")))
}

/// Rebuild one table from its image slice: catalog entry, router,
/// per-shard [`Table::restore`], then the imaged access structures.
fn restore_table(engine: &Engine, ti: &TableImage) -> Result<()> {
    if ti.shards.len() > engine.backends.len() {
        return Err(EngineError::Recovery(format!(
            "image of {:?} spans {} shards but the engine has {}",
            ti.name,
            ti.shards.len(),
            engine.backends.len()
        )));
    }
    engine.create_table(
        ti.name.clone(),
        ti.schema.clone(),
        ti.clustered_col,
        ti.tups_per_page,
        ti.bucket_target,
    )?;
    let entry = table_entry(engine, &ti.name)?;
    let mut loaded = entry.loaded.write();
    let router = RangeRouter::new(ti.clustered_col, ti.splits.clone());
    let mut parts = Vec::with_capacity(ti.shards.len());
    let mut base_lens = Vec::with_capacity(ti.shards.len());
    let mut analyze: Vec<usize> = Vec::new();
    for (i, si) in ti.shards.iter().enumerate() {
        let mut t = Table::restore(
            engine.backends[i].disk(),
            ti.schema.clone(),
            si.rows.clone(),
            ti.tups_per_page,
            ti.clustered_col,
            ti.bucket_target,
            si.base_len,
        )
        .map_err(EngineError::Storage)?;
        for (name, cols) in &ti.btrees {
            t.add_secondary(engine.backends[i].disk(), name.clone(), cols.clone());
            analyze.extend_from_slice(cols);
        }
        for (name, spec) in &ti.cms {
            t.add_cm(name.clone(), spec.clone());
            analyze.extend(spec.cols());
        }
        analyze.sort_unstable();
        analyze.dedup();
        if !analyze.is_empty() {
            t.analyze_cols(&analyze);
        }
        base_lens.push(si.base_len);
        parts.push(RwLock::new(t));
    }
    *loaded = Some(LoadedTable { router, parts, base_lens });
    Ok(())
}

/// Run `f` under one shard partition's write lock.
fn with_part<R>(
    engine: &Engine,
    table: &str,
    shard: usize,
    f: impl FnOnce(&mut Table, &dyn PageAccessor) -> Result<R>,
) -> Result<R> {
    let entry = table_entry(engine, table)?;
    let loaded = entry.loaded.read();
    let lt = loaded
        .as_ref()
        .ok_or_else(|| EngineError::Recovery(format!("table {table:?} has no image")))?;
    let part = lt.parts.get(shard).ok_or_else(|| {
        EngineError::Recovery(format!("record addresses shard {shard} of {table:?}"))
    })?;
    let mut t = part.write();
    f(&mut t, engine.backends[shard].pool())
}

/// Idempotent redo of a logged insert: grow the heap with placeholder
/// slots up to the logged RID if the image predates it, refill the slot
/// if it is currently a tombstone, and leave it alone if the image (or
/// an earlier replay) already holds the row.
fn redo_insert(engine: &Engine, table: &str, shard: usize, rid: Rid, row: &Row) -> Result<()> {
    with_part(engine, table, shard, |t, pool| {
        if rid.0 >= t.heap().len() {
            while t.heap().len() < rid.0 {
                t.append_placeholder();
            }
            t.insert_row(pool, None, row.clone()).map_err(EngineError::Storage)?;
        } else if t.is_tombstone(rid).map_err(EngineError::Storage)? {
            t.reinstate_row(pool, rid, row.clone()).map_err(EngineError::Storage)?;
        }
        Ok(())
    })
}

/// Idempotent redo of a logged delete: tombstone the slot unless the
/// image already shows it deleted. A RID past the heap means the log
/// and image disagree — surfaced as a recovery error.
fn redo_delete(engine: &Engine, table: &str, shard: usize, rid: Rid) -> Result<()> {
    with_part(engine, table, shard, |t, pool| {
        if rid.0 >= t.heap().len() {
            return Err(EngineError::Recovery(format!(
                "delete record for {table:?} shard {shard} rid {} past heap end {}",
                rid.0,
                t.heap().len()
            )));
        }
        if !t.is_tombstone(rid).map_err(EngineError::Storage)? {
            t.delete_row(pool, None, rid).map_err(EngineError::Storage)?;
        }
        Ok(())
    })
}

/// Redo a design change: replace the access-structure set with the one
/// the record carries (records hold the full post-change set, so replay
/// is idempotent and order-tolerant).
fn redo_design(engine: &Engine, table: &str, design: &[u8]) -> Result<()> {
    let (btrees, cms) = decode_structures(design).ok_or_else(|| {
        EngineError::Recovery(format!("malformed design-change record for {table:?}"))
    })?;
    let entry = table_entry(engine, table)?;
    let loaded = entry.loaded.read();
    let lt = loaded
        .as_ref()
        .ok_or_else(|| EngineError::Recovery(format!("table {table:?} has no image")))?;
    let mut analyze: Vec<usize> = Vec::new();
    for (i, part) in lt.parts.iter().enumerate() {
        let mut t = part.write();
        t.clear_access_structures();
        for (name, cols) in &btrees {
            t.add_secondary(engine.backends[i].disk(), name.clone(), cols.clone());
            analyze.extend_from_slice(cols);
        }
        for (name, spec) in &cms {
            t.add_cm(name.clone(), spec.clone());
            analyze.extend(spec.cols());
        }
        analyze.sort_unstable();
        analyze.dedup();
        if !analyze.is_empty() {
            t.analyze_cols(&analyze);
        }
    }
    Ok(())
}

/// Undo an uncommitted insert: tombstone the slot if it currently holds
/// the row (it may already be gone if the transaction deleted it again).
fn undo_insert(engine: &Engine, table: &str, shard: usize, rid: Rid) -> Result<()> {
    with_part(engine, table, shard, |t, pool| {
        if rid.0 < t.heap().len() && !t.is_tombstone(rid).map_err(EngineError::Storage)? {
            t.delete_row(pool, None, rid).map_err(EngineError::Storage)?;
        }
        Ok(())
    })
}

/// Undo an uncommitted delete: reinstate the before-image the record
/// carries.
fn undo_delete(engine: &Engine, table: &str, shard: usize, rid: Rid, row: &Row) -> Result<()> {
    with_part(engine, table, shard, |t, pool| {
        if rid.0 < t.heap().len() && t.is_tombstone(rid).map_err(EngineError::Storage)? {
            t.reinstate_row(pool, rid, row.clone()).map_err(EngineError::Storage)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::CmSpec;
    use cm_storage::{Column, Schema, Value, ValueType};

    fn demo_table() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("a", ValueType::Int),
            Column::new("b", ValueType::Int),
        ]));
        let rows: Vec<Row> =
            (0..100i64).map(|i| vec![Value::Int(i), Value::Int(i * 3 % 7)]).collect();
        let disk = cm_storage::DiskSim::with_defaults();
        Table::build(&disk, schema, rows, 10, 0, 20).unwrap()
    }

    #[test]
    fn structures_roundtrip_through_the_codec() {
        let mut t = demo_table();
        let disk = cm_storage::DiskSim::with_defaults();
        t.add_secondary(&disk, "ix_b", vec![1]);
        t.add_secondary(&disk, "ix_ab", vec![0, 1]);
        t.add_cm("cm_b", CmSpec::single_raw(1));
        let bytes = encode_structures(&t);
        let (btrees, cms) = decode_structures(&bytes).expect("roundtrip");
        assert_eq!(
            btrees,
            vec![("ix_b".to_string(), vec![1]), ("ix_ab".to_string(), vec![0, 1])]
        );
        assert_eq!(cms.len(), 1);
        assert_eq!(cms[0].0, "cm_b");
        assert_eq!(cms[0].1.cols(), vec![1]);
    }

    #[test]
    fn empty_structure_sets_encode() {
        let t = demo_table();
        let bytes = encode_structures(&t);
        let (btrees, cms) = decode_structures(&bytes).expect("roundtrip");
        assert!(btrees.is_empty());
        assert!(cms.is_empty());
    }

    #[test]
    fn malformed_design_bytes_are_rejected() {
        assert!(decode_structures(&[]).is_none());
        assert!(decode_structures(&[1, 0]).is_none(), "truncated b-tree entry");
        let mut t = demo_table();
        let disk = cm_storage::DiskSim::with_defaults();
        t.add_secondary(&disk, "ix", vec![1]);
        let mut bytes = encode_structures(&t);
        bytes.push(0); // trailing garbage
        assert!(decode_structures(&bytes).is_none());
    }
}
