//! Per-connection session handles.
//!
//! A [`Session`] is a cheap clone-of-`Arc` view of the engine with
//! per-session statistics and an optional cold-read mode (queries charge
//! straight to the disk instead of through the shared buffer pool —
//! the paper's flushed-cache methodology). Sessions are `Send`, so a
//! workload driver hands one to each thread.

use crate::engine::{Engine, QueryOutcome};
use crate::Result;
use cm_core::CmSpec;
use cm_query::{AccessPath, Query, QueryPlan};
use cm_storage::{IoStats, Rid, Row};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-session activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries executed through this session.
    pub queries: u64,
    /// Rows inserted through this session.
    pub inserts: u64,
    /// Rows deleted through this session.
    pub deletes: u64,
}

/// A connection-like handle over a shared [`Engine`].
pub struct Session {
    engine: Arc<Engine>,
    cold_reads: bool,
    /// The open transaction's id, or 0 ([`cm_storage::AUTOCOMMIT_TXN`])
    /// when no write has happened since the last commit. Allocated
    /// lazily by the first write so read-only sessions never burn ids.
    txn: AtomicU64,
    queries: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
}

impl Session {
    pub(crate) fn new(engine: Arc<Engine>) -> Self {
        Session {
            engine,
            cold_reads: false,
            txn: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        }
    }

    /// The transaction id tagging this session's WAL records since its
    /// last commit, if a write has opened one. Recovery rolls these
    /// records back unless the commit record made it to the log.
    pub fn txn_id(&self) -> Option<u64> {
        match self.txn.load(Ordering::Relaxed) {
            0 => None,
            t => Some(t),
        }
    }

    /// The open transaction's id, allocating one on the first write.
    fn write_txn(&self) -> u64 {
        let t = self.txn.load(Ordering::Relaxed);
        if t != 0 {
            return t;
        }
        let fresh = self.engine.alloc_txn();
        self.txn.store(fresh, Ordering::Relaxed);
        fresh
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Charge this session's reads straight to the disk instead of
    /// through the shared buffer pool (cache-flushed experiment mode).
    pub fn set_cold_reads(&mut self, cold: bool) {
        self.cold_reads = cold;
    }

    /// Execute a query, cost-routed to the cheapest access path.
    pub fn execute(&self, table: &str, q: &Query) -> Result<QueryOutcome> {
        self.count_query(self.engine.execute_inner(table, q, None, false, self.cold_reads))
    }

    /// [`Session::execute`], collecting the matching rows.
    pub fn execute_collect(&self, table: &str, q: &Query) -> Result<QueryOutcome> {
        self.count_query(self.engine.execute_inner(table, q, None, true, self.cold_reads))
    }

    /// Execute through a specific access path.
    pub fn execute_via(
        &self,
        table: &str,
        path: AccessPath,
        q: &Query,
    ) -> Result<QueryOutcome> {
        self.count_query(self.engine.execute_inner(table, q, Some(path), false, self.cold_reads))
    }

    /// [`Session::execute_via`], collecting the matching rows.
    pub fn execute_via_collect(
        &self,
        table: &str,
        path: AccessPath,
        q: &Query,
    ) -> Result<QueryOutcome> {
        self.count_query(self.engine.execute_inner(table, q, Some(path), true, self.cold_reads))
    }

    /// The planner's per-leg decisions for a query, without executing it.
    pub fn explain(&self, table: &str, q: &Query) -> Result<QueryPlan> {
        self.engine.explain(table, q)
    }

    /// INSERT one row (logged under this session's open transaction).
    pub fn insert(&self, table: &str, row: Row) -> Result<Rid> {
        let r = self.engine.insert_txn(table, row, self.write_txn());
        if r.is_ok() {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// INSERT a batch, committing the WAL once at the end (group
    /// commit). The rows go through [`Engine::insert_many_txn`], which
    /// holds each touched shard's write lock once for its whole group
    /// instead of once per row — concurrent readers see one short
    /// exclusive hold per shard, not a stream of them.
    pub fn insert_many(&self, table: &str, rows: Vec<Row>) -> Result<Vec<Rid>> {
        let n = rows.len() as u64;
        let rids = self.engine.insert_many_txn(table, rows, self.write_txn())?;
        self.inserts.fetch_add(n, Ordering::Relaxed);
        self.commit();
        Ok(rids)
    }

    /// DELETE one row by RID (logged under this session's open
    /// transaction).
    pub fn delete(&self, table: &str, rid: Rid) -> Result<Row> {
        let r = self.engine.delete_txn(table, rid, self.write_txn());
        if r.is_ok() {
            self.deletes.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// DELETE every row matching `q` (logged under this session's open
    /// transaction).
    pub fn delete_where(&self, table: &str, q: &Query) -> Result<Vec<Rid>> {
        let victims = self.engine.delete_where_txn(table, q, self.write_txn())?;
        self.deletes.fetch_add(victims.len() as u64, Ordering::Relaxed);
        Ok(victims)
    }

    /// Create a Correlation Map on the session's engine.
    pub fn create_cm(&self, table: &str, name: impl Into<String>, spec: CmSpec) -> Result<usize> {
        self.engine.create_cm(table, name, spec)
    }

    /// Create a secondary B+Tree on the session's engine.
    pub fn create_btree(
        &self,
        table: &str,
        name: impl Into<String>,
        cols: Vec<usize>,
    ) -> Result<usize> {
        self.engine.create_btree(table, name, cols)
    }

    /// Commit this session's open transaction: append its commit record
    /// (making its writes survive recovery) and force the engine WAL.
    /// The next write opens a fresh transaction.
    ///
    /// With no buffered writes there is nothing to make durable, so the
    /// call is a true no-op: no commit record, no WAL flush, no I/O.
    pub fn commit(&self) -> IoStats {
        let t = self.txn.swap(0, Ordering::Relaxed);
        if t == 0 {
            return IoStats::default();
        }
        self.engine.log_commit(t);
        self.engine.commit()
    }

    /// Count one successful query (failed operations are not activity).
    fn count_query(&self, r: Result<QueryOutcome>) -> Result<QueryOutcome> {
        if r.is_ok() {
            self.queries.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// This session's activity counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries: self.queries.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use cm_query::Pred;
    use cm_storage::{Column, Schema, Value, ValueType};

    fn engine_with_table() -> Arc<Engine> {
        let engine = Engine::new(EngineConfig::default());
        let schema = Arc::new(Schema::new(vec![
            Column::new("k", ValueType::Int),
            Column::new("v", ValueType::Int),
        ]));
        engine.create_table("t", schema, 0, 16, 64).unwrap();
        let rows: Vec<Row> =
            (0..2000i64).map(|i| vec![Value::Int(i % 40), Value::Int(i)]).collect();
        engine.load("t", rows).unwrap();
        engine
    }

    #[test]
    fn session_tracks_its_own_stats() {
        let engine = engine_with_table();
        let s1 = engine.session();
        let s2 = engine.session();
        s1.execute("t", &Query::single(Pred::eq(0, 1i64))).unwrap();
        s1.insert("t", vec![Value::Int(40), Value::Int(9999)]).unwrap();
        s2.execute("t", &Query::single(Pred::eq(0, 2i64))).unwrap();
        assert_eq!(s1.stats(), SessionStats { queries: 1, inserts: 1, deletes: 0 });
        assert_eq!(s2.stats(), SessionStats { queries: 1, inserts: 0, deletes: 0 });
        assert_eq!(engine.stats().queries, 2);
        assert_eq!(engine.stats().inserts, 1);
    }

    #[test]
    fn concurrent_sessions_see_consistent_data() {
        let engine = engine_with_table();
        engine.create_cm("t", "v_cm", CmSpec::single_pow2(1, 3)).unwrap();
        std::thread::scope(|scope| {
            // Writers append rows with v >= 100_000 in distinct key space.
            for w in 0..2i64 {
                let session = engine.session();
                scope.spawn(move || {
                    for i in 0..200 {
                        session
                            .insert("t", vec![Value::Int(50 + w), Value::Int(100_000 + w * 1000 + i)])
                            .unwrap();
                    }
                    session.commit();
                });
            }
            // Readers keep querying the preloaded key range; every row of
            // a preloaded key is already present, so counts only grow.
            for r in 0..3i64 {
                let session = engine.session();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let out = session
                            .execute("t", &Query::single(Pred::eq(0, r)))
                            .unwrap();
                        assert_eq!(out.run.matched, 50, "preloaded keys are stable");
                    }
                });
            }
        });
        // All writer rows arrived.
        let out = engine
            .execute("t", &Query::single(Pred::between(1, 100_000i64, 200_000i64)))
            .unwrap();
        assert_eq!(out.run.matched, 400);
        assert_eq!(engine.stats().inserts, 400);
    }

    #[test]
    fn failed_operations_are_not_counted() {
        let engine = engine_with_table();
        let session = engine.session();
        assert!(session.execute("no_such_table", &Query::default()).is_err());
        assert!(session.insert("no_such_table", vec![]).is_err());
        assert_eq!(session.stats(), SessionStats::default());
    }

    #[test]
    fn insert_many_group_commits() {
        let engine = engine_with_table();
        let session = engine.session();
        let before = engine.stats().wal_durable_bytes;
        let rows: Vec<Row> =
            (0..100i64).map(|i| vec![Value::Int(41), Value::Int(10_000 + i)]).collect();
        session.insert_many("t", rows).unwrap();
        assert!(engine.stats().wal_durable_bytes > before, "WAL flushed");
        assert_eq!(session.stats().inserts, 100);
    }

    #[test]
    fn empty_commit_is_a_true_noop() {
        let engine = engine_with_table();
        let session = engine.session();
        // Reads never open a transaction.
        session.execute("t", &Query::single(Pred::eq(0, 1i64))).unwrap();
        let records = engine.stats().wal_records;
        let durable = engine.stats().wal_durable_bytes;
        let flushes = engine.wal_stats().flushes;
        let io = session.commit();
        assert_eq!(io, IoStats::default(), "no write buffered: no I/O charged");
        let s = engine.stats();
        assert_eq!(s.wal_records, records, "no commit record appended");
        assert_eq!(s.wal_durable_bytes, durable, "nothing flushed");
        assert_eq!(engine.wal_stats().flushes, flushes, "no group-commit round");
        // A session that wrote still commits normally afterwards.
        session.insert("t", vec![Value::Int(1), Value::Int(77_000)]).unwrap();
        session.commit();
        assert!(engine.stats().wal_records > records);
        // And its next commit, with the transaction closed, is a no-op
        // again.
        let durable = engine.stats().wal_durable_bytes;
        assert_eq!(session.commit(), IoStats::default());
        assert_eq!(engine.stats().wal_durable_bytes, durable);
    }

    #[test]
    fn cold_reads_bypass_the_pool() {
        let engine = engine_with_table();
        let mut session = engine.session();
        session.set_cold_reads(true);
        let q = Query::single(Pred::eq(0, 5i64));
        let first = session.execute("t", &q).unwrap();
        let second = session.execute("t", &q).unwrap();
        // No pool warming: repeats cost the same.
        assert!((first.run.ms() - second.run.ms()).abs() < 1e-9);
    }
}
