//! Two-table joins: partitioned hash join with an optional
//! correlation-clamped probe.
//!
//! A join runs in two fanned-out phases over the same executor the
//! single-table path uses:
//!
//! 1. **Build** — the smaller side's shard legs (planned exactly like a
//!    single-table query over the build filter) stream their rows into
//!    one [`JoinHashTable`], merged in explicit leg merge-key order.
//! 2. **Probe** — the larger side's shard legs scan and probe the table.
//!    Two strategies exist for the scan: the planner-chosen access path
//!    over the probe filter (classic hash join), or — when the probe
//!    table carries a CM covering the join column — a *correlation
//!    clamp*: the distinct build keys become an `IN` constraint on the
//!    CM and only co-clustered bucket ranges are swept
//!    ([`cm_query::Table::exec_cm_clamp_visit`]). The engine prices both
//!    with exact CM lookups ([`cm_cost::CostParams::cost_cm_join_probe`]
//!    vs the planned probe cost) and picks the cheaper per query.
//!
//! Both phases read at **one** MVCC snapshot acquired before the build,
//! so a concurrent writer can never split the join's view of the two
//! tables. Output order is deterministic across worker counts: probe
//! legs merge in ascending merge key, rows within a leg follow the probe
//! scan order, and ties on a duplicate key follow build insertion order
//! (itself merge-key ordered).

use crate::engine::{Engine, LegOutcome};
use crate::error::EngineError;
use crate::executor::scheduled_makespan;
use crate::Result;
use cm_advisor::WorkloadProfile;
use cm_cost::CostParams;
use cm_core::AttrConstraint;
use cm_query::exec::cm_constraints;
use cm_query::{
    ExecContext, JoinHashTable, JoinQuery, JoinSide, JoinStrategy, RunResult, ShardLeg,
};
use cm_storage::{IoStats, Row, Snapshot, Value};
use std::sync::atomic::Ordering;

/// How many build keys feed the probe column's distinct-queried sketch
/// in the workload profile (a bounded sample keeps profiling O(1)-ish
/// per join however large the build side is).
const PROFILE_KEY_SAMPLE: usize = 256;

/// One probe leg's result: run measurement, collected output rows, and
/// the output-pair count (tracked separately so uncollected runs still
/// report join cardinality).
type ProbeRun = Result<(RunResult, Vec<Row>, u64)>;

/// The correlation clamp's inputs: which CM to look up, the join column
/// it constrains, and the distinct build keys forming the `IN` list.
#[derive(Clone, Copy)]
struct Clamp<'a> {
    cm_id: usize,
    col: usize,
    keys: &'a [Value],
}

/// Outcome of one two-table equi-join.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The probe strategy that ran (planner-chosen unless forced).
    pub strategy: JoinStrategy,
    /// Which input was hashed (the smaller side; ties go left).
    pub build_side: JoinSide,
    /// Estimated probe cost of the hash strategy (ms): the sum of the
    /// planner's per-leg estimates for the probe filter.
    pub est_hash_ms: f64,
    /// Estimated probe cost of the correlation clamp (ms), priced from
    /// exact CM lookups over the build keys. `None` when the probe table
    /// has no CM covering the join column (or the build was empty).
    pub est_cm_ms: Option<f64>,
    /// Rows the build side contributed to the hash table (NULL join
    /// keys excluded — they can never match).
    pub build_rows: u64,
    /// Distinct join-key values in the hash table.
    pub distinct_keys: u64,
    /// Output rows of the join.
    pub matched: u64,
    /// Measured build-phase execution, summed across build legs.
    pub build_run: RunResult,
    /// Measured probe-phase execution, summed across probe legs.
    pub probe_run: RunResult,
    /// Simulated wall-clock of the two fan-outs back to back: build
    /// makespan + probe makespan on the engine's worker count.
    pub parallel_ms: f64,
    /// Per-leg choices and timings of the build phase, ascending by
    /// merge key.
    pub build_legs: Vec<LegOutcome>,
    /// Per-leg choices and timings of the probe phase, ascending by
    /// merge key. Under [`JoinStrategy::CmClamp`] each leg's recorded
    /// choice keeps the planner's hash-path pick (what the clamp was
    /// compared against); its run is the clamp's measurement.
    pub probe_legs: Vec<LegOutcome>,
    /// Joined rows (left columns then right columns), if collection was
    /// requested.
    pub rows: Option<Vec<Row>>,
}

impl Engine {
    /// Execute an inner equi-join between two loaded tables, picking the
    /// probe strategy (hash vs correlation clamp) by cost.
    ///
    /// The result's `matched` counts output rows; use
    /// [`Engine::join_collect`] to also materialize them.
    ///
    /// ```
    /// use cm_engine::{Engine, EngineConfig};
    /// use cm_query::JoinQuery;
    /// use cm_storage::{Column, Schema, Value, ValueType};
    /// use std::sync::Arc;
    ///
    /// let engine = Engine::new(EngineConfig::default());
    /// let items = Arc::new(Schema::new(vec![
    ///     Column::new("id", ValueType::Int),
    ///     Column::new("cat", ValueType::Int),
    /// ]));
    /// let cats = Arc::new(Schema::new(vec![
    ///     Column::new("cat", ValueType::Int),
    ///     Column::new("name", ValueType::Str),
    /// ]));
    /// engine.create_table("items", items, 0, 32, 64).unwrap();
    /// engine.create_table("cats", cats, 0, 32, 64).unwrap();
    /// let rows = (0..100i64).map(|i| vec![Value::Int(i), Value::Int(i % 4)]).collect();
    /// engine.load("items", rows).unwrap();
    /// let rows = (0..4i64).map(|c| vec![Value::Int(c), Value::str("cat")]).collect();
    /// engine.load("cats", rows).unwrap();
    ///
    /// // items.cat = cats.cat: every item matches exactly one category.
    /// let out = engine.join("items", "cats", &JoinQuery::on(1, 0)).unwrap();
    /// assert_eq!(out.matched, 100);
    /// ```
    pub fn join(&self, left: &str, right: &str, jq: &JoinQuery) -> Result<JoinOutcome> {
        self.join_inner(left, right, jq, None, false)
    }

    /// [`Engine::join`], also collecting the joined rows (left columns
    /// then right columns, deterministic order).
    pub fn join_collect(&self, left: &str, right: &str, jq: &JoinQuery) -> Result<JoinOutcome> {
        self.join_inner(left, right, jq, None, true)
    }

    /// Execute a join through a specific probe strategy (experiments and
    /// differential oracles). A forced [`JoinStrategy::CmClamp`] naming
    /// a CM the probe table lacks — or one whose key does not include
    /// the join column — surfaces [`EngineError::NoClampCm`].
    pub fn join_via(
        &self,
        left: &str,
        right: &str,
        jq: &JoinQuery,
        strategy: JoinStrategy,
    ) -> Result<JoinOutcome> {
        self.join_inner(left, right, jq, Some(strategy), false)
    }

    /// [`Engine::join_via`], also collecting the joined rows.
    pub fn join_via_collect(
        &self,
        left: &str,
        right: &str,
        jq: &JoinQuery,
        strategy: JoinStrategy,
    ) -> Result<JoinOutcome> {
        self.join_inner(left, right, jq, Some(strategy), true)
    }

    fn join_inner(
        &self,
        left: &str,
        right: &str,
        jq: &JoinQuery,
        forced: Option<JoinStrategy>,
        collect: bool,
    ) -> Result<JoinOutcome> {
        let left_entry = self.entry(left)?;
        let right_entry = self.entry(right)?;
        if jq.left_col >= left_entry.schema.arity() {
            return Err(EngineError::BadColumn { table: left.into(), col: jq.left_col });
        }
        if jq.right_col >= right_entry.schema.arity() {
            return Err(EngineError::BadColumn { table: right.into(), col: jq.right_col });
        }

        // Table-level read guards, acquired in name order so two joins
        // with swapped operands can never deadlock against a concurrent
        // offline design swap holding one write side. A self-join takes
        // one guard.
        let self_join = std::sync::Arc::ptr_eq(&left_entry, &right_entry);
        let left_guard;
        let mut right_guard = None;
        if self_join {
            let waited = std::time::Instant::now();
            left_guard = left_entry.loaded.read();
            self.note_read_stall(waited.elapsed());
        } else if left_entry.name <= right_entry.name {
            let waited = std::time::Instant::now();
            left_guard = left_entry.loaded.read();
            right_guard = Some(right_entry.loaded.read());
            self.note_read_stall(waited.elapsed());
        } else {
            let waited = std::time::Instant::now();
            let rg = right_entry.loaded.read();
            left_guard = left_entry.loaded.read();
            right_guard = Some(rg);
            self.note_read_stall(waited.elapsed());
        }
        let left_lt = left_guard
            .as_ref()
            .ok_or_else(|| EngineError::NotLoaded(left_entry.name.clone()))?;
        let right_lt = match &right_guard {
            Some(g) => {
                g.as_ref().ok_or_else(|| EngineError::NotLoaded(right_entry.name.clone()))?
            }
            None => left_lt,
        };

        self.profile_read(&left_entry, left_lt, &jq.left_filter);
        if !self_join {
            self.profile_read(&right_entry, right_lt, &jq.right_filter);
        }

        // One snapshot covers build and probe: however the legs
        // schedule, both sides see the same committed state.
        let snap = self.mvcc.as_ref().map(|mv| mv.begin());
        let snap_ref = snap.as_ref();

        // Build the smaller side (ties go left).
        let rows_of = |lt: &crate::engine::LoadedTable| -> u64 {
            lt.parts.iter().map(|p| p.read().heap().len()).sum()
        };
        let build_side = if self_join || rows_of(left_lt) <= rows_of(right_lt) {
            JoinSide::Left
        } else {
            JoinSide::Right
        };
        let (build_lt, build_col, build_filter) = match build_side {
            JoinSide::Left => (left_lt, jq.left_col, &jq.left_filter),
            JoinSide::Right => (right_lt, jq.right_col, &jq.right_filter),
        };
        let (probe_entry, probe_lt, probe_col, probe_filter) = match build_side {
            JoinSide::Left => (&right_entry, right_lt, jq.right_col, &jq.right_filter),
            JoinSide::Right => (&left_entry, left_lt, jq.left_col, &jq.left_filter),
        };

        // ---- build phase -----------------------------------------------
        let build_plan = self.plan_query(build_lt, build_filter, None);
        let build_results: Vec<Result<(RunResult, Vec<Row>)>> =
            if build_plan.legs.len() <= 1 || self.executor.workers() == 1 {
                build_plan
                    .legs
                    .iter()
                    .map(|leg| self.run_leg(build_lt, leg, true, false, snap_ref))
                    .collect()
            } else {
                self.executor.run(
                    build_plan
                        .legs
                        .iter()
                        .map(|leg| move || self.run_leg(build_lt, leg, true, false, snap_ref))
                        .collect(),
                )
            };
        let mut ht = JoinHashTable::new();
        let mut build_run = RunResult { matched: 0, examined: 0, io: IoStats::default() };
        let mut build_legs: Vec<LegOutcome> = Vec::with_capacity(build_plan.legs.len());
        let mut build_ms: Vec<f64> = Vec::with_capacity(build_plan.legs.len());
        let mut paired: Vec<(ShardLeg, crate::engine::LegRun)> =
            build_plan.legs.into_iter().zip(build_results).collect();
        paired.sort_by_key(|(leg, _)| leg.merge_key());
        for (leg, res) in paired {
            let (r, rows) = res?;
            for row in rows {
                let key = row[build_col].clone();
                ht.insert(&key, row);
            }
            build_run.matched += r.matched;
            build_run.examined += r.examined;
            build_run.io.add(&r.io);
            build_ms.push(r.io.elapsed_ms);
            if forced.is_none() {
                self.note_route(leg.choice.path);
            }
            build_legs.push(LegOutcome { shard: leg.shard, choice: leg.choice, run: r });
        }
        let keys = ht.sorted_keys();

        // The probe column's profile sees the join as one wide IN-shaped
        // lookup over the build keys (a bounded hash sample feeds the
        // distinct sketch).
        let key_hashes: Vec<u64> = keys
            .iter()
            .take(PROFILE_KEY_SAMPLE)
            .map(WorkloadProfile::hash_value)
            .collect();
        probe_entry
            .profile
            .lock()
            .note_join_probe(probe_col, keys.len() as f64, &key_hashes);

        // ---- strategy decision -----------------------------------------
        let probe_plan = self.plan_query(probe_lt, probe_filter, None);
        let est_hash_ms: f64 = probe_plan.legs.iter().map(|l| l.choice.est_ms).sum();
        let clamp_cm = match forced {
            Some(JoinStrategy::CmClamp(id)) => {
                let part = probe_lt.parts.first().expect("loaded tables have shards").read();
                let covers = part.cms().get(id).is_some_and(|cm| {
                    cm.spec().attrs().iter().any(|a| a.col == probe_col)
                });
                if !covers {
                    return Err(EngineError::NoClampCm {
                        table: probe_entry.name.clone(),
                        col: probe_col,
                    });
                }
                Some(id)
            }
            Some(JoinStrategy::Hash) => None,
            None => probe_lt.parts.first().and_then(|p| p.read().clamp_cm_for(probe_col)),
        };
        let est_cm_ms: Option<f64> = clamp_cm.filter(|_| !keys.is_empty()).map(|id| {
            let clamp = Clamp { cm_id: id, col: probe_col, keys: &keys };
            probe_plan
                .legs
                .iter()
                .map(|leg| self.clamp_estimate(probe_lt, leg, clamp))
                .sum()
        });
        let strategy = match forced {
            Some(s) => s,
            None => match (clamp_cm, est_cm_ms) {
                (Some(id), Some(cm_ms)) if cm_ms < est_hash_ms => JoinStrategy::CmClamp(id),
                _ => JoinStrategy::Hash,
            },
        };

        // ---- probe phase -----------------------------------------------
        // An empty hash table can match nothing; skip the probe sweep.
        let probe_results: Vec<ProbeRun> = if ht.is_empty() {
            Vec::new()
        } else {
            let run_probe_leg = |leg: &ShardLeg| -> ProbeRun {
                let mut out: Vec<Row> = Vec::new();
                let mut pairs = 0u64;
                let mut emit = |probe_row: &[Value]| {
                    for &idx in ht.probe(&probe_row[probe_col]) {
                        pairs += 1;
                        if collect {
                            let build_row = ht.row(idx);
                            let mut row = match build_side {
                                JoinSide::Left => build_row.clone(),
                                JoinSide::Right => probe_row.to_vec(),
                            };
                            match build_side {
                                JoinSide::Left => row.extend_from_slice(probe_row),
                                JoinSide::Right => row.extend_from_slice(build_row),
                            }
                            out.push(row);
                        }
                    }
                };
                let r = match strategy {
                    JoinStrategy::Hash => {
                        self.run_leg_visit(probe_lt, leg, false, snap_ref, &mut emit)?
                    }
                    JoinStrategy::CmClamp(id) => self.run_clamp_leg(
                        probe_lt,
                        leg,
                        Clamp { cm_id: id, col: probe_col, keys: &keys },
                        snap_ref,
                        emit,
                    ),
                };
                Ok((r, out, pairs))
            };
            if probe_plan.legs.len() <= 1 || self.executor.workers() == 1 {
                probe_plan.legs.iter().map(&run_probe_leg).collect()
            } else {
                let rp = &run_probe_leg;
                self.executor
                    .run(probe_plan.legs.iter().map(|leg| move || rp(leg)).collect())
            }
        };

        let mut probe_run = RunResult { matched: 0, examined: 0, io: IoStats::default() };
        let mut probe_legs: Vec<LegOutcome> = Vec::with_capacity(probe_results.len());
        let mut probe_ms: Vec<f64> = Vec::with_capacity(probe_results.len());
        let mut matched = 0u64;
        let mut rows: Vec<Row> = Vec::new();
        let mut paired: Vec<(ShardLeg, ProbeRun)> = probe_plan
            .legs
            .into_iter()
            .take(probe_results.len())
            .zip(probe_results)
            .collect();
        paired.sort_by_key(|(leg, _)| leg.merge_key());
        for (leg, res) in paired {
            let (r, leg_rows, pairs) = res?;
            matched += pairs;
            if collect {
                rows.extend(leg_rows);
            }
            probe_run.matched += r.matched;
            probe_run.examined += r.examined;
            probe_run.io.add(&r.io);
            probe_ms.push(r.io.elapsed_ms);
            if forced.is_none() {
                match strategy {
                    JoinStrategy::Hash => self.note_route(leg.choice.path),
                    JoinStrategy::CmClamp(id) => {
                        self.note_route(cm_query::AccessPath::CmScan(id))
                    }
                }
            }
            probe_legs.push(LegOutcome { shard: leg.shard, choice: leg.choice, run: r });
        }
        let workers = self.executor.workers();
        let parallel_ms =
            scheduled_makespan(&build_ms, workers) + scheduled_makespan(&probe_ms, workers);
        self.queries.fetch_add(1, Ordering::Relaxed);

        Ok(JoinOutcome {
            strategy,
            build_side,
            est_hash_ms,
            est_cm_ms,
            build_rows: ht.len() as u64,
            distinct_keys: ht.num_keys() as u64,
            matched,
            build_run,
            probe_run,
            parallel_ms,
            build_legs,
            probe_legs,
            rows: collect.then_some(rows),
        })
    }

    /// Price one probe leg's correlation clamp from an exact CM lookup:
    /// constrain the CM's join attribute to `IN keys` (other attributes
    /// from the leg's shard-restricted filter), merge the returned
    /// buckets' page ranges exactly as the executor will, and charge per
    /// merged run — a correlated key collapses to a few long runs, an
    /// uncorrelated one stays gap-broken and prices above the scan.
    fn clamp_estimate(
        &self,
        lt: &crate::engine::LoadedTable,
        leg: &ShardLeg,
        clamp: Clamp<'_>,
    ) -> f64 {
        let part = lt.parts[leg.shard].read();
        let cm = part.cm(clamp.cm_id);
        let constraints: Vec<AttrConstraint> = cm
            .spec()
            .attrs()
            .iter()
            .zip(cm_constraints(cm.spec(), &leg.query))
            .map(|(attr, from_q)| {
                if attr.col == clamp.col {
                    AttrConstraint::In(clamp.keys.to_vec())
                } else {
                    from_q
                }
            })
            .collect();
        let buckets = cm.lookup(&constraints);
        let merged = cm_query::merge_page_ranges(
            buckets.iter().map(|&b| part.dir().page_range(b)).collect(),
        );
        let total_pages: u64 = merged.iter().map(|(lo, hi)| hi - lo + 1).sum();
        let height = part.clustered().height();
        let params = CostParams::new(
            &self.backends[leg.shard].disk().config(),
            part.heap().tups_per_page(),
            part.heap().len(),
            height,
        );
        params.cost_cm_join_probe(merged.len() as f64, total_pages as f64, height as f64)
    }

    /// Execute one probe leg through the correlation clamp (charging the
    /// shard's buffer pool, honoring the leg's shard-restricted filter
    /// and the join snapshot).
    fn run_clamp_leg(
        &self,
        lt: &crate::engine::LoadedTable,
        leg: &ShardLeg,
        clamp: Clamp<'_>,
        snap: Option<&Snapshot>,
        visit: impl FnMut(&[Value]),
    ) -> RunResult {
        let waited = std::time::Instant::now();
        let part = lt.parts[leg.shard].read();
        self.note_read_stall(waited.elapsed());
        let backend = &self.backends[leg.shard];
        let mut ctx = ExecContext::through(backend.disk(), backend.pool());
        if let Some(s) = snap {
            ctx = ctx.at_snapshot(s);
        }
        part.exec_cm_clamp_visit(&ctx, clamp.cm_id, &leg.query, clamp.col, clamp.keys, visit)
    }
}
