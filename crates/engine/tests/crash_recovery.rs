//! Kill–replay crash harness: run a mixed workload, kill the engine at
//! an arbitrary byte of its log stream, recover, and check the survivor
//! against an oracle with **committed-prefix semantics** — every
//! transaction whose commit record survived the cut is fully present,
//! every other transaction fully absent.
//!
//! The kill point sweeps the whole appended stream, so the cases cover:
//!
//! * cuts before anything durable (recovery = the load-time base image);
//! * cuts mid-frame (torn tails the decoder must detect by checksum and
//!   truncate);
//! * cuts mid-transaction (undo must roll the tail back with the logged
//!   before-images);
//! * cuts mid-checkpoint (the half-written image must be ignored — its
//!   `CheckpointEnd` did not survive — and an earlier image used);
//! * cuts after a design change (the rebuilt engine must carry the
//!   secondary structures and keep them queryable).
//!
//! Case count is `CRASH_PROP_CASES` (default 32) so CI smoke jobs can
//! run a reduced sweep.

use cm_engine::{Engine, EngineConfig};
use cm_query::{Pred, Query};
use cm_storage::{decode_stream, LogPayload, Column, Row, Schema, Value, ValueType, AUTOCOMMIT_TXN};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

fn cases() -> ProptestConfig {
    let cases = std::env::var("CRASH_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    ProptestConfig::with_cases(cases)
}

const CATS: i64 = 30;

/// 600 preloaded rows over 30 categories, prices below 10_000 so the
/// workload's inserts (100_000 and up) never collide with them.
fn preloaded_engine(config: EngineConfig) -> Arc<Engine> {
    let engine = Engine::new(config);
    let schema = Arc::new(Schema::new(vec![
        Column::new("catid", ValueType::Int),
        Column::new("price", ValueType::Int),
    ]));
    engine.create_table("items", schema, 0, 20, 100).unwrap();
    let rows: Vec<Row> = (0..600i64)
        .map(|i| {
            let cat = i % CATS;
            vec![Value::Int(cat), Value::Int(cat * 100 + (i * 7) % 100)]
        })
        .collect();
    engine.load("items", rows).unwrap();
    engine
}

/// All live rows: `Between` on the clustered column matches every real
/// row and excludes all-NULL tombstone slots (unlike an empty query).
fn live_rows(engine: &Engine) -> Vec<Row> {
    let q = Query::single(Pred::between(0, i64::MIN, i64::MAX));
    let mut rows = engine.execute_collect("items", &q).unwrap().rows.unwrap();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(cases())]

    #[test]
    fn killed_engine_recovers_the_committed_prefix(
        ops in prop::collection::vec(0u8..12, 10..80),
        cut_frac in 0u64..1001,
        shards in 1u8..3,
        ckpt_every in 0u64..40,
        mvcc in any::<bool>(),
    ) {
        // The sweep runs both heap disciplines: classic single-version
        // (physical deletes) and MVCC (end-stamped versions, commit
        // timestamps in the log, checkpoint images materializing dead
        // versions as tombstones). Committed-prefix semantics must hold
        // identically.
        let config = EngineConfig {
            shards: shards as usize,
            checkpoint_every: ckpt_every,
            mvcc,
            ..EngineConfig::default()
        };
        let engine = preloaded_engine(config.clone());

        // Oracle basis: the post-load state, keyed by (shard, rid) —
        // exactly how log records address rows.
        let mut base: BTreeMap<(u16, u64), Row> = BTreeMap::new();
        engine
            .with_each_shard("items", |s, t| {
                for (rid, row) in t.heap().iter() {
                    base.insert((s as u16, rid.0), row.clone());
                }
            })
            .unwrap();

        // Scripted mixed workload on one session: inserts, targeted and
        // categorical deletes, commits, explicit checkpoints, and one
        // mid-script design change.
        let session = engine.session();
        let mut seq = 0i64;
        let mut insert_prices: Vec<i64> = Vec::new();
        let mut created_btree = false;
        for (k, op) in ops.iter().enumerate() {
            match op {
                0..=5 => {
                    let cat = (seq * 13) % CATS;
                    session
                        .insert("items", vec![Value::Int(cat), Value::Int(100_000 + seq)])
                        .unwrap();
                    insert_prices.push(100_000 + seq);
                    seq += 1;
                }
                6 | 7 => {
                    // Delete one known inserted row, or purge a preloaded
                    // category once none remain.
                    if let Some(p) = insert_prices.pop() {
                        session
                            .delete_where("items", &Query::single(Pred::eq(1, p)))
                            .unwrap();
                    } else {
                        session
                            .delete_where(
                                "items",
                                &Query::single(Pred::eq(0, (k as i64) % CATS)),
                            )
                            .unwrap();
                    }
                }
                8 | 9 => {
                    session.commit();
                }
                10 => {
                    engine.checkpoint();
                }
                _ => {
                    if !created_btree {
                        engine.create_btree("items", "price_ix", vec![1]).unwrap();
                        created_btree = true;
                    } else {
                        session
                            .delete_where(
                                "items",
                                &Query::single(Pred::eq(0, (k as i64 * 7) % CATS)),
                            )
                            .unwrap();
                    }
                }
            }
        }

        // Kill: cut the appended stream anywhere (including offset 0 and
        // mid-frame positions).
        let full = engine.appended_log().len() as u64;
        let cut = full * cut_frac / 1000;
        let state = engine.crash_state(Some(cut));

        // Oracle: replay only committed transactions' records, in order,
        // over the base — the semantics recovery must reproduce.
        let decoded = decode_stream(&state.log);
        let mut committed: HashSet<u64> = HashSet::new();
        committed.insert(AUTOCOMMIT_TXN);
        for rec in &decoded.records {
            if matches!(rec.payload, LogPayload::Commit { .. }) {
                committed.insert(rec.txn);
            }
        }
        let mut oracle = base;
        let mut surviving_designs = 0usize;
        for rec in &decoded.records {
            if !committed.contains(&rec.txn) {
                continue;
            }
            match &rec.payload {
                LogPayload::Insert { shard, rid, row, .. } => {
                    oracle.insert((*shard, *rid), row.clone());
                }
                LogPayload::Delete { shard, rid, .. } => {
                    oracle.remove(&(*shard, *rid));
                }
                LogPayload::DeleteSet { shard, victims, .. } => {
                    for (rid, _) in victims {
                        oracle.remove(&(*shard, *rid));
                    }
                }
                LogPayload::DesignChange { .. } => surviving_designs += 1,
                _ => {}
            }
        }
        let mut expect: Vec<Row> = oracle.into_values().collect();
        expect.sort();

        let (recovered, report) = Engine::recover(config.clone(), &state).unwrap();
        prop_assert_eq!(
            live_rows(&recovered),
            expect,
            "cut {cut}/{full} torn={} redo_lsn={}",
            report.torn,
            report.redo_lsn
        );
        prop_assert!(report.valid_bytes <= cut);

        // The design change survives exactly when its record did.
        let info = recovered.table_info("items").unwrap();
        prop_assert_eq!(
            info.secondaries,
            usize::from(surviving_designs > 0),
            "design records surviving the cut: {surviving_designs}"
        );

        // The survivor is a working engine: point query + fresh write.
        let out = recovered
            .execute("items", &Query::single(Pred::eq(0, 11i64)))
            .unwrap();
        prop_assert!(out.run.matched <= 620);
        recovered
            .insert("items", vec![Value::Int(3), Value::Int(777_777)])
            .unwrap();
        let hit = recovered
            .execute("items", &Query::single(Pred::eq(1, 777_777i64)))
            .unwrap();
        prop_assert_eq!(hit.run.matched, 1);
    }

    #[test]
    fn recovered_engines_survive_a_second_crash(
        ops in prop::collection::vec(0u8..10, 8..30),
        cut_frac in 0u64..1001,
    ) {
        // Crash–recover–mutate–crash–recover: the recovered engine's
        // fresh log and reinstalled base image must compose.
        let config = EngineConfig::default();
        let engine = preloaded_engine(config.clone());
        let session = engine.session();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0..=5 => {
                    session
                        .insert(
                            "items",
                            vec![Value::Int(i as i64 % CATS), Value::Int(200_000 + i as i64)],
                        )
                        .unwrap();
                }
                6 | 7 => {
                    session
                        .delete_where(
                            "items",
                            &Query::single(Pred::eq(0, (i as i64 * 3) % CATS)),
                        )
                        .unwrap();
                }
                _ => {
                    session.commit();
                }
            }
        }
        let full = engine.appended_log().len() as u64;
        let state = engine.crash_state(Some(full * cut_frac / 1000));
        let (mid, _) = Engine::recover(config.clone(), &state).unwrap();

        // Mutate the survivor, commit, crash again at the durable point.
        let s2 = mid.session();
        s2.insert("items", vec![Value::Int(5), Value::Int(300_000)]).unwrap();
        s2.commit();
        let expect = live_rows(&mid);
        let state2 = mid.crash_state(None);
        let (last, _) = Engine::recover(config, &state2).unwrap();
        prop_assert_eq!(live_rows(&last), expect);
    }
}
