//! Snapshot-isolation oracle: property tests that pit MVCC readers
//! against committing writers and a vacuum pass.
//!
//! * **Never-torn reads** — a concurrent reader must see, for every
//!   category, exactly the full row set of *one* committed generation:
//!   each writer transaction replaces a category wholesale (categorical
//!   `delete_where` + a fresh batch of inserts, one commit), so any mix
//!   of two generations — or a partial one — in a single query result is
//!   an isolation violation.
//! * **GC safety** — a vacuum pass must never physically reclaim a row
//!   version that a still-open snapshot can see, no matter how many
//!   committed deletes have accumulated around the pin.
//!
//! Case count is `MVCC_PROP_CASES` (default 16) so CI smoke jobs can run
//! a reduced sweep.

use cm_engine::{Engine, EngineConfig};
use cm_query::{Pred, Query};
use cm_storage::{Column, Row, Schema, Value, ValueType, LIVE_TS};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn cases() -> ProptestConfig {
    let cases = std::env::var("MVCC_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    ProptestConfig::with_cases(cases)
}

const CATS: i64 = 8;
const INIT_PER_CAT: i64 = 25;

/// Generation marker: generation `g`, row `j` carries price
/// `g * 1_000 + j`, so a result set's generation is `price / 1_000`.
fn gen_rows(cat: i64, generation: i64, size: i64) -> Vec<Row> {
    (0..size)
        .map(|j| vec![Value::Int(cat), Value::Int(generation * 1_000 + j)])
        .collect()
}

fn mvcc_engine(shards: usize, gc_every: u64) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig {
        mvcc: true,
        gc_every,
        shards,
        ..EngineConfig::default()
    });
    let schema = Arc::new(Schema::new(vec![
        Column::new("catid", ValueType::Int),
        Column::new("price", ValueType::Int),
    ]));
    engine.create_table("items", schema, 0, 20, 100).unwrap();
    let rows: Vec<Row> =
        (0..CATS).flat_map(|c| gen_rows(c, 0, INIT_PER_CAT)).collect();
    engine.load("items", rows).unwrap();
    engine
}

proptest! {
    #![proptest_config(cases())]

    /// Writers replace whole categories transactionally; a concurrent
    /// reader must always observe one complete generation per category.
    #[test]
    fn concurrent_reader_sees_whole_transactions_only(
        // (category, new generation size) per writer transaction.
        txns in prop::collection::vec((0..CATS, 1i64..40), 4..24),
        shards in 1usize..3,
        gc_auto in any::<bool>(),
    ) {
        let engine = mvcc_engine(shards, if gc_auto { 16 } else { 0 });
        // Per category: generation marker -> full row count. Generation
        // markers are 1-based global transaction indices; the preload is
        // generation 0 everywhere.
        let mut gen_size: Vec<std::collections::HashMap<i64, i64>> =
            vec![[(0i64, INIT_PER_CAT)].into_iter().collect(); CATS as usize];
        let mut last_gen = vec![0i64; CATS as usize];
        for (g, (cat, size)) in txns.iter().enumerate() {
            gen_size[*cat as usize].insert(g as i64 + 1, *size);
            last_gen[*cat as usize] = g as i64 + 1;
        }
        let done = AtomicBool::new(false);
        let torn: parking_lot::Mutex<Option<String>> = parking_lot::Mutex::new(None);
        std::thread::scope(|scope| {
            let writer = engine.clone();
            let txns = &txns;
            let done_ref = &done;
            scope.spawn(move || {
                let session = writer.session();
                for (g, (cat, size)) in txns.iter().enumerate() {
                    session
                        .delete_where("items", &Query::single(Pred::eq(0, *cat)))
                        .unwrap();
                    for row in gen_rows(*cat, g as i64 + 1, *size) {
                        session.insert("items", row).unwrap();
                    }
                    session.commit();
                }
                done_ref.store(true, Ordering::Release);
            });
            let gen_size = &gen_size;
            let torn = &torn;
            let reader = engine.clone();
            scope.spawn(move || {
                let session = reader.session();
                let mut cat = 0i64;
                loop {
                    let finished = done_ref.load(Ordering::Acquire);
                    let out = session
                        .execute_collect("items", &Query::single(Pred::eq(0, cat)))
                        .unwrap();
                    let rows = out.rows.unwrap();
                    // All rows must belong to one generation, and be all
                    // of it.
                    let gens: std::collections::HashSet<i64> = rows
                        .iter()
                        .map(|r| match r[1] {
                            Value::Int(p) => p / 1_000,
                            _ => -1,
                        })
                        .collect();
                    let violation = if gens.len() > 1 {
                        Some(format!("cat {cat}: generations mixed: {gens:?}"))
                    } else if let Some(&g) = gens.iter().next() {
                        let expect = gen_size[cat as usize].get(&g).copied();
                        (expect != Some(rows.len() as i64)).then(|| {
                            format!(
                                "cat {cat}: generation {g} has {} rows, expected {expect:?}",
                                rows.len()
                            )
                        })
                    } else {
                        // Empty result: only legal mid-flight (between a
                        // purge commit and nothing? never — replacement
                        // is atomic), so an empty set is always torn.
                        Some(format!("cat {cat}: empty result"))
                    };
                    if violation.is_some() {
                        *torn.lock() = violation;
                        return;
                    }
                    cat = (cat + 1) % CATS;
                    if finished {
                        return;
                    }
                }
            });
        });
        prop_assert_eq!(torn.into_inner(), None);
        // Quiesced state equals the oracle: the last generation per cat.
        for c in 0..CATS {
            let out = engine
                .execute("items", &Query::single(Pred::eq(0, c)))
                .unwrap();
            let last = gen_size[c as usize][&last_gen[c as usize]];
            prop_assert_eq!(out.run.matched, last as u64, "cat {} final state", c);
        }
        // After the run, a vacuum pass leaves the same visible state.
        engine.vacuum().unwrap();
        for c in 0..CATS {
            let out = engine
                .execute("items", &Query::single(Pred::eq(0, c)))
                .unwrap();
            let last = gen_size[c as usize][&last_gen[c as usize]];
            prop_assert_eq!(out.run.matched, last as u64);
        }
    }

    /// Vacuum never reclaims a version a live snapshot still sees, and
    /// reclaims exactly the ones none does once the pin drops.
    #[test]
    fn vacuum_spares_every_version_a_pinned_snapshot_sees(
        before_pin in prop::collection::vec(0..CATS, 0..4),
        after_pin in prop::collection::vec(0..CATS, 1..4),
    ) {
        let engine = mvcc_engine(1, 0);
        let mv = engine.mvcc_state().unwrap().clone();
        for cat in &before_pin {
            engine
                .delete_where("items", &Query::single(Pred::eq(0, *cat)))
                .unwrap();
        }
        let purged_before: std::collections::HashSet<i64> =
            before_pin.iter().copied().collect();
        let visible_at_pin = (CATS - purged_before.len() as i64) * INIT_PER_CAT;
        let pin = mv.begin();
        for cat in &after_pin {
            engine
                .delete_where("items", &Query::single(Pred::eq(0, *cat)))
                .unwrap();
        }
        engine.vacuum().unwrap();
        // Every version the pin sees still has its bytes: walk the heap
        // stamps under the pin's visibility rule.
        let mut seen = 0i64;
        engine
            .with_each_shard("items", |_, t| {
                for (rid, _) in t.heap().iter() {
                    let (b, e) = t.stamp_of(rid);
                    if pin.sees(b, e) {
                        assert!(
                            !t.is_tombstone(rid).unwrap(),
                            "vacuum reclaimed a pinned version at rid {}",
                            rid.0
                        );
                        seen += 1;
                    }
                }
            })
            .unwrap();
        prop_assert_eq!(seen, visible_at_pin, "the pin's view is intact");
        // Once the pin closes, the dead tail is fully reclaimable.
        drop(pin);
        engine.vacuum().unwrap();
        let mut dead = 0u64;
        engine
            .with_each_shard("items", |_, t| {
                for (rid, _) in t.heap().iter() {
                    let (_, e) = t.stamp_of(rid);
                    if e != LIVE_TS && !t.is_tombstone(rid).unwrap() {
                        dead += 1;
                    }
                }
            })
            .unwrap();
        prop_assert_eq!(dead, 0, "no unreclaimed dead versions after the pin closed");
    }
}
