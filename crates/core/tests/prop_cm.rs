//! Property tests for Correlation Map invariants:
//!
//! 1. **No false negatives**: for any data, bucketing, and predicate, every
//!    tuple satisfying the predicate lives in a bucket returned by
//!    `lookup` (bucketing may only add false positives).
//! 2. **Maintenance equivalence**: a CM maintained through arbitrary
//!    insert/delete interleavings equals the CM rebuilt from the surviving
//!    tuples.
//! 3. **Bucket directory**: buckets partition the heap and never split a
//!    clustered value.

use cm_core::{AttrConstraint, BucketDirectory, CmAttr, CmSpec, CorrelationMap};
use cm_storage::{Column, DiskSim, HeapFile, Rid, Schema, Value, ValueType};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("c", ValueType::Int),
        Column::new("u", ValueType::Int),
        Column::new("w", ValueType::Int),
    ]))
}

/// Rows with a controllable soft FD: u = c * spread + noise.
fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec(
        (0i64..40, 0i64..25, 0i64..10),
        1..300,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(c, noise, w)| (c, c * 8 + noise, w))
            .collect()
    })
}

fn build_heap(disk: &DiskSim, data: &[(i64, i64, i64)]) -> HeapFile {
    let rows: Vec<Vec<Value>> = data
        .iter()
        .map(|&(c, u, w)| vec![Value::Int(c), Value::Int(u), Value::Int(w)])
        .collect();
    HeapFile::bulk_load_clustered(disk, schema(), rows, 8, 0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lookup_has_no_false_negatives(
        data in rows_strategy(),
        level in 0u32..8,
        target in 1u64..40,
        qlo in 0i64..330,
        qspan in 0i64..60,
    ) {
        let disk = DiskSim::with_defaults();
        let heap = build_heap(&disk, &data);
        let dir = BucketDirectory::build(&heap, 0, target);
        let cm = CorrelationMap::build(
            "u_cm",
            CmSpec::new(vec![CmAttr::pow2(1, level)]),
            &heap,
            &dir,
        );
        let qhi = qlo + qspan;
        let buckets =
            cm.lookup(&[AttrConstraint::Range(Value::Int(qlo), Value::Int(qhi))]);
        for (rid, row) in heap.iter() {
            let u = row[1].as_int().unwrap();
            if u >= qlo && u <= qhi {
                prop_assert!(
                    buckets.binary_search(&dir.bucket_of(rid)).is_ok(),
                    "rid {rid} (u={u}) missing from lookup over [{qlo},{qhi}]"
                );
            }
        }
    }

    #[test]
    fn composite_lookup_has_no_false_negatives(
        data in rows_strategy(),
        level in 0u32..6,
        target in 1u64..30,
        pick in 0usize..300,
    ) {
        let disk = DiskSim::with_defaults();
        let heap = build_heap(&disk, &data);
        let dir = BucketDirectory::build(&heap, 0, target);
        let cm = CorrelationMap::build(
            "uw_cm",
            CmSpec::new(vec![CmAttr::pow2(1, level), CmAttr::raw(2)]),
            &heap,
            &dir,
        );
        // Query for the (u, w) of an arbitrary existing tuple.
        let probe = heap.peek(Rid((pick % data.len()) as u64)).unwrap().clone();
        let (qu, qw) = (probe[1].clone(), probe[2].clone());
        let buckets = cm.lookup(&[
            AttrConstraint::Eq(qu.clone()),
            AttrConstraint::Eq(qw.clone()),
        ]);
        for (rid, row) in heap.iter() {
            if row[1] == qu && row[2] == qw {
                prop_assert!(buckets.binary_search(&dir.bucket_of(rid)).is_ok());
            }
        }
    }

    #[test]
    fn maintained_equals_rebuilt_after_deletions(
        data in rows_strategy(),
        delete_mask in prop::collection::vec(any::<bool>(), 300),
        level in 0u32..6,
    ) {
        let disk = DiskSim::with_defaults();
        let heap = build_heap(&disk, &data);
        let dir = BucketDirectory::build(&heap, 0, 8);
        let spec = CmSpec::new(vec![CmAttr::pow2(1, level)]);
        let mut maintained = CorrelationMap::build("m", spec.clone(), &heap, &dir);
        // Delete a subset through the maintenance path.
        let mut survivors: Vec<(Rid, Vec<Value>)> = Vec::new();
        for (rid, row) in heap.iter() {
            if delete_mask[rid.0 as usize % delete_mask.len()] {
                prop_assert!(maintained.delete(row, rid, &dir));
            } else {
                survivors.push((rid, row.clone()));
            }
        }
        // Rebuild from survivors only.
        let mut rebuilt = CorrelationMap::new("r", spec);
        for (rid, row) in &survivors {
            rebuilt.insert(row, *rid, &dir);
        }
        prop_assert_eq!(maintained.num_keys(), rebuilt.num_keys());
        prop_assert_eq!(maintained.num_pairs(), rebuilt.num_pairs());
        let a: Vec<_> = maintained.iter().collect();
        let b: Vec<_> = rebuilt.iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn directory_partitions_heap(
        data in rows_strategy(),
        target in 1u64..50,
    ) {
        let disk = DiskSim::with_defaults();
        let heap = build_heap(&disk, &data);
        let dir = BucketDirectory::build(&heap, 0, target);
        // Partition: ranges tile [0, len) exactly.
        let mut expected_start = 0u64;
        for (_, (lo, hi)) in dir.iter() {
            prop_assert_eq!(lo, expected_start);
            prop_assert!(hi > lo);
            expected_start = hi;
        }
        prop_assert_eq!(expected_start, heap.len());
        // Never split a clustered value.
        for (_, (lo, _)) in dir.iter() {
            if lo > 0 {
                let prev = &heap.peek(Rid(lo - 1)).unwrap()[0];
                let here = &heap.peek(Rid(lo)).unwrap()[0];
                prop_assert_ne!(prev, here);
            }
        }
        // bucket_of agrees with ranges.
        for (b, (lo, hi)) in dir.iter() {
            prop_assert_eq!(dir.bucket_of(Rid(lo)), b);
            prop_assert_eq!(dir.bucket_of(Rid(hi - 1)), b);
        }
    }

    #[test]
    fn coarser_bucketing_never_shrinks_result(
        data in rows_strategy(),
        qlo in 0i64..330,
        qspan in 0i64..60,
    ) {
        // Monotonicity: a coarser unclustered bucketing returns a superset
        // of clustered buckets (more false positives, never fewer hits).
        let disk = DiskSim::with_defaults();
        let heap = build_heap(&disk, &data);
        let dir = BucketDirectory::build(&heap, 0, 8);
        let fine = CorrelationMap::build(
            "f", CmSpec::new(vec![CmAttr::pow2(1, 1)]), &heap, &dir);
        let coarse = CorrelationMap::build(
            "c", CmSpec::new(vec![CmAttr::pow2(1, 5)]), &heap, &dir);
        let q = AttrConstraint::Range(Value::Int(qlo), Value::Int(qlo + qspan));
        let fine_b = fine.lookup(std::slice::from_ref(&q));
        let coarse_b = coarse.lookup(std::slice::from_ref(&q));
        for b in fine_b {
            prop_assert!(coarse_b.binary_search(&b).is_ok());
        }
    }
}
