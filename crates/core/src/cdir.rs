//! Clustered-attribute bucketing (paper §6.1.1).
//!
//! A many-valued clustered key would blow up the CM (each unclustered
//! value maps to many clustered values) and the rewritten queries (huge
//! `IN` lists). The paper's fix is a *bucket ID column*: during the
//! statistics scan, tuples are assigned to buckets of roughly `b` tuples,
//! extending each bucket until the clustered value changes so that **no
//! clustered value is split across buckets**. CMs then map unclustered
//! keys to bucket IDs, and a bucket resolves to one contiguous page range
//! — false positives cost only sequential I/O (Table 3).

use cm_storage::{HeapFile, Rid};

/// The bucket-ID assignment over a clustered heap.
#[derive(Debug, Clone)]
pub struct BucketDirectory {
    /// `starts[i]` is the first RID of bucket `i`; bucket `i` covers
    /// `[starts[i], starts[i+1])` with the last bucket ending at
    /// `heap_len`.
    starts: Vec<u64>,
    heap_len: u64,
    tups_per_page: usize,
    target: u64,
}

impl BucketDirectory {
    /// Build over a heap clustered on `col`, targeting `b` tuples per
    /// bucket (paper: "assigning tuples to bucket i ... once it has read
    /// b tuples ... continues until the value of the clustered attribute
    /// is no longer v").
    pub fn build(heap: &HeapFile, col: usize, target_tuples_per_bucket: u64) -> Self {
        assert!(target_tuples_per_bucket > 0, "bucket target must be positive");
        let b = target_tuples_per_bucket;
        let mut starts = Vec::new();
        let mut in_bucket = 0u64;
        let mut boundary_value: Option<cm_storage::Value> = None;
        for (rid, row) in heap.iter() {
            if starts.is_empty() {
                starts.push(rid.0);
                in_bucket = 0;
            }
            let v = &row[col];
            if let Some(bv) = &boundary_value {
                // We are past the b-th tuple, waiting for the value to
                // change before closing the bucket.
                if v != bv {
                    starts.push(rid.0);
                    in_bucket = 0;
                    boundary_value = None;
                }
            }
            in_bucket += 1;
            if in_bucket == b && boundary_value.is_none() {
                boundary_value = Some(v.clone());
            }
        }
        BucketDirectory {
            starts,
            heap_len: heap.len(),
            tups_per_page: heap.tups_per_page(),
            target: b,
        }
    }

    /// A directory with exactly one bucket per page — the degenerate
    /// configuration used when comparing bucket sizes (Table 3, row 1).
    pub fn per_page(heap: &HeapFile, col: usize) -> Self {
        Self::build(heap, col, heap.tups_per_page() as u64)
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> u32 {
        self.starts.len() as u32
    }

    /// Target tuples per bucket this directory was built with.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// The bucket containing a RID.
    ///
    /// # Panics
    /// Panics if the directory is empty or `rid` precedes the first
    /// bucket.
    pub fn bucket_of(&self, rid: Rid) -> u32 {
        debug_assert!(rid.0 < self.heap_len, "rid within heap");
        (self.starts.partition_point(|&s| s <= rid.0) - 1) as u32
    }

    /// RID range `[start, end)` of a bucket.
    pub fn rid_range(&self, bucket: u32) -> (u64, u64) {
        let i = bucket as usize;
        let start = self.starts[i];
        let end = self.starts.get(i + 1).copied().unwrap_or(self.heap_len);
        (start, end)
    }

    /// Inclusive page range a bucket occupies.
    pub fn page_range(&self, bucket: u32) -> (u64, u64) {
        let (start, end) = self.rid_range(bucket);
        let tpp = self.tups_per_page as u64;
        (start / tpp, (end - 1) / tpp)
    }

    /// Average heap pages per bucket — the `pages_per_group` input of the
    /// CM cost model.
    pub fn avg_pages_per_bucket(&self) -> f64 {
        if self.num_buckets() == 0 {
            return 0.0;
        }
        let total_pages: u64 = (0..self.num_buckets())
            .map(|b| {
                let (lo, hi) = self.page_range(b);
                hi - lo + 1
            })
            .sum();
        total_pages as f64 / self.num_buckets() as f64
    }

    /// Register a heap append. Appended tuples extend the final bucket
    /// until it reaches the target size, then open fresh tail buckets —
    /// clustering degrades at the tail, exactly as for a once-`CLUSTER`ed
    /// table, but every RID keeps a valid bucket.
    pub fn note_append(&mut self, rid: Rid) {
        debug_assert_eq!(rid.0, self.heap_len, "appends are sequential");
        if self.starts.is_empty() {
            self.starts.push(rid.0);
        } else {
            let last_start = *self.starts.last().expect("non-empty");
            if rid.0 - last_start >= self.target {
                self.starts.push(rid.0);
            }
        }
        self.heap_len = rid.0 + 1;
    }

    /// Rebuild a directory over a *recovered* heap: the first
    /// `sorted_len` rows were bulk-loaded clustered on `col` (some may
    /// since have been tombstoned to all-NULL by deletes), and every row
    /// past that was appended live through
    /// [`BucketDirectory::note_append`]. The sorted prefix re-runs the
    /// build algorithm — tolerating tombstones by never closing a bucket
    /// on a NULL — and the tail replays the append arithmetic, so every
    /// RID gets a valid, contiguous bucket again.
    pub fn restore(heap: &HeapFile, col: usize, target: u64, sorted_len: u64) -> Self {
        assert!(target > 0, "bucket target must be positive");
        let b = target;
        let mut starts = Vec::new();
        let mut in_bucket = 0u64;
        let mut boundary_value: Option<cm_storage::Value> = None;
        for (rid, row) in heap.iter().take(sorted_len as usize) {
            if starts.is_empty() {
                starts.push(rid.0);
                in_bucket = 0;
            }
            let v = &row[col];
            if let Some(bv) = &boundary_value {
                if !v.is_null() && v != bv {
                    starts.push(rid.0);
                    in_bucket = 0;
                    boundary_value = None;
                }
            }
            in_bucket += 1;
            if in_bucket >= b && boundary_value.is_none() && !v.is_null() {
                boundary_value = Some(v.clone());
            }
        }
        let mut dir = BucketDirectory {
            starts,
            heap_len: sorted_len.min(heap.len()),
            tups_per_page: heap.tups_per_page(),
            target: b,
        };
        for rid in dir.heap_len..heap.len() {
            dir.note_append(Rid(rid));
        }
        dir
    }

    /// Total rows covered.
    pub fn heap_len(&self) -> u64 {
        self.heap_len
    }

    /// Iterate bucket ids with their RID ranges.
    pub fn iter(&self) -> impl Iterator<Item = (u32, (u64, u64))> + '_ {
        (0..self.num_buckets()).map(|b| (b, self.rid_range(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_storage::{Column, DiskSim, Schema, Value, ValueType};
    use std::sync::Arc;

    fn heap_with_keys(disk: &DiskSim, keys: &[i64], tpp: usize) -> HeapFile {
        let schema = Arc::new(Schema::new(vec![Column::new("k", ValueType::Int)]));
        let rows = keys.iter().map(|&k| vec![Value::Int(k)]).collect();
        HeapFile::bulk_load(disk, schema, rows, tpp).unwrap()
    }

    #[test]
    fn buckets_respect_target_size() {
        let disk = DiskSim::with_defaults();
        // 100 distinct values, one tuple each.
        let keys: Vec<i64> = (0..100).collect();
        let heap = heap_with_keys(&disk, &keys, 10);
        let dir = BucketDirectory::build(&heap, 0, 10);
        assert_eq!(dir.num_buckets(), 10);
        for (b, (lo, hi)) in dir.iter() {
            assert_eq!(hi - lo, 10, "bucket {b} has exactly the target size");
        }
    }

    #[test]
    fn clustered_values_are_never_split() {
        let disk = DiskSim::with_defaults();
        // Runs of 7 equal values; target 10 forces boundary stretching.
        let keys: Vec<i64> = (0..210).map(|i| i / 7).collect();
        let heap = heap_with_keys(&disk, &keys, 10);
        let dir = BucketDirectory::build(&heap, 0, 10);
        for (_, (lo, hi)) in dir.iter() {
            // A bucket boundary must coincide with a value change.
            if lo > 0 {
                let before = heap.peek(Rid(lo - 1)).unwrap()[0].clone();
                let first = heap.peek(Rid(lo)).unwrap()[0].clone();
                assert_ne!(before, first, "bucket boundary inside a value run");
            }
            assert!(hi > lo);
        }
    }

    #[test]
    fn one_giant_value_forms_one_giant_bucket() {
        let disk = DiskSim::with_defaults();
        let keys = vec![42i64; 1000];
        let heap = heap_with_keys(&disk, &keys, 10);
        let dir = BucketDirectory::build(&heap, 0, 50);
        assert_eq!(dir.num_buckets(), 1, "cannot split the single value");
        assert_eq!(dir.rid_range(0), (0, 1000));
    }

    #[test]
    fn bucket_of_is_inverse_of_rid_range() {
        let disk = DiskSim::with_defaults();
        let keys: Vec<i64> = (0..500).map(|i| i / 3).collect();
        let heap = heap_with_keys(&disk, &keys, 16);
        let dir = BucketDirectory::build(&heap, 0, 20);
        for (b, (lo, hi)) in dir.iter() {
            assert_eq!(dir.bucket_of(Rid(lo)), b);
            assert_eq!(dir.bucket_of(Rid(hi - 1)), b);
        }
    }

    #[test]
    fn page_ranges_are_contiguous_and_cover_heap() {
        let disk = DiskSim::with_defaults();
        let keys: Vec<i64> = (0..1000).map(|i| i / 4).collect();
        let heap = heap_with_keys(&disk, &keys, 25);
        let dir = BucketDirectory::build(&heap, 0, 100);
        let (first_lo, _) = dir.page_range(0);
        assert_eq!(first_lo, 0);
        let (_, last_hi) = dir.page_range(dir.num_buckets() - 1);
        assert_eq!(last_hi, heap.num_pages() - 1);
    }

    #[test]
    fn avg_pages_tracks_target() {
        let disk = DiskSim::with_defaults();
        let keys: Vec<i64> = (0..10_000).collect();
        let heap = heap_with_keys(&disk, &keys, 100);
        // Target 1000 tuples/bucket = 10 pages/bucket (the §6.1.1 sweet
        // spot).
        let dir = BucketDirectory::build(&heap, 0, 1000);
        let avg = dir.avg_pages_per_bucket();
        assert!((9.0..=11.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn appends_extend_then_open_buckets() {
        let disk = DiskSim::with_defaults();
        let keys: Vec<i64> = (0..95).collect();
        let heap = heap_with_keys(&disk, &keys, 10);
        let mut dir = BucketDirectory::build(&heap, 0, 50);
        let before = dir.num_buckets();
        // Five appends top off the trailing bucket (45 → 50)...
        for r in 95..100 {
            dir.note_append(Rid(r));
        }
        assert_eq!(dir.num_buckets(), before);
        // ...the next append opens a new bucket.
        dir.note_append(Rid(100));
        assert_eq!(dir.num_buckets(), before + 1);
        assert_eq!(dir.bucket_of(Rid(100)), dir.num_buckets() - 1);
    }

    #[test]
    fn per_page_directory_matches_page_count() {
        let disk = DiskSim::with_defaults();
        let keys: Vec<i64> = (0..300).collect();
        let heap = heap_with_keys(&disk, &keys, 30);
        let dir = BucketDirectory::per_page(&heap, 0);
        assert_eq!(dir.num_buckets() as u64, heap.num_pages());
    }

    #[test]
    fn restore_matches_build_on_a_pristine_heap() {
        let disk = DiskSim::with_defaults();
        let keys: Vec<i64> = (0..300).map(|i| i / 7).collect();
        let heap = heap_with_keys(&disk, &keys, 10);
        let built = BucketDirectory::build(&heap, 0, 25);
        let restored = BucketDirectory::restore(&heap, 0, 25, heap.len());
        assert_eq!(built.num_buckets(), restored.num_buckets());
        for (b, range) in built.iter() {
            assert_eq!(restored.rid_range(b), range);
        }
    }

    #[test]
    fn restore_covers_tombstones_and_appended_tail() {
        let disk = DiskSim::with_defaults();
        let keys: Vec<i64> = (0..100).map(|i| i / 4).collect();
        let mut rows: Vec<Vec<Value>> = keys.iter().map(|&k| vec![Value::Int(k)]).collect();
        // Tombstone a scattering of the sorted prefix, then grow a tail.
        for &i in &[3usize, 4, 5, 39, 40, 41, 42, 43, 98] {
            rows[i] = vec![Value::Null];
        }
        for i in 0..30 {
            rows.push(vec![Value::Int(1000 + i)]);
        }
        let schema = Arc::new(Schema::new(vec![Column::new("k", ValueType::Int)]));
        let heap = HeapFile::bulk_load(&disk, schema, rows, 10).unwrap();
        let dir = BucketDirectory::restore(&heap, 0, 20, 100);
        assert_eq!(dir.heap_len(), heap.len());
        // Every rid has a bucket and ranges tile the heap contiguously.
        let mut expect_lo = 0;
        for (b, (lo, hi)) in dir.iter() {
            assert_eq!(lo, expect_lo, "bucket {b} contiguous");
            assert!(hi > lo);
            for r in lo..hi {
                assert_eq!(dir.bucket_of(Rid(r)), b);
            }
            expect_lo = hi;
        }
        assert_eq!(expect_lo, heap.len());
    }

    #[test]
    #[should_panic(expected = "bucket target must be positive")]
    fn zero_target_rejected() {
        let disk = DiskSim::with_defaults();
        let heap = heap_with_keys(&disk, &[1, 2, 3], 2);
        BucketDirectory::build(&heap, 0, 0);
    }
}
