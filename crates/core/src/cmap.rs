//! The Correlation Map structure (paper §5, Algorithm 1).
//!
//! A CM maps each distinct (bucketed) value of its key attributes to the
//! set of clustered buckets containing co-occurring tuples, with a
//! co-occurrence count per pair so that deletions can retract mappings
//! when the last co-occurring tuple disappears.
//!
//! The structure is deliberately value-granular, not tuple-granular: the
//! city→state CM of Figure 4 stores `Boston → {MA, NH}` once no matter
//! how many Bostonians the table holds. That is the entire compression
//! argument — and also why maintenance is cheap: the expected CM update
//! for an insert is a counter bump on a memory-resident map.

use crate::bucket::{CmKey, CmKeyPart};
use crate::cdir::BucketDirectory;
use crate::spec::CmSpec;
use cm_storage::{HeapFile, Rid, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A predicate on one CM key attribute, aligned with the spec's attrs.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrConstraint {
    /// No restriction on this attribute.
    Any,
    /// Attribute equals the value.
    Eq(Value),
    /// Attribute is one of the values.
    In(Vec<Value>),
    /// Attribute lies in the inclusive range `[lo, hi]`.
    Range(Value, Value),
}

/// A Correlation Map: `u → {(clustered bucket, co-occurrence count)}`.
#[derive(Debug, Clone)]
pub struct CorrelationMap {
    name: String,
    spec: CmSpec,
    /// Ordered by key so equality/range lookups can prune on the first
    /// key attribute.
    map: BTreeMap<CmKey, BTreeMap<u32, u32>>,
    /// Total `(key, clustered bucket)` pairs — the CM's "entry count".
    pair_count: u64,
}

impl CorrelationMap {
    /// An empty CM (use [`CorrelationMap::build`] for Algorithm 1).
    pub fn new(name: impl Into<String>, spec: CmSpec) -> Self {
        CorrelationMap { name: name.into(), spec, map: BTreeMap::new(), pair_count: 0 }
    }

    /// Algorithm 1: scan the table, recording for every tuple the
    /// co-occurrence of its CM key with its clustered bucket.
    ///
    /// The scan is uncharged: DDL-time construction is outside the
    /// measured window in every experiment, exactly as in the paper.
    pub fn build(
        name: impl Into<String>,
        spec: CmSpec,
        heap: &HeapFile,
        dir: &BucketDirectory,
    ) -> Self {
        let mut cm = Self::new(name, spec);
        for (rid, row) in heap.iter() {
            cm.insert(row, rid, dir);
        }
        cm
    }

    /// The CM's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The key specification.
    pub fn spec(&self) -> &CmSpec {
        &self.spec
    }

    /// Number of distinct CM keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of `(key, clustered bucket)` pairs.
    pub fn num_pairs(&self) -> u64 {
        self.pair_count
    }

    /// Average clustered buckets per key — the *bucketed* `c_per_u` this
    /// CM exhibits, feeding the cost model.
    pub fn avg_cbuckets_per_key(&self) -> f64 {
        if self.map.is_empty() {
            0.0
        } else {
            self.pair_count as f64 / self.map.len() as f64
        }
    }

    /// Record one tuple (Algorithm 1 inner loop / INSERT maintenance).
    pub fn insert(&mut self, row: &[Value], rid: Rid, dir: &BucketDirectory) {
        let key = self.spec.key_of(row);
        let bucket = dir.bucket_of(rid);
        let per_key = self.map.entry(key).or_default();
        let count = per_key.entry(bucket).or_insert(0);
        if *count == 0 {
            self.pair_count += 1;
        }
        *count += 1;
    }

    /// Retract one tuple (DELETE maintenance): decrement the pair's
    /// co-occurrence count, dropping the pair at zero and the key when its
    /// bucket set empties. Returns `false` if the pair was not present
    /// (caller bug or double delete).
    pub fn delete(&mut self, row: &[Value], rid: Rid, dir: &BucketDirectory) -> bool {
        let key = self.spec.key_of(row);
        let bucket = dir.bucket_of(rid);
        let Some(per_key) = self.map.get_mut(&key) else {
            return false;
        };
        let Some(count) = per_key.get_mut(&bucket) else {
            return false;
        };
        *count -= 1;
        if *count == 0 {
            per_key.remove(&bucket);
            self.pair_count -= 1;
            if per_key.is_empty() {
                self.map.remove(&key);
            }
        }
        true
    }

    /// `cm_lookup({v_u1 .. v_uN})` (paper §5.2): the union of clustered
    /// buckets co-occurring with any of the given single-attribute values.
    /// Only valid for single-attribute CMs.
    pub fn lookup_values(&self, values: &[Value]) -> Vec<u32> {
        assert_eq!(self.spec.arity(), 1, "lookup_values requires a single-attribute CM");
        self.lookup(&[AttrConstraint::In(values.to_vec())])
    }

    /// General lookup: one [`AttrConstraint`] per key attribute, in spec
    /// order. Returns the sorted, deduplicated set of clustered buckets
    /// that *may* contain matching tuples (bucketing introduces false
    /// positives, never false negatives — the executor re-filters rows by
    /// the original predicate as in Figure 4).
    pub fn lookup(&self, constraints: &[AttrConstraint]) -> Vec<u32> {
        assert_eq!(
            constraints.len(),
            self.spec.arity(),
            "one constraint per CM key attribute"
        );
        let mut out: Vec<u32> = Vec::new();
        // Prune the scan using the first key attribute when possible.
        let (lo, hi) = self.first_part_bounds(&constraints[0]);
        let range = match &lo {
            Some(part) => self.map.range((
                Bound::Included(Box::from([part.clone()]) as CmKey),
                Bound::Unbounded,
            )),
            None => self
                .map
                .range::<CmKey, (Bound<&CmKey>, Bound<&CmKey>)>((Bound::Unbounded, Bound::Unbounded)),
        };
        for (key, buckets) in range {
            if let Some(h) = &hi {
                if &key[0] > h {
                    break;
                }
            }
            if self.key_matches(key, constraints) {
                out.extend(buckets.keys().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Bounds on the first key part implied by its constraint, for
    /// pruning the ordered map scan. `In` lists are not pruned (they may
    /// straddle the key space); `Any` scans everything.
    fn first_part_bounds(&self, c: &AttrConstraint) -> (Option<CmKeyPart>, Option<CmKeyPart>) {
        let spec = &self.spec.attrs()[0].bucket;
        match c {
            AttrConstraint::Eq(v) => {
                let p = spec.key_part(v);
                (Some(p.clone()), Some(p))
            }
            AttrConstraint::Range(lo, hi) => (Some(spec.key_part(lo)), Some(spec.key_part(hi))),
            AttrConstraint::In(_) | AttrConstraint::Any => (None, None),
        }
    }

    fn key_matches(&self, key: &CmKey, constraints: &[AttrConstraint]) -> bool {
        key.iter()
            .zip(self.spec.attrs())
            .zip(constraints)
            .all(|((part, attr), c)| match c {
                AttrConstraint::Any => true,
                AttrConstraint::Eq(v) => *part == attr.bucket.key_part(v),
                AttrConstraint::In(vs) => vs.iter().any(|v| *part == attr.bucket.key_part(v)),
                AttrConstraint::Range(lo, hi) => {
                    let plo = attr.bucket.key_part(lo);
                    let phi = attr.bucket.key_part(hi);
                    *part >= plo && *part <= phi
                }
            })
    }

    /// Modeled serialized size in bytes. The paper's prototype stores a
    /// CM as a PostgreSQL table with one row per `(key value, clustered
    /// value)` pair; we model each pair as key bytes + 4 (bucket id) + 4
    /// (count) + 8 row overhead. This is the figure the size-ratio
    /// experiments (Figure 7, Table 5, Table 6) report.
    pub fn size_bytes(&self) -> u64 {
        let mut total = 0u64;
        for (key, buckets) in &self.map {
            let key_bytes: usize = key.iter().map(CmKeyPart::size_bytes).sum();
            total += buckets.len() as u64 * (key_bytes as u64 + 4 + 4 + 8);
        }
        total
    }

    /// Approximate WAL bytes for one maintenance record: the key, the
    /// bucket id, and a small header. Used by the maintenance experiments
    /// to log CM updates (§7.1: comparable recoverability to a B+Tree).
    pub fn wal_record_bytes(&self, row: &[Value]) -> usize {
        let key = self.spec.key_of(row);
        key.iter().map(CmKeyPart::size_bytes).sum::<usize>() + 4 + 8
    }

    /// Iterate `(key, buckets)` pairs in key order (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = (&CmKey, &BTreeMap<u32, u32>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CmAttr;
    use cm_storage::{Column, DiskSim, Schema, ValueType};
    use std::sync::Arc;

    /// The heap from Figure 4: people(state, city, salary) clustered on
    /// state.
    fn figure4_heap(disk: &DiskSim) -> HeapFile {
        let schema = Arc::new(Schema::new(vec![
            Column::new("state", ValueType::Str),
            Column::new("city", ValueType::Str),
            Column::new("salary", ValueType::Int),
        ]));
        let rows: Vec<Vec<Value>> = [
            ("MA", "boston", 25),
            ("MA", "boston", 45),
            ("MA", "boston", 50),
            ("MA", "cambridge", 80),
            ("MA", "springfield", 90),
            ("MN", "manchester", 110),
            ("MS", "jackson", 40),
            ("NH", "boston", 60),
            ("NH", "manchester", 60),
            ("OH", "springfield", 95),
            ("OH", "toledo", 70),
        ]
        .iter()
        .map(|(s, c, v)| vec![Value::str(*s), Value::str(*c), Value::Int(*v)])
        .collect();
        HeapFile::bulk_load(disk, schema, rows, 2).unwrap()
    }

    /// One bucket per distinct state (target 1 stretches to value runs).
    fn state_dir(heap: &HeapFile) -> BucketDirectory {
        BucketDirectory::build(heap, 0, 1)
    }

    #[test]
    fn figure4_city_cm_contents() {
        let disk = DiskSim::with_defaults();
        let heap = figure4_heap(&disk);
        let dir = state_dir(&heap);
        let cm = CorrelationMap::build("city_cm", CmSpec::single_raw(1), &heap, &dir);
        // Distinct cities: boston, cambridge, springfield, manchester,
        // jackson, toledo.
        assert_eq!(cm.num_keys(), 6);
        // boston -> {MA, NH}: 2 buckets.
        let boston = cm.lookup(&[AttrConstraint::Eq(Value::str("boston"))]);
        assert_eq!(boston.len(), 2);
        // springfield -> {MA, OH}.
        let spring = cm.lookup(&[AttrConstraint::Eq(Value::str("springfield"))]);
        assert_eq!(spring.len(), 2);
        // The query from Figure 4: boston OR springfield -> {MA, NH, OH}.
        let both = cm.lookup_values(&[Value::str("boston"), Value::str("springfield")]);
        assert_eq!(both.len(), 3);
        // jackson -> {MS} only.
        assert_eq!(cm.lookup(&[AttrConstraint::Eq(Value::str("jackson"))]).len(), 1);
    }

    #[test]
    fn lookup_superset_never_misses_tuples() {
        // No false negatives: every tuple matching a predicate lives in a
        // returned bucket.
        let disk = DiskSim::with_defaults();
        let heap = figure4_heap(&disk);
        let dir = state_dir(&heap);
        let cm = CorrelationMap::build("city_cm", CmSpec::single_raw(1), &heap, &dir);
        for city in ["boston", "springfield", "manchester", "toledo"] {
            let buckets = cm.lookup(&[AttrConstraint::Eq(Value::str(city))]);
            for (rid, row) in heap.iter() {
                if row[1] == Value::str(city) {
                    assert!(
                        buckets.contains(&dir.bucket_of(rid)),
                        "tuple {rid} with city {city} outside returned buckets"
                    );
                }
            }
        }
    }

    #[test]
    fn co_occurrence_counts_support_delete() {
        let disk = DiskSim::with_defaults();
        let heap = figure4_heap(&disk);
        let dir = state_dir(&heap);
        let mut cm = CorrelationMap::build("city_cm", CmSpec::single_raw(1), &heap, &dir);
        // Three Boston/MA tuples: deleting two must keep the mapping.
        let row0 = heap.peek(Rid(0)).unwrap().clone();
        let row1 = heap.peek(Rid(1)).unwrap().clone();
        let row2 = heap.peek(Rid(2)).unwrap().clone();
        assert!(cm.delete(&row0, Rid(0), &dir));
        assert!(cm.delete(&row1, Rid(1), &dir));
        assert_eq!(cm.lookup(&[AttrConstraint::Eq(Value::str("boston"))]).len(), 2);
        // Deleting the last MA boston retracts the MA mapping.
        assert!(cm.delete(&row2, Rid(2), &dir));
        assert_eq!(cm.lookup(&[AttrConstraint::Eq(Value::str("boston"))]).len(), 1);
        // Double delete reports failure.
        assert!(!cm.delete(&row2, Rid(2), &dir));
    }

    #[test]
    fn delete_then_insert_round_trips() {
        let disk = DiskSim::with_defaults();
        let heap = figure4_heap(&disk);
        let dir = state_dir(&heap);
        let mut cm = CorrelationMap::build("city_cm", CmSpec::single_raw(1), &heap, &dir);
        let baseline: Vec<u32> = cm.lookup_values(&[Value::str("boston")]);
        let row = heap.peek(Rid(7)).unwrap().clone(); // NH boston
        cm.delete(&row, Rid(7), &dir);
        cm.insert(&row, Rid(7), &dir);
        assert_eq!(cm.lookup_values(&[Value::str("boston")]), baseline);
    }

    #[test]
    fn maintained_cm_equals_rebuilt_cm() {
        let disk = DiskSim::with_defaults();
        let heap = figure4_heap(&disk);
        let dir = state_dir(&heap);
        let mut maintained = CorrelationMap::new("m", CmSpec::single_raw(1));
        for (rid, row) in heap.iter() {
            maintained.insert(row, rid, &dir);
        }
        let built = CorrelationMap::build("b", CmSpec::single_raw(1), &heap, &dir);
        assert_eq!(maintained.num_keys(), built.num_keys());
        assert_eq!(maintained.num_pairs(), built.num_pairs());
        let a: Vec<_> = maintained.iter().collect();
        let b: Vec<_> = built.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bucketed_numeric_cm_compresses() {
        // Price-style column: 10k tuples, price = catid*100 + noise,
        // clustered on catid.
        let disk = DiskSim::with_defaults();
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..10_000i64)
            .map(|i| vec![Value::Int(i / 100), Value::Int(i / 100 * 100 + (i * 7) % 100)])
            .collect();
        let heap = HeapFile::bulk_load_clustered(&disk, schema, rows, 50, 0).unwrap();
        let dir = BucketDirectory::build(&heap, 0, 100);
        let fine = CorrelationMap::build("p0", CmSpec::single_pow2(1, 0), &heap, &dir);
        let coarse = CorrelationMap::build("p6", CmSpec::single_pow2(1, 6), &heap, &dir);
        assert!(coarse.num_keys() < fine.num_keys() / 10);
        assert!(coarse.size_bytes() < fine.size_bytes() / 10);
        // Coarser CM still finds everything a fine CM finds.
        let q = AttrConstraint::Range(Value::Int(1000), Value::Int(1100));
        let fine_buckets = fine.lookup(std::slice::from_ref(&q));
        let coarse_buckets = coarse.lookup(std::slice::from_ref(&q));
        for b in &fine_buckets {
            assert!(coarse_buckets.contains(b), "coarse CM lost bucket {b}");
        }
    }

    #[test]
    fn composite_cm_is_tighter_than_single() {
        // (x, y) -> z exact; x alone maps to many z.
        let disk = DiskSim::with_defaults();
        let schema = Arc::new(Schema::new(vec![
            Column::new("z", ValueType::Int),
            Column::new("x", ValueType::Int),
            Column::new("y", ValueType::Int),
        ]));
        let mut rows = Vec::new();
        for x in 0..20i64 {
            for y in 0..20i64 {
                for rep in 0..3 {
                    let _ = rep;
                    rows.push(vec![Value::Int(x * 20 + y), Value::Int(x), Value::Int(y)]);
                }
            }
        }
        let heap = HeapFile::bulk_load_clustered(&disk, schema, rows, 10, 0).unwrap();
        let dir = BucketDirectory::build(&heap, 0, 3);
        let single = CorrelationMap::build("x", CmSpec::single_raw(1), &heap, &dir);
        let comp = CorrelationMap::build(
            "xy",
            CmSpec::new(vec![CmAttr::raw(1), CmAttr::raw(2)]),
            &heap,
            &dir,
        );
        assert!((comp.avg_cbuckets_per_key() - 1.0).abs() < 1e-9);
        assert!(single.avg_cbuckets_per_key() > 10.0);
        // Composite lookup with both constraints pinned hits one bucket.
        let hit = comp.lookup(&[
            AttrConstraint::Eq(Value::Int(3)),
            AttrConstraint::Eq(Value::Int(4)),
        ]);
        assert_eq!(hit.len(), 1);
        // Constraining only the prefix returns all y-buckets for that x.
        let prefix = comp.lookup(&[AttrConstraint::Eq(Value::Int(3)), AttrConstraint::Any]);
        assert_eq!(prefix.len(), 20);
    }

    #[test]
    fn range_constraints_on_bucketed_keys() {
        let disk = DiskSim::with_defaults();
        let schema = Arc::new(Schema::new(vec![
            Column::new("c", ValueType::Int),
            Column::new("u", ValueType::Int),
        ]));
        let rows: Vec<Vec<Value>> =
            (0..1000i64).map(|i| vec![Value::Int(i / 10), Value::Int(i)]).collect();
        let heap = HeapFile::bulk_load_clustered(&disk, schema, rows, 10, 0).unwrap();
        let dir = BucketDirectory::build(&heap, 0, 10);
        let cm = CorrelationMap::build("u", CmSpec::single_pow2(1, 4), &heap, &dir);
        // u in [100, 131]: buckets 6..8 (width 16), i.e. u in [96, 143].
        let buckets = cm.lookup(&[AttrConstraint::Range(Value::Int(100), Value::Int(131))]);
        // Those u values live at rids 96..144 => clustered values 9..14.
        let expected: Vec<u32> = (96 / 10..=143 / 10).map(|c| c as u32).collect();
        assert_eq!(buckets, expected);
    }

    #[test]
    fn size_model_counts_pairs_not_tuples() {
        let disk = DiskSim::with_defaults();
        let heap = figure4_heap(&disk);
        let dir = state_dir(&heap);
        let cm = CorrelationMap::build("city_cm", CmSpec::single_raw(1), &heap, &dir);
        // 9 distinct (city, state) pairs in the data.
        assert_eq!(cm.num_pairs(), 9);
        let expected: u64 = cm
            .iter()
            .map(|(k, b)| {
                b.len() as u64 * (k.iter().map(CmKeyPart::size_bytes).sum::<usize>() as u64 + 16)
            })
            .sum();
        assert_eq!(cm.size_bytes(), expected);
        assert!(cm.size_bytes() < 400, "value-granular: tiny for 11 tuples");
    }

    #[test]
    fn empty_cm_lookups_are_empty() {
        let cm = CorrelationMap::new("empty", CmSpec::single_raw(0));
        assert!(cm.lookup(&[AttrConstraint::Eq(Value::Int(1))]).is_empty());
        assert_eq!(cm.avg_cbuckets_per_key(), 0.0);
        assert_eq!(cm.size_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "one constraint per CM key attribute")]
    fn constraint_arity_checked() {
        let cm = CorrelationMap::new("x", CmSpec::single_raw(0));
        cm.lookup(&[]);
    }

    #[test]
    fn wal_record_is_small() {
        let cm = CorrelationMap::new("city_cm", CmSpec::single_raw(1));
        let row = vec![Value::str("MA"), Value::str("boston"), Value::Int(1)];
        let n = cm.wal_record_bytes(&row);
        assert!(n < 64, "CM log records are tiny ({n} bytes)");
    }
}
