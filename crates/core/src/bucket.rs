//! Unclustered-attribute bucketing (paper §5.4, §6.1.2).
//!
//! Bucketing "truncates" ranges of a many-valued attribute into a single
//! CM key, trading false positives for size: only the lower bound of each
//! interval is stored. Categorical (few-valued) attributes stay unbucketed
//! — the paper's Table 4 shows the advisor emitting `mode` and `type`
//! without bucketing while sweeping `psfMag_g` through widths `2^2..2^16`.

use cm_storage::Value;

use std::sync::Arc;

/// How one CM key attribute is bucketed.
#[derive(Debug, Clone, PartialEq)]
pub enum BucketSpec {
    /// Keep raw values (categorical / few-valued attributes).
    None,
    /// Equi-width numeric bucketing: value `v` maps to bucket
    /// `floor((v - origin) / width)`. Only the bucket ordinal (equivalent
    /// to the interval's lower bound) is stored.
    EquiWidth {
        /// Domain origin (bucket 0 starts here).
        origin: f64,
        /// Bucket width (> 0).
        width: f64,
    },
    /// Variable-width (equi-depth) bucketing for skewed distributions —
    /// the extension the paper sketches in its future work ("consider
    /// variable-width buckets that pack more predicated attribute values
    /// into a bucket"): bucket `i` covers `[bounds[i], bounds[i+1])`,
    /// with the first/last buckets open-ended. Boundaries are typically
    /// derived from a sample quantile sweep
    /// ([`BucketSpec::equi_depth_from_sample`]).
    EquiDepth {
        /// Ascending interior boundaries (bucket count = len + 1).
        bounds: Arc<[f64]>,
    },
}

impl BucketSpec {
    /// Integer truncation by `2^level`, the paper's bucket-level scheme
    /// for integer domains (Experiment 2 sweeps `level` as
    /// "2^level tuples / bucket").
    pub fn pow2(level: u32) -> Self {
        BucketSpec::EquiWidth { origin: 0.0, width: (1u64 << level) as f64 }
    }

    /// Equi-width bucketing that covers `[lo, hi]` with `count` buckets —
    /// how the advisor derives widths for real-valued domains such as
    /// SDSS `ra` / `dec`.
    pub fn covering(lo: f64, hi: f64, count: u32) -> Self {
        assert!(count > 0, "bucket count must be positive");
        assert!(hi >= lo, "domain must be non-empty");
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        BucketSpec::EquiWidth { origin: lo, width: span / count as f64 }
    }

    /// Equi-depth bucketing fitted to a sample: boundaries are the sample
    /// quantiles, so each bucket holds roughly the same number of *rows*
    /// regardless of skew. The sample need not be sorted.
    pub fn equi_depth_from_sample(sample: &[f64], buckets: u32) -> Self {
        assert!(buckets >= 1, "bucket count must be positive");
        let mut sorted: Vec<f64> = sample.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        let mut bounds = Vec::with_capacity(buckets.saturating_sub(1) as usize);
        for i in 1..buckets as usize {
            if sorted.is_empty() {
                break;
            }
            let idx = (i * sorted.len() / buckets as usize).min(sorted.len() - 1);
            let b = sorted[idx];
            if bounds.last().is_none_or(|&last| b > last) {
                bounds.push(b);
            }
        }
        BucketSpec::EquiDepth { bounds: bounds.into() }
    }

    /// Whether this spec buckets at all.
    pub fn is_bucketed(&self) -> bool {
        matches!(self, BucketSpec::EquiWidth { .. } | BucketSpec::EquiDepth { .. })
    }

    /// Map a value to its CM key part.
    ///
    /// Non-numeric values under a bucketed spec keep their raw form: the
    /// paper only buckets ordered numeric domains (BHUNT's limitation
    /// that CMs lift is precisely that categorical values need no
    /// bucketing to participate).
    pub fn key_part(&self, v: &Value) -> CmKeyPart {
        match self {
            BucketSpec::None => CmKeyPart::Raw(v.clone()),
            _ => match self.bucket_of(v) {
                Some(b) => CmKeyPart::Bucket(b),
                None => CmKeyPart::Raw(v.clone()),
            },
        }
    }

    /// Bucket ordinal of a numeric value (`None` for non-numeric input or
    /// an unbucketed spec).
    pub fn bucket_of(&self, v: &Value) -> Option<i64> {
        match (self, v.as_numeric()) {
            (BucketSpec::EquiWidth { origin, width }, Some(x)) => {
                Some(((x - origin) / width).floor() as i64)
            }
            (BucketSpec::EquiDepth { bounds }, Some(x)) => {
                Some(bounds.partition_point(|&b| b <= x) as i64)
            }
            _ => None,
        }
    }
}

/// One component of a CM key: either a raw categorical value or a bucket
/// ordinal (the interval's lower bound, per §5.4: "we only need to store
/// the lower bounds of the intervals").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmKeyPart {
    /// Unbucketed value.
    Raw(Value),
    /// Bucket ordinal under the attribute's [`BucketSpec`].
    Bucket(i64),
}

impl CmKeyPart {
    /// Approximate stored size in bytes (bucket ordinals store one i64
    /// lower bound).
    pub fn size_bytes(&self) -> usize {
        match self {
            CmKeyPart::Raw(v) => v.size_bytes(),
            CmKeyPart::Bucket(_) => 8,
        }
    }
}

/// A full (possibly composite) CM key.
pub type CmKey = Box<[CmKeyPart]>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_truncation_matches_paper_example() {
        // §5.4 buckets 12.3°C into the 12–13° interval with width 1; with
        // pow2 widths, 4096-wide buckets group prices as in Experiment 1.
        let spec = BucketSpec::pow2(12); // width 4096
        assert_eq!(spec.bucket_of(&Value::Int(0)), Some(0));
        assert_eq!(spec.bucket_of(&Value::Int(4095)), Some(0));
        assert_eq!(spec.bucket_of(&Value::Int(4096)), Some(1));
        assert_eq!(spec.bucket_of(&Value::Int(-1)), Some(-1), "negatives floor");
    }

    #[test]
    fn float_temperatures_truncate() {
        let spec = BucketSpec::EquiWidth { origin: 0.0, width: 1.0 };
        assert_eq!(spec.key_part(&Value::float(12.3)), CmKeyPart::Bucket(12));
        assert_eq!(spec.key_part(&Value::float(12.7)), CmKeyPart::Bucket(12));
        assert_eq!(spec.key_part(&Value::float(14.4)), CmKeyPart::Bucket(14));
        assert_eq!(spec.key_part(&Value::float(17.8)), CmKeyPart::Bucket(17));
    }

    #[test]
    fn covering_spreads_domain() {
        // SDSS ra in [0, 360) with 2^12 buckets.
        let spec = BucketSpec::covering(0.0, 360.0, 1 << 12);
        assert_eq!(spec.bucket_of(&Value::float(0.0)), Some(0));
        let b_hi = spec.bucket_of(&Value::float(359.999)).unwrap();
        assert_eq!(b_hi, (1 << 12) - 1);
        // Monotone.
        let b1 = spec.bucket_of(&Value::float(100.0)).unwrap();
        let b2 = spec.bucket_of(&Value::float(200.0)).unwrap();
        assert!(b1 < b2);
    }

    #[test]
    fn unbucketed_keeps_raw_values() {
        let spec = BucketSpec::None;
        assert_eq!(spec.key_part(&Value::str("boston")), CmKeyPart::Raw(Value::str("boston")));
        assert_eq!(spec.key_part(&Value::Int(5)), CmKeyPart::Raw(Value::Int(5)));
        assert_eq!(spec.bucket_of(&Value::Int(5)), None);
        assert!(!spec.is_bucketed());
    }

    #[test]
    fn strings_pass_through_even_when_bucketed() {
        let spec = BucketSpec::pow2(4);
        assert_eq!(spec.key_part(&Value::str("MA")), CmKeyPart::Raw(Value::str("MA")));
    }

    #[test]
    fn dates_bucket_as_days() {
        // Month-ish buckets over dates (SQL Server's fixed scheme, which
        // the paper generalizes).
        let spec = BucketSpec::EquiWidth { origin: 0.0, width: 30.0 };
        assert_eq!(spec.bucket_of(&Value::Date(29)), Some(0));
        assert_eq!(spec.bucket_of(&Value::Date(30)), Some(1));
    }

    #[test]
    fn key_part_ordering_is_consistent_per_kind() {
        assert!(CmKeyPart::Bucket(1) < CmKeyPart::Bucket(2));
        assert!(CmKeyPart::Raw(Value::str("a")) < CmKeyPart::Raw(Value::str("b")));
    }

    #[test]
    fn size_accounting() {
        assert_eq!(CmKeyPart::Bucket(7).size_bytes(), 8);
        assert_eq!(CmKeyPart::Raw(Value::str("abc")).size_bytes(), 4);
    }

    #[test]
    #[should_panic(expected = "bucket count must be positive")]
    fn covering_rejects_zero_count() {
        BucketSpec::covering(0.0, 1.0, 0);
    }

    #[test]
    fn equi_depth_balances_skewed_sample() {
        // Heavy skew: 90% of mass at small values, a long tail above.
        let mut sample = Vec::new();
        for i in 0..900 {
            sample.push((i % 10) as f64);
        }
        for i in 0..100 {
            sample.push(1000.0 + i as f64 * 100.0);
        }
        let spec = BucketSpec::equi_depth_from_sample(&sample, 8);
        // Count rows per bucket: no bucket should hold more than ~3x the
        // fair share (equi-width would put 90% into one bucket).
        let mut counts = std::collections::HashMap::new();
        for &x in &sample {
            *counts.entry(spec.bucket_of(&Value::float(x)).unwrap()).or_insert(0u32) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(
            max <= 3 * (sample.len() as u32 / 8),
            "max bucket {max} of {} rows across {} buckets",
            sample.len(),
            counts.len()
        );
        assert!(spec.is_bucketed());
    }

    #[test]
    fn equi_depth_is_monotone_and_total() {
        let sample: Vec<f64> = (0..1000).map(|i| (i * i) as f64).collect();
        let spec = BucketSpec::equi_depth_from_sample(&sample, 16);
        let mut last = i64::MIN;
        for i in 0..1000 {
            let b = spec.bucket_of(&Value::float((i * i) as f64)).unwrap();
            assert!(b >= last, "bucket ids non-decreasing in value");
            last = b;
        }
        // Values outside the sampled domain still bucket (first/last are
        // open-ended).
        assert_eq!(spec.bucket_of(&Value::float(-1e12)), Some(0));
        assert!(spec.bucket_of(&Value::float(1e12)).unwrap() >= 15);
    }

    #[test]
    fn equi_depth_with_few_distinct_values_dedups_bounds() {
        let sample = vec![5.0; 100];
        let spec = BucketSpec::equi_depth_from_sample(&sample, 8);
        // All mass on one value: at most one distinct boundary survives.
        if let BucketSpec::EquiDepth { bounds } = &spec {
            assert!(bounds.len() <= 1);
        } else {
            panic!("expected EquiDepth");
        }
        assert!(spec.bucket_of(&Value::float(5.0)).is_some());
    }

    #[test]
    fn equi_depth_key_part_passes_strings_through() {
        let spec = BucketSpec::equi_depth_from_sample(&[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(spec.key_part(&Value::str("MA")), CmKeyPart::Raw(Value::str("MA")));
        assert!(matches!(spec.key_part(&Value::float(1.5)), CmKeyPart::Bucket(_)));
    }
}
