//! # cm-core
//!
//! The primary contribution of *"Correlation Maps: A Compressed Access
//! Method for Exploiting Soft Functional Dependencies"* (Kimura, Huo,
//! Rasin, Madden, Zdonik — VLDB 2009), implemented from scratch.
//!
//! A **Correlation Map** (CM) over an unclustered attribute `Au` of a
//! table clustered on `Ac` is a mapping `u → S_c` from each distinct
//! (optionally bucketed) value of `Au` to the set of clustered values —
//! here, clustered *buckets* — that co-occur with it, together with
//! co-occurrence counts to support deletion (paper, Algorithm 1). Because
//! it stores one entry per distinct **value pair** instead of per
//! **tuple**, a CM is up to three orders of magnitude smaller than the
//! secondary B+Tree it replaces, small enough to stay memory-resident,
//! which is what makes maintaining many of them cheap (Experiment 3).
//!
//! The crate provides:
//!
//! * [`BucketSpec`] / [`CmKeyPart`] — value bucketing for many-valued
//!   attributes (§5.4, §6.1.2): truncation to equi-width ranges, storing
//!   only lower bounds.
//! * [`BucketDirectory`] — clustered-attribute bucketing (§6.1.1): the
//!   scan-time assignment of ~`b` tuples per bucket that never splits one
//!   clustered value across buckets.
//! * [`CmSpec`] — a (possibly composite, §6.1.3) CM key definition.
//! * [`CorrelationMap`] — build, probe (`cm_lookup`), and maintain
//!   (insert/delete with co-occurrence counts) the map itself.

pub mod bucket;
pub mod cdir;
pub mod cmap;
pub mod spec;

pub use bucket::{BucketSpec, CmKey, CmKeyPart};
pub use cdir::BucketDirectory;
pub use cmap::{AttrConstraint, CorrelationMap};
pub use spec::{CmAttr, CmSpec};
