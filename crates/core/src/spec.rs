//! CM key specifications (single-attribute and composite, §6.1.3).

use crate::bucket::{BucketSpec, CmKey};
use cm_storage::Value;

/// One attribute of a CM key: which column it reads and how it buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct CmAttr {
    /// Column position in the table schema.
    pub col: usize,
    /// Bucketing applied to the column's values.
    pub bucket: BucketSpec,
}

impl CmAttr {
    /// Unbucketed attribute.
    pub fn raw(col: usize) -> Self {
        CmAttr { col, bucket: BucketSpec::None }
    }

    /// Attribute bucketed by truncation to `2^level`.
    pub fn pow2(col: usize, level: u32) -> Self {
        CmAttr { col, bucket: BucketSpec::pow2(level) }
    }
}

/// The (possibly composite) key definition of a CM.
///
/// Composite CMs matter when a *pair* of attributes determines the
/// clustered value far better than either alone — the paper's
/// `(longitude, latitude) → zipcode` and Experiment 5's
/// `(ra, dec) → objID`.
#[derive(Debug, Clone, PartialEq)]
pub struct CmSpec {
    attrs: Vec<CmAttr>,
}

impl CmSpec {
    /// A spec over the given attributes (at least one).
    pub fn new(attrs: Vec<CmAttr>) -> Self {
        assert!(!attrs.is_empty(), "a CM key needs at least one attribute");
        CmSpec { attrs }
    }

    /// Single-attribute unbucketed spec.
    pub fn single_raw(col: usize) -> Self {
        Self::new(vec![CmAttr::raw(col)])
    }

    /// Single-attribute spec with pow2 bucketing.
    pub fn single_pow2(col: usize, level: u32) -> Self {
        Self::new(vec![CmAttr::pow2(col, level)])
    }

    /// The key attributes in order.
    pub fn attrs(&self) -> &[CmAttr] {
        &self.attrs
    }

    /// Number of key attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Columns read by this spec, in key order.
    pub fn cols(&self) -> Vec<usize> {
        self.attrs.iter().map(|a| a.col).collect()
    }

    /// Compute the CM key of a row.
    pub fn key_of(&self, row: &[Value]) -> CmKey {
        self.attrs.iter().map(|a| a.bucket.key_part(&row[a.col])).collect()
    }

    /// Encode the spec as bytes — the opaque payload a
    /// [`cm_storage::LogPayload::DesignChange`] record carries, since
    /// the log layer sits *below* this crate in the dependency order.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.attrs.len() as u16).to_le_bytes());
        for a in &self.attrs {
            out.extend_from_slice(&(a.col as u32).to_le_bytes());
            match &a.bucket {
                BucketSpec::None => out.push(0),
                BucketSpec::EquiWidth { origin, width } => {
                    out.push(1);
                    out.extend_from_slice(&origin.to_le_bytes());
                    out.extend_from_slice(&width.to_le_bytes());
                }
                BucketSpec::EquiDepth { bounds } => {
                    out.push(2);
                    out.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
                    for b in bounds.iter() {
                        out.extend_from_slice(&b.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Decode a spec previously produced by [`CmSpec::encode`]. Returns
    /// `None` on any structural mismatch (recovery treats that as a
    /// corrupt record).
    pub fn decode(bytes: &[u8]) -> Option<(CmSpec, usize)> {
        fn f64_at(bytes: &[u8], pos: &mut usize) -> Option<f64> {
            let s = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(f64::from_le_bytes(s.try_into().ok()?))
        }
        let mut pos = 0usize;
        let arity = u16::from_le_bytes(bytes.get(0..2)?.try_into().ok()?) as usize;
        pos += 2;
        if arity == 0 {
            return None;
        }
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            let col = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let tag = *bytes.get(pos)?;
            pos += 1;
            let bucket = match tag {
                0 => BucketSpec::None,
                1 => {
                    let origin = f64_at(bytes, &mut pos)?;
                    let width = f64_at(bytes, &mut pos)?;
                    BucketSpec::EquiWidth { origin, width }
                }
                2 => {
                    let n =
                        u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
                    pos += 4;
                    let mut bounds = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        bounds.push(f64_at(bytes, &mut pos)?);
                    }
                    BucketSpec::EquiDepth { bounds: bounds.into() }
                }
                _ => return None,
            };
            attrs.push(CmAttr { col, bucket });
        }
        Some((CmSpec { attrs }, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::CmKeyPart;

    #[test]
    fn key_projection_and_bucketing() {
        // row = (id, city, price)
        let row = vec![Value::Int(7), Value::str("boston"), Value::Int(5000)];
        let spec = CmSpec::new(vec![CmAttr::raw(1), CmAttr::pow2(2, 12)]);
        let key = spec.key_of(&row);
        assert_eq!(
            key.as_ref(),
            &[CmKeyPart::Raw(Value::str("boston")), CmKeyPart::Bucket(1)]
        );
        assert_eq!(spec.cols(), vec![1, 2]);
        assert_eq!(spec.arity(), 2);
    }

    #[test]
    fn equal_rows_make_equal_keys() {
        let spec = CmSpec::single_pow2(0, 4);
        let a = spec.key_of(&[Value::Int(17)]);
        let b = spec.key_of(&[Value::Int(31)]);
        assert_eq!(a, b, "17 and 31 share bucket 1 at width 16");
        let c = spec.key_of(&[Value::Int(32)]);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_spec_rejected() {
        CmSpec::new(vec![]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let specs = vec![
            CmSpec::single_raw(3),
            CmSpec::single_pow2(1, 12),
            CmSpec::new(vec![
                CmAttr::raw(0),
                CmAttr { col: 2, bucket: BucketSpec::covering(0.0, 360.0, 64) },
                CmAttr {
                    col: 5,
                    bucket: BucketSpec::equi_depth_from_sample(&[1.0, 2.0, 5.0, 9.0], 3),
                },
            ]),
        ];
        for spec in specs {
            let bytes = spec.encode();
            let (back, used) = CmSpec::decode(&bytes).expect("decodes");
            assert_eq!(back, spec);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn truncated_or_garbage_specs_fail_to_decode() {
        let bytes = CmSpec::single_pow2(0, 4).encode();
        for cut in 0..bytes.len() {
            assert!(CmSpec::decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        assert!(CmSpec::decode(&[0, 0]).is_none(), "zero-arity spec rejected");
    }
}
