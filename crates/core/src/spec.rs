//! CM key specifications (single-attribute and composite, §6.1.3).

use crate::bucket::{BucketSpec, CmKey};
use cm_storage::Value;

/// One attribute of a CM key: which column it reads and how it buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct CmAttr {
    /// Column position in the table schema.
    pub col: usize,
    /// Bucketing applied to the column's values.
    pub bucket: BucketSpec,
}

impl CmAttr {
    /// Unbucketed attribute.
    pub fn raw(col: usize) -> Self {
        CmAttr { col, bucket: BucketSpec::None }
    }

    /// Attribute bucketed by truncation to `2^level`.
    pub fn pow2(col: usize, level: u32) -> Self {
        CmAttr { col, bucket: BucketSpec::pow2(level) }
    }
}

/// The (possibly composite) key definition of a CM.
///
/// Composite CMs matter when a *pair* of attributes determines the
/// clustered value far better than either alone — the paper's
/// `(longitude, latitude) → zipcode` and Experiment 5's
/// `(ra, dec) → objID`.
#[derive(Debug, Clone, PartialEq)]
pub struct CmSpec {
    attrs: Vec<CmAttr>,
}

impl CmSpec {
    /// A spec over the given attributes (at least one).
    pub fn new(attrs: Vec<CmAttr>) -> Self {
        assert!(!attrs.is_empty(), "a CM key needs at least one attribute");
        CmSpec { attrs }
    }

    /// Single-attribute unbucketed spec.
    pub fn single_raw(col: usize) -> Self {
        Self::new(vec![CmAttr::raw(col)])
    }

    /// Single-attribute spec with pow2 bucketing.
    pub fn single_pow2(col: usize, level: u32) -> Self {
        Self::new(vec![CmAttr::pow2(col, level)])
    }

    /// The key attributes in order.
    pub fn attrs(&self) -> &[CmAttr] {
        &self.attrs
    }

    /// Number of key attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Columns read by this spec, in key order.
    pub fn cols(&self) -> Vec<usize> {
        self.attrs.iter().map(|a| a.col).collect()
    }

    /// Compute the CM key of a row.
    pub fn key_of(&self, row: &[Value]) -> CmKey {
        self.attrs.iter().map(|a| a.bucket.key_part(&row[a.col])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::CmKeyPart;

    #[test]
    fn key_projection_and_bucketing() {
        // row = (id, city, price)
        let row = vec![Value::Int(7), Value::str("boston"), Value::Int(5000)];
        let spec = CmSpec::new(vec![CmAttr::raw(1), CmAttr::pow2(2, 12)]);
        let key = spec.key_of(&row);
        assert_eq!(
            key.as_ref(),
            &[CmKeyPart::Raw(Value::str("boston")), CmKeyPart::Bucket(1)]
        );
        assert_eq!(spec.cols(), vec![1, 2]);
        assert_eq!(spec.arity(), 2);
    }

    #[test]
    fn equal_rows_make_equal_keys() {
        let spec = CmSpec::single_pow2(0, 4);
        let a = spec.key_of(&[Value::Int(17)]);
        let b = spec.key_of(&[Value::Int(31)]);
        assert_eq!(a, b, "17 and 31 share bucket 1 at width 16");
        let c = spec.key_of(&[Value::Int(32)]);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_spec_rejected() {
        CmSpec::new(vec![]);
    }
}
