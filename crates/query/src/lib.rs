//! # cm-query
//!
//! Query execution for the Correlation Maps (VLDB 2009) reproduction.
//!
//! The paper evaluates four physical access paths for a conjunctive
//! predicate over a clustered heap:
//!
//! 1. **Full table scan** — sequential read of every page (§3).
//! 2. **Pipelined secondary index scan** — one uncoordinated probe + heap
//!    fetch per matching tuple (§3.1).
//! 3. **Sorted secondary index scan** — PostgreSQL-style bitmap scan:
//!    collect RIDs, sort/dedupe pages, sweep the heap (§3.2).
//! 4. **CM-guided scan** — `cm_lookup` on the memory-resident CM, then a
//!    clustered-index-driven scan of the returned bucket ranges with
//!    re-filtering against the original predicate (§5.2, Figure 4).
//!
//! [`Table`] composes the substrates (heap, clustered index, bucket
//! directory, secondary indexes, CMs) and owns the INSERT/DELETE
//! maintenance paths measured in Experiment 3. [`Planner`] chooses among
//! the paths with the paper's cost model.
//!
//! Multi-table execution builds on the same paths: [`join`] defines the
//! equi-join vocabulary plus the CM-clamped probe scan, and [`agg`] the
//! mergeable grouped-aggregation states engines fold per shard leg.

pub mod agg;
pub mod error;
pub mod exec;
pub mod join;
pub mod leg;
pub mod plan;
pub mod predicate;
pub mod shard;
pub mod table;

pub use agg::{AggFunc, AggSpec, AggState};
pub use error::QueryError;
pub use exec::{merge_page_ranges, ExecContext, RunResult};
pub use join::{JoinHashTable, JoinQuery, JoinSide, JoinStrategy};
pub use leg::{QueryPlan, ShardLeg};
pub use plan::{AccessPath, PlanChoice, Planner};
pub use predicate::{Pred, PredOp, Query};
pub use shard::{restrict_to_shard, ShardRange};
pub use table::{ColumnStats, Table, DEFAULT_TREE_ORDER};
