//! Query-layer errors.

use std::fmt;

/// Errors surfaced by query execution (as opposed to planning, which
/// simply never chooses an inapplicable path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A (forced) secondary-index path was asked to execute a query with
    /// no predicate on the index's first key column. The index cannot
    /// narrow the scan at all — the cost-based router would never pick
    /// it, so this only arises from an explicitly forced path.
    NoIndexPredicate {
        /// The index's name.
        index: String,
        /// The index's first (prefix) key column position.
        col: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoIndexPredicate { index, col } => write!(
                f,
                "secondary index {index:?} has no predicate on its first key column {col}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}
