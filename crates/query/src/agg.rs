//! Grouped aggregation over visitor-driven scans.
//!
//! The access paths in [`crate::exec`] stream matching rows through a
//! visitor; [`AggState`] is the fold target: a deterministic
//! (`BTreeMap`-ordered) accumulator for `COUNT` / `SUM` / `MIN` / `MAX`
//! grouped by a column tuple. States are **mergeable** — a sharded
//! engine folds one state per shard leg and merges them in explicit
//! merge-key order, so grouped results are identical however the legs
//! were scheduled (the same determinism contract as PR 3's row fan-out).
//!
//! `DISTINCT` is the degenerate aggregation with an empty aggregate
//! list: the group keys *are* the result. `LIMIT` truncates the final
//! key-sorted group list, so a limited result is always a stable prefix
//! of the unlimited one ("LIMIT-stability").

use cm_storage::{Row, Value};
use std::collections::BTreeMap;

/// One aggregate function over a column (or over whole rows for
/// [`AggFunc::Count`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`: rows in the group (NULLs included — it counts rows,
    /// not values).
    Count,
    /// `SUM(col)`, skipping NULLs. Integer inputs stay integers; a
    /// single `Float` input promotes the sum to `Float`. A group with no
    /// non-NULL input sums to `Null` (SQL semantics).
    Sum(usize),
    /// `MIN(col)`, skipping NULLs; `Null` if no non-NULL input.
    Min(usize),
    /// `MAX(col)`, skipping NULLs; `Null` if no non-NULL input.
    Max(usize),
}

impl AggFunc {
    /// The column this aggregate reads, if any (`COUNT(*)` reads none).
    pub fn col(&self) -> Option<usize> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) => Some(*c),
        }
    }
}

/// A grouped-aggregation specification: `SELECT group_by, aggs FROM t
/// WHERE ... GROUP BY group_by ORDER BY group_by LIMIT limit`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Grouping columns, in output order. Empty means one global group.
    pub group_by: Vec<usize>,
    /// Aggregates computed per group, in output order (appended after
    /// the group-key columns in each result row).
    pub aggs: Vec<AggFunc>,
    /// Keep only the first `limit` groups of the key-sorted output.
    pub limit: Option<usize>,
}

impl AggSpec {
    /// Group by `group_by`, computing `aggs` per group.
    pub fn new(group_by: Vec<usize>, aggs: Vec<AggFunc>) -> Self {
        AggSpec { group_by, aggs, limit: None }
    }

    /// `SELECT DISTINCT cols`: group by the projection with no
    /// aggregates.
    pub fn distinct(cols: Vec<usize>) -> Self {
        AggSpec { group_by: cols, aggs: Vec::new(), limit: None }
    }

    /// Truncate the key-sorted output to its first `n` groups.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }
}

/// One aggregate's running value.
#[derive(Debug, Clone, PartialEq)]
enum Acc {
    Count(u64),
    /// No non-NULL input yet.
    SumEmpty,
    SumInt(i64),
    SumFloat(f64),
    MinMax(Option<Value>),
}

impl Acc {
    fn fresh(f: &AggFunc) -> Acc {
        match f {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum(_) => Acc::SumEmpty,
            AggFunc::Min(_) | AggFunc::Max(_) => Acc::MinMax(None),
        }
    }

    fn observe(&mut self, f: &AggFunc, row: &[Value]) {
        match (self, f) {
            (Acc::Count(n), AggFunc::Count) => *n += 1,
            (acc @ (Acc::SumEmpty | Acc::SumInt(_) | Acc::SumFloat(_)), AggFunc::Sum(col)) => {
                acc.add_value(&row[*col]);
            }
            (Acc::MinMax(m), AggFunc::Min(col)) => {
                let v = &row[*col];
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            (Acc::MinMax(m), AggFunc::Max(col)) => {
                let v = &row[*col];
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            _ => unreachable!("accumulator matches its function"),
        }
    }

    /// Add one value into a sum accumulator (NULLs skipped; a float
    /// promotes an integer running sum).
    fn add_value(&mut self, v: &Value) {
        let num = match v {
            Value::Null => return,
            v => v.as_numeric().expect("SUM over a numeric column"),
        };
        *self = match (&*self, v) {
            (Acc::SumEmpty, Value::Float(_)) => Acc::SumFloat(num),
            (Acc::SumEmpty, _) => Acc::SumInt(num as i64),
            (Acc::SumInt(s), Value::Float(_)) => Acc::SumFloat(*s as f64 + num),
            (Acc::SumInt(s), _) => Acc::SumInt(s + num as i64),
            (Acc::SumFloat(s), _) => Acc::SumFloat(s + num),
            _ => unreachable!("sum accumulator"),
        };
    }

    /// Fold another leg's accumulator for the same function with this
    /// one. Count/Min/Max merges are order-insensitive; float-sum merges
    /// happen in the caller's explicit merge-key order, so the result is
    /// deterministic across worker schedules. Min/Max resolution needs
    /// the function for its direction.
    fn merge_with(&self, f: &AggFunc, other: &Acc) -> Acc {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => Acc::Count(a + b),
            (a, Acc::SumEmpty) => a.clone(),
            (Acc::SumEmpty, b) => b.clone(),
            (Acc::SumInt(a), Acc::SumInt(b)) => Acc::SumInt(a + b),
            (Acc::SumInt(a), Acc::SumFloat(b)) => Acc::SumFloat(*a as f64 + b),
            (Acc::SumFloat(a), Acc::SumInt(b)) => Acc::SumFloat(a + *b as f64),
            (Acc::SumFloat(a), Acc::SumFloat(b)) => Acc::SumFloat(a + b),
            (Acc::MinMax(a), Acc::MinMax(b)) => Acc::MinMax(match (a, b) {
                (Some(av), Some(bv)) => {
                    let take_b = match f {
                        AggFunc::Min(_) => bv < av,
                        AggFunc::Max(_) => bv > av,
                        _ => unreachable!("min/max accumulator"),
                    };
                    Some(if take_b { bv.clone() } else { av.clone() })
                }
                (Some(v), None) | (None, Some(v)) => Some(v.clone()),
                (None, None) => None,
            }),
            _ => unreachable!("accumulators merge like with like"),
        }
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n as i64),
            Acc::SumEmpty => Value::Null,
            Acc::SumInt(s) => Value::Int(*s),
            Acc::SumFloat(s) => Value::float(*s),
            Acc::MinMax(m) => m.clone().unwrap_or(Value::Null),
        }
    }
}

/// A mergeable grouped-aggregation accumulator. Feed it rows with
/// [`AggState::observe`], merge per-leg states with [`AggState::merge`]
/// (in explicit merge-key order), and read the key-sorted result rows
/// with [`AggState::finish`].
#[derive(Debug, Clone)]
pub struct AggState {
    spec: AggSpec,
    groups: BTreeMap<Vec<Value>, Vec<Acc>>,
}

impl AggState {
    /// An empty state for `spec`.
    pub fn new(spec: &AggSpec) -> Self {
        AggState { spec: spec.clone(), groups: BTreeMap::new() }
    }

    /// Fold one (already predicate-filtered) row.
    pub fn observe(&mut self, row: &[Value]) {
        let key: Vec<Value> = self.spec.group_by.iter().map(|&c| row[c].clone()).collect();
        let aggs = &self.spec.aggs;
        let accs = self
            .groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(Acc::fresh).collect());
        for (acc, f) in accs.iter_mut().zip(aggs) {
            acc.observe(f, row);
        }
    }

    /// Fold another leg's state (same spec) into this one. Callers merge
    /// leg states in ascending merge-key order, making even float-sum
    /// results bit-identical across worker counts.
    pub fn merge(&mut self, other: &AggState) {
        debug_assert_eq!(self.spec, other.spec, "merging states of one spec");
        for (key, accs) in &other.groups {
            match self.groups.get_mut(key) {
                Some(mine) => {
                    for ((a, b), f) in mine.iter_mut().zip(accs).zip(&self.spec.aggs) {
                        *a = a.merge_with(f, b);
                    }
                }
                None => {
                    self.groups.insert(key.clone(), accs.clone());
                }
            }
        }
    }

    /// Number of groups accumulated so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The result rows — group-key values followed by aggregate values,
    /// ascending by group key, truncated to the spec's `limit`. A global
    /// aggregation (empty `group_by`) over zero rows still yields its
    /// one row (`COUNT = 0`, other aggregates `Null`), as SQL does.
    pub fn finish(mut self) -> Vec<Row> {
        if self.spec.group_by.is_empty() && self.groups.is_empty() {
            self.groups
                .insert(Vec::new(), self.spec.aggs.iter().map(Acc::fresh).collect());
        }
        let limit = self.spec.limit.unwrap_or(usize::MAX);
        self.groups
            .into_iter()
            .take(limit)
            .map(|(mut key, accs)| {
                key.extend(accs.iter().map(Acc::finish));
                key
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Int(10), Value::float(0.5)],
            vec![Value::Int(2), Value::Int(5), Value::float(1.5)],
            vec![Value::Int(1), Value::Int(7), Value::Null],
            vec![Value::Int(2), Value::Null, Value::float(2.0)],
        ]
    }

    fn fold(spec: &AggSpec, rows: &[Row]) -> Vec<Row> {
        let mut st = AggState::new(spec);
        for r in rows {
            st.observe(r);
        }
        st.finish()
    }

    #[test]
    fn count_sum_min_max_grouped() {
        let spec = AggSpec::new(
            vec![0],
            vec![AggFunc::Count, AggFunc::Sum(1), AggFunc::Min(1), AggFunc::Max(1)],
        );
        let out = fold(&spec, &rows());
        assert_eq!(
            out,
            vec![
                vec![Value::Int(1), Value::Int(2), Value::Int(17), Value::Int(7), Value::Int(10)],
                vec![Value::Int(2), Value::Int(2), Value::Int(5), Value::Int(5), Value::Int(5)],
            ]
        );
    }

    #[test]
    fn sum_promotes_to_float_and_skips_nulls() {
        let spec = AggSpec::new(vec![], vec![AggFunc::Sum(2), AggFunc::Count]);
        let out = fold(&spec, &rows());
        assert_eq!(out, vec![vec![Value::float(4.0), Value::Int(4)]]);
    }

    #[test]
    fn global_agg_over_nothing_yields_one_row() {
        let spec = AggSpec::new(vec![], vec![AggFunc::Count, AggFunc::Sum(1)]);
        let out = fold(&spec, &[]);
        assert_eq!(out, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn grouped_agg_over_nothing_yields_no_rows() {
        let spec = AggSpec::new(vec![0], vec![AggFunc::Count]);
        assert!(fold(&spec, &[]).is_empty());
    }

    #[test]
    fn distinct_is_group_by_without_aggs() {
        let spec = AggSpec::distinct(vec![0]);
        let out = fold(&spec, &rows());
        assert_eq!(out, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn limit_is_a_stable_prefix() {
        let spec = AggSpec::new(vec![0], vec![AggFunc::Count]);
        let full = fold(&spec, &rows());
        let limited = fold(&spec.clone().with_limit(1), &rows());
        assert_eq!(limited, full[..1].to_vec());
    }

    #[test]
    fn merge_equals_single_fold_regardless_of_split() {
        let spec = AggSpec::new(
            vec![0],
            vec![AggFunc::Count, AggFunc::Sum(1), AggFunc::Min(2), AggFunc::Max(2)],
        );
        let rs = rows();
        let whole = fold(&spec, &rs);
        for split in 0..=rs.len() {
            let mut a = AggState::new(&spec);
            let mut b = AggState::new(&spec);
            for r in &rs[..split] {
                a.observe(r);
            }
            for r in &rs[split..] {
                b.observe(r);
            }
            a.merge(&b);
            assert_eq!(a.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn min_max_merge_is_direction_aware() {
        let spec = AggSpec::new(vec![], vec![AggFunc::Min(0), AggFunc::Max(0)]);
        let mut a = AggState::new(&spec);
        a.observe(&[Value::Int(5)]);
        let mut b = AggState::new(&spec);
        b.observe(&[Value::Int(3)]);
        b.observe(&[Value::Int(9)]);
        a.merge(&b);
        assert_eq!(a.finish(), vec![vec![Value::Int(3), Value::Int(9)]]);
    }
}
