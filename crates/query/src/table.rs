//! Table composition and maintenance.
//!
//! A [`Table`] bundles the clustered heap with every access structure the
//! experiments compare: the sparse clustered index, the CM bucket
//! directory, any number of dense secondary B+Trees, and any number of
//! CMs. It also owns the INSERT/DELETE maintenance paths whose costs
//! Experiment 3 measures: heap append + every secondary index update
//! (charged page I/O through the buffer pool) + every CM update (pure
//! memory) + WAL records for all of them.

use cm_core::{BucketDirectory, CmSpec, CorrelationMap};
use cm_index::{ClusteredIndex, SecondaryIndex};
use cm_stats::{correlation_stats, CorrelationStats};
use cm_storage::{
    is_pending, DiskSim, HeapFile, LogWrite, PageAccessor, Rid, Row, Schema, StorageError, Value,
    LIVE_TS,
};
use std::collections::HashSet;
use std::sync::Arc;

/// Per-column statistics against the table's clustered attribute,
/// computed by [`Table::analyze_cols`] (the paper's statistics scan).
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Column position.
    pub col: usize,
    /// Smallest non-null value.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Correlation statistics of this column vs. the clustered column
    /// (`c_per_u`, `u_tups`, `c_tups`, distinct counts).
    pub corr: CorrelationStats,
}

/// A clustered table with its access structures.
///
/// Every heap slot carries an MVCC **stamp pair** (`begin`, `end`) in a
/// parallel vector (see [`cm_storage::mvcc`] for the encoding): bulk-
/// loaded rows are stamped `(1, LIVE_TS)`, physically deleted slots
/// `(0, 0)` (invisible to every snapshot, matching their all-NULL
/// tombstone), and MVCC mutations stamp versions without touching the
/// row bytes. Engines that run without MVCC simply never pass a
/// snapshot to the executors, so the stamps cost one uncharged memory
/// write per mutation and nothing else.
pub struct Table {
    heap: HeapFile,
    clustered_col: usize,
    clustered: ClusteredIndex,
    dir: BucketDirectory,
    secondaries: Vec<SecondaryIndex>,
    cms: Vec<CorrelationMap>,
    stats: Vec<Option<ColumnStats>>,
    stamps: Vec<(u64, u64)>,
    design_epoch: u64,
}

/// Default B+Tree fanout for the indexes built on tables.
pub const DEFAULT_TREE_ORDER: usize = 64;

impl Table {
    /// Build a table clustered on `clustered_col`, with a clustered index
    /// and a bucket directory targeting `bucket_target` tuples per bucket.
    pub fn build(
        disk: &DiskSim,
        schema: Arc<Schema>,
        rows: Vec<Row>,
        tups_per_page: usize,
        clustered_col: usize,
        bucket_target: u64,
    ) -> Result<Self, StorageError> {
        let heap =
            HeapFile::bulk_load_clustered(disk, schema, rows, tups_per_page, clustered_col)?;
        let arity = heap.schema().arity();
        let clustered =
            ClusteredIndex::build(&heap, clustered_col, disk.alloc_file(), DEFAULT_TREE_ORDER);
        let dir = BucketDirectory::build(&heap, clustered_col, bucket_target);
        let stamps = vec![(1, LIVE_TS); heap.len() as usize];
        Ok(Table {
            heap,
            clustered_col,
            clustered,
            dir,
            secondaries: Vec::new(),
            cms: Vec::new(),
            stats: vec![None; arity],
            stamps,
            design_epoch: 0,
        })
    }

    /// Rebuild a table from a *recovered* heap image: `rows` are taken
    /// verbatim (tombstones and the unsorted appended tail included —
    /// no re-sort), with the first `sorted_len` rows known to have been
    /// bulk-loaded clustered on `clustered_col`. The clustered index and
    /// bucket directory are restored with their tombstone-tolerant
    /// paths; secondary indexes and CMs are re-added afterwards by the
    /// recovery driver (in design order, as redo replays).
    pub fn restore(
        disk: &DiskSim,
        schema: Arc<Schema>,
        rows: Vec<Row>,
        tups_per_page: usize,
        clustered_col: usize,
        bucket_target: u64,
        sorted_len: u64,
    ) -> Result<Self, StorageError> {
        let heap = HeapFile::bulk_load(disk, schema, rows, tups_per_page)?;
        let arity = heap.schema().arity();
        let clustered = ClusteredIndex::restore(
            &heap,
            clustered_col,
            sorted_len,
            disk.alloc_file(),
            DEFAULT_TREE_ORDER,
        );
        let dir = BucketDirectory::restore(&heap, clustered_col, bucket_target, sorted_len);
        // Recovery collapses version chains: live rows restart at the
        // epoch stamp, tombstoned slots are invisible to every snapshot.
        let stamps = heap
            .iter()
            .map(|(_, row)| {
                if row.iter().all(|v| v.is_null()) {
                    (0, 0)
                } else {
                    (1, LIVE_TS)
                }
            })
            .collect();
        Ok(Table {
            heap,
            clustered_col,
            clustered,
            dir,
            secondaries: Vec::new(),
            cms: Vec::new(),
            stats: vec![None; arity],
            stamps,
            design_epoch: 0,
        })
    }

    /// The heap file.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// The clustered column position.
    pub fn clustered_col(&self) -> usize {
        self.clustered_col
    }

    /// The sparse clustered index.
    pub fn clustered(&self) -> &ClusteredIndex {
        &self.clustered
    }

    /// The clustered bucket directory.
    pub fn dir(&self) -> &BucketDirectory {
        &self.dir
    }

    /// Add (and bulk-build) a dense secondary B+Tree on `cols`; returns
    /// its id.
    pub fn add_secondary(
        &mut self,
        disk: &DiskSim,
        name: impl Into<String>,
        cols: Vec<usize>,
    ) -> usize {
        let idx = SecondaryIndex::build(
            name,
            cols,
            disk.alloc_file(),
            DEFAULT_TREE_ORDER,
            self.heap.iter().map(|(rid, row)| (rid, row.as_slice())),
        );
        self.secondaries.push(idx);
        self.design_epoch += 1;
        self.secondaries.len() - 1
    }

    /// Add (and build via Algorithm 1) a Correlation Map; returns its id.
    pub fn add_cm(&mut self, name: impl Into<String>, spec: CmSpec) -> usize {
        let cm = CorrelationMap::build(name, spec, &self.heap, &self.dir);
        self.cms.push(cm);
        self.design_epoch += 1;
        self.cms.len() - 1
    }

    /// Build (but do not install) a dense secondary B+Tree on `cols`
    /// from the current heap — the snapshot-build phase of an online
    /// design swap, callable under a shard *read* lock. Pair with
    /// [`Table::install_access_structures`] for the brief write-locked
    /// flip.
    pub fn build_secondary(
        &self,
        disk: &DiskSim,
        name: impl Into<String>,
        cols: Vec<usize>,
    ) -> SecondaryIndex {
        SecondaryIndex::build(
            name,
            cols,
            disk.alloc_file(),
            DEFAULT_TREE_ORDER,
            self.heap.iter().map(|(rid, row)| (rid, row.as_slice())),
        )
    }

    /// Build (but do not install) a Correlation Map — see
    /// [`Table::build_secondary`].
    pub fn build_cm(&self, name: impl Into<String>, spec: CmSpec) -> CorrelationMap {
        CorrelationMap::build(name, spec, &self.heap, &self.dir)
    }

    /// The secondary indexes.
    pub fn secondaries(&self) -> &[SecondaryIndex] {
        &self.secondaries
    }

    /// One secondary index by id.
    pub fn secondary(&self, id: usize) -> &SecondaryIndex {
        &self.secondaries[id]
    }

    /// The correlation maps.
    pub fn cms(&self) -> &[CorrelationMap] {
        &self.cms
    }

    /// One CM by id.
    pub fn cm(&self, id: usize) -> &CorrelationMap {
        &self.cms[id]
    }

    /// Drop all secondary indexes and CMs (used by experiments that sweep
    /// the number of indexes).
    pub fn clear_access_structures(&mut self) {
        self.secondaries.clear();
        self.cms.clear();
        self.design_epoch += 1;
    }

    /// Monotone counter bumped whenever the access-structure set changes
    /// (secondary/CM added or cleared). A planner records the epoch it
    /// planned against; an executor leg that finds a different epoch at
    /// run time knows its structure ids may be stale and must re-plan —
    /// the guard that makes online design swaps safe under concurrency.
    pub fn design_epoch(&self) -> u64 {
        self.design_epoch
    }

    /// Install a pre-built structure set (secondaries + CMs), replacing
    /// the current one in a single call — the brief exclusive phase of
    /// an online design swap where structures were built off a snapshot
    /// under a read lock.
    pub fn install_access_structures(
        &mut self,
        secondaries: Vec<SecondaryIndex>,
        cms: Vec<CorrelationMap>,
    ) {
        self.secondaries = secondaries;
        self.cms = cms;
        self.design_epoch += 1;
    }

    /// Compute (or refresh) per-column statistics vs. the clustered
    /// column for the given columns — one uncharged pass per call, like
    /// the paper's statistics scan.
    pub fn analyze_cols(&mut self, cols: &[usize]) {
        for &col in cols {
            let corr = correlation_stats(
                self.heap.iter().map(|(_, row)| (&row[col], &row[self.clustered_col])),
            );
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            for (_, row) in self.heap.iter() {
                let v = &row[col];
                if v.is_null() {
                    continue;
                }
                if min.as_ref().is_none_or(|m| v < m) {
                    min = Some(v.clone());
                }
                if max.as_ref().is_none_or(|m| v > m) {
                    max = Some(v.clone());
                }
            }
            self.stats[col] = Some(ColumnStats { col, min, max, corr });
        }
    }

    /// Statistics for a column, if analyzed.
    pub fn col_stats(&self, col: usize) -> Option<&ColumnStats> {
        self.stats.get(col).and_then(Option::as_ref)
    }

    /// Number of distinct values of `col` inside `[lo, hi]`, computed
    /// exactly (used by experiments; the planner uses the estimate from
    /// [`ColumnStats`]).
    pub fn distinct_in_range(&self, col: usize, lo: &Value, hi: &Value) -> u64 {
        let mut seen: HashSet<&Value> = HashSet::new();
        for (_, row) in self.heap.iter() {
            let v = &row[col];
            if v >= lo && v <= hi {
                seen.insert(v);
            }
        }
        seen.len() as u64
    }

    /// INSERT one row, maintaining every access structure and logging to
    /// the WAL if provided. Charges:
    ///
    /// * the heap tail-page write (through `io`, typically a buffer pool);
    /// * per secondary index: a root-to-leaf read + leaf write (+ splits);
    /// * per CM: nothing — memory-resident, exactly the paper's point;
    /// * WAL bytes for each index posting and each CM delta
    ///   (recoverability comparable to a B+Tree, §7.1). The heap row
    ///   itself is logged by the caller as a typed
    ///   [`cm_storage::LogPayload::Insert`] record, which recovery
    ///   replays; the per-structure records here remain volume-only.
    pub fn insert_row(
        &mut self,
        io: &dyn PageAccessor,
        mut wal: Option<&mut dyn LogWrite>,
        row: Row,
    ) -> Result<Rid, StorageError> {
        let rid = self.heap.append(io, row)?;
        self.stamps.push((1, LIVE_TS));
        let row = self.heap.peek(rid)?.clone();
        self.dir.note_append(rid);
        self.clustered.note_append(&row[self.clustered_col], rid);
        for sec in &mut self.secondaries {
            sec.insert(io, &row, rid);
            if let Some(w) = wal.as_deref_mut() {
                w.append_sized(sec.key_of(&row).size_bytes() + 14);
            }
        }
        for cm in &mut self.cms {
            cm.insert(&row, rid, &self.dir);
            if let Some(w) = wal.as_deref_mut() {
                w.append_sized(cm.wal_record_bytes(&row));
            }
        }
        Ok(rid)
    }

    /// DELETE one row by RID, retracting it from every access structure.
    /// As with inserts, the heap-level record (a typed
    /// [`cm_storage::LogPayload::Delete`] carrying the before-image) is
    /// the caller's job; only structure-maintenance volume is logged
    /// here.
    pub fn delete_row(
        &mut self,
        io: &dyn PageAccessor,
        mut wal: Option<&mut dyn LogWrite>,
        rid: Rid,
    ) -> Result<Row, StorageError> {
        let row = self.heap.delete(io, rid)?;
        self.stamps[rid.0 as usize] = (0, 0);
        for sec in &mut self.secondaries {
            sec.remove(io, &row, rid);
            if let Some(w) = wal.as_deref_mut() {
                w.append_sized(sec.key_of(&row).size_bytes() + 14);
            }
        }
        for cm in &mut self.cms {
            cm.delete(&row, rid, &self.dir);
            if let Some(w) = wal.as_deref_mut() {
                w.append_sized(cm.wal_record_bytes(&row));
            }
        }
        Ok(row)
    }

    /// Reinstate a row into a tombstoned slot — recovery's redo of a
    /// logged insert whose slot was grown as a placeholder, and its undo
    /// of an uncommitted delete. The heap slot is refilled (charged like
    /// a page write) and every access structure re-learns the row.
    pub fn reinstate_row(
        &mut self,
        io: &dyn PageAccessor,
        rid: Rid,
        row: Row,
    ) -> Result<(), StorageError> {
        self.heap.restore_row(io, rid, row.clone())?;
        self.stamps[rid.0 as usize] = (1, LIVE_TS);
        self.clustered.note_append(&row[self.clustered_col], rid);
        for sec in &mut self.secondaries {
            sec.insert(io, &row, rid);
        }
        for cm in &mut self.cms {
            cm.insert(&row, rid, &self.dir);
        }
        Ok(())
    }

    /// Append an all-NULL placeholder slot, keeping the directory and
    /// clustered index length in step. Recovery uses this to grow a
    /// shard's heap up to a logged RID whose intervening rows were
    /// deleted before the crash. Uncharged: the corresponding pages were
    /// written (and priced) before the crash.
    pub fn append_placeholder(&mut self) -> Rid {
        let rid = self.heap.append_tombstone();
        self.stamps.push((0, 0));
        self.dir.note_append(rid);
        self.clustered.note_append(&Value::Null, rid);
        rid
    }

    /// Whether a slot holds a delete tombstone (all-NULL row).
    pub fn is_tombstone(&self, rid: Rid) -> Result<bool, StorageError> {
        Ok(self.heap.peek(rid)?.iter().all(|v| v.is_null()))
    }

    /// Feed heap slots `from..len` (tombstones skipped) into a
    /// not-yet-installed structure set — the catch-up step of an online
    /// design swap: structures were built from a snapshot under a read
    /// lock, and the brief write-locked phase replays the rows appended
    /// meanwhile before [`Table::install_access_structures`].
    pub fn catch_up_structures(
        &self,
        io: &dyn PageAccessor,
        from: u64,
        secondaries: &mut [SecondaryIndex],
        cms: &mut [CorrelationMap],
    ) -> Result<(), StorageError> {
        for raw in from..self.heap.len() {
            let rid = Rid(raw);
            let row = self.heap.peek(rid)?;
            if row.iter().all(|v| v.is_null()) {
                continue;
            }
            let row = row.clone();
            for sec in secondaries.iter_mut() {
                sec.insert(io, &row, rid);
            }
            for cm in cms.iter_mut() {
                cm.insert(&row, rid, &self.dir);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------- MVCC

    /// The `(begin, end)` stamp pair of a slot.
    pub fn stamp_of(&self, rid: Rid) -> (u64, u64) {
        self.stamps[rid.0 as usize]
    }

    /// Overwrite a slot's begin stamp (MVCC insert: the engine stamps
    /// the freshly appended row with its transaction marker or commit
    /// timestamp).
    pub fn set_begin_stamp(&mut self, rid: Rid, begin: u64) {
        self.stamps[rid.0 as usize].0 = begin;
    }

    /// MVCC delete: end the slot's current version by stamping `end`,
    /// charging one write of the row's page (the tuple-header update a
    /// real MVCC heap pays). The row bytes and every access-structure
    /// entry stay in place — older snapshots still need them — until a
    /// vacuum pass reclaims the version. Returns the (still live) row
    /// for the WAL before-image.
    pub fn end_version(
        &mut self,
        io: &dyn PageAccessor,
        rid: Rid,
        end: u64,
    ) -> Result<Row, StorageError> {
        let row = self.heap.peek(rid)?.clone();
        self.stamps[rid.0 as usize].1 = end;
        io.write(self.heap.file_id(), self.heap.page_of(rid));
        Ok(row)
    }

    /// Undo an MVCC delete that never committed: restore the end stamp
    /// to "live". (Only used by tests / abort paths; crash recovery
    /// rebuilds a single-version heap instead.)
    pub fn clear_end_stamp(&mut self, rid: Rid) {
        self.stamps[rid.0 as usize].1 = LIVE_TS;
    }

    /// Rewrite every resolvable pending stamp to its plain commit
    /// timestamp (vacuum's first pass; `resolve` is the commit table).
    /// Returns how many stamps were rewritten. Must run under the
    /// shard's write lock so no reader observes a half-rewritten pair.
    pub fn resolve_stamps(&mut self, resolve: impl Fn(u64) -> Option<u64>) -> u64 {
        let mut rewritten = 0;
        for stamp in self.stamps.iter_mut() {
            if is_pending(stamp.0) {
                if let Some(ts) = resolve(stamp.0) {
                    stamp.0 = ts;
                    rewritten += 1;
                }
            }
            if is_pending(stamp.1) {
                if let Some(ts) = resolve(stamp.1) {
                    stamp.1 = ts;
                    rewritten += 1;
                }
            }
        }
        rewritten
    }

    /// Slots whose version ended at or before `oldest_live` (plain
    /// stamps only — pending ends are unresolved and must survive) and
    /// that still hold row bytes: the versions vacuum may physically
    /// reclaim via [`Table::delete_row`].
    pub fn reclaimable(&self, oldest_live: u64) -> Vec<Rid> {
        self.stamps
            .iter()
            .enumerate()
            .filter(|(_, (_, end))| !is_pending(*end) && *end != LIVE_TS && *end <= oldest_live)
            .map(|(i, _)| Rid(i as u64))
            .filter(|&rid| !self.is_tombstone(rid).unwrap_or(true))
            .collect()
    }

    /// Count of versions that have ended but not yet been reclaimed —
    /// the "dead tail" a vacuum pass would inspect (chain-length signal
    /// for the GC counters).
    pub fn dead_versions(&self) -> u64 {
        self.stamps
            .iter()
            .enumerate()
            .filter(|(i, (_, end))| {
                *end != LIVE_TS
                    && !self.is_tombstone(Rid(*i as u64)).unwrap_or(true)
            })
            .count() as u64
    }
}

// A table partition must be shareable with executor worker threads: a
// fan-out engine hands `&Table` (under its partition lock) to the worker
// running that shard's leg.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Table>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::{AttrConstraint, CmAttr};
    use cm_storage::{BufferPool, Column, ValueType, Wal};

    fn demo_table(disk: &DiskSim) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
            Column::new("name", ValueType::Str),
        ]));
        let rows: Vec<Row> = (0..1000i64)
            .map(|i| {
                let cat = i % 50;
                vec![
                    Value::Int(cat),
                    Value::Int(cat * 1000 + (i * 13) % 500),
                    Value::str(format!("item{i}")),
                ]
            })
            .collect();
        Table::build(disk, schema, rows, 20, 0, 40).unwrap()
    }

    #[test]
    fn build_wires_up_all_structures() {
        let disk = DiskSim::with_defaults();
        let t = demo_table(&disk);
        assert_eq!(t.heap().len(), 1000);
        assert_eq!(t.clustered().distinct_values(), 50);
        assert!(t.dir().num_buckets() >= 20);
        assert_eq!(t.clustered_col(), 0);
    }

    #[test]
    fn analyze_computes_correlations() {
        let disk = DiskSim::with_defaults();
        let mut t = demo_table(&disk);
        t.analyze_cols(&[1]);
        let s = t.col_stats(1).unwrap();
        // price determines catid exactly in this data (price/1000 = cat).
        assert!(s.corr.c_per_u < 1.01, "c_per_u {}", s.corr.c_per_u);
        assert!(s.min.is_some() && s.max.is_some());
        assert!(t.col_stats(2).is_none(), "unanalyzed column has no stats");
    }

    #[test]
    fn add_structures_and_query_them() {
        let disk = DiskSim::with_defaults();
        let mut t = demo_table(&disk);
        let sec = t.add_secondary(&disk, "price_idx", vec![1]);
        let cm = t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 8)]));
        assert_eq!(t.secondary(sec).entries(), 1000);
        assert!(t.cm(cm).num_keys() > 0);
        assert!(t.cm(cm).size_bytes() < t.secondary(sec).size_bytes());
    }

    #[test]
    fn insert_maintains_everything() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 64);
        let mut t = demo_table(&disk);
        t.add_secondary(&disk, "price_idx", vec![1]);
        t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 8)]));
        let mut wal = Wal::new(disk.clone());
        let len_before = t.heap().len();
        let pairs_before = t.cm(0).num_pairs();
        let rid = t
            .insert_row(
                &pool,
                Some(&mut wal),
                vec![Value::Int(49), Value::Int(999_999), Value::str("new")],
            )
            .unwrap();
        assert_eq!(rid.0, len_before);
        assert_eq!(t.heap().len(), len_before + 1);
        assert_eq!(t.secondary(0).entries(), 1001);
        assert!(t.cm(0).num_pairs() > pairs_before, "new price bucket pair recorded");
        assert!(
            wal.records() >= 2,
            "index + CM records logged (the heap row is the caller's typed record)"
        );
        // The new tuple is findable through the CM.
        let buckets = t.cm(0).lookup(&[AttrConstraint::Eq(Value::Int(999_999))]);
        assert!(buckets.contains(&t.dir().bucket_of(rid)));
    }

    #[test]
    fn delete_retracts_everything() {
        let disk = DiskSim::with_defaults();
        let mut t = demo_table(&disk);
        t.add_secondary(&disk, "price_idx", vec![1]);
        t.add_cm("price_cm", CmSpec::new(vec![CmAttr::raw(1)]));
        let rid = Rid(123);
        let row = t.heap().peek(rid).unwrap().clone();
        let deleted = t.delete_row(disk.as_ref(), None, rid).unwrap();
        assert_eq!(deleted, row);
        assert_eq!(t.secondary(0).entries(), 999);
        // The exact (price, bucket) pair is gone if it was unique.
        let again = t.delete_row(disk.as_ref(), None, rid).unwrap();
        assert!(again[0].is_null(), "double delete sees the tombstone");
    }

    #[test]
    fn insert_into_more_indexes_costs_more_io() {
        let disk_a = DiskSim::with_defaults();
        let mut plain = demo_table(&disk_a);
        let disk_b = DiskSim::with_defaults();
        let mut indexed = demo_table(&disk_b);
        for i in 0..5 {
            indexed.add_secondary(&disk_b, format!("idx{i}"), vec![1]);
        }
        let row = vec![Value::Int(1), Value::Int(1), Value::str("x")];
        disk_a.reset();
        disk_b.reset();
        plain.insert_row(disk_a.as_ref(), None, row.clone()).unwrap();
        indexed.insert_row(disk_b.as_ref(), None, row).unwrap();
        assert!(
            disk_b.stats().elapsed_ms > 4.0 * disk_a.stats().elapsed_ms,
            "5 B+Trees make inserts much more expensive: {} vs {}",
            disk_b.stats().elapsed_ms,
            disk_a.stats().elapsed_ms
        );
    }

    #[test]
    fn cm_maintenance_is_io_free() {
        let disk = DiskSim::with_defaults();
        let mut t = demo_table(&disk);
        for i in 0..5 {
            t.add_cm(format!("cm{i}"), CmSpec::new(vec![CmAttr::pow2(1, 6)]));
        }
        disk.reset();
        t.insert_row(disk.as_ref(), None, vec![Value::Int(1), Value::Int(1), Value::str("x")])
            .unwrap();
        // Only the heap tail write is charged; CM updates are memory-only.
        assert_eq!(disk.stats().page_writes, 1);
        assert_eq!(disk.stats().seeks + disk.stats().seq_reads, 0);
    }

    #[test]
    fn clear_access_structures() {
        let disk = DiskSim::with_defaults();
        let mut t = demo_table(&disk);
        t.add_secondary(&disk, "i", vec![1]);
        t.add_cm("c", CmSpec::single_raw(1));
        t.clear_access_structures();
        assert!(t.secondaries().is_empty());
        assert!(t.cms().is_empty());
    }

    #[test]
    fn reinstate_row_relearns_structures() {
        let disk = DiskSim::with_defaults();
        let mut t = demo_table(&disk);
        t.add_secondary(&disk, "price_idx", vec![1]);
        t.add_cm("price_cm", CmSpec::single_raw(1));
        let rid = Rid(123);
        let row = t.heap().peek(rid).unwrap().clone();
        t.delete_row(disk.as_ref(), None, rid).unwrap();
        assert!(t.is_tombstone(rid).unwrap());
        t.reinstate_row(disk.as_ref(), rid, row.clone()).unwrap();
        assert!(!t.is_tombstone(rid).unwrap());
        assert_eq!(t.heap().peek(rid).unwrap(), &row);
        assert_eq!(t.secondary(0).entries(), 1000, "entry restored");
    }

    #[test]
    fn placeholder_appends_grow_all_lengths() {
        let disk = DiskSim::with_defaults();
        let mut t = demo_table(&disk);
        let len = t.heap().len();
        let before = disk.stats();
        let rid = t.append_placeholder();
        assert_eq!(rid, Rid(len));
        assert_eq!(t.heap().len(), len + 1);
        assert_eq!(t.dir().heap_len(), len + 1);
        assert!(t.is_tombstone(rid).unwrap());
        assert_eq!(disk.stats(), before, "placeholders are uncharged");
    }

    #[test]
    fn restore_rebuilds_from_heap_image() {
        let disk = DiskSim::with_defaults();
        let mut live = demo_table(&disk);
        // Mutate: delete two rows, append two out-of-order rows.
        live.delete_row(disk.as_ref(), None, Rid(10)).unwrap();
        live.delete_row(disk.as_ref(), None, Rid(500)).unwrap();
        live.insert_row(
            disk.as_ref(),
            None,
            vec![Value::Int(7), Value::Int(7777), Value::str("tail1")],
        )
        .unwrap();
        live.insert_row(
            disk.as_ref(),
            None,
            vec![Value::Int(3), Value::Int(3333), Value::str("tail2")],
        )
        .unwrap();
        let rows: Vec<Row> = live.heap().iter().map(|(_, r)| r.clone()).collect();
        let disk2 = DiskSim::with_defaults();
        let restored = Table::restore(
            &disk2,
            live.heap().schema().clone(),
            rows,
            20,
            0,
            40,
            1000,
        )
        .unwrap();
        assert_eq!(restored.heap().len(), live.heap().len());
        // The restored clustered index is query-equivalent to the live
        // (incrementally maintained) one: it may shift run boundaries
        // across tombstoned slots, but every live row stays inside its
        // value's run, and any slots covered beyond the live range are
        // tombstones (matched by no predicate).
        for (_, probe_row) in live.heap().iter() {
            if probe_row.iter().all(|v| v.is_null()) {
                continue;
            }
            let v = &probe_row[0];
            let (llo, lhi) = live.clustered().rid_range_uncharged(v, v).unwrap();
            let (rlo, rhi) = restored
                .clustered()
                .rid_range_uncharged(v, v)
                .unwrap_or_else(|| panic!("value {v:?} still indexed"));
            for rid in llo..lhi {
                let row = live.heap().peek(Rid(rid)).unwrap();
                if &row[0] == v {
                    assert!((rlo..rhi).contains(&rid), "live row {rid} of {v:?} covered");
                }
            }
            for rid in (rlo..rhi).filter(|r| !(llo..lhi).contains(r)) {
                assert!(
                    restored.is_tombstone(Rid(rid)).unwrap(),
                    "extra coverage at {rid} is a tombstone"
                );
            }
        }
        assert_eq!(restored.dir().heap_len(), live.dir().heap_len());
        assert_eq!(restored.dir().num_buckets(), live.dir().num_buckets());
    }

    #[test]
    fn distinct_in_range_exact() {
        let disk = DiskSim::with_defaults();
        let t = demo_table(&disk);
        let d = t.distinct_in_range(0, &Value::Int(10), &Value::Int(19));
        assert_eq!(d, 10);
    }
}
