//! The four physical access paths.
//!
//! Each executor charges page accesses through an [`ExecContext`] and
//! reports the simulated I/O it caused. "Runtime" in every reproduced
//! figure is the simulated elapsed milliseconds of the access pattern,
//! priced with the paper's Table 1 constants by
//! [`cm_storage::DiskSim`].

use crate::error::QueryError;
use crate::predicate::{PredOp, Query};
use crate::table::Table;
use cm_core::AttrConstraint;
use cm_index::IndexKey;
use cm_storage::{DiskSim, IoStats, PageAccessor, ReadCache, Rid, Snapshot, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Where an execution charges I/O, reads its clock, and (under MVCC)
/// which snapshot decides row visibility.
pub struct ExecContext<'a> {
    /// The simulated disk (source of truth for elapsed time).
    pub disk: &'a Arc<DiskSim>,
    /// Charging target: the disk itself (cold runs, as in the paper's
    /// flushed-cache experiments) or a buffer pool (warm / mixed
    /// workloads).
    pub io: &'a dyn PageAccessor,
    /// MVCC read snapshot. `None` (the non-MVCC engine mode) reads
    /// everything the heap holds — the pre-MVCC behaviour, where
    /// exclusion is the shard lock's job.
    pub snap: Option<&'a Snapshot>,
}

impl<'a> ExecContext<'a> {
    /// Charge straight to the disk (cold cache).
    pub fn cold(disk: &'a Arc<DiskSim>) -> Self {
        ExecContext { disk, io: disk, snap: None }
    }

    /// Charge through an arbitrary accessor (e.g. a buffer pool).
    pub fn through(disk: &'a Arc<DiskSim>, io: &'a dyn PageAccessor) -> Self {
        ExecContext { disk, io, snap: None }
    }

    /// Read at an MVCC snapshot: rows whose version is not visible to
    /// `snap` are filtered at visit time in every access path.
    pub fn at_snapshot(mut self, snap: &'a Snapshot) -> Self {
        self.snap = Some(snap);
        self
    }

    /// Is the version in `table`'s slot `rid` visible to this context?
    #[inline]
    pub fn visible(&self, table: &Table, rid: Rid) -> bool {
        match self.snap {
            None => true,
            Some(s) => {
                let (begin, end) = table.stamp_of(rid);
                s.sees(begin, end)
            }
        }
    }
}

/// Outcome of one query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Rows satisfying the query.
    pub matched: u64,
    /// Rows examined (matched + false positives the path had to filter).
    pub examined: u64,
    /// I/O charged to the simulated disk during the run.
    pub io: IoStats,
}

impl RunResult {
    /// Simulated elapsed milliseconds.
    pub fn ms(&self) -> f64 {
        self.io.elapsed_ms
    }
}

impl Table {
    /// Access path 1: full sequential scan (§3).
    pub fn exec_full_scan(&self, ctx: &ExecContext<'_>, q: &Query) -> RunResult {
        self.exec_full_scan_visit(ctx, q, |_| {})
    }

    /// Full scan with a visitor over matching rows (for aggregates).
    pub fn exec_full_scan_visit(
        &self,
        ctx: &ExecContext<'_>,
        q: &Query,
        mut on_match: impl FnMut(&[Value]),
    ) -> RunResult {
        let before = ctx.disk.stats();
        let mut matched = 0u64;
        let mut examined = 0u64;
        let pages = self.heap().num_pages();
        if pages > 0 {
            // The whole heap is one vectored run: a single seek plus
            // sequential pages, atomic against concurrent sessions.
            let tups = self.heap().tups_per_page() as u64;
            self.heap()
                .read_run_visit(ctx.io, 0, pages - 1, |page, rows| {
                    let base = page * tups;
                    for (i, row) in rows.iter().enumerate() {
                        examined += 1;
                        if ctx.visible(self, Rid(base + i as u64)) && q.matches(row) {
                            matched += 1;
                            on_match(row);
                        }
                    }
                })
                .expect("full heap run in range");
        }
        RunResult { matched, examined, io: ctx.disk.stats().since(&before) }
    }

    /// Gather the RIDs a secondary index yields for the query's predicate
    /// on its key (charging index I/O). Composite indexes use an
    /// all-equality composite probe when possible, otherwise fall back to
    /// a range over the first (prefix) column — exactly the prefix
    /// limitation of composite B+Trees that Experiment 5 exposes.
    ///
    /// Errors (instead of panicking) when the query has no predicate on
    /// the index's first key column — an unusable forced path.
    fn secondary_rids(
        &self,
        io: &dyn PageAccessor,
        sec_id: usize,
        q: &Query,
    ) -> Result<Vec<Rid>, QueryError> {
        let sec = self.secondary(sec_id);
        let cols = sec.cols();
        // All-equality composite probe.
        let eq_vals: Option<Vec<Value>> = cols
            .iter()
            .map(|&c| match q.pred_on(c).map(|p| &p.op) {
                Some(PredOp::Eq(v)) => Some(v.clone()),
                _ => None,
            })
            .collect();
        if let Some(vals) = eq_vals {
            return Ok(sec.probe(io, &IndexKey::composite(vals)).to_vec());
        }
        // Otherwise only the first (prefix) key column can narrow the
        // scan — the composite-index limitation Experiment 5 exposes.
        let first = cols[0];
        let rids = match q.pred_on(first).map(|p| &p.op) {
            Some(PredOp::Eq(v)) => sec.probe_first_col_range(io, v, v),
            Some(PredOp::In(vs)) => {
                // Duplicate IN values probe the same postings; dedup the
                // RIDs (preserving probe order, so the pipelined path's
                // access pattern is otherwise unchanged) rather than
                // fetching the same heap rows twice.
                let mut seen: HashSet<Rid> = HashSet::new();
                let mut rids = Vec::new();
                for v in vs {
                    for rid in sec.probe_first_col_range(io, v, v) {
                        if seen.insert(rid) {
                            rids.push(rid);
                        }
                    }
                }
                rids
            }
            Some(PredOp::Between(lo, hi)) => sec.probe_first_col_range(io, lo, hi),
            None => {
                return Err(QueryError::NoIndexPredicate {
                    index: sec.name().to_string(),
                    col: first,
                })
            }
        };
        Ok(rids)
    }

    /// Access path 2: pipelined secondary index scan (§3.1): every
    /// posting triggers an uncoordinated heap fetch.
    pub fn exec_secondary_pipelined(
        &self,
        ctx: &ExecContext<'_>,
        sec_id: usize,
        q: &Query,
    ) -> Result<RunResult, QueryError> {
        self.exec_secondary_pipelined_visit(ctx, sec_id, q, |_| {})
    }

    /// Pipelined scan with a visitor over matching rows.
    pub fn exec_secondary_pipelined_visit(
        &self,
        ctx: &ExecContext<'_>,
        sec_id: usize,
        q: &Query,
        mut on_match: impl FnMut(&[Value]),
    ) -> Result<RunResult, QueryError> {
        let before = ctx.disk.stats();
        // Pipelined probes are deliberately uncached: the paper's model
        // charges every lookup a full descent (§3.1).
        let rids = self.secondary_rids(ctx.io, sec_id, q)?;
        let mut matched = 0u64;
        let mut examined = 0u64;
        for rid in rids {
            let row = self.heap().fetch(ctx.io, rid).expect("index rid valid");
            examined += 1;
            if ctx.visible(self, rid) && q.matches(row) {
                matched += 1;
                on_match(row);
            }
        }
        Ok(RunResult { matched, examined, io: ctx.disk.stats().since(&before) })
    }

    /// Access path 3: sorted (bitmap) secondary index scan (§3.2):
    /// collect RIDs, sort and deduplicate their pages, then sweep the
    /// heap in page order so co-located results cost sequential reads.
    pub fn exec_secondary_sorted(
        &self,
        ctx: &ExecContext<'_>,
        sec_id: usize,
        q: &Query,
    ) -> Result<RunResult, QueryError> {
        self.exec_secondary_sorted_visit(ctx, sec_id, q, |_| {})
    }

    /// Sorted scan with a visitor over matching rows.
    pub fn exec_secondary_sorted_visit(
        &self,
        ctx: &ExecContext<'_>,
        sec_id: usize,
        q: &Query,
        mut on_match: impl FnMut(&[Value]),
    ) -> Result<RunResult, QueryError> {
        let before = ctx.disk.stats();
        // Index pages (notably upper levels) are cached within the query,
        // as PostgreSQL's shared buffers would; the heap sweep is not.
        let index_io = ReadCache::new(ctx.io);
        let rids = self.secondary_rids(&index_io, sec_id, q)?;
        let mut pages: Vec<u64> = rids.iter().map(|&r| self.heap().page_of(r)).collect();
        pages.sort_unstable();
        pages.dedup();
        let mut matched = 0u64;
        let mut examined = 0u64;
        // Coalesce the sorted page list into maximal contiguous runs and
        // sweep each as one vectored read — co-located results price one
        // seek per run even under concurrent sessions.
        let tups = self.heap().tups_per_page() as u64;
        cm_storage::for_each_page_run(&pages, |lo, hi| {
            self.heap()
                .read_run_visit(ctx.io, lo, hi, |page, rows| {
                    let base = page * tups;
                    for (i, row) in rows.iter().enumerate() {
                        examined += 1;
                        if ctx.visible(self, Rid(base + i as u64)) && q.matches(row) {
                            matched += 1;
                            on_match(row);
                        }
                    }
                })
                .expect("rid pages in range");
        });
        Ok(RunResult { matched, examined, io: ctx.disk.stats().since(&before) })
    }

    /// Access path 4: CM-guided scan (§5.2, Figure 4).
    ///
    /// 1. `cm_lookup` on the memory-resident CM → candidate clustered
    ///    buckets (no I/O — the CM fits in RAM, the paper's core claim).
    /// 2. One clustered-index descent per bucket (the
    ///    `seek · btree_height` term of the cost model; the paper's
    ///    prototype reaches the same pattern by rewriting the query with
    ///    an `IN` list over the clustered attribute).
    /// 3. A page-ordered sweep of the merged bucket ranges, re-filtering
    ///    every row against the original predicate — bucketing introduces
    ///    false positives, never false negatives.
    pub fn exec_cm_scan(&self, ctx: &ExecContext<'_>, cm_id: usize, q: &Query) -> RunResult {
        self.exec_cm_scan_visit(ctx, cm_id, q, |_| {})
    }

    /// CM-guided scan with a visitor over matching rows.
    pub fn exec_cm_scan_visit(
        &self,
        ctx: &ExecContext<'_>,
        cm_id: usize,
        q: &Query,
        mut on_match: impl FnMut(&[Value]),
    ) -> RunResult {
        let before = ctx.disk.stats();
        let cm = self.cm(cm_id);
        let constraints = cm_constraints(cm.spec(), q);
        let buckets = cm.lookup(&constraints);

        // Clustered-index descent per returned bucket; upper index
        // levels are cached within the query (adjacent buckets share
        // leaves, so contiguous lookups charge little beyond the first).
        let index_io = ReadCache::new(ctx.io);
        for &b in &buckets {
            let (start, _) = self.dir().rid_range(b);
            let key = &self.heap().peek(Rid(start)).expect("bucket start valid")
                [self.clustered_col()];
            self.clustered().charge_probe(&index_io, key);
        }

        // Merge bucket page ranges (adjacent buckets share boundary pages).
        let merged =
            merge_page_ranges(buckets.iter().map(|&b| self.dir().page_range(b)).collect());

        let mut matched = 0u64;
        let mut examined = 0u64;
        // Each merged bucket range is already a maximal contiguous run:
        // sweep it with one vectored read, so the CM's central promise —
        // a few sequential clustered ranges — holds its sequential
        // pricing even when concurrent sessions share the shard disk.
        let tups = self.heap().tups_per_page() as u64;
        for (lo, hi) in merged {
            self.heap()
                .read_run_visit(ctx.io, lo, hi, |page, rows| {
                    let base = page * tups;
                    for (i, row) in rows.iter().enumerate() {
                        examined += 1;
                        if ctx.visible(self, Rid(base + i as u64)) && q.matches(row) {
                            matched += 1;
                            on_match(row);
                        }
                    }
                })
                .expect("bucket pages in range");
        }
        RunResult { matched, examined, io: ctx.disk.stats().since(&before) }
    }
}

/// Merge inclusive page ranges into maximal contiguous runs: sorted,
/// with ranges that touch or overlap (`lo <= prev_hi + 1`) coalesced.
/// This is *the* unit of CM-guided I/O — every executor sweep issues
/// one vectored read per merged run, and the cost model prices a
/// clamped probe by run count, so both sides must merge identically.
pub fn merge_page_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match merged.last_mut() {
            Some((_, mhi)) if lo <= *mhi + 1 => *mhi = (*mhi).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// Translate the query's predicates into per-attribute CM constraints
/// (attributes without a predicate become `Any`; predicates on columns
/// outside the CM key are applied by the row re-filter).
pub fn cm_constraints(spec: &cm_core::CmSpec, q: &Query) -> Vec<AttrConstraint> {
    spec.attrs()
        .iter()
        .map(|attr| match q.pred_on(attr.col).map(|p| &p.op) {
            Some(PredOp::Eq(v)) => AttrConstraint::Eq(v.clone()),
            Some(PredOp::In(vs)) => AttrConstraint::In(vs.clone()),
            Some(PredOp::Between(lo, hi)) => AttrConstraint::Range(lo.clone(), hi.clone()),
            None => AttrConstraint::Any,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;
    use cm_core::{CmAttr, CmSpec};
    use cm_storage::{Column, Schema, ValueType};

    /// catid-clustered table where price is strongly correlated with
    /// catid and `tag` is uncorrelated.
    fn demo(disk: &Arc<DiskSim>) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
            Column::new("tag", ValueType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..40_000i64)
            .map(|i| {
                let cat = i % 100;
                vec![
                    Value::Int(cat),
                    Value::Int(cat * 100 + (i * 17) % 100),
                    Value::Int((i * 31) % 97),
                ]
            })
            .collect();
        // 100 cats × 400 tuples; one bucket per cat (20 pages each).
        Table::build(disk, schema, rows, 20, 0, 400).unwrap()
    }

    fn count_by_scan(t: &Table, disk: &Arc<DiskSim>, q: &Query) -> u64 {
        let ctx = ExecContext::cold(disk);
        t.exec_full_scan(&ctx, q).matched
    }

    #[test]
    fn all_paths_agree_on_matched_count() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price", vec![1]);
        let cm = t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 5)]));
        let queries = [
            Query::single(Pred::eq(1, 4217i64)),
            Query::single(Pred::between(1, 4200i64, 4400i64)),
            Query::single(Pred::is_in(
                1,
                vec![Value::Int(100), Value::Int(4217), Value::Int(9999)],
            )),
            Query::new(vec![Pred::between(1, 0i64, 500i64), Pred::eq(2, 5i64)]),
        ];
        for q in &queries {
            let truth = count_by_scan(&t, &disk, q);
            let ctx = ExecContext::cold(&disk);
            assert_eq!(t.exec_secondary_sorted(&ctx, sec, q).unwrap().matched, truth, "{q:?}");
            assert_eq!(t.exec_secondary_pipelined(&ctx, sec, q).unwrap().matched, truth, "{q:?}");
            assert_eq!(t.exec_cm_scan(&ctx, cm, q).matched, truth, "{q:?}");
        }
    }

    #[test]
    fn full_scan_is_sequential() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let ctx = ExecContext::cold(&disk);
        let r = t.exec_full_scan(&ctx, &Query::single(Pred::eq(1, 1i64)));
        assert_eq!(r.io.seeks, 1, "one initial seek");
        assert_eq!(r.io.seq_reads, t.heap().num_pages() - 1);
        assert_eq!(r.examined, t.heap().len());
    }

    #[test]
    fn sorted_scan_beats_pipelined_on_correlated_range() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price", vec![1]);
        let q = Query::single(Pred::between(1, 2000i64, 2500i64));
        let ctx = ExecContext::cold(&disk);
        let sorted = t.exec_secondary_sorted(&ctx, sec, &q).unwrap();
        let pipelined = t.exec_secondary_pipelined(&ctx, sec, &q).unwrap();
        assert!(sorted.ms() < pipelined.ms() / 2.0, "{} vs {}", sorted.ms(), pipelined.ms());
    }

    #[test]
    fn cm_scan_examines_superset_but_matches_exactly() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let cm = t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 8)]));
        let q = Query::single(Pred::between(1, 4200i64, 4300i64));
        let ctx = ExecContext::cold(&disk);
        let r = t.exec_cm_scan(&ctx, cm, &q);
        let truth = count_by_scan(&t, &disk, &q);
        assert_eq!(r.matched, truth);
        assert!(r.examined >= r.matched, "bucketing adds false positives");
    }

    #[test]
    fn cm_on_correlated_attr_beats_full_scan() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let cm = t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 5)]));
        let q = Query::single(Pred::between(1, 4200i64, 4300i64));
        let ctx = ExecContext::cold(&disk);
        let cm_run = t.exec_cm_scan(&ctx, cm, &q);
        let scan = t.exec_full_scan(&ctx, &q);
        assert!(
            cm_run.ms() < scan.ms() / 3.0,
            "CM {} ms vs scan {} ms",
            cm_run.ms(),
            scan.ms()
        );
    }

    #[test]
    fn cm_on_uncorrelated_attr_approaches_scan() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let cm = t.add_cm("tag_cm", CmSpec::single_raw(2));
        // tag is uncorrelated with catid: one value appears in most
        // buckets, so the CM sweeps most of the table.
        let q = Query::single(Pred::eq(2, 5i64));
        let ctx = ExecContext::cold(&disk);
        let cm_run = t.exec_cm_scan(&ctx, cm, &q);
        let scan = t.exec_full_scan(&ctx, &q);
        assert!(
            cm_run.io.pages() as f64 > 0.5 * scan.io.pages() as f64,
            "uncorrelated CM touches most pages ({} vs {})",
            cm_run.io.pages(),
            scan.io.pages()
        );
    }

    #[test]
    fn composite_index_uses_prefix_only() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price_tag", vec![1, 2]);
        // Range on price (prefix) + range on tag: the index can narrow by
        // price only; tag filters afterwards.
        let q = Query::new(vec![
            Pred::between(1, 2000i64, 2200i64),
            Pred::between(2, 0i64, 10i64),
        ]);
        let ctx = ExecContext::cold(&disk);
        let r = t.exec_secondary_sorted(&ctx, sec, &q).unwrap();
        assert_eq!(r.matched, count_by_scan(&t, &disk, &q));
    }

    #[test]
    fn composite_all_equality_probe() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "cat_price", vec![0, 1]);
        let q = Query::new(vec![Pred::eq(0, 42i64), Pred::eq(1, 4217i64)]);
        let ctx = ExecContext::cold(&disk);
        let r = t.exec_secondary_sorted(&ctx, sec, &q).unwrap();
        assert_eq!(r.matched, count_by_scan(&t, &disk, &q));
    }

    #[test]
    fn visitor_receives_matching_rows() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let cm = t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 5)]));
        let q = Query::single(Pred::between(1, 100i64, 199i64));
        let ctx = ExecContext::cold(&disk);
        let mut sum = 0i64;
        let mut n = 0u64;
        let r = t.exec_cm_scan_visit(&ctx, cm, &q, |row| {
            sum += row[1].as_int().unwrap();
            n += 1;
        });
        assert_eq!(n, r.matched);
        assert!(sum >= 100 * n as i64 && sum <= 199 * n as i64);
    }

    #[test]
    fn forced_secondary_without_prefix_predicate_errors() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price_tag", vec![1, 2]);
        // Predicate only on `tag` (col 2): the (price, tag) index cannot
        // narrow at all — a clean error, not a panic.
        let q = Query::single(Pred::eq(2, 5i64));
        let ctx = ExecContext::cold(&disk);
        let err = t.exec_secondary_sorted(&ctx, sec, &q).unwrap_err();
        assert_eq!(
            err,
            QueryError::NoIndexPredicate { index: "price_tag".into(), col: 1 }
        );
        assert!(t.exec_secondary_pipelined(&ctx, sec, &q).is_err());
        assert!(err.to_string().contains("price_tag"), "{err}");
    }

    #[test]
    fn in_list_probes_dedup_rids() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price", vec![1]);
        let ctx = ExecContext::cold(&disk);
        let unique = Query::single(Pred::is_in(1, vec![Value::Int(4217), Value::Int(100)]));
        let dup = Query::single(Pred::is_in(
            1,
            vec![Value::Int(4217), Value::Int(100), Value::Int(4217), Value::Int(4217)],
        ));
        let a = t.exec_secondary_pipelined(&ctx, sec, &unique).unwrap();
        let b = t.exec_secondary_pipelined(&ctx, sec, &dup).unwrap();
        assert_eq!(a.matched, b.matched);
        assert_eq!(
            a.examined, b.examined,
            "duplicate IN values must not re-fetch the same heap rows"
        );
    }

    #[test]
    fn sorted_scan_coalesces_contiguous_pages_into_runs() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price", vec![1]);
        // A contiguous price band on the cat-correlated column maps to a
        // handful of contiguous heap page runs.
        let q = Query::single(Pred::between(1, 2000i64, 2499i64));
        let ctx = ExecContext::cold(&disk);
        let r = t.exec_secondary_sorted(&ctx, sec, &q).unwrap();
        let heap_pages = (r.io.seeks + r.io.seq_reads) as f64;
        assert!(
            (r.io.seeks as f64) < 0.3 * heap_pages,
            "coalesced runs: {} seeks over {} read pages",
            r.io.seeks,
            heap_pages
        );
        assert_eq!(r.matched, count_by_scan(&t, &disk, &q));
    }

    #[test]
    fn snapshot_filters_versions_in_every_path() {
        use cm_storage::{pending_stamp, MvccState};
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price", vec![1]);
        let cm = t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 5)]));
        let q = Query::single(Pred::between(1, 4200i64, 4300i64));
        let truth = t.exec_full_scan(&ExecContext::cold(&disk), &q).matched;
        assert!(truth > 0);
        let victim = t
            .heap()
            .iter()
            .find(|(_, r)| q.matches(r))
            .map(|(rid, _)| rid)
            .unwrap();

        let mv = std::sync::Arc::new(MvccState::new());
        let old_snap = mv.begin();
        // Delete one matching row at ts 2 and add a matching row that a
        // still-pending transaction wrote.
        let ts = mv.next_ts();
        t.end_version(disk.as_ref(), victim, ts).unwrap();
        let pending = t
            .insert_row(disk.as_ref(), None, vec![Value::Int(42), Value::Int(4250), Value::Int(0)])
            .unwrap();
        t.set_begin_stamp(pending, pending_stamp(9));
        let new_snap = mv.begin();

        let counts = |snap: &cm_storage::Snapshot| {
            let ctx = ExecContext::cold(&disk).at_snapshot(snap);
            [
                t.exec_full_scan(&ctx, &q).matched,
                t.exec_secondary_sorted(&ctx, sec, &q).unwrap().matched,
                t.exec_secondary_pipelined(&ctx, sec, &q).unwrap().matched,
                t.exec_cm_scan(&ctx, cm, &q).matched,
            ]
        };
        assert_eq!(counts(&old_snap), [truth; 4], "old snapshot: delete + pending invisible");
        assert_eq!(counts(&new_snap), [truth - 1; 4], "new snapshot: delete visible");
        mv.commit_txn(9);
        let after_commit = mv.begin();
        assert_eq!(counts(&after_commit), [truth; 4], "commit publishes the pending row");
        assert_eq!(counts(&old_snap), [truth; 4], "old snapshot unchanged by the commit");
        // No snapshot: the pre-MVCC reader sees every heap row, pending
        // or ended (lock-based engines rely on exclusion instead).
        let ctx = ExecContext::cold(&disk);
        assert_eq!(t.exec_full_scan(&ctx, &q).matched, truth + 1);
    }

    #[test]
    fn cm_constraint_translation() {
        let spec = CmSpec::new(vec![CmAttr::raw(1), CmAttr::raw(2)]);
        let q = Query::new(vec![Pred::eq(1, 5i64)]);
        let cs = cm_constraints(&spec, &q);
        assert_eq!(cs[0], AttrConstraint::Eq(Value::Int(5)));
        assert_eq!(cs[1], AttrConstraint::Any);
    }
}
