//! Conjunctive predicates.
//!
//! The paper's workloads are conjunctions of per-column restrictions:
//! equality (`mode = 1`), IN-lists (`shipdate IN (...)` — the Figure 3
//! query), and ranges (`Price BETWEEN 1000 AND 1100`, `ra BETWEEN ...`).

use cm_storage::Value;

/// A restriction on a single column.
#[derive(Debug, Clone, PartialEq)]
pub enum PredOp {
    /// `col = v`
    Eq(Value),
    /// `col IN (v1, ..., vk)`
    In(Vec<Value>),
    /// `col BETWEEN lo AND hi` (inclusive).
    Between(Value, Value),
}

/// A predicate on one column.
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    /// Column position in the table schema.
    pub col: usize,
    /// The restriction.
    pub op: PredOp,
}

impl Pred {
    /// `col = v`
    pub fn eq(col: usize, v: impl Into<Value>) -> Self {
        Pred { col, op: PredOp::Eq(v.into()) }
    }

    /// `col IN (vs)`
    pub fn is_in(col: usize, vs: Vec<Value>) -> Self {
        Pred { col, op: PredOp::In(vs) }
    }

    /// `col BETWEEN lo AND hi`
    pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Pred { col, op: PredOp::Between(lo.into(), hi.into()) }
    }

    /// Does a row satisfy this predicate?
    pub fn matches(&self, row: &[Value]) -> bool {
        let v = &row[self.col];
        match &self.op {
            PredOp::Eq(x) => v == x,
            PredOp::In(xs) => xs.contains(v),
            PredOp::Between(lo, hi) => v >= lo && v <= hi,
        }
    }

    /// Number of distinct point lookups this predicate implies for an
    /// index (`n_lookups` in the cost model); `None` for ranges, whose
    /// lookup count depends on column cardinality.
    pub fn point_lookups(&self) -> Option<usize> {
        match &self.op {
            PredOp::Eq(_) => Some(1),
            PredOp::In(vs) => Some(vs.len()),
            PredOp::Between(..) => None,
        }
    }
}

/// A conjunction of per-column predicates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The conjuncts; empty means "match everything".
    pub preds: Vec<Pred>,
}

impl Query {
    /// A query from conjuncts.
    pub fn new(preds: Vec<Pred>) -> Self {
        Query { preds }
    }

    /// Single-predicate query.
    pub fn single(pred: Pred) -> Self {
        Query { preds: vec![pred] }
    }

    /// Does a row satisfy every conjunct?
    pub fn matches(&self, row: &[Value]) -> bool {
        self.preds.iter().all(|p| p.matches(row))
    }

    /// The predicate restricting `col`, if any.
    pub fn pred_on(&self, col: usize) -> Option<&Pred> {
        self.preds.iter().find(|p| p.col == col)
    }

    /// Columns restricted by this query (the candidate CM attributes the
    /// advisor extracts from training queries, §6.2.1).
    pub fn predicated_cols(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.preds.iter().map(|p| p.col).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![Value::Int(5), Value::str("boston"), Value::float(2.5)]
    }

    #[test]
    fn eq_matches() {
        assert!(Pred::eq(0, 5i64).matches(&row()));
        assert!(!Pred::eq(0, 6i64).matches(&row()));
        assert!(Pred::eq(1, "boston").matches(&row()));
    }

    #[test]
    fn in_matches() {
        let p = Pred::is_in(1, vec![Value::str("nyc"), Value::str("boston")]);
        assert!(p.matches(&row()));
        let p = Pred::is_in(1, vec![Value::str("nyc")]);
        assert!(!p.matches(&row()));
        assert!(!Pred::is_in(0, vec![]).matches(&row()), "empty IN matches nothing");
    }

    #[test]
    fn between_is_inclusive() {
        assert!(Pred::between(0, 5i64, 9i64).matches(&row()));
        assert!(Pred::between(0, 1i64, 5i64).matches(&row()));
        assert!(!Pred::between(0, 6i64, 9i64).matches(&row()));
        assert!(Pred::between(2, 2.0, 3.0).matches(&row()));
    }

    #[test]
    fn conjunction_semantics() {
        let q = Query::new(vec![Pred::eq(0, 5i64), Pred::eq(1, "boston")]);
        assert!(q.matches(&row()));
        let q = Query::new(vec![Pred::eq(0, 5i64), Pred::eq(1, "nyc")]);
        assert!(!q.matches(&row()));
        assert!(Query::default().matches(&row()), "empty query matches all");
    }

    #[test]
    fn point_lookup_counts() {
        assert_eq!(Pred::eq(0, 1i64).point_lookups(), Some(1));
        assert_eq!(
            Pred::is_in(0, vec![Value::Int(1), Value::Int(2)]).point_lookups(),
            Some(2)
        );
        assert_eq!(Pred::between(0, 1i64, 2i64).point_lookups(), None);
    }

    #[test]
    fn predicated_cols_dedup_sorted() {
        let q = Query::new(vec![
            Pred::eq(3, 1i64),
            Pred::eq(1, "x"),
            Pred::between(3, 0i64, 9i64),
        ]);
        assert_eq!(q.predicated_cols(), vec![1, 3]);
        assert!(q.pred_on(1).is_some());
        assert!(q.pred_on(2).is_none());
    }
}
