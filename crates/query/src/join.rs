//! Multi-table execution: equi-join vocabulary, the probe-side hash
//! table, and the CM-clamped probe scan.
//!
//! A join here is a **partitioned hash join** over two range-partitioned
//! tables: the smaller side's shard legs stream their filtered rows into
//! one [`JoinHashTable`] (build phase), then the larger side's shard
//! legs scan and probe it (probe phase). Both phases fan out on the
//! engine's executor exactly like single-table legs.
//!
//! The paper's angle enters at the probe: when the probe table carries a
//! CM on the join column and the column correlates with the clustered
//! key, the engine can *clamp* the probe scan to the clustered bucket
//! ranges the build keys co-cluster with ([`Table::exec_cm_clamp_visit`])
//! instead of sweeping the whole heap — the CM-guided scan of §5.2
//! driven by an `IN`-list of build-side keys, priced against the full
//! scan by [`cm_cost::CostParams::cost_cm_join_probe`] so the planner
//! picks per query.

use crate::exec::{cm_constraints, ExecContext, RunResult};
use crate::predicate::Query;
use crate::table::Table;
use cm_core::AttrConstraint;
use cm_storage::{ReadCache, Rid, Row, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A single-column equi-join between two tables, each side optionally
/// pre-filtered by a conjunctive predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// Join column on the left table.
    pub left_col: usize,
    /// Join column on the right table.
    pub right_col: usize,
    /// Filter applied to left rows before joining.
    pub left_filter: Query,
    /// Filter applied to right rows before joining.
    pub right_filter: Query,
}

impl JoinQuery {
    /// `left.left_col = right.right_col`, unfiltered.
    pub fn on(left_col: usize, right_col: usize) -> Self {
        JoinQuery {
            left_col,
            right_col,
            left_filter: Query::default(),
            right_filter: Query::default(),
        }
    }

    /// Filter the left side before joining.
    pub fn filter_left(mut self, q: Query) -> Self {
        self.left_filter = q;
        self
    }

    /// Filter the right side before joining.
    pub fn filter_right(mut self, q: Query) -> Self {
        self.right_filter = q;
        self
    }
}

/// Which input of a join an operator refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The left input.
    Left,
    /// The right input.
    Right,
}

/// How the probe phase reads its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Planner-chosen scan of the probe side, probing the hash table
    /// row by row (the classic hash join).
    Hash,
    /// CM-clamped probe through the probe table's CM `id`: the distinct
    /// build keys become an `IN` constraint on the CM, and only the
    /// co-clustered bucket ranges are swept.
    CmClamp(usize),
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinStrategy::Hash => write!(f, "hash"),
            JoinStrategy::CmClamp(id) => write!(f, "cm-clamp({id})"),
        }
    }
}

/// The build side of a partitioned hash join: every filtered build row,
/// hashed by its join-key value. Rows with a NULL join key are dropped
/// at insert — a SQL NULL never equals anything, so they can never
/// produce output.
#[derive(Debug, Default)]
pub struct JoinHashTable {
    rows: Vec<Row>,
    map: HashMap<Value, Vec<u32>>,
}

impl JoinHashTable {
    /// An empty table.
    pub fn new() -> Self {
        JoinHashTable::default()
    }

    /// Add one build row under its join-key value (in deterministic
    /// build order: ascending build shard, scan order within the shard).
    /// NULL keys are discarded.
    pub fn insert(&mut self, key: &Value, row: Row) {
        if key.is_null() {
            return;
        }
        let idx = self.rows.len() as u32;
        self.rows.push(row);
        self.map.entry(key.clone()).or_default().push(idx);
    }

    /// Row indices matching a probe key (empty for NULL — NULL never
    /// joins).
    pub fn probe(&self, key: &Value) -> &[u32] {
        if key.is_null() {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A stored build row.
    pub fn row(&self, idx: u32) -> &Row {
        &self.rows[idx as usize]
    }

    /// Build rows stored (NULL-keyed rows excluded).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no build row survived.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of distinct join-key values.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// The distinct join-key values, ascending — the deterministic
    /// `IN`-list the CM-clamped probe feeds to the probe table's CM.
    pub fn sorted_keys(&self) -> Vec<Value> {
        let mut keys: Vec<Value> = self.map.keys().cloned().collect();
        keys.sort();
        keys
    }
}

impl Table {
    /// CM-clamped probe scan: the CM-guided scan of §5.2 driven by a
    /// join's build keys instead of a query predicate.
    ///
    /// 1. Constrain CM attribute `probe_col` to `IN keys` (the distinct
    ///    build-side join keys) — other CM attributes take their
    ///    constraint from `q`, as a regular CM scan would.
    /// 2. Descend the clustered index once per returned bucket and sweep
    ///    the merged bucket page ranges as vectored runs (identical I/O
    ///    shape and pricing to [`Table::exec_cm_scan_visit`]).
    /// 3. Re-filter every visible row against `q` **and** exact key
    ///    membership — bucketing introduces false positives, never false
    ///    negatives — and hand survivors to `on_match` (the engine's
    ///    hash-table probe, now guaranteed to hit).
    ///
    /// `matched` counts probe rows that passed both filters (each may
    /// join with several build rows; output cardinality is the caller's
    /// business).
    pub fn exec_cm_clamp_visit(
        &self,
        ctx: &ExecContext<'_>,
        cm_id: usize,
        q: &Query,
        probe_col: usize,
        keys: &[Value],
        mut on_match: impl FnMut(&[Value]),
    ) -> RunResult {
        let before = ctx.disk.stats();
        let cm = self.cm(cm_id);
        let constraints: Vec<AttrConstraint> = cm
            .spec()
            .attrs()
            .iter()
            .zip(cm_constraints(cm.spec(), q))
            .map(|(attr, from_q)| {
                if attr.col == probe_col {
                    AttrConstraint::In(keys.to_vec())
                } else {
                    from_q
                }
            })
            .collect();
        let buckets = cm.lookup(&constraints);

        let index_io = ReadCache::new(ctx.io);
        for &b in &buckets {
            let (start, _) = self.dir().rid_range(b);
            let key = &self.heap().peek(Rid(start)).expect("bucket start valid")
                [self.clustered_col()];
            self.clustered().charge_probe(&index_io, key);
        }

        let merged = crate::exec::merge_page_ranges(
            buckets.iter().map(|&b| self.dir().page_range(b)).collect(),
        );

        let key_set: HashSet<&Value> = keys.iter().collect();
        let mut matched = 0u64;
        let mut examined = 0u64;
        let tups = self.heap().tups_per_page() as u64;
        for (lo, hi) in merged {
            self.heap()
                .read_run_visit(ctx.io, lo, hi, |page, rows| {
                    let base = page * tups;
                    for (i, row) in rows.iter().enumerate() {
                        examined += 1;
                        if ctx.visible(self, Rid(base + i as u64))
                            && q.matches(row)
                            && key_set.contains(&row[probe_col])
                        {
                            matched += 1;
                            on_match(row);
                        }
                    }
                })
                .expect("bucket pages in range");
        }
        RunResult { matched, examined, io: ctx.disk.stats().since(&before) }
    }

    /// The id of a CM usable for clamping a probe on `col` — one whose
    /// key includes `col` as an attribute. Single-attribute CMs are
    /// preferred (a composite key would constrain the other attributes
    /// too loosely).
    pub fn clamp_cm_for(&self, col: usize) -> Option<usize> {
        let usable = |id: &usize| {
            self.cms()[*id]
                .spec()
                .attrs()
                .iter()
                .any(|a| a.col == col)
        };
        (0..self.cms().len())
            .find(|id| usable(id) && self.cms()[*id].spec().arity() == 1)
            .or_else(|| (0..self.cms().len()).find(usable))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;
    use cm_core::CmSpec;
    use cm_storage::{Column, DiskSim, Schema, ValueType};
    use std::sync::Arc;

    /// catid-clustered table with price correlated to catid.
    fn demo(disk: &Arc<DiskSim>) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
        ]));
        let rows: Vec<Row> = (0..20_000i64)
            .map(|i| {
                let cat = i % 100;
                vec![Value::Int(cat), Value::Int(cat * 100 + (i * 17) % 100)]
            })
            .collect();
        Table::build(disk, schema, rows, 20, 0, 400).unwrap()
    }

    #[test]
    fn hash_table_groups_duplicates_and_drops_nulls() {
        let mut ht = JoinHashTable::new();
        ht.insert(&Value::Int(1), vec![Value::Int(1), Value::Int(10)]);
        ht.insert(&Value::Int(1), vec![Value::Int(1), Value::Int(11)]);
        ht.insert(&Value::Int(2), vec![Value::Int(2), Value::Int(20)]);
        ht.insert(&Value::Null, vec![Value::Null, Value::Int(99)]);
        assert_eq!(ht.len(), 3);
        assert_eq!(ht.num_keys(), 2);
        assert_eq!(ht.probe(&Value::Int(1)).len(), 2);
        assert_eq!(ht.probe(&Value::Int(7)).len(), 0);
        assert_eq!(ht.probe(&Value::Null).len(), 0, "NULL never joins");
        assert_eq!(ht.sorted_keys(), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(ht.row(2), &vec![Value::Int(2), Value::Int(20)]);
    }

    #[test]
    fn clamp_visit_equals_filtered_scan_membership() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let cm = t.add_cm("price_cm", CmSpec::single_raw(1));
        let keys = vec![Value::Int(117), Value::Int(4242), Value::Int(999_999)];
        let q = Query::default();
        let ctx = ExecContext::cold(&disk);

        let mut via_clamp: Vec<Row> = Vec::new();
        let r = t.exec_cm_clamp_visit(&ctx, cm, &q, 1, &keys, |row| {
            via_clamp.push(row.to_vec());
        });

        let key_set: HashSet<&Value> = keys.iter().collect();
        let mut via_scan: Vec<Row> = Vec::new();
        let full = t.exec_full_scan_visit(&ctx, &q, |row| {
            if key_set.contains(&row[1]) {
                via_scan.push(row.to_vec());
            }
        });
        via_clamp.sort();
        via_scan.sort();
        assert_eq!(via_clamp, via_scan);
        assert_eq!(r.matched as usize, via_clamp.len());
        assert!(
            r.io.pages() < full.io.pages() / 3,
            "clamp sweeps co-clustered runs only: {} vs {} pages",
            r.io.pages(),
            full.io.pages()
        );
    }

    #[test]
    fn clamp_respects_extra_filter() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let cm = t.add_cm("price_cm", CmSpec::single_raw(1));
        // Every cat-42 row carries price 4214; price 117 lives under cat 1.
        let keys = vec![Value::Int(117), Value::Int(4214)];
        // Extra filter on the clustered column: only cat 42 survives.
        let q = Query::single(Pred::eq(0, 42i64));
        let ctx = ExecContext::cold(&disk);
        let mut rows: Vec<Row> = Vec::new();
        t.exec_cm_clamp_visit(&ctx, cm, &q, 1, &keys, |row| rows.push(row.to_vec()));
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r[0] == Value::Int(42) && r[1] == Value::Int(4214)));
    }

    #[test]
    fn clamp_cm_prefers_single_attribute() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let composite =
            t.add_cm("both", CmSpec::new(vec![cm_core::CmAttr::raw(0), cm_core::CmAttr::raw(1)]));
        assert_eq!(t.clamp_cm_for(1), Some(composite), "composite usable as fallback");
        let single = t.add_cm("price", CmSpec::single_raw(1));
        assert_eq!(t.clamp_cm_for(1), Some(single), "single-attr CM preferred");
        assert_eq!(t.clamp_cm_for(5), None);
    }
}
