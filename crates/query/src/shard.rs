//! Shard-aware predicate intersection.
//!
//! When a table is partitioned by clustered-key range, a query fanned
//! out to a shard should carry only the part of its clustered-attribute
//! predicate that can match inside that shard: the CM lookup, the
//! planner's range-width estimate, and secondary-index range probes all
//! narrow accordingly (the per-partition pruning HRDBMS-style hybrid
//! stores perform before executing a partition's plan).

use crate::predicate::{Pred, PredOp, Query};
use cm_storage::Value;

/// The clustered-key interval a shard owns: `[lo, hi)` with `None`
/// meaning unbounded on that side. The lower bound is inclusive and the
/// upper bound exclusive, so consecutive shards tile the key space with
/// no gaps or overlaps.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRange {
    /// Inclusive lower bound (`None`: unbounded below — the first shard).
    pub lo: Option<Value>,
    /// Exclusive upper bound (`None`: unbounded above — the last shard).
    pub hi: Option<Value>,
}

impl ShardRange {
    /// The whole key space (a table with a single shard).
    pub fn full() -> Self {
        ShardRange { lo: None, hi: None }
    }

    /// Does the shard own key `v`?
    pub fn contains(&self, v: &Value) -> bool {
        if let Some(lo) = &self.lo {
            if v < lo {
                return false;
            }
        }
        if let Some(hi) = &self.hi {
            if v >= hi {
                return false;
            }
        }
        true
    }

    /// Can an inclusive `[lo, hi]` predicate interval intersect this
    /// shard's ownership interval?
    pub fn overlaps_between(&self, lo: &Value, hi: &Value) -> bool {
        if let Some(slo) = &self.lo {
            if hi < slo {
                return false;
            }
        }
        if let Some(shi) = &self.hi {
            if lo >= shi {
                return false;
            }
        }
        true
    }
}

/// Intersect `q`'s predicate on the clustered column `col` with a
/// shard's ownership range. Returns `None` when the query cannot match
/// any row the shard owns (the shard is pruned from the fan-out), and
/// otherwise the query to run on that shard:
///
/// * `Eq` is kept iff the value lies in the range;
/// * `In` lists drop the values other shards own;
/// * `Between` is clamped to the range's inclusive lower bound (the
///   exclusive upper bound cannot be expressed as an inclusive endpoint
///   for every value type; the shard holds no keys beyond it, so the
///   unclamped end adds no false positives).
///
/// Predicates on other columns pass through untouched — the row
/// re-filter applies them as usual.
pub fn restrict_to_shard(q: &Query, col: usize, range: &ShardRange) -> Option<Query> {
    let mut preds = Vec::with_capacity(q.preds.len());
    for p in &q.preds {
        if p.col != col {
            preds.push(p.clone());
            continue;
        }
        // Each clustered-column conjunct is restricted on its own: a
        // query may carry several (e.g. a range AND an equality).
        preds.push(Pred { col, op: restrict_op(&p.op, range)? });
    }
    Some(Query { preds })
}

/// One predicate op intersected with the shard range; `None` when it
/// cannot match inside the range.
fn restrict_op(op: &PredOp, range: &ShardRange) -> Option<PredOp> {
    match op {
        PredOp::Eq(v) => range.contains(v).then(|| PredOp::Eq(v.clone())),
        PredOp::In(vs) => {
            let kept: Vec<Value> =
                vs.iter().filter(|v| range.contains(v)).cloned().collect();
            if kept.is_empty() {
                return None;
            }
            Some(PredOp::In(kept))
        }
        PredOp::Between(lo, hi) => {
            if !range.overlaps_between(lo, hi) {
                return None;
            }
            let lo = match &range.lo {
                Some(slo) if slo > lo => slo.clone(),
                _ => lo.clone(),
            };
            Some(PredOp::Between(lo, hi.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(lo: i64, hi: i64) -> ShardRange {
        ShardRange { lo: Some(Value::Int(lo)), hi: Some(Value::Int(hi)) }
    }

    #[test]
    fn full_range_owns_everything() {
        let r = ShardRange::full();
        assert!(r.contains(&Value::Int(i64::MIN)));
        assert!(r.contains(&Value::str("zzz")));
        assert!(r.overlaps_between(&Value::Int(-5), &Value::Int(5)));
    }

    #[test]
    fn bounds_are_half_open() {
        let r = range(10, 20);
        assert!(r.contains(&Value::Int(10)), "lower bound inclusive");
        assert!(r.contains(&Value::Int(19)));
        assert!(!r.contains(&Value::Int(20)), "upper bound exclusive");
        assert!(!r.contains(&Value::Int(9)));
    }

    #[test]
    fn eq_kept_or_pruned() {
        let q = Query::single(Pred::eq(0, 15i64));
        assert_eq!(restrict_to_shard(&q, 0, &range(10, 20)), Some(q.clone()));
        assert_eq!(restrict_to_shard(&q, 0, &range(20, 30)), None);
        assert_eq!(restrict_to_shard(&q, 0, &range(0, 15)), None, "hi is exclusive");
    }

    #[test]
    fn in_list_filtered_per_shard() {
        let q = Query::single(Pred::is_in(
            0,
            vec![Value::Int(5), Value::Int(15), Value::Int(25)],
        ));
        let restricted = restrict_to_shard(&q, 0, &range(10, 20)).unwrap();
        assert_eq!(
            restricted.preds[0].op,
            PredOp::In(vec![Value::Int(15)]),
            "only the owned value survives"
        );
        assert_eq!(restrict_to_shard(&q, 0, &range(30, 40)), None);
    }

    #[test]
    fn between_clamped_to_inclusive_lower_bound() {
        let q = Query::single(Pred::between(0, 0i64, 100i64));
        let restricted = restrict_to_shard(&q, 0, &range(10, 20)).unwrap();
        assert_eq!(
            restricted.preds[0].op,
            PredOp::Between(Value::Int(10), Value::Int(100)),
            "lo clamped; exclusive hi left to the shard's own extent"
        );
        // Disjoint on either side prunes the shard.
        assert_eq!(
            restrict_to_shard(&Query::single(Pred::between(0, 20i64, 30i64)), 0, &range(10, 20)),
            None,
            "pred lo at the exclusive bound"
        );
        assert_eq!(
            restrict_to_shard(&Query::single(Pred::between(0, 0i64, 9i64)), 0, &range(10, 20)),
            None
        );
    }

    #[test]
    fn unbounded_edges_restrict_one_side_only() {
        let first = ShardRange { lo: None, hi: Some(Value::Int(10)) };
        let last = ShardRange { lo: Some(Value::Int(10)), hi: None };
        let q = Query::single(Pred::between(0, 5i64, 50i64));
        let a = restrict_to_shard(&q, 0, &first).unwrap();
        assert_eq!(a.preds[0].op, PredOp::Between(Value::Int(5), Value::Int(50)));
        let b = restrict_to_shard(&q, 0, &last).unwrap();
        assert_eq!(b.preds[0].op, PredOp::Between(Value::Int(10), Value::Int(50)));
    }

    #[test]
    fn multiple_predicates_on_the_clustered_column_survive() {
        // Regression: a conjunction with several clustered-column
        // conjuncts must keep each one (restricted), not overwrite all
        // of them with the first.
        let q = Query::new(vec![Pred::between(0, 0i64, 99i64), Pred::eq(0, 15i64)]);
        let restricted = restrict_to_shard(&q, 0, &range(10, 20)).unwrap();
        assert_eq!(restricted.preds.len(), 2);
        assert_eq!(restricted.preds[0].op, PredOp::Between(Value::Int(10), Value::Int(99)));
        assert_eq!(restricted.preds[1].op, PredOp::Eq(Value::Int(15)));
        // Row 12 passes the range but not the equality — the restricted
        // conjunction must still reject it.
        assert!(!restricted.matches(&[Value::Int(12)]));
        assert!(restricted.matches(&[Value::Int(15)]));
        // If any clustered conjunct is disjoint from the shard, the
        // whole conjunction is unsatisfiable there.
        let q = Query::new(vec![Pred::between(0, 0i64, 99i64), Pred::eq(0, 25i64)]);
        assert_eq!(restrict_to_shard(&q, 0, &range(10, 20)), None);
    }

    #[test]
    fn other_columns_pass_through() {
        let q = Query::new(vec![Pred::eq(0, 15i64), Pred::eq(2, 7i64)]);
        let restricted = restrict_to_shard(&q, 0, &range(10, 20)).unwrap();
        assert_eq!(restricted.preds.len(), 2);
        assert_eq!(restricted.preds[1], Pred::eq(2, 7i64));
        // A query without a clustered-column predicate is untouched.
        let q = Query::single(Pred::eq(2, 7i64));
        assert_eq!(restrict_to_shard(&q, 0, &range(10, 20)), Some(q.clone()));
    }
}
