//! Per-shard query legs: the plan phase's output.
//!
//! A query over a range-partitioned table decomposes into one *leg* per
//! overlapping shard: the shard-restricted predicate
//! ([`crate::restrict_to_shard`]) plus the access path the planner chose
//! for that shard. Splitting planning from execution lets an engine
//! snapshot every routing and costing decision first, then run the legs
//! on a worker pool — the intra-query parallelism MPP-style hybrids
//! (HRDBMS) combine with per-partition operator pipelines.

use crate::plan::PlanChoice;
use crate::predicate::Query;

/// One shard's slice of a query: where it runs, what predicate it sees
/// there, and which access path the planner picked for it.
#[derive(Debug, Clone)]
pub struct ShardLeg {
    /// The shard (storage backend / partition index) this leg runs on.
    pub shard: usize,
    /// The query intersected with the shard's ownership range.
    pub query: Query,
    /// The planner's decision for this shard (estimates for every
    /// candidate path against the shard's own statistics).
    pub choice: PlanChoice,
}

impl ShardLeg {
    /// The deterministic merge key: engines concatenate leg outputs in
    /// ascending `merge_key()` order, never in completion order, so
    /// results are byte-identical across worker counts. For single-table
    /// and join legs alike the key is the shard id — each shard owns a
    /// disjoint clustered-key range, so ascending shards is ascending
    /// clustered order.
    pub fn merge_key(&self) -> u64 {
        self.shard as u64
    }
}

/// A planned query: every leg it will execute, in ascending shard order.
/// Shards the router pruned (no key of the predicate can live there)
/// have no leg.
#[derive(Debug, Clone, Default)]
pub struct QueryPlan {
    /// Per-shard legs, ascending by shard id.
    pub legs: Vec<ShardLeg>,
}

impl QueryPlan {
    /// A plan over the given legs, normalised to ascending
    /// [`ShardLeg::merge_key`] order — the order executors submit legs
    /// in and engines merge their outputs in, regardless of how many
    /// workers raced to finish them.
    pub fn new(mut legs: Vec<ShardLeg>) -> Self {
        legs.sort_by_key(ShardLeg::merge_key);
        QueryPlan { legs }
    }

    /// Whether every shard was pruned (the query can match nothing).
    pub fn is_empty(&self) -> bool {
        self.legs.is_empty()
    }

    /// The shard ids the query will execute on, ascending.
    pub fn shards(&self) -> Vec<usize> {
        self.legs.iter().map(|l| l.shard).collect()
    }

    /// The first leg's choice — the single-shard summary older callers
    /// expect. Falls back to a zero-cost scan when every shard was
    /// pruned. Multi-shard consumers should read [`QueryPlan::legs`]:
    /// per-shard statistics can send different shards down different
    /// paths.
    pub fn primary(&self) -> PlanChoice {
        self.legs
            .first()
            .map(|l| l.choice.clone())
            .unwrap_or_else(PlanChoice::empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AccessPath;
    use crate::predicate::{Pred, Query};

    fn leg(shard: usize, est: f64) -> ShardLeg {
        ShardLeg {
            shard,
            query: Query::single(Pred::eq(0, shard as i64)),
            choice: PlanChoice {
                path: AccessPath::FullScan,
                est_ms: est,
                alternatives: vec![(AccessPath::FullScan, est)],
            },
        }
    }

    #[test]
    fn empty_plan_has_scan_primary() {
        let p = QueryPlan::default();
        assert!(p.is_empty());
        assert!(p.shards().is_empty());
        assert_eq!(p.primary().path, AccessPath::FullScan);
        assert_eq!(p.primary().est_ms, 0.0);
    }

    #[test]
    fn primary_is_first_leg() {
        let p = QueryPlan::new(vec![leg(1, 3.0), leg(3, 5.0)]);
        assert!(!p.is_empty());
        assert_eq!(p.shards(), vec![1, 3]);
        assert_eq!(p.primary().est_ms, 3.0);
    }

    #[test]
    fn plan_normalises_to_merge_key_order() {
        let p = QueryPlan::new(vec![leg(3, 5.0), leg(0, 1.0), leg(1, 3.0)]);
        assert_eq!(p.shards(), vec![0, 1, 3]);
        assert!(p.legs.windows(2).all(|w| w[0].merge_key() < w[1].merge_key()));
    }
}
