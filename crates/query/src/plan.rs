//! Cost-based access-path selection.
//!
//! The paper argues its cost model is "suitable for integration with
//! existing query optimizers" (§8); [`Planner`] is that integration: it
//! estimates every available access path with the §3–§4 formulas and
//! picks the cheapest. CM estimates follow §6.2's guidance — a CM is
//! memory-resident, so the planner consults it directly for the bucket
//! count a predicate implies (the paper's optimizer likewise decides
//! "whether a given query should use the CM or not" from CM statistics).

use crate::exec::cm_constraints;
use crate::predicate::{PredOp, Query};
use crate::table::Table;
use cm_cost::CostParams;
use cm_storage::{DiskConfig, Value};

/// A physical access path over a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Sequential scan of the heap.
    FullScan,
    /// Sorted (bitmap) scan through secondary index `id`.
    SecondarySorted(usize),
    /// Pipelined probe-per-tuple scan through secondary index `id`.
    SecondaryPipelined(usize),
    /// CM-guided clustered scan through CM `id`.
    CmScan(usize),
}

/// The planner's decision with its estimates.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The chosen path.
    pub path: AccessPath,
    /// Its estimated cost in milliseconds.
    pub est_ms: f64,
    /// Every candidate considered, with estimates (diagnostics; sorted by
    /// cost ascending).
    pub alternatives: Vec<(AccessPath, f64)>,
}

impl PlanChoice {
    /// The choice for a query that touches nothing (every shard pruned):
    /// a zero-cost scan with no alternatives.
    pub fn empty() -> Self {
        PlanChoice { path: AccessPath::FullScan, est_ms: 0.0, alternatives: Vec::new() }
    }
}

/// Cost-based path selection over a table's access structures.
pub struct Planner {
    disk: DiskConfig,
}

impl Planner {
    /// A planner pricing with the given disk parameters.
    pub fn new(disk: DiskConfig) -> Self {
        Planner { disk }
    }

    /// Estimate how many index point-lookups a predicate implies
    /// (`n_lookups`): exact for Eq/In, estimated from column min/max and
    /// distinct count for ranges.
    fn n_lookups(&self, table: &Table, col: usize, op: &PredOp) -> Option<f64> {
        match op {
            PredOp::Eq(_) => Some(1.0),
            PredOp::In(vs) => Some(vs.len() as f64),
            PredOp::Between(lo, hi) => {
                let st = table.col_stats(col)?;
                let (min, max) = (st.min.as_ref()?, st.max.as_ref()?);
                let (min, max) = (min.as_numeric()?, max.as_numeric()?);
                let (lo, hi) = (lo.as_numeric()?, hi.as_numeric()?);
                if max <= min {
                    return Some(1.0);
                }
                let frac = ((hi.min(max) - lo.max(min)) / (max - min)).clamp(0.0, 1.0);
                Some((frac * st.corr.distinct_u as f64).max(1.0))
            }
        }
    }

    /// Choose the cheapest access path for `q` over `table`.
    ///
    /// Index paths require [`Table::analyze_cols`] to have been run on the
    /// predicated columns; columns without statistics only compete via
    /// the full scan (mirroring an optimizer that refuses an index
    /// without statistics).
    pub fn choose(&self, table: &Table, q: &Query) -> PlanChoice {
        let tpp = table.heap().tups_per_page();
        let total = table.heap().len();
        let mut candidates: Vec<(AccessPath, f64)> = Vec::new();

        let scan_params = CostParams::new(&self.disk, tpp, total, 1);
        candidates.push((AccessPath::FullScan, scan_params.cost_scan()));

        // Secondary indexes whose first key column is predicated.
        for (id, sec) in table.secondaries().iter().enumerate() {
            let first = sec.cols()[0];
            let Some(pred) = q.pred_on(first) else { continue };
            let Some(st) = table.col_stats(first) else { continue };
            let Some(n) = self.n_lookups(table, first, &pred.op) else { continue };
            let params = CostParams::new(&self.disk, tpp, total, sec.height());
            candidates.push((
                AccessPath::SecondarySorted(id),
                params.cost_sorted(n, st.corr.c_per_u, st.corr.c_tups),
            ));
            candidates.push((
                AccessPath::SecondaryPipelined(id),
                params.cost_pipelined(n, st.corr.u_tups),
            ));
        }

        // CMs with at least one predicated key attribute. The CM is
        // memory-resident: consult it for the exact bucket count.
        for (id, cm) in table.cms().iter().enumerate() {
            let spec = cm.spec();
            if !spec.attrs().iter().any(|a| q.pred_on(a.col).is_some()) {
                continue;
            }
            let buckets = cm.lookup(&cm_constraints(spec, q));
            let params =
                CostParams::new(&self.disk, tpp, total, table.clustered().height());
            let cost = params.cost_cm(
                buckets.len() as f64,
                1.0,
                table.dir().avg_pages_per_bucket(),
                table.clustered().height() as f64,
            );
            candidates.push((AccessPath::CmScan(id), cost));
        }

        candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (path, est_ms) = candidates[0];
        PlanChoice { path, est_ms, alternatives: candidates }
    }

    /// Estimated selectivity of an equality predicate (diagnostics):
    /// `1 / distinct`.
    pub fn eq_selectivity(table: &Table, col: usize) -> Option<f64> {
        let st = table.col_stats(col)?;
        if st.corr.distinct_u == 0 {
            return None;
        }
        Some(1.0 / st.corr.distinct_u as f64)
    }

    /// Estimated fraction of the value domain a range predicate covers
    /// (diagnostics).
    pub fn range_fraction(table: &Table, col: usize, lo: &Value, hi: &Value) -> Option<f64> {
        let st = table.col_stats(col)?;
        let (min, max) = (st.min.as_ref()?.as_numeric()?, st.max.as_ref()?.as_numeric()?);
        if max <= min {
            return Some(1.0);
        }
        Some(((hi.as_numeric()?.min(max) - lo.as_numeric()?.max(min)) / (max - min)).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecContext;
    use crate::predicate::Pred;
    use cm_core::{CmAttr, CmSpec};
    use cm_storage::{Column, DiskSim, Schema, ValueType};
    use std::sync::Arc;

    /// Table with one correlated attribute (price ~ catid) and one
    /// uncorrelated attribute (tag).
    fn demo(disk: &Arc<DiskSim>) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
            Column::new("tag", ValueType::Int),
        ]));
        let rows: Vec<Vec<cm_storage::Value>> = (0..8000i64)
            .map(|i| {
                let cat = i % 200;
                vec![
                    cm_storage::Value::Int(cat),
                    cm_storage::Value::Int(cat * 50 + (i * 7) % 50),
                    cm_storage::Value::Int((i * 31) % 977),
                ]
            })
            .collect();
        let mut t = Table::build(disk, schema, rows, 20, 0, 40).unwrap();
        t.analyze_cols(&[1, 2]);
        t
    }

    #[test]
    fn selective_eq_on_correlated_column_uses_index() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price", vec![1]);
        let planner = Planner::new(disk.config());
        let choice = planner.choose(&t, &Query::single(Pred::eq(1, 1234i64)));
        assert!(
            matches!(choice.path, AccessPath::SecondarySorted(id) | AccessPath::SecondaryPipelined(id) if id == sec),
            "chose {:?}",
            choice.path
        );
    }

    #[test]
    fn wide_range_on_uncorrelated_column_falls_back_to_scan() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        t.add_secondary(&disk, "tag", vec![2]);
        let planner = Planner::new(disk.config());
        // tag is uncorrelated: a wide IN-list must degrade to a scan cost
        // (the min() bound) and the planner may as well scan.
        let vals: Vec<cm_storage::Value> =
            (0..400).map(|i| cm_storage::Value::Int(i * 2)).collect();
        let choice = planner.choose(&t, &Query::single(Pred::is_in(2, vals)));
        assert_eq!(choice.est_ms, planner_scan_cost(&disk, &t), "cost capped at scan");
        assert!(matches!(choice.path, AccessPath::FullScan | AccessPath::SecondarySorted(_)));
    }

    fn planner_scan_cost(disk: &Arc<DiskSim>, t: &Table) -> f64 {
        CostParams::new(&disk.config(), t.heap().tups_per_page(), t.heap().len(), 1).cost_scan()
    }

    #[test]
    fn cm_chosen_when_cheapest() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let cm = t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 4)]));
        let planner = Planner::new(disk.config());
        let choice = planner.choose(&t, &Query::single(Pred::eq(1, 1234i64)));
        assert_eq!(choice.path, AccessPath::CmScan(cm), "alts: {:?}", choice.alternatives);
    }

    #[test]
    fn plan_estimates_track_execution() {
        // The planner's cost ordering should agree with simulated reality
        // for clearly-separated alternatives.
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        let sec = t.add_secondary(&disk, "price", vec![1]);
        let q = Query::single(Pred::eq(1, 1234i64));
        let planner = Planner::new(disk.config());
        let choice = planner.choose(&t, &q);
        let ctx = ExecContext::cold(&disk);
        let sorted = t.exec_secondary_sorted(&ctx, sec, &q).unwrap();
        let scan = t.exec_full_scan(&ctx, &q);
        assert!(sorted.ms() < scan.ms());
        // Planner agreed: its chosen estimate is below its scan estimate.
        let scan_est = choice
            .alternatives
            .iter()
            .find(|(p, _)| *p == AccessPath::FullScan)
            .unwrap()
            .1;
        assert!(choice.est_ms <= scan_est);
    }

    #[test]
    fn unanalyzed_columns_only_scan() {
        let disk = DiskSim::with_defaults();
        let schema = Arc::new(Schema::new(vec![
            Column::new("a", ValueType::Int),
            Column::new("b", ValueType::Int),
        ]));
        let rows = (0..100i64)
            .map(|i| vec![cm_storage::Value::Int(i), cm_storage::Value::Int(i)])
            .collect();
        let mut t = Table::build(&disk, schema, rows, 10, 0, 10).unwrap();
        t.add_secondary(&disk, "b", vec![1]); // no analyze_cols(&[1])
        let planner = Planner::new(disk.config());
        let choice = planner.choose(&t, &Query::single(Pred::eq(1, 5i64)));
        assert_eq!(choice.path, AccessPath::FullScan);
    }

    #[test]
    fn range_lookup_estimate_scales_with_width() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let planner = Planner::new(disk.config());
        let narrow = planner
            .n_lookups(&t, 1, &PredOp::Between(cm_storage::Value::Int(0), cm_storage::Value::Int(99)))
            .unwrap();
        let wide = planner
            .n_lookups(&t, 1, &PredOp::Between(cm_storage::Value::Int(0), cm_storage::Value::Int(4999)))
            .unwrap();
        assert!(wide > 10.0 * narrow, "narrow {narrow}, wide {wide}");
    }

    #[test]
    fn alternatives_are_sorted() {
        let disk = DiskSim::with_defaults();
        let mut t = demo(&disk);
        t.add_secondary(&disk, "price", vec![1]);
        t.add_cm("price_cm", CmSpec::new(vec![CmAttr::pow2(1, 4)]));
        let planner = Planner::new(disk.config());
        let choice = planner.choose(&t, &Query::single(Pred::eq(1, 10i64)));
        let costs: Vec<f64> = choice.alternatives.iter().map(|(_, c)| *c).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
        assert!(choice.alternatives.len() >= 4, "scan + 2 index paths + CM");
    }
}
