//! In-tree shim for the subset of `bytes` this workspace uses: `BytesMut`
//! as a growable byte buffer with `BufMut`-style appends and `split_to`,
//! and `Bytes` as an immutable snapshot. Backed by plain `Vec<u8>` —
//! the zero-copy machinery of the real crate is irrelevant to a disk
//! simulator that only tracks byte *counts*.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Resize to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.0.resize(new_len, value);
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Append-style writing, as implemented by [`BytesMut`].
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_split() {
        let mut b = BytesMut::new();
        b.put_u32_le(7);
        b.put_slice(b"abc");
        assert_eq!(b.len(), 7);
        let head = b.split_to(4);
        assert_eq!(&head[..], &7u32.to_le_bytes());
        assert_eq!(&b[..], b"abc");
    }

    #[test]
    fn resize_zero_fills() {
        let mut b = BytesMut::new();
        b.resize(5, 0);
        assert_eq!(&b[..], &[0; 5]);
    }

    #[test]
    fn bytes_snapshot() {
        let s = Bytes::copy_from_slice(b"xy");
        assert_eq!(&s[..], b"xy");
        assert_eq!(s.len(), 2);
    }
}
