//! In-tree shim for the subset of `rand` this workspace uses: a seedable
//! deterministic [`rngs::StdRng`] plus [`Rng::gen_range`] over integer and
//! float ranges and [`Rng::gen_bool`]. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality and fully reproducible, which
//! is all the data generators and samplers here require (they never need
//! cryptographic strength).

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
