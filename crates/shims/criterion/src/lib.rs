//! In-tree shim for the subset of `criterion` this workspace's benches
//! use. It runs each benchmark for the configured measurement time and
//! prints mean iteration latency — no statistics, plots, or baselines,
//! but `cargo bench` exercises every benchmark end-to-end and reports
//! comparable numbers.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (ignored by the shim's timing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// (iterations, total time) recorded by the last `iter*` call.
    result: Option<(u64, Duration)>,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        let warm_end = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let budget = self.cfg.measurement_time;
        while iters < self.cfg.sample_size as u64 || start.elapsed() < budget {
            std::hint::black_box(routine());
            iters += 1;
            if iters >= 10_000_000 {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Time `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        let budget = self.cfg.measurement_time;
        while iters < self.cfg.sample_size as u64 || spent < budget {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.result = Some((iters, spent));
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

/// Benchmark registry and runner.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    cfg: Config,
}

fn report(name: &str, result: Option<(u64, Duration)>) {
    match result {
        Some((iters, total)) if iters > 0 => {
            let per = total.as_secs_f64() / iters as f64;
            let (value, unit) = if per >= 1.0 {
                (per, "s")
            } else if per >= 1e-3 {
                (per * 1e3, "ms")
            } else if per >= 1e-6 {
                (per * 1e6, "µs")
            } else {
                (per * 1e9, "ns")
            };
            println!("{name:<40} {value:>10.3} {unit}/iter  ({iters} iters)");
        }
        _ => println!("{name:<40} (no measurement)"),
    }
}

impl Criterion {
    /// Set the minimum iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Set the untimed warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { cfg: &self.cfg, result: None };
        f(&mut b);
        report(name, b.result);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group {name} --");
        BenchmarkGroup { criterion: self, group: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.group, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group: either `criterion_group!(name, targets...)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
