//! In-tree shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no crates.io access, so we provide
//! `Mutex`/`RwLock` with parking_lot's ergonomics (no `Result`, no lock
//! poisoning) on top of `std::sync`. A poisoned std lock only arises after
//! a panic inside a critical section; propagating the panic is the right
//! behaviour for this workspace, so the shim unwraps via `into_inner`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
