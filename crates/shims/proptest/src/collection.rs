//! Collection strategies: `vec` and `btree_set` with exact or ranged
//! sizes.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Sizes accepted by collection strategies: a fixed `usize` or a range.
pub trait IntoSizeRange {
    /// Draw a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

/// Strategy producing `Vec`s of elements from `element`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// Strategy producing `BTreeSet`s; duplicates collapse, so the final size
/// may be below the drawn size (matching real proptest's semantics).
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: IntoSizeRange> Strategy for BTreeSetStrategy<S, R>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::btree_set(element, size)`.
pub fn btree_set<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R> {
    BTreeSetStrategy { element, size }
}
