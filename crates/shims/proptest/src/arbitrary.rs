//! `any::<T>()` — arbitrary values of primitive types.

use crate::strategy::{Any, Strategy};
use std::marker::PhantomData;

/// A strategy producing arbitrary values of `T` (primitives only).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}
