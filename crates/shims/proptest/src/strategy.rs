//! Strategies: deterministic value generators. Unlike real proptest there
//! is no shrinking — a failing case panics with the generated inputs in
//! the assertion message, which is enough for this workspace's invariant
//! tests.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy (what `prop_oneof!` alternatives collapse to).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given alternatives.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one alternative");
        Union(alts)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Always produces clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $sample:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(
    i8 => s_i8, i16 => s_i16, i32 => s_i32, i64 => s_i64,
    u8 => s_u8, u16 => s_u16, u32 => s_u32, u64 => s_u64, usize => s_usize
);

/// `any::<T>()` support: arbitrary values of primitive types.
pub struct Any<T>(pub(crate) PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A/0),
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
    (A/0, B/1, C/2, D/3, E/4),
    (A/0, B/1, C/2, D/3, E/4, F/5),
);
