//! Test configuration and the deterministic RNG driving sampling.

pub use rand::rngs::StdRng as Inner;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(pub(crate) Inner);

impl TestRng {
    /// Seeded from a test's name, so each property gets its own stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(Inner::seed_from_u64(h))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}
