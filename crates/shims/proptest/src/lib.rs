//! In-tree shim for the subset of `proptest` this workspace's property
//! tests use: strategies over primitive ranges, tuples, collections,
//! `prop_map`, `prop_oneof!`, and the `proptest!` macro. Cases are
//! generated from a deterministic per-test RNG; there is no shrinking —
//! failures panic with the generated inputs embedded in the message.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Define property tests: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            $(let $arg = &($strat);)*
            for __case in 0..__cfg.cases {
                $(let $arg = $arg.sample(&mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

/// Uniform choice among strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($alt)),+
        ])
    };
}

/// Assert a condition inside a property (panics with the formatted
/// message on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
