//! Clustered-index recommendation (the paper's §8 direction).
//!
//! "If we had the freedom to choose the clustered index ... to have
//! stronger correlations with predicated attributes in the workload, we
//! would likely achieve even greater improvement." This module is that
//! designer's core: given a workload of queries, score every candidate
//! clustered attribute by the total modeled workload cost when each query
//! runs through the best correlated access path available under that
//! clustering — the decision procedure behind the paper's Figure 2 sweep,
//! packaged as a library API.

use crate::discovery::DiscoveryConfig;
use cm_cost::CostParams;
use cm_query::{PredOp, Query, Table};
use cm_stats::{estimate_distinct, EstimatorKind, FreqTable, ReservoirSampler};
use cm_storage::{DiskConfig, Rid};

/// One candidate clustering with its modeled workload cost.
#[derive(Debug, Clone)]
pub struct ClusteringChoice {
    /// The candidate clustered column.
    pub col: usize,
    /// Total modeled cost of the workload (ms).
    pub workload_ms: f64,
    /// Number of workload queries whose best path beats a table scan by
    /// at least 2× under this clustering (the Figure 2 statistic).
    pub accelerated: usize,
}

/// Rank candidate clustered attributes for a workload.
///
/// For every candidate clustering and every query, the query's cost is
/// `min(cost_scan, cost_sorted)` where the sorted-scan estimate uses the
/// sampled correlation between the predicated attribute and the
/// candidate clustering (`c_per_u = D(pred, cand) / D(pred)`); the
/// cheapest candidate comes first.
pub fn recommend_clustering(
    table: &Table,
    disk: &DiskConfig,
    workload: &[Query],
    candidates: &[usize],
    config: &DiscoveryConfig,
) -> Vec<ClusteringChoice> {
    // One shared sample of row ids.
    let mut reservoir = ReservoirSampler::new(config.sample_size, config.seed);
    for (rid, _) in table.heap().iter() {
        reservoir.observe(rid);
    }
    let sample: Vec<Rid> = reservoir.into_sample();
    let n_total = table.heap().len();
    let r = sample.len() as u64;
    let hash_col = |col: usize| -> Vec<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        sample
            .iter()
            .map(|&rid| {
                let mut h = DefaultHasher::new();
                table.heap().peek(rid).expect("sampled rid valid")[col].hash(&mut h);
                h.finish()
            })
            .collect()
    };

    // All columns any query predicates.
    let mut pred_cols: Vec<usize> =
        workload.iter().flat_map(Query::predicated_cols).collect();
    pred_cols.sort_unstable();
    pred_cols.dedup();
    let pred_hashes: Vec<(usize, Vec<u64>)> =
        pred_cols.iter().map(|&c| (c, hash_col(c))).collect();

    let estimate = |hashes: &[u64]| -> f64 {
        let mut t = FreqTable::new();
        for &h in hashes {
            t.observe(h);
        }
        estimate_distinct(EstimatorKind::Adaptive, n_total, r, &t.freq_of_freq()).max(1.0)
    };

    let params = CostParams::new(disk, table.heap().tups_per_page(), n_total, 3);
    let scan = params.cost_scan();
    let mut out = Vec::with_capacity(candidates.len());
    for &cand in candidates {
        let cand_hashes = hash_col(cand);
        let d_cand = estimate(&cand_hashes);
        let c_tups = n_total as f64 / d_cand;
        let mut workload_ms = 0.0;
        let mut accelerated = 0;
        for q in workload {
            let mut best = scan;
            for pred in &q.preds {
                let Some((_, ph)) =
                    pred_hashes.iter().find(|(c, _)| *c == pred.col)
                else {
                    continue;
                };
                if pred.col == cand {
                    // Clustered-attribute predicate: a direct clustered
                    // range scan.
                    let frac = 1.0 / estimate(ph);
                    best = best.min(params.seek_ms * 3.0 + scan * frac);
                    continue;
                }
                // Correlation between the predicated column and the
                // candidate clustering.
                let d_pred = estimate(ph);
                let mut pairs = FreqTable::new();
                for i in 0..ph.len() {
                    pairs.observe(ph[i] ^ cand_hashes[i].wrapping_mul(0x9E3779B97F4A7C15));
                }
                let d_pairs = estimate_distinct(
                    EstimatorKind::Adaptive,
                    n_total,
                    r,
                    &pairs.freq_of_freq(),
                )
                .max(d_pred);
                let c_per_u = d_pairs / d_pred;
                let n_lookups = match &pred.op {
                    PredOp::Eq(_) => 1.0,
                    PredOp::In(vs) => vs.len() as f64,
                    PredOp::Between(..) => (d_pred * 0.01).max(1.0),
                };
                best = best.min(params.cost_sorted(n_lookups, c_per_u, c_tups));
            }
            workload_ms += best;
            if best * 2.0 <= scan {
                accelerated += 1;
            }
        }
        out.push(ClusteringChoice { col: cand, workload_ms, accelerated });
    }
    out.sort_by(|a, b| a.workload_ms.total_cmp(&b.workload_ms));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_query::Pred;
    use cm_storage::{Column, DiskSim, Schema, Value, ValueType};
    use std::sync::Arc;

    /// Columns a and b are tightly coupled; z is independent of both.
    fn demo(disk: &DiskSim) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("a", ValueType::Int),
            Column::new("b", ValueType::Int),
            Column::new("z", ValueType::Int),
        ]));
        let rows = (0..200_000i64)
            .map(|i| {
                let a = i % 500;
                vec![
                    Value::Int(a),
                    Value::Int(a * 3 + (i % 3)),
                    Value::Int((i * 37) % 499),
                ]
            })
            .collect();
        Table::build(disk, schema, rows, 50, 0, 100).unwrap()
    }

    #[test]
    fn workload_on_b_prefers_clustering_on_a_or_b() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let workload: Vec<Query> =
            (0..10).map(|i| Query::single(Pred::eq(1, (i * 147) as i64))).collect();
        let cfg = DiscoveryConfig { sample_size: 5_000, ..Default::default() };
        let ranked = recommend_clustering(&t, &disk.config(), &workload, &[0, 2], &cfg);
        assert_eq!(ranked[0].col, 0, "a (correlated with b) beats z: {ranked:?}");
        assert!(ranked[0].workload_ms < ranked[1].workload_ms);
    }

    #[test]
    fn clustering_on_the_predicated_column_itself_wins() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let workload: Vec<Query> =
            (0..10).map(|i| Query::single(Pred::eq(2, (i * 31) as i64))).collect();
        let cfg = DiscoveryConfig { sample_size: 5_000, ..Default::default() };
        let ranked = recommend_clustering(&t, &disk.config(), &workload, &[0, 2], &cfg);
        assert_eq!(ranked[0].col, 2, "{ranked:?}");
        assert!(ranked[0].accelerated >= 8);
    }

    #[test]
    fn mixed_workload_counts_accelerated_queries() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        // Half the queries on b (helped by clustering a), half on z (not).
        let mut workload: Vec<Query> =
            (0..5).map(|i| Query::single(Pred::eq(1, (i * 147) as i64))).collect();
        workload.extend((0..5).map(|i| Query::single(Pred::eq(2, (i * 31) as i64))));
        let cfg = DiscoveryConfig { sample_size: 5_000, ..Default::default() };
        let ranked = recommend_clustering(&t, &disk.config(), &workload, &[0], &cfg);
        assert!(
            (4..=6).contains(&ranked[0].accelerated),
            "only the b-queries accelerate: {ranked:?}"
        );
    }
}
