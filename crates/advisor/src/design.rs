//! Candidate CM designs and their sample-based estimates.

use cm_core::{BucketSpec, CmAttr};
use cm_storage::Schema;

/// One candidate CM design: an ordered set of key attributes with their
/// bucketings (§6.1.3).
#[derive(Debug, Clone)]
pub struct CmDesign {
    /// Key attributes in order.
    pub attrs: Vec<CmAttr>,
}

impl CmDesign {
    /// Paper-style label, e.g. `psfMag_g(2^13), type, fieldID` (Table 5).
    pub fn label(&self, schema: &Schema) -> String {
        self.attrs
            .iter()
            .map(|a| {
                let name = schema.col_name(a.col);
                match &a.bucket {
                    BucketSpec::None => name.to_string(),
                    BucketSpec::EquiWidth { width, .. } => {
                        let log = width.log2();
                        if (log - log.round()).abs() < 1e-9 && log >= 0.0 {
                            format!("{name}(2^{})", log.round() as i64)
                        } else {
                            format!("{name}(w={width:.4})")
                        }
                    }
                    BucketSpec::EquiDepth { bounds } => {
                        format!("{name}(eqd:{})", bounds.len() + 1)
                    }
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A design together with its advisor estimates.
#[derive(Debug, Clone)]
pub struct DesignEstimate {
    /// The design.
    pub design: CmDesign,
    /// Estimated composite `c_per_u` — distinct clustered buckets per
    /// distinct (bucketed) key.
    pub c_per_u: f64,
    /// Estimated distinct CM keys.
    pub keys: f64,
    /// Estimated `(key, clustered bucket)` pairs.
    pub pairs: f64,
    /// Estimated serialized CM size in bytes.
    pub size_bytes: f64,
    /// Estimated cost of the training query through this CM (ms).
    pub cost_ms: f64,
    /// Fractional slowdown relative to the best candidate
    /// (`cost / best_cost − 1`; the paper's "+3%" column in Table 5).
    pub slowdown: f64,
    /// Size relative to the dense secondary B+Tree on the same
    /// attributes (Table 5's "Size Ratio" column).
    pub size_ratio: f64,
}

impl DesignEstimate {
    /// One Table 5-style row: `+3% | psfMag_g(2^14), type | 14.6%`.
    pub fn table5_row(&self, schema: &Schema) -> String {
        format!(
            "{:>+5.0}% | {:<44} | {:>6.1}%",
            self.slowdown * 100.0,
            self.design.label(schema),
            self.size_ratio * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_storage::{Column, ValueType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("fieldID", ValueType::Int),
            Column::new("psfMag_g", ValueType::Float),
            Column::new("type", ValueType::Int),
        ])
    }

    #[test]
    fn labels_match_paper_format() {
        let s = schema();
        let d = CmDesign {
            attrs: vec![
                CmAttr { col: 1, bucket: BucketSpec::EquiWidth { origin: 0.0, width: 8192.0 } },
                CmAttr::raw(2),
                CmAttr::raw(0),
            ],
        };
        assert_eq!(d.label(&s), "psfMag_g(2^13), type, fieldID");
    }

    #[test]
    fn table5_row_renders() {
        let s = schema();
        let e = DesignEstimate {
            design: CmDesign { attrs: vec![CmAttr::raw(0)] },
            c_per_u: 1.2,
            keys: 251.0,
            pairs: 300.0,
            size_bytes: 7200.0,
            cost_ms: 33.0,
            slowdown: 0.10,
            size_ratio: 0.008,
        };
        let row = e.table5_row(&s);
        assert!(row.contains("+10%"));
        assert!(row.contains("fieldID"));
        assert!(row.contains("0.8%"));
    }
}
