//! The recommendation pipeline (paper §6.2).
//!
//! For one training query:
//!
//! 1. extract the predicated attributes, pruning predicates less
//!    selective than the threshold (§6.2.2);
//! 2. enumerate every non-empty attribute subset × bucketing combination
//!    (`∏(bucketings + 1) − 1` designs, §6.1.3);
//! 3. estimate each design's composite distinct counts with the Adaptive
//!    Estimator over one shared random sample (the paper uses 30,000
//!    rows) and price the training query with the cost model;
//! 4. report all designs Table 5-style and recommend the **smallest**
//!    design whose estimated slowdown vs. the best candidate is within
//!    the user's threshold.

use crate::candidates::{bucketing_candidates, AttrCandidates};
use crate::design::{CmDesign, DesignEstimate};
use cm_core::{BucketSpec, CmAttr};
use cm_cost::CostParams;
use cm_query::{Pred, PredOp, Query, Table};
use cm_stats::{estimate_distinct, EstimatorKind, FreqTable, ReservoirSampler};
use cm_storage::{DiskConfig, Rid};

/// Advisor tuning knobs (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct AdvisorConfig {
    /// Random sample size (paper: 30,000; "similar sample size was chosen
    /// in CORDS").
    pub sample_size: usize,
    /// Prune predicates whose estimated selectivity exceeds this (paper:
    /// 0.5).
    pub selectivity_threshold: f64,
    /// Hard cap on enumerated designs (safety valve; the paper's queries
    /// stay well below it).
    pub max_designs: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            sample_size: 30_000,
            selectivity_threshold: 0.5,
            max_designs: 8192,
            seed: 0xAD71,
        }
    }
}

/// The advisor's output for one training query.
#[derive(Debug)]
pub struct Recommendation {
    /// Attributes considered, with their candidate bucketings (Table 4).
    pub candidates: Vec<AttrCandidates>,
    /// All estimated designs, sorted by estimated cost ascending
    /// (Table 5).
    pub designs: Vec<DesignEstimate>,
    /// Index into `designs` of the recommended design (smallest within
    /// the slowdown threshold), if any design qualifies.
    pub chosen: Option<usize>,
    /// Modeled size of the dense secondary B+Tree over the same
    /// attributes, the denominator of the size-ratio column.
    pub btree_size_bytes: f64,
}

impl Recommendation {
    /// The recommended design, if any.
    pub fn chosen_design(&self) -> Option<&DesignEstimate> {
        self.chosen.map(|i| &self.designs[i])
    }

    /// Render the top `n` designs as a Table 5-style listing.
    pub fn table5(&self, schema: &cm_storage::Schema, n: usize) -> String {
        let mut out = String::from("Runtime | CM Design                                    | Size Ratio\n");
        for e in self.designs.iter().take(n) {
            out.push_str(&e.table5_row(schema));
            out.push('\n');
        }
        out
    }

    /// Render the Table 4-style bucketing-candidate listing.
    pub fn table4(&self) -> String {
        let mut out =
            String::from("Column       | Cardinality | Bucket Widths\n");
        for c in &self.candidates {
            out.push_str(&format!(
                "{:<12} | {:>11} | {}\n",
                c.name, c.cardinality, c.widths_label()
            ));
        }
        out
    }
}

/// The CM Advisor.
pub struct Advisor {
    config: AdvisorConfig,
}

impl Advisor {
    /// An advisor with the given knobs.
    pub fn new(config: AdvisorConfig) -> Self {
        Advisor { config }
    }

    /// An advisor with paper defaults.
    pub fn with_defaults() -> Self {
        Self::new(AdvisorConfig::default())
    }

    /// Estimated selectivity of one predicate, used for pruning.
    fn selectivity(table: &Table, pred: &Pred) -> f64 {
        let Some(st) = table.col_stats(pred.col) else { return 1.0 };
        match &pred.op {
            PredOp::Eq(_) => 1.0 / st.corr.distinct_u.max(1) as f64,
            PredOp::In(vs) => vs.len() as f64 / st.corr.distinct_u.max(1) as f64,
            PredOp::Between(lo, hi) => {
                cm_query::Planner::range_fraction(table, pred.col, lo, hi).unwrap_or(1.0)
            }
        }
    }

    /// Run the full pipeline for one training query.
    ///
    /// `slowdown_threshold` is the user's tolerance (e.g. `0.10` accepts
    /// designs up to 10% slower than the best candidate; the paper's
    /// Table 5 example).
    ///
    /// Requires [`Table::analyze_cols`] on the query's predicated columns.
    pub fn recommend(
        &self,
        table: &Table,
        disk: &DiskConfig,
        query: &Query,
        slowdown_threshold: f64,
    ) -> Recommendation {
        // 1. Candidate attributes: predicated and selective enough.
        let attrs: Vec<usize> = query
            .predicated_cols()
            .into_iter()
            .filter(|&c| {
                query
                    .pred_on(c)
                    .map(|p| Self::selectivity(table, p) <= self.config.selectivity_threshold)
                    .unwrap_or(false)
            })
            .collect();
        let candidates: Vec<AttrCandidates> =
            attrs.iter().map(|&c| bucketing_candidates(table, c)).collect();

        // 2. One shared random sample of RIDs.
        let mut reservoir = ReservoirSampler::new(self.config.sample_size, self.config.seed);
        for (rid, _) in table.heap().iter() {
            reservoir.observe(rid);
        }
        let sample: Vec<Rid> = reservoir.into_sample();
        let n_total = table.heap().len();
        let r_sample = sample.len() as u64;

        // Precompute, per (attribute, spec), the bucketed key-part hash of
        // every sampled row, so each design's composite key hashes are a
        // cheap fold (this is what makes ~5 ms/candidate feasible, §6.1.3).
        let mut part_hashes: Vec<Vec<u64>> = Vec::new(); // flat over (attr, spec)
        let mut spec_offset: Vec<usize> = Vec::with_capacity(candidates.len());
        {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            for cand in &candidates {
                spec_offset.push(part_hashes.len());
                for spec in &cand.specs {
                    let mut v = Vec::with_capacity(sample.len());
                    for &rid in &sample {
                        let row = table.heap().peek(rid).expect("sampled rid valid");
                        let part = spec.key_part(&row[cand.col]);
                        let mut h = DefaultHasher::new();
                        part.hash(&mut h);
                        v.push(h.finish());
                    }
                    part_hashes.push(v);
                }
            }
        }
        let cbuckets: Vec<u32> =
            sample.iter().map(|&rid| table.dir().bucket_of(rid)).collect();

        // 3. Enumerate subsets × bucketings.
        let mut designs: Vec<DesignEstimate> = Vec::new();
        let mut stack: Vec<Option<usize>> = vec![None; candidates.len()];
        self.enumerate(
            table,
            disk,
            query,
            &candidates,
            &spec_offset,
            &part_hashes,
            &cbuckets,
            n_total,
            r_sample,
            0,
            &mut stack,
            &mut designs,
        );

        // 4. Rank and choose.
        designs.sort_by(|a, b| a.cost_ms.total_cmp(&b.cost_ms));
        let btree_size_bytes = self.btree_size(table, &attrs);
        if let Some(best) = designs.first().map(|d| d.cost_ms) {
            for d in &mut designs {
                d.slowdown = if best > 0.0 { d.cost_ms / best - 1.0 } else { 0.0 };
                d.size_ratio = d.size_bytes / btree_size_bytes.max(1.0);
            }
        }
        let chosen = designs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.slowdown <= slowdown_threshold)
            .min_by(|a, b| a.1.size_bytes.total_cmp(&b.1.size_bytes))
            .map(|(i, _)| i);
        Recommendation { candidates, designs, chosen, btree_size_bytes }
    }

    /// Modeled dense B+Tree size over `attrs` (one posting per tuple).
    fn btree_size(&self, table: &Table, attrs: &[usize]) -> f64 {
        let mut key_bytes = 0.0;
        for (_, row) in table.heap().iter().take(256) {
            for &c in attrs {
                key_bytes += row[c].size_bytes() as f64;
            }
        }
        let avg_key = if attrs.is_empty() { 8.0 } else { key_bytes / 256.0 };
        table.heap().len() as f64 * (avg_key + 16.0) / 0.9
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &self,
        table: &Table,
        disk: &DiskConfig,
        query: &Query,
        candidates: &[AttrCandidates],
        spec_offset: &[usize],
        part_hashes: &[Vec<u64>],
        cbuckets: &[u32],
        n_total: u64,
        r_sample: u64,
        depth: usize,
        stack: &mut Vec<Option<usize>>,
        out: &mut Vec<DesignEstimate>,
    ) {
        if out.len() >= self.config.max_designs {
            return;
        }
        if depth == candidates.len() {
            if stack.iter().all(Option::is_none) {
                return; // the empty design
            }
            out.push(self.estimate(
                table,
                disk,
                query,
                candidates,
                spec_offset,
                part_hashes,
                cbuckets,
                n_total,
                r_sample,
                stack,
            ));
            return;
        }
        // Option: exclude this attribute.
        stack[depth] = None;
        self.enumerate(
            table, disk, query, candidates, spec_offset, part_hashes, cbuckets, n_total,
            r_sample, depth + 1, stack, out,
        );
        // Option: include with each bucketing.
        for spec_idx in 0..candidates[depth].specs.len() {
            stack[depth] = Some(spec_idx);
            self.enumerate(
                table, disk, query, candidates, spec_offset, part_hashes, cbuckets, n_total,
                r_sample, depth + 1, stack, out,
            );
        }
        stack[depth] = None;
    }

    #[allow(clippy::too_many_arguments)]
    fn estimate(
        &self,
        table: &Table,
        disk: &DiskConfig,
        query: &Query,
        candidates: &[AttrCandidates],
        spec_offset: &[usize],
        part_hashes: &[Vec<u64>],
        cbuckets: &[u32],
        n_total: u64,
        r_sample: u64,
        stack: &[Option<usize>],
    ) -> DesignEstimate {
        // Composite key hash per sampled row: mix the chosen parts.
        let chosen: Vec<&Vec<u64>> = stack
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|spec_idx| &part_hashes[spec_offset[i] + spec_idx]))
            .collect();
        let mut keys = FreqTable::new();
        let mut pairs = FreqTable::new();
        for row_i in 0..cbuckets.len() {
            let mut h = 0xcbf29ce484222325u64;
            for part in &chosen {
                h ^= part[row_i];
                h = h.wrapping_mul(0x100000001b3);
            }
            keys.observe(h);
            pairs.observe(h ^ (u64::from(cbuckets[row_i]).wrapping_mul(0x9E3779B97F4A7C15)));
        }
        let d_keys = estimate_distinct(
            EstimatorKind::Adaptive,
            n_total,
            r_sample,
            &keys.freq_of_freq(),
        )
        .max(1.0);
        let d_pairs = estimate_distinct(
            EstimatorKind::Adaptive,
            n_total,
            r_sample,
            &pairs.freq_of_freq(),
        )
        .max(d_keys);
        let c_per_u = d_pairs / d_keys;

        // Design attrs + size model.
        let attrs: Vec<CmAttr> = stack
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.map(|spec_idx| CmAttr {
                    col: candidates[i].col,
                    bucket: candidates[i].specs[spec_idx].clone(),
                })
            })
            .collect();
        // Every key part is modeled at 8 bytes (raw values in these
        // schemas are ints/floats/short strings; buckets store an i64
        // lower bound).
        let key_bytes: f64 = attrs.len() as f64 * 8.0;
        let size_bytes = d_pairs * (key_bytes + 16.0);

        // Training-query cost through this design.
        let n_keys_selected = self.keys_selected(table, query, &attrs, d_keys);
        let params = CostParams::new(
            disk,
            table.heap().tups_per_page(),
            table.heap().len(),
            table.clustered().height(),
        );
        let cost_ms = params.cost_cm_unbounded(
            n_keys_selected,
            c_per_u,
            table.dir().avg_pages_per_bucket(),
            table.clustered().height() as f64,
        );
        DesignEstimate {
            design: CmDesign { attrs },
            c_per_u,
            keys: d_keys,
            pairs: d_pairs,
            size_bytes,
            cost_ms,
            slowdown: 0.0,
            size_ratio: 0.0,
        }
    }

    /// Estimate how many distinct CM keys the training query selects
    /// under a design: the product over key attributes of the per-
    /// attribute selected-key counts, capped by the design's total keys.
    fn keys_selected(
        &self,
        table: &Table,
        query: &Query,
        attrs: &[CmAttr],
        d_keys: f64,
    ) -> f64 {
        let mut product = 1.0;
        for a in attrs {
            let st = table.col_stats(a.col);
            let factor = match query.pred_on(a.col).map(|p| &p.op) {
                Some(PredOp::Eq(_)) => 1.0,
                Some(PredOp::In(vs)) => vs.len() as f64,
                Some(PredOp::Between(lo, hi)) => match &a.bucket {
                    BucketSpec::EquiWidth { width, .. } => {
                        match (lo.as_numeric(), hi.as_numeric()) {
                            (Some(lo), Some(hi)) if hi >= lo => ((hi - lo) / width).ceil() + 1.0,
                            _ => 1.0,
                        }
                    }
                    BucketSpec::EquiDepth { bounds } => {
                        match (lo.as_numeric(), hi.as_numeric()) {
                            (Some(lo), Some(hi)) if hi >= lo => {
                                (bounds.partition_point(|&b| b <= hi) as f64
                                    - bounds.partition_point(|&b| b <= lo) as f64)
                                    + 1.0
                            }
                            _ => 1.0,
                        }
                    }
                    BucketSpec::None => {
                        let frac = cm_query::Planner::range_fraction(table, a.col, lo, hi)
                            .unwrap_or(1.0);
                        (frac * st.map(|s| s.corr.distinct_u as f64).unwrap_or(1.0)).max(1.0)
                    }
                },
                // Unpredicated attribute: every one of its key values may
                // be selected.
                None => match &a.bucket {
                    BucketSpec::EquiWidth { width, .. } => {
                        // Domain span / width.
                        match st.and_then(|s| {
                            Some((s.min.as_ref()?.as_numeric()?, s.max.as_ref()?.as_numeric()?))
                        }) {
                            Some((mn, mx)) if mx > mn => ((mx - mn) / width).ceil(),
                            _ => 1.0,
                        }
                    }
                    BucketSpec::EquiDepth { bounds } => bounds.len() as f64 + 1.0,
                    BucketSpec::None => st.map(|s| s.corr.distinct_u as f64).unwrap_or(1.0),
                },
            };
            product *= factor.max(1.0);
        }
        product.min(d_keys).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_storage::{Column, DiskSim, Schema, Value, ValueType};
    use std::sync::Arc;

    /// eBay-like table: price softly determines catid; noise does not.
    fn table(disk: &DiskSim) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
            Column::new("noise", ValueType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..30_000i64)
            .map(|i| {
                let cat = i % 500;
                vec![
                    Value::Int(cat),
                    Value::Int(cat * 2000 + (i * 37) % 2000),
                    Value::Int((i * 31) % 1000),
                ]
            })
            .collect();
        let mut t = Table::build(disk, schema, rows, 50, 0, 60).unwrap();
        t.analyze_cols(&[1, 2]);
        t
    }

    fn advisor() -> Advisor {
        Advisor::new(AdvisorConfig { sample_size: 5_000, ..AdvisorConfig::default() })
    }

    #[test]
    fn recommends_a_bucketed_design_within_threshold() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk);
        let q = Query::single(Pred::between(1, 100_000i64, 101_000i64));
        let rec = advisor().recommend(&t, &disk.config(), &q, 0.10);
        assert!(!rec.designs.is_empty());
        let chosen = rec.chosen_design().expect("a design qualifies");
        assert!(chosen.slowdown <= 0.10 + 1e-9);
        // The chosen design is the smallest qualifying one.
        for d in &rec.designs {
            if d.slowdown <= 0.10 {
                assert!(chosen.size_bytes <= d.size_bytes + 1e-9);
            }
        }
        // And dramatically smaller than the dense B+Tree.
        assert!(chosen.size_bytes < 0.2 * rec.btree_size_bytes);
    }

    #[test]
    fn coarser_bucketings_estimate_smaller_sizes() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk);
        let q = Query::single(Pred::between(1, 100_000i64, 101_000i64));
        let rec = advisor().recommend(&t, &disk.config(), &q, 0.5);
        // Among single-attribute price designs, size must decrease as
        // width grows.
        let mut price_designs: Vec<(f64, f64)> = rec
            .designs
            .iter()
            .filter(|d| d.design.attrs.len() == 1 && d.design.attrs[0].col == 1)
            .filter_map(|d| match &d.design.attrs[0].bucket {
                BucketSpec::EquiWidth { width, .. } => Some((*width, d.size_bytes)),
                _ => None,
            })
            .collect();
        price_designs.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(price_designs.len() >= 3);
        for w in price_designs.windows(2) {
            assert!(
                w[1].1 <= w[0].1 * 1.15,
                "size should shrink (or stay) as width grows: {price_designs:?}"
            );
        }
    }

    #[test]
    fn unselective_predicates_are_pruned() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk);
        // noise BETWEEN covers ~90% of the domain: pruned; price Eq kept.
        let q = Query::new(vec![
            Pred::eq(1, 100_123i64),
            Pred::between(2, 0i64, 900i64),
        ]);
        let rec = advisor().recommend(&t, &disk.config(), &q, 0.10);
        assert_eq!(rec.candidates.len(), 1);
        assert_eq!(rec.candidates[0].col, 1);
    }

    #[test]
    fn design_count_matches_formula() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk);
        let q = Query::new(vec![
            Pred::eq(1, 100_123i64),
            Pred::eq(2, 5i64), // selective: 1/1000
        ]);
        let rec = advisor().recommend(&t, &disk.config(), &q, 0.10);
        let expected: usize =
            rec.candidates.iter().map(|c| c.specs.len() + 1).product::<usize>() - 1;
        assert_eq!(rec.designs.len(), expected, "∏(bucketings+1) − 1 (§6.1.3)");
    }

    #[test]
    fn tables_render() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk);
        let q = Query::single(Pred::eq(1, 100_123i64));
        let rec = advisor().recommend(&t, &disk.config(), &q, 0.10);
        let t4 = rec.table4();
        assert!(t4.contains("price"));
        let t5 = rec.table5(t.heap().schema(), 5);
        assert!(t5.contains("price"), "{t5}");
        assert!(t5.contains('%'));
    }

    #[test]
    fn estimated_c_per_u_tracks_truth_for_correlated_attr() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk);
        let q = Query::single(Pred::eq(1, 100_123i64));
        let rec = advisor().recommend(&t, &disk.config(), &q, 0.5);
        // The raw price design: price → catid is (nearly) functional, and
        // each catid spans ~2 buckets at target 60/bucket ⇒ c_per_u small.
        let raw = rec
            .designs
            .iter()
            .find(|d| {
                d.design.attrs.len() == 1 && matches!(d.design.attrs[0].bucket, BucketSpec::None)
            })
            .expect("raw design present");
        assert!(raw.c_per_u < 3.0, "estimated c_per_u {}", raw.c_per_u);
    }
}
