//! Per-attribute bucketing candidates (paper §6.1.2, Table 4).
//!
//! For each candidate attribute the advisor considers all equi-width
//! bucketings that yield between `2^2` and `2^16` buckets, with widths
//! scaling exponentially; few-valued attributes are also offered
//! unbucketed. The paper's Table 4 shows exactly this output for the SX6
//! query: `mode` (3 values) unbucketed, `type` (5 values) none–2¹,
//! `psfMag_g` (196,352 values) 2²–2¹⁶, `fieldID` (251 values) none–2⁶.

use cm_core::BucketSpec;
use cm_query::Table;

/// Bounds on the number of buckets a candidate bucketing may produce
/// (configurable in the paper; these are its defaults).
pub const MIN_BUCKETS: u64 = 1 << 2;
/// Upper bound on buckets (2^16).
pub const MAX_BUCKETS: u64 = 1 << 16;

/// The candidate bucketings of one attribute.
#[derive(Debug, Clone)]
pub struct AttrCandidates {
    /// Column position.
    pub col: usize,
    /// Column name (for Table 4-style reports).
    pub name: String,
    /// Estimated column cardinality.
    pub cardinality: u64,
    /// Candidate specs, coarsest last. `BucketSpec::None` first when the
    /// attribute is few-valued enough to store raw.
    pub specs: Vec<BucketSpec>,
    /// Per-spec bucket *level* in the paper's units (2^level distinct
    /// values per bucket); `None` for the unbucketed candidate.
    pub levels: Vec<Option<u32>>,
}

impl AttrCandidates {
    /// Human-readable bucket-width summary ("none ~ 2^6", "2^2 ~ 2^16"),
    /// the format of the paper's Table 4 (widths are values-per-bucket).
    pub fn widths_label(&self) -> String {
        let fmt = |l: &Option<u32>| match l {
            None => "none".to_string(),
            Some(k) => format!("2^{k}"),
        };
        match self.levels.len() {
            0 => "-".to_string(),
            1 => fmt(&self.levels[0]),
            n => format!("{} ~ {}", fmt(&self.levels[0]), fmt(&self.levels[n - 1])),
        }
    }
}

/// Enumerate the candidate bucketings of `col` (requires
/// [`Table::analyze_cols`] to have produced statistics for it).
///
/// Following §6.1.2, bucket *sizes* (distinct values per bucket) scale
/// exponentially and only bucketings yielding between [`MIN_BUCKETS`] and
/// [`MAX_BUCKETS`] buckets are kept; a column with 100 values is offered
/// sizes 2¹..2⁵. Numeric attributes realize a size of `2^k` as an
/// equi-width histogram with `cardinality / 2^k` bins over the observed
/// domain; categorical attributes are offered raw only.
pub fn bucketing_candidates(table: &Table, col: usize) -> AttrCandidates {
    let stats = table
        .col_stats(col)
        .unwrap_or_else(|| panic!("column {col} must be analyzed before advising"));
    let name = table.heap().schema().col_name(col).to_string();
    let cardinality = stats.corr.distinct_u;
    let mut specs = Vec::new();
    let mut levels = Vec::new();
    // Raw storage is viable when the key count itself is acceptable.
    if cardinality <= MAX_BUCKETS {
        specs.push(BucketSpec::None);
        levels.push(None);
    }
    let numeric_span = match (&stats.min, &stats.max) {
        (Some(lo), Some(hi)) => match (lo.as_numeric(), hi.as_numeric()) {
            (Some(lo), Some(hi)) if hi > lo => Some((lo, hi)),
            _ => None,
        },
        _ => None,
    };
    if let Some((lo, hi)) = numeric_span {
        for level in 1..=40u32 {
            let values_per_bucket = 1u64 << level;
            if values_per_bucket >= cardinality {
                break;
            }
            let buckets = cardinality / values_per_bucket;
            if buckets > MAX_BUCKETS {
                continue;
            }
            if buckets < MIN_BUCKETS {
                break;
            }
            specs.push(BucketSpec::covering(lo, hi, buckets as u32));
            levels.push(Some(level));
        }
    }
    AttrCandidates { col, name, cardinality, specs, levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_storage::{Column, DiskSim, Schema, Value, ValueType};
    use std::sync::Arc;

    fn table_with(disk: &DiskSim, make: impl Fn(i64) -> Vec<Value>, n: i64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("c", ValueType::Int),
            Column::new("u", ValueType::Int),
            Column::new("s", ValueType::Str),
        ]));
        let rows = (0..n).map(make).collect();
        let mut t = Table::build(disk, schema, rows, 20, 0, 40).unwrap();
        t.analyze_cols(&[1, 2]);
        t
    }

    #[test]
    fn few_valued_attribute_offered_raw() {
        let disk = DiskSim::with_defaults();
        let t = table_with(
            &disk,
            |i| vec![Value::Int(i), Value::Int(i % 3), Value::str("x")],
            1000,
        );
        let c = bucketing_candidates(&t, 1);
        assert_eq!(c.cardinality, 3);
        assert_eq!(c.specs, vec![BucketSpec::None], "nothing beyond raw for 3 values");
        assert_eq!(c.widths_label(), "none");
    }

    #[test]
    fn many_valued_attribute_gets_width_sweep() {
        let disk = DiskSim::with_defaults();
        let t = table_with(
            &disk,
            |i| vec![Value::Int(i), Value::Int(i * 7 % 60_000), Value::str("x")],
            60_000,
        );
        let c = bucketing_candidates(&t, 1);
        assert!(c.specs.contains(&BucketSpec::None), "60k values still fit raw");
        let widths: Vec<f64> = c
            .specs
            .iter()
            .filter_map(|s| match s {
                BucketSpec::EquiWidth { width, .. } => Some(*width),
                _ => None,
            })
            .collect();
        assert!(widths.len() >= 8, "several widths: {widths:?}");
        // Bucket counts all within bounds.
        for w in widths {
            let buckets = (60_000.0 / w).ceil() as u64;
            assert!((MIN_BUCKETS..=MAX_BUCKETS).contains(&buckets), "{buckets}");
        }
        assert!(c.widths_label().contains('~'));
    }

    #[test]
    fn categorical_attribute_is_raw_only() {
        let disk = DiskSim::with_defaults();
        let t = table_with(
            &disk,
            |i| vec![Value::Int(i), Value::Int(0), Value::str(format!("s{}", i % 40))],
            2000,
        );
        let c = bucketing_candidates(&t, 2);
        assert_eq!(c.specs, vec![BucketSpec::None]);
        assert_eq!(c.cardinality, 40);
    }

    #[test]
    #[should_panic(expected = "must be analyzed")]
    fn unanalyzed_column_panics() {
        let disk = DiskSim::with_defaults();
        let schema = Arc::new(Schema::new(vec![Column::new("a", ValueType::Int)]));
        let rows = (0..10i64).map(|i| vec![Value::Int(i)]).collect();
        let t = Table::build(&disk, schema, rows, 4, 0, 4).unwrap();
        bucketing_candidates(&t, 0);
    }
}
