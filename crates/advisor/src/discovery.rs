//! Soft functional dependency discovery (the paper's first contribution).
//!
//! "We describe a set of algorithms to search for soft functional
//! dependencies that can be exploited at query execution time" — more
//! general than BHUNT (categorical domains participate, not just
//! algebraic relations over ordered domains) and able to identify
//! **multi-attribute** FDs where a *pair* `(A1, A2)` determines `B` far
//! better than either attribute alone (the paper's
//! `(longitude, latitude) → zipcode`).
//!
//! The search follows the CORDS-style recipe the paper builds on:
//! candidate determinants are scored by the soft-FD strength
//! `c_per_u = D(det, dep) / D(det)` estimated from one shared random
//! sample with the Adaptive Estimator; a dependency is *soft* when the
//! strength is close to 1 and *exploitable* when, additionally, the
//! dependent attribute's value groups are not so large that locality is
//! useless (`c_tups` must be a small fraction of the table — the §5.3
//! gender caveat).

use cm_query::Table;
use cm_stats::{estimate_distinct, EstimatorKind, FreqTable, ReservoirSampler};
use cm_storage::{Rid, Value};

/// One discovered soft functional dependency `determinant → dependent`.
#[derive(Debug, Clone)]
pub struct SoftFd {
    /// Determinant columns (one or two).
    pub determinant: Vec<usize>,
    /// Dependent column.
    pub dependent: usize,
    /// Estimated strength: average distinct dependent values per
    /// determinant value (1.0 = hard FD).
    pub c_per_u: f64,
    /// Estimated distinct determinant values.
    pub distinct_det: f64,
    /// For two-attribute determinants: how much tighter the pair is than
    /// its best single attribute (`best_single_c_per_u / pair_c_per_u`);
    /// 1.0 for single-attribute FDs.
    pub pair_gain: f64,
}

impl SoftFd {
    /// Human-readable rendering against a schema.
    pub fn describe(&self, schema: &cm_storage::Schema) -> String {
        let det: Vec<&str> =
            self.determinant.iter().map(|&c| schema.col_name(c)).collect();
        format!(
            "({}) -> {}  [c_per_u = {:.2}, gain = {:.1}x]",
            det.join(", "),
            schema.col_name(self.dependent),
            self.c_per_u,
            self.pair_gain
        )
    }
}

/// Discovery tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Sample size for the estimators (paper/CORDS: ~30k).
    pub sample_size: usize,
    /// A dependency is reported when `c_per_u <= strength_threshold`.
    pub strength_threshold: f64,
    /// Prune trivial determinants: a column whose distinct count is below
    /// this cannot usefully localize access (the §5.3 gender caveat,
    /// applied to the determinant side).
    pub min_determinant_distinct: f64,
    /// A pair is only reported when it tightens the best single attribute
    /// by at least this factor (otherwise the single FD suffices).
    pub min_pair_gain: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            sample_size: 30_000,
            strength_threshold: 8.0,
            min_determinant_distinct: 8.0,
            min_pair_gain: 4.0,
            seed: 0xD15C,
        }
    }
}

/// Search for soft FDs `determinant ⊆ candidates → dependent`.
///
/// Considers every single candidate column and every candidate pair,
/// estimating strengths from one shared sample. Results are sorted by
/// strength (tightest first); pairs appear only when they beat their best
/// constituent by [`DiscoveryConfig::min_pair_gain`].
pub fn discover_soft_fds(
    table: &Table,
    candidates: &[usize],
    dependent: usize,
    config: &DiscoveryConfig,
) -> Vec<SoftFd> {
    // Shared sample.
    let mut reservoir = ReservoirSampler::new(config.sample_size, config.seed);
    for (rid, _) in table.heap().iter() {
        reservoir.observe(rid);
    }
    let sample: Vec<Rid> = reservoir.into_sample();
    let n_total = table.heap().len();
    let r = sample.len() as u64;

    // Pre-hash each candidate column and the dependent over the sample.
    let hash_col = |col: usize| -> Vec<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        sample
            .iter()
            .map(|&rid| {
                let mut h = DefaultHasher::new();
                table.heap().peek(rid).expect("sampled rid valid")[col].hash(&mut h);
                h.finish()
            })
            .collect()
    };
    let dep_hashes = hash_col(dependent);
    let cand_hashes: Vec<Vec<u64>> = candidates.iter().map(|&c| hash_col(c)).collect();

    // Strength of an arbitrary determinant given its per-row hashes.
    let strength = |det: &[&Vec<u64>]| -> (f64, f64) {
        let mut keys = FreqTable::new();
        let mut pairs = FreqTable::new();
        for i in 0..dep_hashes.len() {
            let mut h = 0xcbf29ce484222325u64;
            for part in det {
                h ^= part[i];
                h = h.wrapping_mul(0x100000001b3);
            }
            keys.observe(h);
            pairs.observe(h ^ dep_hashes[i].wrapping_mul(0x9E3779B97F4A7C15));
        }
        let d_keys =
            estimate_distinct(EstimatorKind::Adaptive, n_total, r, &keys.freq_of_freq()).max(1.0);
        let d_pairs =
            estimate_distinct(EstimatorKind::Adaptive, n_total, r, &pairs.freq_of_freq())
                .max(d_keys);
        (d_pairs / d_keys, d_keys)
    };

    let mut out: Vec<SoftFd> = Vec::new();
    let mut single_strength: Vec<(f64, f64)> = Vec::with_capacity(candidates.len());
    for (i, &col) in candidates.iter().enumerate() {
        if col == dependent {
            single_strength.push((f64::INFINITY, 0.0));
            continue;
        }
        let (c_per_u, d_keys) = strength(&[&cand_hashes[i]]);
        single_strength.push((c_per_u, d_keys));
        if c_per_u <= config.strength_threshold && d_keys >= config.min_determinant_distinct {
            out.push(SoftFd {
                determinant: vec![col],
                dependent,
                c_per_u,
                distinct_det: d_keys,
                pair_gain: 1.0,
            });
        }
    }
    // Pairs: only meaningful when the pair is substantially tighter than
    // its best constituent.
    for i in 0..candidates.len() {
        for j in (i + 1)..candidates.len() {
            if candidates[i] == dependent || candidates[j] == dependent {
                continue;
            }
            let best_single = single_strength[i].0.min(single_strength[j].0);
            if best_single <= config.strength_threshold {
                // A good single FD exists; the pair adds bookkeeping only.
                continue;
            }
            let (c_per_u, d_keys) = strength(&[&cand_hashes[i], &cand_hashes[j]]);
            let gain = best_single / c_per_u.max(1e-9);
            if c_per_u <= config.strength_threshold
                && gain >= config.min_pair_gain
                && d_keys >= config.min_determinant_distinct
            {
                out.push(SoftFd {
                    determinant: vec![candidates[i], candidates[j]],
                    dependent,
                    c_per_u,
                    distinct_det: d_keys,
                    pair_gain: gain,
                });
            }
        }
    }
    out.sort_by(|a, b| a.c_per_u.total_cmp(&b.c_per_u));
    out
}

/// Convenience: discover FDs from every non-clustered column (and their
/// pairs) to the table's clustered attribute — the exploitable direction
/// for CMs.
pub fn discover_for_clustered(table: &Table, config: &DiscoveryConfig) -> Vec<SoftFd> {
    let dep = table.clustered_col();
    let candidates: Vec<usize> =
        (0..table.heap().schema().arity()).filter(|&c| c != dep).collect();
    discover_soft_fds(table, &candidates, dep, config)
}

/// Map raw clustered values onto coarse position blocks for discovery
/// against a near-unique clustered key (a unique key trivially "depends"
/// on nothing; what CMs exploit is proximity, so the dependent is the
/// clustered *neighborhood*). Returns a derived column of `blocks` ids.
pub fn clustered_blocks(table: &Table, blocks: u64) -> Vec<Value> {
    let n = table.heap().len().max(1);
    (0..n).map(|rid| Value::Int((rid * blocks / n) as i64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_storage::{Column, DiskSim, Schema, ValueType};
    use std::sync::Arc;

    /// Table with: a strong single FD (u1 -> c), a pair FD ((x, y) -> c
    /// where each alone is weak), and an unrelated noise column.
    fn demo(disk: &DiskSim) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("c", ValueType::Int),
            Column::new("u1", ValueType::Int),
            Column::new("x", ValueType::Int),
            Column::new("y", ValueType::Int),
            Column::new("noise", ValueType::Int),
        ]));
        let mut rows = Vec::new();
        for i in 0..30_000i64 {
            let c = i % 900; // 900 clustered values, c = x*30 + y
            rows.push(vec![
                Value::Int(c),
                Value::Int(c * 2 + (i % 2)), // u1 -> c nearly 1:1
                Value::Int(c / 30),          // x: 30 values, weak alone
                Value::Int(c % 30),          // y: 30 values, weak alone
                Value::Int((i * 31) % 997),  // noise
            ]);
        }
        Table::build(disk, schema, rows, 50, 0, 100).unwrap()
    }

    fn config() -> DiscoveryConfig {
        DiscoveryConfig { sample_size: 8_000, ..DiscoveryConfig::default() }
    }

    #[test]
    fn finds_strong_single_fd() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let fds = discover_soft_fds(&t, &[1, 4], 0, &config());
        assert!(
            fds.iter().any(|f| f.determinant == vec![1] && f.c_per_u < 2.0),
            "u1 -> c must be discovered: {fds:?}"
        );
        assert!(
            !fds.iter().any(|f| f.determinant == vec![4]),
            "noise must not be reported: {fds:?}"
        );
    }

    #[test]
    fn finds_multi_attribute_fd_where_singles_fail() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let fds = discover_soft_fds(&t, &[2, 3], 0, &config());
        // Neither x nor y alone qualifies (each maps to 30 c values)...
        assert!(!fds.iter().any(|f| f.determinant.len() == 1), "{fds:?}");
        // ...but the pair does, with a large gain.
        let pair = fds
            .iter()
            .find(|f| f.determinant == vec![2, 3])
            .expect("pair (x, y) -> c discovered");
        assert!(pair.c_per_u < 2.0, "pair strength {}", pair.c_per_u);
        assert!(pair.pair_gain > 5.0, "gain {}", pair.pair_gain);
    }

    #[test]
    fn pairs_not_reported_when_single_suffices() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let fds = discover_soft_fds(&t, &[1, 2], 0, &config());
        // u1 alone is strong, so (u1, x) must not be emitted.
        assert!(fds.iter().all(|f| f.determinant.len() == 1), "{fds:?}");
    }

    #[test]
    fn results_sorted_by_strength() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let fds = discover_for_clustered(&t, &config());
        for w in fds.windows(2) {
            assert!(w[0].c_per_u <= w[1].c_per_u);
        }
        assert!(!fds.is_empty());
    }

    #[test]
    fn describe_renders() {
        let disk = DiskSim::with_defaults();
        let t = demo(&disk);
        let fds = discover_soft_fds(&t, &[2, 3], 0, &config());
        let s = fds[0].describe(t.heap().schema());
        assert!(s.contains("(x, y) -> c"), "{s}");
    }

    #[test]
    fn few_valued_determinants_are_pruned() {
        // A 2-valued column "determines" nothing useful even if c_per_u
        // is low relative to its cardinality.
        let disk = DiskSim::with_defaults();
        let schema = Arc::new(Schema::new(vec![
            Column::new("c", ValueType::Int),
            Column::new("flag", ValueType::Int),
        ]));
        let rows = (0..5000i64)
            .map(|i| vec![Value::Int(i % 2), Value::Int(i % 2)])
            .collect();
        let t = Table::build(&disk, schema, rows, 50, 0, 100).unwrap();
        let fds = discover_soft_fds(&t, &[1], 0, &config());
        assert!(fds.is_empty(), "{fds:?}");
    }
}
