//! Workload-aware physical-design advisor.
//!
//! The paper's advisor (§6, Tables 4/5) picks a CM design from **query
//! cost alone** — the right frame when every access structure is a CM.
//! A running engine faces a broader question: for each frequently-read
//! column, should it carry a dense secondary **B+Tree**, a memory-
//! resident **CM**, or **nothing at all**? The answer depends on the
//! read/write mix: B+Trees serve reads tightly but tax every INSERT with
//! a descent and a leaf write, while CMs are free to maintain but drag
//! bucket-granularity false positives into every read (and, under a
//! bounded buffer pool, a larger working set).
//!
//! This module prices that trade-off end to end:
//!
//! * a [`WorkloadProfile`] accumulates per-column read counts, lookup-key
//!   widths, and (sketched) distinct queried values, plus the global
//!   write count — the engine records it online from the queries and
//!   writes it executes;
//! * [`recommend_for_workload`] enumerates mixed candidate **design
//!   sets** (`{B+Tree, CM, none}` per candidate column), prices each
//!   with the §3–§6 read-cost formulas *plus* the per-write maintenance
//!   model ([`cm_cost::CostParams::cost_secondary_maintenance`]) and a
//!   pool-residency discount, and returns the cheapest [`DesignSet`];
//! * the engine applies a chosen set with `Engine::apply_design`
//!   (build/drop per shard), closing the loop the ROADMAP asks for:
//!   *pick the structure set from the workload's read/write ratio, not
//!   just query cost*.
//!
//! Deliberate approximations (each an upper bound, so the comparison
//! stays conservative): multi-predicate queries are charged to every
//! predicated column as if it alone served them; bucketed CM lookups are
//! priced at the raw lookup-key count; and maintenance is priced cold
//! (a warm pool absorbs part of the B+Tree descent).

use crate::candidates::bucketing_candidates;
use cm_core::{BucketSpec, CmAttr, CmSpec};
use cm_cost::CostParams;
use cm_query::{Table, DEFAULT_TREE_ORDER};
use cm_stats::{estimate_distinct, DistinctSampler, EstimatorKind, FreqTable, ReservoirSampler};
use cm_storage::{DiskConfig, Rid, Schema};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Bounded size of the per-column distinct-queried-values sketch.
const DISTINCT_SKETCH_CAP: usize = 2048;

/// Per-structure tie-break penalty (ms): with equal estimated cost the
/// advisor prefers the design with fewer structures.
const STRUCTURE_EPSILON_MS: f64 = 1e-6;

/// What one column's read traffic looked like.
#[derive(Debug, Clone)]
pub struct ColumnAccess {
    /// Column position.
    pub col: usize,
    /// Queries with a predicate on this column.
    pub reads: u64,
    /// Cumulative estimated lookup keys across those queries (1 per Eq,
    /// list length per IN, estimated distinct values per range).
    pub lookup_keys: f64,
    /// Joins that probed this column (the build side's distinct keys
    /// arriving as one wide IN-shaped lookup). A column that is hot as a
    /// join key benefits from a CM exactly like a hot IN column — the
    /// clamped probe is priced with the same formulas — so these reads
    /// count toward structure selection too.
    pub join_probes: u64,
    /// Sketch of distinct predicate values queried (bounded space).
    distinct: DistinctSampler,
}

impl ColumnAccess {
    fn new(col: usize) -> Self {
        ColumnAccess {
            col,
            reads: 0,
            lookup_keys: 0.0,
            join_probes: 0,
            distinct: DistinctSampler::new(DISTINCT_SKETCH_CAP),
        }
    }

    /// Average lookup keys per query on this column.
    pub fn avg_lookup_keys(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            (self.lookup_keys / self.reads as f64).max(1.0)
        }
    }

    /// Estimated distinct predicate values queried on this column — the
    /// column's hot set, which sizes its share of the buffer-pool
    /// working set.
    pub fn distinct_queried(&self) -> f64 {
        self.distinct.estimate().max(1.0)
    }
}

/// Per-column read/write traffic accumulated online by the engine.
///
/// `reads` counts queries (a query predicating two columns counts once
/// globally but contributes to both columns' [`ColumnAccess`]);
/// `writes` counts row inserts/deletes — every write touches the whole
/// row, so each candidate structure pays its maintenance for each one.
#[derive(Debug, Clone, Default)]
pub struct WorkloadProfile {
    /// Read queries observed.
    pub reads: u64,
    /// Row writes (inserts + deletes) observed.
    pub writes: u64,
    cols: Vec<ColumnAccess>,
}

impl WorkloadProfile {
    /// An empty profile.
    pub fn new() -> Self {
        WorkloadProfile::default()
    }

    /// Record one read query (call once per query, then
    /// [`WorkloadProfile::note_pred`] once per predicate).
    pub fn note_read(&mut self) {
        self.reads += 1;
    }

    /// Record one predicate of a read query: the column, the estimated
    /// lookup-key count, and the hashes of the predicated values (for
    /// the distinct-queried sketch).
    pub fn note_pred(&mut self, col: usize, lookup_keys: f64, value_hashes: &[u64]) {
        let access = match self.cols.iter_mut().find(|c| c.col == col) {
            Some(a) => a,
            None => {
                self.cols.push(ColumnAccess::new(col));
                self.cols.sort_by_key(|c| c.col);
                self.cols.iter_mut().find(|c| c.col == col).expect("just inserted")
            }
        };
        access.reads += 1;
        access.lookup_keys += lookup_keys.max(1.0);
        for &h in value_hashes {
            access.distinct.observe_hash(h);
        }
    }

    /// Record one join probing `col` with `lookup_keys` distinct
    /// build-side keys: counted like a wide IN predicate (so the advisor
    /// prices hot join keys into structure selection) plus a join-probe
    /// tally (so the profile shows *why* the column is hot).
    pub fn note_join_probe(&mut self, col: usize, lookup_keys: f64, value_hashes: &[u64]) {
        self.note_pred(col, lookup_keys, value_hashes);
        let access = self
            .cols
            .iter_mut()
            .find(|c| c.col == col)
            .expect("note_pred inserted the column");
        access.join_probes += 1;
    }

    /// Record one row write (insert or delete).
    pub fn note_write(&mut self) {
        self.writes += 1;
    }

    /// Record `n` row writes at once (batched deletes).
    pub fn note_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Per-column accesses, ascending by column.
    pub fn cols(&self) -> &[ColumnAccess] {
        &self.cols
    }

    /// One column's access record, if it was ever predicated.
    pub fn col(&self, col: usize) -> Option<&ColumnAccess> {
        self.cols.iter().find(|c| c.col == col)
    }

    /// Total operations observed.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of operations that were reads (0 when nothing ran).
    pub fn read_fraction(&self) -> f64 {
        if self.ops() == 0 {
            0.0
        } else {
            self.reads as f64 / self.ops() as f64
        }
    }

    /// Forget everything (start a fresh observation window).
    pub fn reset(&mut self) {
        *self = WorkloadProfile::default();
    }

    /// Hash a predicate value for [`WorkloadProfile::note_pred`].
    pub fn hash_value<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }
}

/// The structure a design assigns to one column.
#[derive(Debug, Clone, PartialEq)]
pub enum Structure {
    /// No secondary structure: reads on this column scan.
    None,
    /// A dense secondary B+Tree on the column.
    BTree,
    /// A Correlation Map with the given (possibly bucketed) spec.
    Cm(CmSpec),
}

impl Structure {
    /// Whether this choice materializes a structure.
    pub fn is_some(&self) -> bool {
        !matches!(self, Structure::None)
    }
}

/// One column's slot in a [`DesignSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDesign {
    /// Column position.
    pub col: usize,
    /// The structure assigned.
    pub structure: Structure,
    /// Estimated cold cost of one read query on this column through the
    /// structure (ms).
    pub cold_read_ms: f64,
    /// Estimated maintenance cost one row write charges this structure
    /// (ms).
    pub maintenance_ms: f64,
}

/// A candidate physical design: one [`Structure`] per candidate column,
/// priced against the profiled workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSet {
    /// Per-column choices, ascending by column. Columns absent from the
    /// set carry no structure.
    pub columns: Vec<ColumnDesign>,
    /// Estimated total read cost of the profiled reads through this set
    /// (ms, pool-discounted).
    pub read_ms: f64,
    /// Estimated total maintenance cost of the profiled writes (ms).
    pub write_ms: f64,
    /// `read_ms + write_ms` (the ranking key).
    pub total_ms: f64,
    /// Estimated steady-state working set of the set's structures
    /// (heap pages the profiled hot reads keep touching).
    pub working_set_pages: f64,
    /// The pool-miss fraction applied to structure-served reads.
    pub miss_rate: f64,
}

impl DesignSet {
    /// Number of B+Trees in the set.
    pub fn btrees(&self) -> usize {
        self.columns.iter().filter(|c| matches!(c.structure, Structure::BTree)).count()
    }

    /// Number of CMs in the set.
    pub fn cms(&self) -> usize {
        self.columns.iter().filter(|c| matches!(c.structure, Structure::Cm(_))).count()
    }

    /// Human-readable summary, e.g. `CAT4:btree CAT5:cm(2^12) Price:-`.
    pub fn label(&self, schema: &Schema) -> String {
        self.columns
            .iter()
            .map(|c| {
                let name = schema.col_name(c.col);
                match &c.structure {
                    Structure::None => format!("{name}:-"),
                    Structure::BTree => format!("{name}:btree"),
                    Structure::Cm(spec) => match &spec.attrs()[0].bucket {
                        BucketSpec::None => format!("{name}:cm"),
                        BucketSpec::EquiWidth { width, .. } => {
                            let log = width.log2();
                            if (log - log.round()).abs() < 1e-9 && log >= 0.0 {
                                format!("{name}:cm(2^{})", log.round() as i64)
                            } else {
                                format!("{name}:cm(w={width:.2})")
                            }
                        }
                        BucketSpec::EquiDepth { bounds } => {
                            format!("{name}:cm(eqd:{})", bounds.len() + 1)
                        }
                    },
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Workload-advisor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadAdvisorConfig {
    /// Random heap sample used to estimate bucketed `c_per_u` per CM
    /// candidate (the §4.2 Adaptive Estimator over one shared sample).
    pub sample_size: usize,
    /// Columns read fewer times than this get no structure at all.
    pub min_reads: u64,
    /// Floor on the modeled pool-miss fraction: even a fully resident
    /// working set pays this share of cold reads (first touches,
    /// eviction churn from concurrent writes).
    pub miss_floor: f64,
    /// Cap on enumerated design sets; beyond it the advisor falls back
    /// to independent per-column choices (still optimal when the pool
    /// discount does not couple the columns).
    pub max_sets: usize,
    /// CM bucketing candidates evaluated per column (evenly spaced over
    /// the Table 4 sweep).
    pub max_cm_specs: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for WorkloadAdvisorConfig {
    fn default() -> Self {
        WorkloadAdvisorConfig {
            sample_size: 10_000,
            min_reads: 1,
            miss_floor: 0.05,
            max_sets: 4096,
            max_cm_specs: 4,
            seed: 0x00AD_7177,
        }
    }
}

/// The advisor's output for one profiled workload.
#[derive(Debug, Clone)]
pub struct WorkloadRecommendation {
    /// The cheapest design set.
    pub best: DesignSet,
    /// Every enumerated set, ascending by estimated total cost (capped
    /// at the config's `max_sets`).
    pub sets: Vec<DesignSet>,
    /// The profile snapshot the recommendation was computed from.
    pub profile: WorkloadProfile,
}

impl WorkloadRecommendation {
    /// Render the top `n` sets as a comparison listing.
    pub fn table(&self, schema: &Schema, n: usize) -> String {
        let mut out = String::from("est total | est reads | est writes | design set\n");
        for s in self.sets.iter().take(n) {
            out.push_str(&format!(
                "{:>9.1} | {:>9.1} | {:>10.1} | {}\n",
                s.total_ms,
                s.read_ms,
                s.write_ms,
                s.label(schema)
            ));
        }
        out
    }
}

/// One per-column structure option with its precomputed pricing inputs.
#[derive(Debug, Clone)]
struct OptionCost {
    structure: Structure,
    /// Cold per-read cost through this structure (ms).
    cold_read_ms: f64,
    /// Steady-state heap pages this column's hot reads keep touching.
    ws_pages: f64,
    /// Per-write maintenance (ms).
    maintenance_ms: f64,
    /// Whether the pool discount applies (scans always pay cold).
    pool_aware: bool,
}

#[derive(Debug, Clone)]
struct ColOptions {
    col: usize,
    reads: f64,
    options: Vec<OptionCost>,
}

/// Estimated height of a dense secondary B+Tree over `entries` postings
/// at the workspace's [`DEFAULT_TREE_ORDER`] (half-full nodes).
fn est_btree_height(entries: u64) -> usize {
    let fanout = (DEFAULT_TREE_ORDER / 2).max(2) as f64;
    let mut height = 1usize;
    let mut capacity = fanout;
    while capacity < entries as f64 && height < 10 {
        height += 1;
        capacity *= fanout;
    }
    height
}

/// Estimate the bucketed `c_per_u` of `(col, spec)` — distinct clustered
/// buckets per distinct bucketed key — from one shared random sample,
/// with the §4.2 Adaptive Estimator (exactly the offline advisor's
/// method, [`crate::Advisor`]).
fn bucketed_c_per_u(
    table: &Table,
    col: usize,
    spec: &BucketSpec,
    sample: &[Rid],
    cbuckets: &[u32],
) -> f64 {
    let mut keys = FreqTable::new();
    let mut pairs = FreqTable::new();
    for (i, &rid) in sample.iter().enumerate() {
        let row = table.heap().peek(rid).expect("sampled rid valid");
        let mut h = DefaultHasher::new();
        spec.key_part(&row[col]).hash(&mut h);
        let kh = h.finish();
        keys.observe(kh);
        pairs.observe(kh ^ (u64::from(cbuckets[i]).wrapping_mul(0x9E3779B97F4A7C15)));
    }
    let n_total = table.heap().len();
    let r_sample = sample.len() as u64;
    let d_keys =
        estimate_distinct(EstimatorKind::Adaptive, n_total, r_sample, &keys.freq_of_freq())
            .max(1.0);
    let d_pairs =
        estimate_distinct(EstimatorKind::Adaptive, n_total, r_sample, &pairs.freq_of_freq())
            .max(d_keys);
    d_pairs / d_keys
}

/// Recommend the per-column structure set for a profiled workload.
///
/// `table` supplies statistics and the sampling substrate (on a sharded
/// engine: the largest partition); `total_rows` is the table-wide row
/// count so scan and tree-height estimates price the whole table;
/// `pool_pages` bounds the buffer pool the read working set competes
/// for. Candidate columns are the profiled read columns (minus the
/// clustered column, which the clustered index already serves) that
/// have statistics — run [`Table::analyze_cols`] on them first.
///
/// Every candidate set's cost is
/// `Σ_col reads(col) · read_ms(col, structure) · miss + writes · Σ maintenance`,
/// where `miss` is the pool-miss fraction implied by the **whole set's**
/// working footprint — the coupling that makes this a set enumeration
/// rather than independent per-column picks.
pub fn recommend_for_workload(
    table: &Table,
    disk: &DiskConfig,
    total_rows: u64,
    pool_pages: usize,
    profile: &WorkloadProfile,
    cfg: &WorkloadAdvisorConfig,
) -> WorkloadRecommendation {
    let tpp = table.heap().tups_per_page();
    let clustered_height = table.clustered().height();
    let sec_height = est_btree_height(total_rows);
    let scan_params = CostParams::new(disk, tpp, total_rows, 1);
    let scan_ms = scan_params.cost_scan();
    let heap_pages = scan_params.pages();
    let pages_per_bucket = table.dir().avg_pages_per_bucket();

    // Candidate columns: profiled read columns with statistics, minus
    // the clustered column.
    let candidates: Vec<&ColumnAccess> = profile
        .cols()
        .iter()
        .filter(|c| {
            c.reads >= cfg.min_reads.max(1)
                && c.col != table.clustered_col()
                && table.col_stats(c.col).is_some()
        })
        .collect();

    // One shared random sample for every CM candidate's c_per_u.
    let (sample, cbuckets) = if candidates.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        let mut reservoir = ReservoirSampler::new(cfg.sample_size, cfg.seed);
        for (rid, _) in table.heap().iter() {
            reservoir.observe(rid);
        }
        let sample: Vec<Rid> = reservoir.into_sample();
        let cbuckets: Vec<u32> =
            sample.iter().map(|&rid| table.dir().bucket_of(rid)).collect();
        (sample, cbuckets)
    };

    // Per-column structure options.
    let mut cols: Vec<ColOptions> = Vec::with_capacity(candidates.len());
    for access in &candidates {
        let col = access.col;
        let st = table.col_stats(col).expect("filtered above");
        let n = access.avg_lookup_keys();
        let hot = access.distinct_queried();
        let mut options = vec![OptionCost {
            structure: Structure::None,
            cold_read_ms: scan_ms,
            ws_pages: 0.0,
            maintenance_ms: 0.0,
            pool_aware: false,
        }];

        // B+Tree: the planner will pick the cheaper of sorted/pipelined.
        let bt_params = CostParams::new(disk, tpp, total_rows, sec_height);
        let bt_read = bt_params
            .cost_sorted_from_stats(n, &st.corr)
            .min(bt_params.cost_pipelined(n, st.corr.u_tups))
            .min(scan_ms);
        options.push(OptionCost {
            structure: Structure::BTree,
            cold_read_ms: bt_read,
            ws_pages: (hot * st.corr.c_per_u * bt_params.c_pages(st.corr.c_tups))
                .min(heap_pages),
            maintenance_ms: bt_params.cost_secondary_maintenance(DEFAULT_TREE_ORDER as f64),
            pool_aware: true,
        });

        // CM: the cheapest of a few bucketings from the Table 4 sweep.
        let cand = bucketing_candidates(table, col);
        let specs = spaced(&cand.specs, cfg.max_cm_specs);
        let cm_params = CostParams::new(disk, tpp, total_rows, clustered_height);
        let mut best_cm: Option<(BucketSpec, f64, f64)> = None;
        for spec in specs {
            let cpu = bucketed_c_per_u(table, col, &spec, &sample, &cbuckets);
            let cost = cm_params
                .cost_cm_unbounded(n, cpu, pages_per_bucket, clustered_height as f64)
                .min(scan_ms);
            if best_cm.as_ref().is_none_or(|(_, best_cost, _)| cost < *best_cost) {
                best_cm = Some((spec, cost, cpu));
            }
        }
        if let Some((spec, cost, cpu)) = best_cm {
            options.push(OptionCost {
                structure: Structure::Cm(CmSpec::new(vec![CmAttr { col, bucket: spec }])),
                cold_read_ms: cost,
                ws_pages: (hot * cpu * pages_per_bucket).min(heap_pages),
                maintenance_ms: cm_params.cost_cm_maintenance(),
                pool_aware: true,
            });
        }
        cols.push(ColOptions { col, reads: access.reads as f64, options });
    }

    // Enumerate the cross product of per-column options, pricing each
    // set with the shared-pool miss fraction its combined footprint
    // implies.
    let writes = profile.writes as f64;
    let price = |choice: &[usize]| -> DesignSet {
        let ws: f64 = choice
            .iter()
            .zip(&cols)
            .map(|(&o, c)| c.options[o].ws_pages)
            .sum();
        let miss = if ws > 0.0 {
            (1.0 - pool_pages as f64 / ws).clamp(cfg.miss_floor, 1.0)
        } else {
            cfg.miss_floor
        };
        let mut read_ms = 0.0;
        let mut write_ms = 0.0;
        let mut total_ms = 0.0;
        let mut columns = Vec::with_capacity(cols.len());
        for (&o, c) in choice.iter().zip(&cols) {
            let opt = &c.options[o];
            let eff_miss = if opt.pool_aware { miss } else { 1.0 };
            let eff_read = opt.cold_read_ms * eff_miss;
            read_ms += c.reads * eff_read;
            write_ms += writes * opt.maintenance_ms;
            total_ms += scan_params.cost_mixed(c.reads, eff_read, writes, opt.maintenance_ms)
                + f64::from(u8::from(opt.structure.is_some())) * STRUCTURE_EPSILON_MS;
            columns.push(ColumnDesign {
                col: c.col,
                structure: opt.structure.clone(),
                cold_read_ms: opt.cold_read_ms,
                maintenance_ms: opt.maintenance_ms,
            });
        }
        DesignSet { columns, read_ms, write_ms, total_ms, working_set_pages: ws, miss_rate: miss }
    };

    let n_sets: usize = cols.iter().map(|c| c.options.len()).product::<usize>().max(1);
    let mut sets: Vec<DesignSet> = Vec::new();
    if cols.is_empty() {
        sets.push(price(&[]));
    } else if n_sets <= cfg.max_sets {
        let mut choice = vec![0usize; cols.len()];
        loop {
            sets.push(price(&choice));
            // Odometer increment over the per-column option counts.
            let mut i = 0;
            loop {
                choice[i] += 1;
                if choice[i] < cols[i].options.len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
                if i == cols.len() {
                    break;
                }
            }
            if i == cols.len() {
                break;
            }
        }
    } else {
        // Too many columns to enumerate: two-pass greedy — pick per-column
        // minima cold, then re-pick with the implied shared-pool miss.
        let mut choice = vec![0usize; cols.len()];
        for _ in 0..2 {
            let miss = price(&choice).miss_rate;
            for (i, c) in cols.iter().enumerate() {
                choice[i] = c
                    .options
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let cost = |o: &OptionCost| {
                            let eff_read =
                                o.cold_read_ms * if o.pool_aware { miss } else { 1.0 };
                            scan_params.cost_mixed(c.reads, eff_read, writes, o.maintenance_ms)
                                + f64::from(u8::from(o.structure.is_some()))
                                    * STRUCTURE_EPSILON_MS
                        };
                        cost(a.1).total_cmp(&cost(b.1))
                    })
                    .map(|(i, _)| i)
                    .expect("every column has options");
            }
        }
        sets.push(price(&choice));
    }
    sets.sort_by(|a, b| a.total_ms.total_cmp(&b.total_ms));
    let best = sets.first().cloned().expect("at least one set");
    WorkloadRecommendation { best, sets, profile: profile.clone() }
}

/// Up to `n` evenly spaced elements of `specs` (always including the
/// first and last).
fn spaced(specs: &[BucketSpec], n: usize) -> Vec<BucketSpec> {
    if specs.len() <= n.max(1) {
        return specs.to_vec();
    }
    let n = n.max(2);
    (0..n)
        .map(|i| specs[i * (specs.len() - 1) / (n - 1)].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_storage::{Column, DiskSim, Schema, Value, ValueType};
    use std::sync::Arc;

    /// Correlated table: `price` softly determines `catid`; `noise`
    /// does not.
    fn table(disk: &DiskSim, bucket_target: u64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("catid", ValueType::Int),
            Column::new("price", ValueType::Int),
            Column::new("noise", ValueType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..30_000i64)
            .map(|i| {
                let cat = i % 500;
                vec![
                    Value::Int(cat),
                    Value::Int(cat * 2000 + (i * 37) % 2000),
                    Value::Int((i * 31) % 1000),
                ]
            })
            .collect();
        let mut t = Table::build(disk, schema, rows, 50, 0, bucket_target).unwrap();
        t.analyze_cols(&[1, 2]);
        t
    }

    fn profile(reads_per_col: &[(usize, u64)], writes: u64) -> WorkloadProfile {
        let mut p = WorkloadProfile::new();
        for &(col, reads) in reads_per_col {
            for i in 0..reads {
                p.note_read();
                p.note_pred(col, 1.0, &[WorkloadProfile::hash_value(&(i % 64))]);
            }
        }
        for _ in 0..writes {
            p.note_write();
        }
        p
    }

    fn cfg() -> WorkloadAdvisorConfig {
        WorkloadAdvisorConfig { sample_size: 5_000, ..WorkloadAdvisorConfig::default() }
    }

    #[test]
    fn profile_accumulates_and_resets() {
        let mut p = WorkloadProfile::new();
        p.note_read();
        p.note_pred(3, 1.0, &[1]);
        p.note_pred(1, 4.0, &[2, 3]);
        p.note_read();
        p.note_pred(3, 2.0, &[4]);
        p.note_write();
        assert_eq!(p.reads, 2);
        assert_eq!(p.writes, 1);
        assert_eq!(p.ops(), 3);
        assert!((p.read_fraction() - 2.0 / 3.0).abs() < 1e-9);
        // Columns are kept sorted.
        let cols: Vec<usize> = p.cols().iter().map(|c| c.col).collect();
        assert_eq!(cols, vec![1, 3]);
        let c3 = p.col(3).unwrap();
        assert_eq!(c3.reads, 2);
        assert!((c3.avg_lookup_keys() - 1.5).abs() < 1e-9);
        assert!((c3.distinct_queried() - 2.0).abs() < 1e-9);
        assert!(p.col(0).is_none());
        p.reset();
        assert_eq!(p.ops(), 0);
        assert!(p.cols().is_empty());
    }

    #[test]
    fn join_probes_count_as_wide_in_lookups() {
        let mut p = WorkloadProfile::new();
        p.note_read();
        p.note_join_probe(2, 40.0, &[1, 2, 3]);
        p.note_read();
        p.note_pred(2, 1.0, &[4]);
        let c = p.col(2).unwrap();
        assert_eq!(c.join_probes, 1);
        assert_eq!(c.reads, 2, "a join probe is also a read of the column");
        assert!((c.lookup_keys - 41.0).abs() < 1e-9);
        assert!((c.distinct_queried() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn write_heavy_mix_drops_the_btree() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk, 60);
        // 10/90: B+Tree maintenance dwarfs its read advantage.
        let p = profile(&[(1, 100)], 900);
        let rec = recommend_for_workload(&t, &disk.config(), t.heap().len(), 256, &p, &cfg());
        assert_eq!(rec.best.btrees(), 0, "best: {:?}", rec.best);
        // The read column still deserves a free-to-maintain CM.
        assert_eq!(rec.best.cms(), 1);
        assert_eq!(rec.best.columns[0].col, 1);
    }

    #[test]
    fn read_heavy_mix_on_a_tight_pool_prefers_the_btree() {
        let disk = DiskSim::with_defaults();
        // Wide buckets (600 tuples = 12 pages): CM reads drag a large
        // working set, the B+Tree's tight postings fit the pool.
        let t = table(&disk, 600);
        let p = profile(&[(1, 900)], 100);
        let rec = recommend_for_workload(&t, &disk.config(), t.heap().len(), 256, &p, &cfg());
        assert_eq!(
            rec.best.btrees(),
            1,
            "best: {} ({:?})",
            rec.best.label(t.heap().schema()),
            rec.best
        );
    }

    #[test]
    fn unread_columns_get_no_structure() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk, 60);
        let p = profile(&[(1, 10)], 10);
        let rec = recommend_for_workload(&t, &disk.config(), t.heap().len(), 256, &p, &cfg());
        // Only the read column appears in the set; noise was never read.
        assert_eq!(rec.best.columns.len(), 1);
        assert_eq!(rec.best.columns[0].col, 1);
    }

    #[test]
    fn empty_profile_recommends_nothing() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk, 60);
        let p = WorkloadProfile::new();
        let rec = recommend_for_workload(&t, &disk.config(), t.heap().len(), 256, &p, &cfg());
        assert!(rec.best.columns.is_empty());
        assert_eq!(rec.best.total_ms, 0.0);
    }

    #[test]
    fn sets_are_sorted_and_the_full_product_is_enumerated() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk, 60);
        let p = profile(&[(1, 50), (2, 50)], 50);
        let rec = recommend_for_workload(&t, &disk.config(), t.heap().len(), 256, &p, &cfg());
        // Two candidate columns, three options each.
        assert_eq!(rec.sets.len(), 9);
        let costs: Vec<f64> = rec.sets.iter().map(|s| s.total_ms).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
        assert_eq!(rec.best, rec.sets[0]);
        // The listing renders.
        let table_str = rec.table(t.heap().schema(), 3);
        assert!(table_str.contains("price"), "{table_str}");
    }

    #[test]
    fn greedy_fallback_matches_enumeration_on_a_small_case() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk, 60);
        let p = profile(&[(1, 200), (2, 200)], 100);
        let full = recommend_for_workload(&t, &disk.config(), t.heap().len(), 256, &p, &cfg());
        let greedy_cfg = WorkloadAdvisorConfig { max_sets: 1, ..cfg() };
        let greedy =
            recommend_for_workload(&t, &disk.config(), t.heap().len(), 256, &p, &greedy_cfg);
        assert_eq!(greedy.sets.len(), 1);
        assert_eq!(
            greedy.best.label(t.heap().schema()),
            full.best.label(t.heap().schema())
        );
    }

    #[test]
    fn tie_breaks_toward_no_structure() {
        let disk = DiskSim::with_defaults();
        let t = table(&disk, 60);
        // Writes only on a column that was read once long ago: CM and
        // None tie on cost 0 writes... force a pure-write profile with a
        // token read so the column is a candidate, and every structure's
        // read gain is negligible at 1 read.
        let mut p = WorkloadProfile::new();
        p.note_read();
        // noise is uncorrelated: every structure's read cost ≈ scan, so
        // the epsilon must pick None over an equal-cost CM.
        p.note_pred(2, 1.0, &[1]);
        for _ in 0..1000 {
            p.note_write();
        }
        let rec = recommend_for_workload(&t, &disk.config(), t.heap().len(), 256, &p, &cfg());
        assert_eq!(rec.best.btrees(), 0);
    }

    #[test]
    fn btree_height_estimate_grows_with_entries() {
        assert_eq!(est_btree_height(10), 1);
        assert!(est_btree_height(100_000) >= 3);
        assert!(est_btree_height(100_000) <= est_btree_height(10_000_000));
    }

    #[test]
    fn spaced_keeps_ends() {
        let specs: Vec<BucketSpec> =
            (1..=9).map(BucketSpec::pow2).collect();
        let s = spaced(&specs, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], specs[0]);
        assert_eq!(s[2], specs[8]);
        assert_eq!(spaced(&specs, 20).len(), 9);
    }
}
