//! # cm-advisor
//!
//! The **CM Advisor** (paper §6): an offline designer that, given a
//! training query, enumerates every composite CM key and bucketing over
//! the query's predicated attributes, estimates each design's composite
//! `c_per_u` and size from a random sample (Adaptive Estimator, §4.2 /
//! §6.1.3), prices each design with the correlation-aware cost model, and
//! recommends the **smallest CM within a user performance threshold**
//! relative to the unbucketed / secondary-B+Tree baseline (§6.2.2,
//! Table 5).
//!
//! The search space follows the paper exactly:
//!
//! * only attributes predicated in the training query are considered
//!   (§6.2.1), and predicates less selective than a threshold (0.5) are
//!   pruned;
//! * per attribute, candidate bucketings yield between 2² and 2¹⁶
//!   buckets, with bucket sizes scaling exponentially (§6.1.2, Table 4);
//! * the number of candidate designs is
//!   `∏(bucketings(c) + 1) − 1` (§6.1.3 counts 767 for four attributes).
//!
//! Beyond the paper's offline designer, the [`workload`] module extends
//! the advisor to the **read/write mix**: a [`WorkloadProfile`] of
//! per-column traffic (recorded online by `cm-engine`) feeds
//! [`recommend_for_workload`], which enumerates mixed
//! `{B+Tree, CM, none}` design sets per column and prices each with the
//! scan-cost formulas *plus* a per-write maintenance model, returning
//! the [`DesignSet`] the engine can apply with `Engine::apply_design`.
//!
//! ```
//! use cm_advisor::{recommend_for_workload, WorkloadAdvisorConfig, WorkloadProfile};
//! use cm_query::Table;
//! use cm_storage::{Column, DiskSim, Schema, Value, ValueType};
//! use std::sync::Arc;
//!
//! // A small correlated table: price softly determines catid.
//! let disk = DiskSim::with_defaults();
//! let schema = Arc::new(Schema::new(vec![
//!     Column::new("catid", ValueType::Int),
//!     Column::new("price", ValueType::Int),
//! ]));
//! let rows: Vec<Vec<Value>> = (0..4000i64)
//!     .map(|i| vec![Value::Int(i % 100), Value::Int((i % 100) * 50 + i % 50)])
//!     .collect();
//! let mut table = Table::build(&disk, schema, rows, 40, 0, 80).unwrap();
//! table.analyze_cols(&[1]);
//!
//! // A write-heavy profile: 10 reads on price, 90 row writes.
//! let mut profile = WorkloadProfile::new();
//! for i in 0..10i64 {
//!     profile.note_read();
//!     profile.note_pred(1, 1.0, &[WorkloadProfile::hash_value(&i)]);
//! }
//! for _ in 0..90 {
//!     profile.note_write();
//! }
//!
//! let rec = recommend_for_workload(
//!     &table,
//!     &disk.config(),
//!     table.heap().len(),
//!     256,
//!     &profile,
//!     &WorkloadAdvisorConfig::default(),
//! );
//! // Maintenance-free CMs win a 10/90 mix: no B+Tree in the best set.
//! assert_eq!(rec.best.btrees(), 0);
//! ```

#![warn(missing_docs)]

pub mod candidates;
pub mod clustering;
pub mod design;
pub mod discovery;
pub mod recommend;
pub mod workload;

pub use candidates::{bucketing_candidates, AttrCandidates};
pub use clustering::{recommend_clustering, ClusteringChoice};
pub use design::{CmDesign, DesignEstimate};
pub use discovery::{discover_for_clustered, discover_soft_fds, DiscoveryConfig, SoftFd};
pub use recommend::{Advisor, AdvisorConfig, Recommendation};
pub use workload::{
    recommend_for_workload, ColumnAccess, ColumnDesign, DesignSet, Structure,
    WorkloadAdvisorConfig, WorkloadProfile, WorkloadRecommendation,
};
