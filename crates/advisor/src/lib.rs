//! # cm-advisor
//!
//! The **CM Advisor** (paper §6): an offline designer that, given a
//! training query, enumerates every composite CM key and bucketing over
//! the query's predicated attributes, estimates each design's composite
//! `c_per_u` and size from a random sample (Adaptive Estimator, §4.2 /
//! §6.1.3), prices each design with the correlation-aware cost model, and
//! recommends the **smallest CM within a user performance threshold**
//! relative to the unbucketed / secondary-B+Tree baseline (§6.2.2,
//! Table 5).
//!
//! The search space follows the paper exactly:
//!
//! * only attributes predicated in the training query are considered
//!   (§6.2.1), and predicates less selective than a threshold (0.5) are
//!   pruned;
//! * per attribute, candidate bucketings yield between 2² and 2¹⁶
//!   buckets, with bucket sizes scaling exponentially (§6.1.2, Table 4);
//! * the number of candidate designs is
//!   `∏(bucketings(c) + 1) − 1` (§6.1.3 counts 767 for four attributes).

pub mod candidates;
pub mod clustering;
pub mod design;
pub mod discovery;
pub mod recommend;

pub use candidates::{bucketing_candidates, AttrCandidates};
pub use clustering::{recommend_clustering, ClusteringChoice};
pub use design::{CmDesign, DesignEstimate};
pub use discovery::{discover_for_clustered, discover_soft_fds, DiscoveryConfig, SoftFd};
pub use recommend::{Advisor, AdvisorConfig, Recommendation};
