//! Table schemas and rows.

use crate::error::StorageError;
use crate::value::Value;
use crate::Result;

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// 64-bit integer.
    Int,
    /// Total-ordered float.
    Float,
    /// String.
    Str,
    /// Date (days since epoch).
    Date,
}

impl ValueType {
    /// Whether a concrete [`Value`] conforms to this type (NULL conforms to
    /// every type).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ValueType::Int, Value::Int(_))
                | (ValueType::Float, Value::Float(_))
                | (ValueType::Str, Value::Str(_))
                | (ValueType::Date, Value::Date(_))
        )
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// A tuple: one value per schema column.
pub type Row = Vec<Value>;

/// An ordered list of columns describing a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics if two columns share a name; schemas are static in this
    /// reproduction, so a duplicate is a programming error.
    pub fn new(cols: Vec<Column>) -> Self {
        for (i, a) in cols.iter().enumerate() {
            for b in &cols[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        Schema { columns: cols }
    }

    /// The columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolve a column name to its index.
    pub fn col_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn { name: name.to_string() })
    }

    /// Name of a column by index.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn col_name(&self, idx: usize) -> &str {
        &self.columns[idx].name
    }

    /// Check that a row matches this schema (arity and types).
    pub fn validate(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch {
                detail: format!("arity {} != {}", row.len(), self.columns.len()),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !col.ty.admits(v) {
                return Err(StorageError::SchemaMismatch {
                    detail: format!("column {:?} does not admit {v:?}", col.name),
                });
            }
        }
        Ok(())
    }

    /// Approximate bytes per row under this schema given a sample row,
    /// used to derive `tups_per_page` for the cost model.
    pub fn row_bytes(&self, row: &Row) -> usize {
        // Per-tuple header comparable to PostgreSQL's ~23-byte overhead.
        23 + row.iter().map(Value::size_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ValueType::Int),
            Column::new("city", ValueType::Str),
            Column::new("salary", ValueType::Float),
            Column::new("hired", ValueType::Date),
        ])
    }

    #[test]
    fn col_index_resolves_names() {
        let s = demo_schema();
        assert_eq!(s.col_index("city").unwrap(), 1);
        assert_eq!(s.col_index("hired").unwrap(), 3);
        assert!(matches!(
            s.col_index("zip"),
            Err(StorageError::UnknownColumn { .. })
        ));
        assert_eq!(s.col_name(2), "salary");
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn validate_accepts_conforming_rows() {
        let s = demo_schema();
        let row = vec![
            Value::Int(1),
            Value::str("Boston"),
            Value::float(95_000.0),
            Value::Date(19000),
        ];
        assert!(s.validate(&row).is_ok());
    }

    #[test]
    fn validate_accepts_nulls_anywhere() {
        let s = demo_schema();
        let row = vec![Value::Null, Value::Null, Value::Null, Value::Null];
        assert!(s.validate(&row).is_ok());
    }

    #[test]
    fn validate_rejects_bad_arity_and_types() {
        let s = demo_schema();
        assert!(s.validate(&vec![Value::Int(1)]).is_err());
        let row = vec![
            Value::str("oops"),
            Value::str("Boston"),
            Value::float(1.0),
            Value::Date(0),
        ];
        assert!(s.validate(&row).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_panic() {
        Schema::new(vec![
            Column::new("a", ValueType::Int),
            Column::new("a", ValueType::Int),
        ]);
    }

    #[test]
    fn row_bytes_includes_header() {
        let s = demo_schema();
        let row = vec![
            Value::Int(1),
            Value::str("Boston"),
            Value::float(1.0),
            Value::Date(0),
        ];
        // 23 header + 8 + 7 + 8 + 4
        assert_eq!(s.row_bytes(&row), 23 + 8 + 7 + 8 + 4);
    }
}
