//! Write-ahead log.
//!
//! The paper's CM prototype keeps CMs in main memory but makes them
//! recoverable by writing a WAL and flushing it during two-phase commit
//! with PostgreSQL (§7.1). Experiment 3 counts "all costs involved in
//! maintaining a CM, including transaction logging and 2PC". [`Wal`]
//! models that: records accumulate in a buffer and [`Wal::commit`] forces
//! them to the simulated disk — a seek to the log head plus sequential
//! page writes, exactly like an `fsync` of an append-only file.
//!
//! Since the recovery PR every record is a typed, checksummed
//! [`LogPayload`] frame (see [`crate::logrec`]): [`Wal::log`] appends
//! one and returns its [`Lsn`] (byte offset of the frame start), and the
//! full framed stream is retained in memory so [`Wal::durable_log`] can
//! hand recovery exactly the bytes a crash would leave on disk. The
//! simulated disk still only *prices* the flushes; the retained stream
//! stands in for the log file's contents.

use crate::disk::{DiskSim, FileId, IoStats, PageAccessor};
use crate::logrec::{self, LogPayload, Lsn, AUTOCOMMIT_TXN};
use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// Anything maintenance code can log record volumes to: the [`Wal`]
/// itself, or a [`WalBatch`] gathered outside the log lock so a shared
/// log's critical section shrinks to the appends alone.
pub trait LogWrite {
    /// Append a structure-maintenance record described only by its
    /// payload size (a [`LogPayload::Maintenance`] frame).
    fn append_sized(&mut self, payload_len: usize);
}

/// A detached batch of encoded record frames, appended into a [`Wal`]
/// later (e.g. under a briefly-held log lock).
#[derive(Debug, Default, Clone)]
pub struct WalBatch {
    frames: Vec<Vec<u8>>,
}

impl WalBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WalBatch::default()
    }

    /// Number of records gathered.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Gather one typed record.
    pub fn push(&mut self, txn: u64, payload: &LogPayload) {
        self.frames.push(logrec::encode_frame(txn, payload));
    }

    /// Append every gathered record onto `wal`, in order. (Formerly
    /// `replay` — renamed so "replay" unambiguously means recovery
    /// redo.)
    pub fn append_into(&self, wal: &mut Wal) {
        for frame in &self.frames {
            wal.append_frame(frame);
        }
    }
}

impl LogWrite for WalBatch {
    fn append_sized(&mut self, payload_len: usize) {
        self.push(AUTOCOMMIT_TXN, &LogPayload::Maintenance { bytes: payload_len as u32 });
    }
}

impl LogWrite for Wal {
    fn append_sized(&mut self, payload_len: usize) {
        self.log(AUTOCOMMIT_TXN, &LogPayload::Maintenance { bytes: payload_len as u32 });
    }
}

/// An append-only, page-flushed log on the simulated disk.
pub struct Wal {
    disk: Arc<DiskSim>,
    file: FileId,
    /// Unflushed record bytes.
    buffer: BytesMut,
    /// The full framed stream since creation. The simulated disk stores
    /// no bytes, so this is the "log file" recovery reads back.
    history: BytesMut,
    /// Next page number to write.
    next_page: u64,
    /// Bytes at the front of `buffer` that were already made durable by a
    /// previous commit (the unsealed tail page is kept buffered so it can
    /// be rewritten in place).
    tail_carry: usize,
    /// Bytes already durably written.
    durable_bytes: u64,
    /// Records appended since creation.
    records: u64,
    page_bytes: usize,
}

impl Wal {
    /// A new, empty log on `disk`.
    pub fn new(disk: Arc<DiskSim>) -> Self {
        let page_bytes = disk.config().page_bytes;
        Wal {
            file: disk.alloc_file(),
            disk,
            buffer: BytesMut::new(),
            history: BytesMut::new(),
            next_page: 0,
            tail_carry: 0,
            durable_bytes: 0,
            records: 0,
            page_bytes,
        }
    }

    /// Append one typed record to the in-memory tail and return its LSN.
    /// No disk cost until [`Wal::commit`].
    pub fn log(&mut self, txn: u64, payload: &LogPayload) -> Lsn {
        self.append_frame(&logrec::encode_frame(txn, payload))
    }

    /// Append one pre-encoded frame (see [`WalBatch`]); returns its LSN.
    pub fn append_frame(&mut self, frame: &[u8]) -> Lsn {
        let lsn = self.history.len() as Lsn;
        self.history.put_slice(frame);
        self.buffer.put_slice(frame);
        self.records += 1;
        lsn
    }

    /// Append a maintenance record described only by its size — most
    /// callers (index and CM upkeep) only need the log volume to be
    /// right, not the contents.
    pub fn append_sized(&mut self, payload_len: usize) {
        self.log(AUTOCOMMIT_TXN, &LogPayload::Maintenance { bytes: payload_len as u32 });
    }

    /// Force the buffered tail to disk; returns the I/O charged.
    ///
    /// Even a tiny commit rewrites the current tail page (torn-page-safe
    /// logging always flushes whole pages) — but a commit with *nothing
    /// new* since the last flush is a pure no-op: no disk write, no
    /// buffer work. Group commit relies on this so absorbed followers
    /// and redundant leader flushes cost nothing.
    pub fn commit(&mut self) -> IoStats {
        if self.pending_bytes() == 0 {
            return IoStats::default();
        }
        let before = self.disk.stats();
        let total = self.buffer.len();
        let pages = (total as u64).div_ceil(self.page_bytes as u64).max(1);
        // One vectored write for the whole tail: a log force is a single
        // seek to the log head plus sequential pages, and stays that way
        // even while shard traffic shares the device.
        self.disk.write_run(self.file, self.next_page, self.next_page + pages - 1);
        // All but the last page are full and permanently sealed; the tail
        // page's content stays buffered so the next commit rewrites it.
        self.next_page += pages - 1;
        self.durable_bytes += (total - self.tail_carry) as u64;
        let full = (total / self.page_bytes) * self.page_bytes;
        let _ = self.buffer.split_to(full);
        self.tail_carry = self.buffer.len();
        self.disk.stats().since(&before)
    }

    /// Total bytes made durable so far.
    pub fn durable_bytes(&self) -> u64 {
        self.durable_bytes
    }

    /// Total bytes appended so far (durable or not).
    pub fn appended_bytes(&self) -> u64 {
        self.history.len() as u64
    }

    /// Bytes appended but not yet committed.
    pub fn pending_bytes(&self) -> u64 {
        (self.buffer.len() - self.tail_carry) as u64
    }

    /// Number of records appended since creation.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The simulated file backing the log.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// The durable prefix of the framed record stream — what a crash
    /// right now would leave readable on disk. Recovery decodes this
    /// with [`logrec::decode_stream`].
    pub fn durable_log(&self) -> Vec<u8> {
        self.history[..self.durable_bytes as usize].to_vec()
    }

    /// The full appended stream including the not-yet-durable tail
    /// (crash harnesses cut this at arbitrary points; real crashes can
    /// leave any prefix of the in-flight tail page behind).
    pub fn appended_log(&self) -> Vec<u8> {
        self.history.to_vec()
    }

    /// Freeze and return the current unflushed buffer (test hook).
    pub fn pending_snapshot(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logrec::{decode_stream, FRAME_HEADER_BYTES, PAYLOAD_HEADER_BYTES};

    /// Frame overhead of a maintenance record: len+crc, kind+txn, and
    /// the u32 padding-size field.
    const MAINT_OVERHEAD: usize = FRAME_HEADER_BYTES + PAYLOAD_HEADER_BYTES + 4;

    #[test]
    fn commit_charges_seek_plus_sequential_pages() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        // Exactly 3 pages of records.
        for _ in 0..3 {
            wal.append_sized(8192 - MAINT_OVERHEAD);
        }
        let io = wal.commit();
        assert_eq!(io.page_writes, 3);
        assert!((io.elapsed_ms - (5.5 + 2.0 * 0.078)).abs() < 1e-9);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        let io = wal.commit();
        assert_eq!(io.page_writes, 0);
        assert_eq!(disk.stats(), IoStats::default(), "no disk traffic at all");
    }

    #[test]
    fn recommit_with_nothing_pending_is_free() {
        // Regression: commit used to rewrite the tail page (and shuffle
        // the buffer) even when nothing was appended since the last
        // flush.
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        wal.append_sized(7);
        let io1 = wal.commit();
        assert_eq!(io1.page_writes, 1);
        let durable = wal.durable_bytes();
        let snap = wal.pending_snapshot();
        let before = disk.stats();
        let io2 = wal.commit();
        assert_eq!(io2, IoStats::default(), "nothing pending: no I/O");
        assert_eq!(disk.stats(), before, "disk untouched");
        assert_eq!(wal.durable_bytes(), durable);
        assert_eq!(wal.pending_snapshot(), snap, "tail buffer untouched");
    }

    #[test]
    fn small_commits_rewrite_tail_page() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        wal.log(1, &LogPayload::Commit { ts: 0 });
        let io1 = wal.commit();
        wal.log(2, &LogPayload::Commit { ts: 0 });
        let io2 = wal.commit();
        assert_eq!(io1.page_writes, 1);
        assert_eq!(io2.page_writes, 1);
        assert_eq!(wal.records(), 2);
    }

    #[test]
    fn durable_bytes_accumulate() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        wal.append_sized(4);
        let one = (MAINT_OVERHEAD + 4) as u64;
        assert_eq!(wal.pending_bytes(), one);
        wal.commit();
        assert_eq!(wal.durable_bytes(), one);
        assert_eq!(wal.pending_bytes(), 0);
        wal.append_sized(100);
        wal.commit();
        assert_eq!(wal.durable_bytes(), one + (MAINT_OVERHEAD + 100) as u64);
        assert_eq!(wal.durable_bytes(), wal.appended_bytes());
    }

    #[test]
    fn sealed_pages_are_not_rewritten() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        wal.append_sized(2 * 8192); // spills past two pages
        wal.commit();
        let before = disk.stats();
        wal.append_sized(4);
        let io = wal.commit();
        // Only the (third) tail page is rewritten, not the sealed ones.
        assert_eq!(io.page_writes, 1);
        assert_eq!(disk.stats().page_writes, before.page_writes + 1);
    }

    #[test]
    fn pending_snapshot_reflects_buffer() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        wal.append_sized(2);
        let snap = wal.pending_snapshot();
        assert_eq!(snap.len(), MAINT_OVERHEAD + 2);
        let body_len = (PAYLOAD_HEADER_BYTES + 4 + 2) as u32;
        assert_eq!(&snap[..4], &body_len.to_le_bytes());
    }

    #[test]
    fn log_returns_stream_offset_lsns_and_history_decodes() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        let l0 = wal.log(7, &LogPayload::Commit { ts: 0 });
        let l1 = wal.log(0, &LogPayload::CheckpointBegin);
        let l2 = wal.log(0, &LogPayload::CheckpointEnd { redo_lsn: l1 });
        assert_eq!(l0, 0);
        assert!(l1 > l0 && l2 > l1);
        wal.commit();
        let decoded = decode_stream(&wal.durable_log());
        assert!(!decoded.torn);
        let lsns: Vec<Lsn> = decoded.records.iter().map(|r| r.lsn).collect();
        assert_eq!(lsns, vec![l0, l1, l2]);
        assert_eq!(decoded.records[0].txn, 7);
        assert_eq!(decoded.records[2].payload, LogPayload::CheckpointEnd { redo_lsn: l1 });
    }

    #[test]
    fn durable_log_excludes_the_uncommitted_tail() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        wal.log(1, &LogPayload::Commit { ts: 0 });
        wal.commit();
        wal.log(2, &LogPayload::Commit { ts: 0 });
        let durable = decode_stream(&wal.durable_log());
        assert_eq!(durable.records.len(), 1, "tail record not yet durable");
        let all = decode_stream(&wal.appended_log());
        assert_eq!(all.records.len(), 2);
        assert_eq!(wal.appended_bytes() - wal.durable_bytes(), wal.pending_bytes());
    }

    #[test]
    fn batch_append_into_preserves_records_and_lsns() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        wal.log(0, &LogPayload::CheckpointBegin);
        let mut batch = WalBatch::new();
        batch.push(4, &LogPayload::Insert {
            table: "t".into(),
            shard: 0,
            rid: 1,
            row: vec![crate::value::Value::Int(1)],
        });
        batch.append_sized(10);
        assert_eq!(batch.len(), 2);
        batch.append_into(&mut wal);
        assert_eq!(wal.records(), 3);
        wal.commit();
        let decoded = decode_stream(&wal.durable_log());
        assert_eq!(decoded.records.len(), 3);
        assert_eq!(decoded.records[1].txn, 4);
        assert!(matches!(decoded.records[2].payload, LogPayload::Maintenance { bytes: 10 }));
    }
}
