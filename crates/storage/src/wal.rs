//! Write-ahead log.
//!
//! The paper's CM prototype keeps CMs in main memory but makes them
//! recoverable by writing a WAL and flushing it during two-phase commit
//! with PostgreSQL (§7.1). Experiment 3 counts "all costs involved in
//! maintaining a CM, including transaction logging and 2PC". [`Wal`]
//! models that: records accumulate in a buffer and [`Wal::commit`] forces
//! them to the simulated disk — a seek to the log head plus sequential
//! page writes, exactly like an `fsync` of an append-only file.

use crate::disk::{DiskSim, FileId, IoStats, PageAccessor};
use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// Anything maintenance code can log record volumes to: the [`Wal`]
/// itself, or a [`WalBatch`] gathered outside the log lock so a shared
/// log's critical section shrinks to the appends alone.
pub trait LogWrite {
    /// Append a record described only by its payload size.
    fn append_sized(&mut self, payload_len: usize);
}

/// A detached batch of record sizes, replayed onto a [`Wal`] later
/// (e.g. under a briefly-held log lock).
#[derive(Debug, Default, Clone)]
pub struct WalBatch {
    sizes: Vec<usize>,
}

impl WalBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WalBatch::default()
    }

    /// Number of records gathered.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The gathered record payload sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Replay every gathered record onto `wal`.
    pub fn replay(&self, wal: &mut Wal) {
        for &n in &self.sizes {
            wal.append_sized(n);
        }
    }
}

impl LogWrite for WalBatch {
    fn append_sized(&mut self, payload_len: usize) {
        self.sizes.push(payload_len);
    }
}

impl LogWrite for Wal {
    fn append_sized(&mut self, payload_len: usize) {
        Wal::append_sized(self, payload_len);
    }
}

/// An append-only, page-flushed log on the simulated disk.
pub struct Wal {
    disk: Arc<DiskSim>,
    file: FileId,
    /// Unflushed record bytes.
    buffer: BytesMut,
    /// Next page number to write.
    next_page: u64,
    /// Bytes at the front of `buffer` that were already made durable by a
    /// previous commit (the unsealed tail page is kept buffered so it can
    /// be rewritten in place).
    tail_carry: usize,
    /// Bytes already durably written.
    durable_bytes: u64,
    /// Records appended since creation.
    records: u64,
    page_bytes: usize,
}

impl Wal {
    /// A new, empty log on `disk`.
    pub fn new(disk: Arc<DiskSim>) -> Self {
        let page_bytes = disk.config().page_bytes;
        Wal {
            file: disk.alloc_file(),
            disk,
            buffer: BytesMut::new(),
            next_page: 0,
            tail_carry: 0,
            durable_bytes: 0,
            records: 0,
            page_bytes,
        }
    }

    /// Append one record (length-prefixed) to the in-memory tail. No disk
    /// cost until [`Wal::commit`].
    pub fn append(&mut self, payload: &[u8]) {
        self.buffer.put_u32_le(payload.len() as u32);
        self.buffer.put_slice(payload);
        self.records += 1;
    }

    /// Append a record described only by its size — most callers (index
    /// and CM maintenance) only need the log volume to be right, not the
    /// contents.
    pub fn append_sized(&mut self, payload_len: usize) {
        self.buffer.put_u32_le(payload_len as u32);
        self.buffer.resize(self.buffer.len() + payload_len, 0);
        self.records += 1;
    }

    /// Force the buffered tail to disk; returns the I/O charged.
    ///
    /// Even a tiny commit rewrites the current tail page (torn-page-safe
    /// logging always flushes whole pages) — but a commit with *nothing
    /// new* since the last flush is a pure no-op: no disk write, no
    /// buffer work. Group commit relies on this so absorbed followers
    /// and redundant leader flushes cost nothing.
    pub fn commit(&mut self) -> IoStats {
        if self.pending_bytes() == 0 {
            return IoStats::default();
        }
        let before = self.disk.stats();
        let total = self.buffer.len();
        let pages = (total as u64).div_ceil(self.page_bytes as u64).max(1);
        // One vectored write for the whole tail: a log force is a single
        // seek to the log head plus sequential pages, and stays that way
        // even while shard traffic shares the device.
        self.disk.write_run(self.file, self.next_page, self.next_page + pages - 1);
        // All but the last page are full and permanently sealed; the tail
        // page's content stays buffered so the next commit rewrites it.
        self.next_page += pages - 1;
        self.durable_bytes += (total - self.tail_carry) as u64;
        let full = (total / self.page_bytes) * self.page_bytes;
        let _ = self.buffer.split_to(full);
        self.tail_carry = self.buffer.len();
        self.disk.stats().since(&before)
    }

    /// Total bytes made durable so far.
    pub fn durable_bytes(&self) -> u64 {
        self.durable_bytes
    }

    /// Bytes appended but not yet committed.
    pub fn pending_bytes(&self) -> u64 {
        (self.buffer.len() - self.tail_carry) as u64
    }

    /// Number of records appended since creation.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The simulated file backing the log.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Freeze and return the current unflushed buffer (test hook).
    pub fn pending_snapshot(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_charges_seek_plus_sequential_pages() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        // ~3 pages of records.
        for _ in 0..3 {
            wal.append_sized(8192 - 4);
        }
        let io = wal.commit();
        assert_eq!(io.page_writes, 3);
        assert!((io.elapsed_ms - (5.5 + 2.0 * 0.078)).abs() < 1e-9);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        let io = wal.commit();
        assert_eq!(io.page_writes, 0);
        assert_eq!(disk.stats(), IoStats::default(), "no disk traffic at all");
    }

    #[test]
    fn recommit_with_nothing_pending_is_free() {
        // Regression: commit used to rewrite the tail page (and shuffle
        // the buffer) even when nothing was appended since the last
        // flush.
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        wal.append(b"payload");
        let io1 = wal.commit();
        assert_eq!(io1.page_writes, 1);
        let durable = wal.durable_bytes();
        let snap = wal.pending_snapshot();
        let before = disk.stats();
        let io2 = wal.commit();
        assert_eq!(io2, IoStats::default(), "nothing pending: no I/O");
        assert_eq!(disk.stats(), before, "disk untouched");
        assert_eq!(wal.durable_bytes(), durable);
        assert_eq!(wal.pending_snapshot(), snap, "tail buffer untouched");
    }

    #[test]
    fn small_commits_rewrite_tail_page() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        wal.append(b"insert t1");
        let io1 = wal.commit();
        wal.append(b"insert t2");
        let io2 = wal.commit();
        assert_eq!(io1.page_writes, 1);
        assert_eq!(io2.page_writes, 1);
        assert_eq!(wal.records(), 2);
    }

    #[test]
    fn durable_bytes_accumulate() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        wal.append(b"abcd");
        assert_eq!(wal.pending_bytes(), 8); // 4-byte length prefix
        wal.commit();
        assert_eq!(wal.durable_bytes(), 8);
        assert_eq!(wal.pending_bytes(), 0);
        wal.append_sized(100);
        wal.commit();
        assert_eq!(wal.durable_bytes(), 112);
    }

    #[test]
    fn sealed_pages_are_not_rewritten() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        wal.append_sized(2 * 8192); // spills past two pages
        wal.commit();
        let before = disk.stats();
        wal.append(b"tiny");
        let io = wal.commit();
        // Only the (third) tail page is rewritten, not the sealed ones.
        assert_eq!(io.page_writes, 1);
        assert_eq!(disk.stats().page_writes, before.page_writes + 1);
    }

    #[test]
    fn pending_snapshot_reflects_buffer() {
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk);
        wal.append(b"xy");
        let snap = wal.pending_snapshot();
        assert_eq!(&snap[..4], &2u32.to_le_bytes());
        assert_eq!(&snap[4..], b"xy");
    }
}
