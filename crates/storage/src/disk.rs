//! Simulated disk with the paper's cost constants.
//!
//! Every experiment in the paper is disk-bound; the quantities it plots are
//! functions of the page-access pattern. [`DiskSim`] records each page
//! read/write and prices it with the constants from Table 1 of the paper:
//! a page that continues the previous access (same file, next page) costs
//! `seq_page_cost` = 0.078 ms; any other page costs `seek_cost` = 5.5 ms.
//! This is the same methodology the paper itself uses to study clustered
//! bucketing in §6.1.1 ("we simulated the disk behavior by counting scanned
//! pages and seeks, and then calculated the runtime by applying the
//! statistics in Table 1").

use crate::filedisk::FileDisk;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a simulated file (heap file, index file, WAL, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Hardware parameters of the simulated disk (paper, Table 1).
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Time to seek to a random disk page and read it, in milliseconds.
    pub seek_ms: f64,
    /// Time to read one disk page sequentially, in milliseconds.
    pub seq_page_ms: f64,
    /// Page size in bytes (used to derive tuples-per-page and WAL pages).
    pub page_bytes: usize,
}

impl Default for DiskConfig {
    fn default() -> Self {
        // Measured values reported in Table 1 of the paper.
        DiskConfig { seek_ms: 5.5, seq_page_ms: 0.078, page_bytes: 8192 }
    }
}

/// Cumulative I/O counters, separable and subtractable so an experiment can
/// snapshot around a query and report the delta.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Random page accesses (head had to move).
    pub seeks: u64,
    /// Sequential page reads (head continued from the previous page).
    pub seq_reads: u64,
    /// Page writes (always counted; cost follows the same seek/seq rule).
    pub page_writes: u64,
    /// Page writes that were priced at full seek cost (the head had to
    /// move first). Always `<= page_writes`; the rest were sequential.
    pub write_seeks: u64,
    /// Simulated elapsed time in milliseconds.
    pub elapsed_ms: f64,
    /// Wall-clock nanoseconds spent in real read syscalls, when the disk
    /// is file-backed ([`DiskSim::with_backing`]). Zero on a pure sim.
    pub read_wall_ns: u64,
    /// Wall-clock nanoseconds spent in real write syscalls (see
    /// [`IoStats::read_wall_ns`]).
    pub write_wall_ns: u64,
}

impl IoStats {
    /// Total pages touched (reads + writes).
    pub fn pages(&self) -> u64 {
        self.seeks + self.seq_reads + self.page_writes
    }

    /// Head movements per page touched (read seeks + write seeks over
    /// total pages) — 1.0 means every access paid a full seek, values
    /// near zero mean the traffic was overwhelmingly sequential.
    pub fn seeks_per_page(&self) -> f64 {
        let pages = self.pages();
        if pages == 0 {
            0.0
        } else {
            (self.seeks + self.write_seeks) as f64 / pages as f64
        }
    }

    /// Wall-clock milliseconds of real device I/O (reads + writes).
    /// Zero unless the disk is file-backed ([`DiskSim::with_backing`]).
    pub fn wall_ms(&self) -> f64 {
        (self.read_wall_ns + self.write_wall_ns) as f64 / 1e6
    }

    /// `self - earlier`, for snapshot-delta reporting.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seeks: self.seeks - earlier.seeks,
            seq_reads: self.seq_reads - earlier.seq_reads,
            page_writes: self.page_writes - earlier.page_writes,
            write_seeks: self.write_seeks - earlier.write_seeks,
            elapsed_ms: self.elapsed_ms - earlier.elapsed_ms,
            read_wall_ns: self.read_wall_ns - earlier.read_wall_ns,
            write_wall_ns: self.write_wall_ns - earlier.write_wall_ns,
        }
    }

    /// Accumulate another stats delta into this one.
    pub fn add(&mut self, other: &IoStats) {
        self.seeks += other.seeks;
        self.seq_reads += other.seq_reads;
        self.page_writes += other.page_writes;
        self.write_seeks += other.write_seeks;
        self.elapsed_ms += other.elapsed_ms;
        self.read_wall_ns += other.read_wall_ns;
        self.write_wall_ns += other.write_wall_ns;
    }
}

#[derive(Debug, Default)]
struct DiskState {
    /// Last page touched: sequentiality is judged against this position.
    head: Option<(FileId, u64)>,
    stats: IoStats,
}

/// Anything pages can be charged against: the raw simulated disk, or a
/// [`BufferPool`](crate::bufferpool::BufferPool) that absorbs hits.
///
/// Operators in `cm-index` / `cm-query` take `&dyn PageAccessor` so the
/// same code runs cold (straight to disk, as in the paper's flushed-cache
/// query experiments) or warm (through the pool, as in the maintenance
/// experiments).
pub trait PageAccessor: Sync {
    /// Charge a read of `page` in `file`.
    fn read(&self, file: FileId, page: u64);
    /// Charge a write of `page` in `file` (or mark it dirty, for a pool).
    fn write(&self, file: FileId, page: u64);

    /// Charge a vectored read of the contiguous run `lo..=hi` in `file`.
    ///
    /// The default forwards page by page, so existing accessors keep
    /// working unchanged; accessors that can do better (the disk itself,
    /// a buffer pool) override it to price and admit the whole run
    /// atomically — one seek plus sequential pages, immune to
    /// interleaving from concurrent sessions on the same device.
    fn read_run(&self, file: FileId, lo: u64, hi: u64) {
        for page in lo..=hi {
            self.read(file, page);
        }
    }

    /// Charge a vectored write of the contiguous run `lo..=hi` in `file`.
    /// Default: page by page (see [`PageAccessor::read_run`]).
    fn write_run(&self, file: FileId, lo: u64, hi: u64) {
        for page in lo..=hi {
            self.write(file, page);
        }
    }
}

/// Call `f(lo, hi)` for each maximal contiguous run in an ascending,
/// deduplicated page list — the shared coalescing step behind the
/// vectored scan paths and checkpoint write-back.
///
/// # Precondition
///
/// `pages` must be **strictly ascending** (sorted, no duplicates). On
/// unsorted or duplicated input the coalescing silently degrades: a
/// descending pair splits one physical run into two (double-charging a
/// seek), and a duplicate both splits the run *and* re-charges the page.
/// Callers own the sort/dedup (every in-tree caller walks an ordered
/// page-set or B-tree range, so the invariant is free); debug builds
/// assert it.
pub fn for_each_page_run(pages: &[u64], mut f: impl FnMut(u64, u64)) {
    debug_assert!(
        pages.windows(2).all(|w| w[0] < w[1]),
        "for_each_page_run requires strictly ascending pages, got {pages:?}"
    );
    let mut i = 0;
    while i < pages.len() {
        let mut j = i;
        while j + 1 < pages.len() && pages[j + 1] == pages[j] + 1 {
            j += 1;
        }
        f(pages[i], pages[j]);
        i = j + 1;
    }
}

/// Compatibility adapter that deliberately degrades vectored run I/O back
/// to page-at-a-time charging against the inner accessor.
///
/// This is the *per-page baseline* for benchmarks and oracle tests: run
/// converted code through a `PerPageIo` and it behaves exactly like the
/// pre-vectored engine — every page of a run is a separate charge, so
/// concurrent sessions interleave at page granularity and shatter
/// sequential sweeps into seeks.
pub struct PerPageIo<'a>(pub &'a dyn PageAccessor);

impl PageAccessor for PerPageIo<'_> {
    fn read(&self, file: FileId, page: u64) {
        self.0.read(file, page);
    }
    fn write(&self, file: FileId, page: u64) {
        self.0.write(file, page);
    }
    // read_run / write_run intentionally NOT overridden: the trait
    // defaults forward page by page, which is the whole point.
}

/// The simulated disk.
///
/// Thread-safe; experiments that drive queries in parallel each use their
/// own `DiskSim` (sharing one would interleave head positions and destroy
/// sequentiality, just like two concurrent scans on a real spindle).
#[derive(Debug)]
pub struct DiskSim {
    cfg: DiskConfig,
    state: Mutex<DiskState>,
    next_file: AtomicU32,
    /// When present, every charge also performs (and times) the real
    /// syscalls against this file-backed store. The sim counters are
    /// byte-for-byte identical with or without a backing — the backing
    /// only adds `read_wall_ns`/`write_wall_ns`.
    backing: Option<FileDisk>,
}

impl DiskSim {
    /// New disk with the given parameters.
    pub fn new(cfg: DiskConfig) -> Arc<Self> {
        Arc::new(DiskSim {
            cfg,
            state: Mutex::new(DiskState::default()),
            next_file: AtomicU32::new(0),
            backing: None,
        })
    }

    /// New disk with the paper's Table 1 parameters.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(DiskConfig::default())
    }

    /// New disk whose every charge also drives a real file-backed store
    /// (see [`FileDisk`]): the simulator keeps pricing accesses in
    /// sim-ms exactly as [`DiskSim::new`] would, and additionally issues
    /// the `pread`/`pwrite` (one vectored syscall per run) against
    /// `backing`, accumulating the measured wall-clock into
    /// [`IoStats::read_wall_ns`] / [`IoStats::write_wall_ns`]. The real
    /// I/O happens *inside* the same critical section that prices the
    /// run, preserving the single-spindle model: two backed runs cannot
    /// interleave on the device any more than their charges can.
    pub fn with_backing(cfg: DiskConfig, backing: FileDisk) -> Arc<Self> {
        assert_eq!(
            backing.page_bytes(),
            cfg.page_bytes,
            "backing page size must match the simulated page size"
        );
        Arc::new(DiskSim {
            cfg,
            state: Mutex::new(DiskState::default()),
            next_file: AtomicU32::new(0),
            backing: Some(backing),
        })
    }

    /// The file-backed store behind this disk, if any.
    pub fn backing(&self) -> Option<&FileDisk> {
        self.backing.as_ref()
    }

    /// The configured hardware parameters.
    pub fn config(&self) -> DiskConfig {
        self.cfg
    }

    /// Allocate a fresh file id.
    pub fn alloc_file(&self) -> FileId {
        FileId(self.next_file.fetch_add(1, Ordering::Relaxed))
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Reset counters and head position (used between experiment runs,
    /// mirroring the paper's cache flushing between trials).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.head = None;
        st.stats = IoStats::default();
    }

    /// Cost of moving the head from `head` to `(file, page)`: adjacent
    /// (or same) pages are sequential; a short forward skip is priced as
    /// reading through the gap, capped by a full seek — this is what
    /// makes a dense bitmap sweep "gradually closer to a full table scan"
    /// (§3.2/§4.1 of the paper) instead of a pathological seek per page.
    #[inline]
    fn step_cost(&self, head: Option<(FileId, u64)>, file: FileId, page: u64) -> f64 {
        match head {
            Some((f, last)) if f == file && page >= last => {
                let delta = page - last;
                if delta <= 1 {
                    self.cfg.seq_page_ms
                } else {
                    (delta as f64 * self.cfg.seq_page_ms).min(self.cfg.seek_ms)
                }
            }
            _ => self.cfg.seek_ms,
        }
    }

    /// Charge the contiguous run `lo..=hi` atomically under one lock:
    /// the first page is priced against the current head position, every
    /// further page at the sequential rate. Because the whole run is one
    /// critical section, concurrent accessors cannot interleave into the
    /// middle of it and shatter its sequentiality — the vectored-I/O
    /// guarantee the run-based scan paths rely on.
    #[inline]
    fn charge_run(&self, file: FileId, lo: u64, hi: u64, is_write: bool) {
        assert!(lo <= hi, "run bounds inverted: {lo}..={hi}");
        let n = hi - lo + 1;
        let mut st = self.state.lock();
        let first = self.step_cost(st.head, file, lo);
        let sequential = first < self.cfg.seek_ms;
        if is_write {
            st.stats.page_writes += n;
            if !sequential {
                st.stats.write_seeks += 1;
            }
        } else if sequential {
            st.stats.seq_reads += n;
        } else {
            st.stats.seeks += 1;
            st.stats.seq_reads += n - 1;
        }
        st.stats.elapsed_ms += first + (n - 1) as f64 * self.cfg.seq_page_ms;
        st.head = Some((file, hi));
        if let Some(backing) = &self.backing {
            // Real I/O inside the charging critical section: the device,
            // like the simulated spindle, serves one run at a time.
            let t0 = Instant::now();
            let res = if is_write {
                backing.write_pages(file, lo, hi)
            } else {
                backing.read_pages(file, lo, hi)
            };
            let ns = t0.elapsed().as_nanos() as u64;
            if is_write {
                st.stats.write_wall_ns += ns;
            } else {
                st.stats.read_wall_ns += ns;
            }
            res.unwrap_or_else(|e| {
                panic!("file-backed {} {file:?} run {lo}..={hi}: {e}",
                    if is_write { "write" } else { "read" })
            });
        }
    }

    #[inline]
    fn charge(&self, file: FileId, page: u64, is_write: bool) {
        self.charge_run(file, page, page, is_write);
    }
}

impl PageAccessor for DiskSim {
    fn read(&self, file: FileId, page: u64) {
        self.charge(file, page, false);
    }

    fn write(&self, file: FileId, page: u64) {
        self.charge(file, page, true);
    }

    fn read_run(&self, file: FileId, lo: u64, hi: u64) {
        self.charge_run(file, lo, hi, false);
    }

    fn write_run(&self, file: FileId, lo: u64, hi: u64) {
        self.charge_run(file, lo, hi, true);
    }
}

impl PageAccessor for Arc<DiskSim> {
    fn read(&self, file: FileId, page: u64) {
        self.as_ref().read(file, page);
    }
    fn write(&self, file: FileId, page: u64) {
        self.as_ref().write(file, page);
    }
    fn read_run(&self, file: FileId, lo: u64, hi: u64) {
        self.as_ref().read_run(file, lo, hi);
    }
    fn write_run(&self, file: FileId, lo: u64, hi: u64) {
        self.as_ref().write_run(file, lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    /// Counters exactly equal, elapsed within float-summation tolerance
    /// (a vectored run sums its cost in one expression, a per-page loop
    /// accumulates — same value up to rounding order).
    fn stats_equivalent(a: &IoStats, b: &IoStats) -> bool {
        a.seeks == b.seeks
            && a.seq_reads == b.seq_reads
            && a.page_writes == b.page_writes
            && a.write_seeks == b.write_seeks
            && close(a.elapsed_ms, b.elapsed_ms)
    }

    #[test]
    fn sequential_run_costs_one_seek_plus_seq_pages() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        for p in 0..10 {
            disk.read(f, p);
        }
        let s = disk.stats();
        assert_eq!(s.seeks, 1);
        assert_eq!(s.seq_reads, 9);
        assert!(close(s.elapsed_ms, 5.5 + 9.0 * 0.078), "got {}", s.elapsed_ms);
    }

    #[test]
    fn rereading_same_page_is_sequential() {
        // The head is already positioned there; no mechanical movement.
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.read(f, 3);
        disk.read(f, 3);
        let s = disk.stats();
        assert_eq!(s.seeks, 1);
        assert_eq!(s.seq_reads, 1);
    }

    #[test]
    fn scattered_reads_all_seek() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        for p in [100u64, 5, 900, 42] {
            disk.read(f, p);
        }
        let s = disk.stats();
        assert_eq!(s.seeks, 4);
        assert_eq!(s.seq_reads, 0);
        assert!(close(s.elapsed_ms, 4.0 * 5.5));
    }

    #[test]
    fn switching_files_breaks_sequentiality() {
        let disk = DiskSim::with_defaults();
        let f1 = disk.alloc_file();
        let f2 = disk.alloc_file();
        disk.read(f1, 0);
        disk.read(f1, 1);
        disk.read(f2, 2); // different file: seek even though page is "next"
        disk.read(f1, 2); // back to f1: seek again
        let s = disk.stats();
        assert_eq!(s.seeks, 3);
        assert_eq!(s.seq_reads, 1);
    }

    #[test]
    fn writes_are_counted_separately_but_priced_by_position() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.write(f, 0);
        disk.write(f, 1);
        disk.write(f, 5000);
        let s = disk.stats();
        assert_eq!(s.page_writes, 3);
        assert_eq!(s.seeks, 0);
        assert!(close(s.elapsed_ms, 5.5 + 0.078 + 5.5));
    }

    #[test]
    fn short_forward_skips_price_as_read_through() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.read(f, 0);
        disk.read(f, 10); // skip of 10 pages: 10 * 0.078 < 5.5
        let s = disk.stats();
        assert!(close(s.elapsed_ms, 5.5 + 10.0 * 0.078), "got {}", s.elapsed_ms);
        assert_eq!(s.seq_reads, 1, "short skip counts as read-through");
        // A long forward skip is a real seek.
        disk.read(f, 10_000);
        assert_eq!(disk.stats().seeks, 2);
        // A backward skip is always a seek.
        disk.read(f, 9_000);
        assert_eq!(disk.stats().seeks, 3);
    }

    #[test]
    fn stats_delta_and_reset() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.read(f, 0);
        let snap = disk.stats();
        disk.read(f, 1);
        disk.read(f, 2);
        let d = disk.stats().since(&snap);
        assert_eq!(d.seq_reads, 2);
        assert_eq!(d.seeks, 0);
        disk.reset();
        assert_eq!(disk.stats(), IoStats::default());
        // After reset the head is unknown again: first read seeks.
        disk.read(f, 3);
        assert_eq!(disk.stats().seeks, 1);
    }

    #[test]
    fn file_ids_are_unique() {
        let disk = DiskSim::with_defaults();
        let a = disk.alloc_file();
        let b = disk.alloc_file();
        assert_ne!(a, b);
    }

    #[test]
    fn iostats_accumulate() {
        let mut total = IoStats::default();
        let d = IoStats {
            seeks: 2,
            seq_reads: 3,
            page_writes: 1,
            write_seeks: 1,
            elapsed_ms: 12.0,
            ..Default::default()
        };
        total.add(&d);
        total.add(&d);
        assert_eq!(total.seeks, 4);
        assert_eq!(total.write_seeks, 2);
        assert_eq!(total.pages(), 12);
        assert!(close(total.elapsed_ms, 24.0));
        // 4 read seeks + 2 write seeks over 12 pages.
        assert!(close(total.seeks_per_page(), 0.5));
        assert!(close(IoStats::default().seeks_per_page(), 0.0));
    }

    #[test]
    fn read_run_prices_one_seek_plus_sequential() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.read_run(f, 10, 19);
        let s = disk.stats();
        assert_eq!(s.seeks, 1);
        assert_eq!(s.seq_reads, 9);
        assert!(close(s.elapsed_ms, 5.5 + 9.0 * 0.078), "got {}", s.elapsed_ms);
        // A run continuing the head position is entirely sequential.
        disk.read_run(f, 20, 24);
        let s = disk.stats();
        assert_eq!(s.seeks, 1);
        assert_eq!(s.seq_reads, 14);
    }

    #[test]
    fn run_charges_match_their_per_page_equivalent() {
        // Single-threaded, a vectored run is priced exactly like the same
        // pages charged one by one — only atomicity differs.
        let a = DiskSim::with_defaults();
        let b = DiskSim::with_defaults();
        let fa = a.alloc_file();
        let fb = b.alloc_file();
        a.read_run(fa, 3, 12);
        for p in 3..=12 {
            b.read(fb, p);
        }
        assert!(stats_equivalent(&a.stats(), &b.stats()), "{:?} vs {:?}", a.stats(), b.stats());
        a.write_run(fa, 13, 20);
        for p in 13..=20 {
            b.write(fb, p);
        }
        assert_eq!(a.stats().page_writes, b.stats().page_writes);
        assert!(close(a.stats().elapsed_ms, b.stats().elapsed_ms));
    }

    #[test]
    fn run_is_atomic_under_interleaving() {
        // Two "sessions" interleave at run granularity: each run still
        // pays one seek, not one per page — the vectored-I/O guarantee.
        let disk = DiskSim::with_defaults();
        let f1 = disk.alloc_file();
        let f2 = disk.alloc_file();
        for chunk in 0..5u64 {
            disk.read_run(f1, chunk * 10, chunk * 10 + 9);
            disk.read_run(f2, chunk * 10, chunk * 10 + 9);
        }
        let s = disk.stats();
        assert_eq!(s.seeks, 10, "one seek per run, not per page");
        assert_eq!(s.seq_reads, 90);
    }

    #[test]
    fn write_run_counts_write_seeks() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.write_run(f, 5, 9);
        let s = disk.stats();
        assert_eq!(s.page_writes, 5);
        assert_eq!(s.write_seeks, 1, "head moved once for the whole run");
        assert!(close(s.elapsed_ms, 5.5 + 4.0 * 0.078));
        // Continuing the head: no further write seek.
        disk.write_run(f, 10, 11);
        assert_eq!(disk.stats().write_seeks, 1);
        // A single scattered write is a write seek too.
        disk.write(f, 5000);
        assert_eq!(disk.stats().write_seeks, 2);
    }

    #[test]
    fn per_page_adapter_degrades_runs() {
        let vectored = DiskSim::with_defaults();
        let plain = DiskSim::with_defaults();
        let fv = vectored.alloc_file();
        let fp = plain.alloc_file();
        let adapter = PerPageIo(plain.as_ref());
        adapter.read_run(fp, 0, 9);
        vectored.read_run(fv, 0, 9);
        // Same pages and, single-threaded, the same pricing — the adapter
        // differs only in issuing 10 separate charges a concurrent
        // session could interleave between (which the vectored path
        // forbids; see `run_io`'s benchmark for that effect).
        assert!(stats_equivalent(&plain.stats(), &vectored.stats()));
        adapter.write_run(fp, 20, 22);
        assert_eq!(plain.stats().page_writes, 3);
    }

    #[test]
    fn page_runs_coalesce_maximally() {
        let mut runs = Vec::new();
        for_each_page_run(&[1, 2, 3, 7, 9, 10], |lo, hi| runs.push((lo, hi)));
        assert_eq!(runs, vec![(1, 3), (7, 7), (9, 10)]);
        runs.clear();
        for_each_page_run(&[], |lo, hi| runs.push((lo, hi)));
        assert!(runs.is_empty());
        runs.clear();
        for_each_page_run(&[42], |lo, hi| runs.push((lo, hi)));
        assert_eq!(runs, vec![(42, 42)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly ascending")]
    fn page_runs_reject_unsorted_input() {
        for_each_page_run(&[5, 3], |_, _| {});
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly ascending")]
    fn page_runs_reject_duplicated_input() {
        // A duplicate is as corrosive as a sort violation: it would split
        // the run and re-charge the page.
        for_each_page_run(&[3, 3, 4], |_, _| {});
    }

    /// A minimal accessor that does NOT override the run methods — it
    /// exercises the trait's default per-page forwarding.
    struct ForwardingOnly<'a>(&'a DiskSim);

    impl PageAccessor for ForwardingOnly<'_> {
        fn read(&self, file: FileId, page: u64) {
            self.0.read(file, page);
        }
        fn write(&self, file: FileId, page: u64) {
            self.0.write(file, page);
        }
    }

    #[test]
    fn default_run_methods_forward_page_by_page() {
        // A custom accessor without run overrides must charge a run
        // identically to an explicit page-by-page loop: same counters,
        // same cost, no hidden vectored shortcut.
        let through_default = DiskSim::with_defaults();
        let by_hand = DiskSim::with_defaults();
        let fd = through_default.alloc_file();
        let fh = by_hand.alloc_file();

        let accessor = ForwardingOnly(&through_default);
        accessor.read_run(fd, 4, 13);
        accessor.write_run(fd, 30, 34);
        for p in 4..=13 {
            by_hand.read(fh, p);
        }
        for p in 30..=34 {
            by_hand.write(fh, p);
        }
        assert!(
            stats_equivalent(&through_default.stats(), &by_hand.stats()),
            "{:?} vs {:?}",
            through_default.stats(),
            by_hand.stats()
        );
        // And the default really is per-page: interleaving two forwarding
        // accessors on one disk shatters sequentiality (10 + 10 pages in
        // alternation -> a seek per page), which a vectored override
        // would have prevented.
        let shared = DiskSim::with_defaults();
        let f1 = shared.alloc_file();
        let f2 = shared.alloc_file();
        for p in 0..10 {
            ForwardingOnly(&shared).read(f1, p);
            ForwardingOnly(&shared).read(f2, p);
        }
        assert_eq!(shared.stats().seeks, 20, "per-page forwarding interleaves");
    }

    #[test]
    fn backed_disk_same_sim_stats_plus_wall_clock() {
        use crate::filedisk::{FileDisk, TempDir};
        let tmp = TempDir::new("cm-disk-backed").unwrap();
        let cfg = DiskConfig::default();
        let pure = DiskSim::new(cfg);
        let backed = DiskSim::with_backing(
            cfg,
            FileDisk::new(tmp.path().join("d"), cfg.page_bytes, false).unwrap(),
        );
        assert!(backed.backing().is_some());
        for disk in [&pure, &backed] {
            let f = disk.alloc_file();
            disk.read_run(f, 0, 9);
            disk.write_run(f, 10, 14);
            disk.read(f, 100);
        }
        let (p, b) = (pure.stats(), backed.stats());
        // Sim accounting is identical; only the wall clock differs.
        assert!(stats_equivalent(&p, &b), "{p:?} vs {b:?}");
        assert_eq!(p.read_wall_ns, 0);
        assert_eq!(p.wall_ms(), 0.0);
        assert!(b.read_wall_ns > 0, "backed reads took real time");
        assert!(b.write_wall_ns > 0, "backed writes took real time");
        assert!(b.wall_ms() > 0.0);
        // since() subtracts the wall counters too.
        let snap = backed.stats();
        let f = backed.alloc_file();
        backed.read(f, 0);
        let d = backed.stats().since(&snap);
        assert_eq!(d.seeks, 1);
        assert!(d.read_wall_ns > 0 && d.write_wall_ns == 0);
    }
}
