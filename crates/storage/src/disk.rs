//! Simulated disk with the paper's cost constants.
//!
//! Every experiment in the paper is disk-bound; the quantities it plots are
//! functions of the page-access pattern. [`DiskSim`] records each page
//! read/write and prices it with the constants from Table 1 of the paper:
//! a page that continues the previous access (same file, next page) costs
//! `seq_page_cost` = 0.078 ms; any other page costs `seek_cost` = 5.5 ms.
//! This is the same methodology the paper itself uses to study clustered
//! bucketing in §6.1.1 ("we simulated the disk behavior by counting scanned
//! pages and seeks, and then calculated the runtime by applying the
//! statistics in Table 1").

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Identifier of a simulated file (heap file, index file, WAL, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Hardware parameters of the simulated disk (paper, Table 1).
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Time to seek to a random disk page and read it, in milliseconds.
    pub seek_ms: f64,
    /// Time to read one disk page sequentially, in milliseconds.
    pub seq_page_ms: f64,
    /// Page size in bytes (used to derive tuples-per-page and WAL pages).
    pub page_bytes: usize,
}

impl Default for DiskConfig {
    fn default() -> Self {
        // Measured values reported in Table 1 of the paper.
        DiskConfig { seek_ms: 5.5, seq_page_ms: 0.078, page_bytes: 8192 }
    }
}

/// Cumulative I/O counters, separable and subtractable so an experiment can
/// snapshot around a query and report the delta.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Random page accesses (head had to move).
    pub seeks: u64,
    /// Sequential page reads (head continued from the previous page).
    pub seq_reads: u64,
    /// Page writes (always counted; cost follows the same seek/seq rule).
    pub page_writes: u64,
    /// Simulated elapsed time in milliseconds.
    pub elapsed_ms: f64,
}

impl IoStats {
    /// Total pages touched (reads + writes).
    pub fn pages(&self) -> u64 {
        self.seeks + self.seq_reads + self.page_writes
    }

    /// `self - earlier`, for snapshot-delta reporting.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seeks: self.seeks - earlier.seeks,
            seq_reads: self.seq_reads - earlier.seq_reads,
            page_writes: self.page_writes - earlier.page_writes,
            elapsed_ms: self.elapsed_ms - earlier.elapsed_ms,
        }
    }

    /// Accumulate another stats delta into this one.
    pub fn add(&mut self, other: &IoStats) {
        self.seeks += other.seeks;
        self.seq_reads += other.seq_reads;
        self.page_writes += other.page_writes;
        self.elapsed_ms += other.elapsed_ms;
    }
}

#[derive(Debug, Default)]
struct DiskState {
    /// Last page touched: sequentiality is judged against this position.
    head: Option<(FileId, u64)>,
    stats: IoStats,
}

/// Anything pages can be charged against: the raw simulated disk, or a
/// [`BufferPool`](crate::bufferpool::BufferPool) that absorbs hits.
///
/// Operators in `cm-index` / `cm-query` take `&dyn PageAccessor` so the
/// same code runs cold (straight to disk, as in the paper's flushed-cache
/// query experiments) or warm (through the pool, as in the maintenance
/// experiments).
pub trait PageAccessor: Sync {
    /// Charge a read of `page` in `file`.
    fn read(&self, file: FileId, page: u64);
    /// Charge a write of `page` in `file` (or mark it dirty, for a pool).
    fn write(&self, file: FileId, page: u64);
}

/// The simulated disk.
///
/// Thread-safe; experiments that drive queries in parallel each use their
/// own `DiskSim` (sharing one would interleave head positions and destroy
/// sequentiality, just like two concurrent scans on a real spindle).
#[derive(Debug)]
pub struct DiskSim {
    cfg: DiskConfig,
    state: Mutex<DiskState>,
    next_file: AtomicU32,
}

impl DiskSim {
    /// New disk with the given parameters.
    pub fn new(cfg: DiskConfig) -> Arc<Self> {
        Arc::new(DiskSim {
            cfg,
            state: Mutex::new(DiskState::default()),
            next_file: AtomicU32::new(0),
        })
    }

    /// New disk with the paper's Table 1 parameters.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(DiskConfig::default())
    }

    /// The configured hardware parameters.
    pub fn config(&self) -> DiskConfig {
        self.cfg
    }

    /// Allocate a fresh file id.
    pub fn alloc_file(&self) -> FileId {
        FileId(self.next_file.fetch_add(1, Ordering::Relaxed))
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Reset counters and head position (used between experiment runs,
    /// mirroring the paper's cache flushing between trials).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.head = None;
        st.stats = IoStats::default();
    }

    #[inline]
    fn charge(&self, file: FileId, page: u64, is_write: bool) {
        let mut st = self.state.lock();
        // Cost of moving the head to `page`: adjacent (or same) pages are
        // sequential; a short forward skip is priced as reading through
        // the gap, capped by a full seek — this is what makes a dense
        // bitmap sweep "gradually closer to a full table scan" (§3.2/§4.1
        // of the paper) instead of a pathological seek per page.
        let cost = match st.head {
            Some((f, last)) if f == file && page >= last => {
                let delta = page - last;
                if delta <= 1 {
                    self.cfg.seq_page_ms
                } else {
                    (delta as f64 * self.cfg.seq_page_ms).min(self.cfg.seek_ms)
                }
            }
            _ => self.cfg.seek_ms,
        };
        let sequential = cost < self.cfg.seek_ms;
        if is_write {
            st.stats.page_writes += 1;
        } else if sequential {
            st.stats.seq_reads += 1;
        } else {
            st.stats.seeks += 1;
        }
        st.stats.elapsed_ms += cost;
        st.head = Some((file, page));
    }
}

impl PageAccessor for DiskSim {
    fn read(&self, file: FileId, page: u64) {
        self.charge(file, page, false);
    }

    fn write(&self, file: FileId, page: u64) {
        self.charge(file, page, true);
    }
}

impl PageAccessor for Arc<DiskSim> {
    fn read(&self, file: FileId, page: u64) {
        self.as_ref().read(file, page);
    }
    fn write(&self, file: FileId, page: u64) {
        self.as_ref().write(file, page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn sequential_run_costs_one_seek_plus_seq_pages() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        for p in 0..10 {
            disk.read(f, p);
        }
        let s = disk.stats();
        assert_eq!(s.seeks, 1);
        assert_eq!(s.seq_reads, 9);
        assert!(close(s.elapsed_ms, 5.5 + 9.0 * 0.078), "got {}", s.elapsed_ms);
    }

    #[test]
    fn rereading_same_page_is_sequential() {
        // The head is already positioned there; no mechanical movement.
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.read(f, 3);
        disk.read(f, 3);
        let s = disk.stats();
        assert_eq!(s.seeks, 1);
        assert_eq!(s.seq_reads, 1);
    }

    #[test]
    fn scattered_reads_all_seek() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        for p in [100u64, 5, 900, 42] {
            disk.read(f, p);
        }
        let s = disk.stats();
        assert_eq!(s.seeks, 4);
        assert_eq!(s.seq_reads, 0);
        assert!(close(s.elapsed_ms, 4.0 * 5.5));
    }

    #[test]
    fn switching_files_breaks_sequentiality() {
        let disk = DiskSim::with_defaults();
        let f1 = disk.alloc_file();
        let f2 = disk.alloc_file();
        disk.read(f1, 0);
        disk.read(f1, 1);
        disk.read(f2, 2); // different file: seek even though page is "next"
        disk.read(f1, 2); // back to f1: seek again
        let s = disk.stats();
        assert_eq!(s.seeks, 3);
        assert_eq!(s.seq_reads, 1);
    }

    #[test]
    fn writes_are_counted_separately_but_priced_by_position() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.write(f, 0);
        disk.write(f, 1);
        disk.write(f, 5000);
        let s = disk.stats();
        assert_eq!(s.page_writes, 3);
        assert_eq!(s.seeks, 0);
        assert!(close(s.elapsed_ms, 5.5 + 0.078 + 5.5));
    }

    #[test]
    fn short_forward_skips_price_as_read_through() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.read(f, 0);
        disk.read(f, 10); // skip of 10 pages: 10 * 0.078 < 5.5
        let s = disk.stats();
        assert!(close(s.elapsed_ms, 5.5 + 10.0 * 0.078), "got {}", s.elapsed_ms);
        assert_eq!(s.seq_reads, 1, "short skip counts as read-through");
        // A long forward skip is a real seek.
        disk.read(f, 10_000);
        assert_eq!(disk.stats().seeks, 2);
        // A backward skip is always a seek.
        disk.read(f, 9_000);
        assert_eq!(disk.stats().seeks, 3);
    }

    #[test]
    fn stats_delta_and_reset() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        disk.read(f, 0);
        let snap = disk.stats();
        disk.read(f, 1);
        disk.read(f, 2);
        let d = disk.stats().since(&snap);
        assert_eq!(d.seq_reads, 2);
        assert_eq!(d.seeks, 0);
        disk.reset();
        assert_eq!(disk.stats(), IoStats::default());
        // After reset the head is unknown again: first read seeks.
        disk.read(f, 3);
        assert_eq!(disk.stats().seeks, 1);
    }

    #[test]
    fn file_ids_are_unique() {
        let disk = DiskSim::with_defaults();
        let a = disk.alloc_file();
        let b = disk.alloc_file();
        assert_ne!(a, b);
    }

    #[test]
    fn iostats_accumulate() {
        let mut total = IoStats::default();
        let d = IoStats { seeks: 2, seq_reads: 3, page_writes: 1, elapsed_ms: 12.0 };
        total.add(&d);
        total.add(&d);
        assert_eq!(total.seeks, 4);
        assert_eq!(total.pages(), 12);
        assert!(close(total.elapsed_ms, 24.0));
    }
}
