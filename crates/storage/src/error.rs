//! Error type shared by the storage substrate.

use std::fmt;

/// Errors surfaced by the storage layer.
///
/// The simulator is deliberately strict: out-of-range accesses are bugs in
/// the caller (an index handing out a stale RID, a bucket directory past
/// the end of the heap) and are reported rather than silently clamped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A RID referenced a slot that does not exist in the heap file.
    RidOutOfRange {
        /// The offending RID (as a raw row ordinal).
        rid: u64,
        /// Number of rows currently in the heap.
        len: u64,
    },
    /// A page number referenced a page that does not exist in the file.
    PageOutOfRange {
        /// The offending page number.
        page: u64,
        /// Number of pages in the file.
        pages: u64,
    },
    /// A row did not match the schema it was inserted under.
    SchemaMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A column name could not be resolved against a schema.
    UnknownColumn {
        /// The name that failed to resolve.
        name: String,
    },
    /// A real-file backend operation failed (open, extend, pread/pwrite).
    /// Carries the rendered [`std::io::Error`] — the source error is not
    /// `Clone`/`Eq`, which this enum is.
    Io {
        /// What failed and the OS error text.
        detail: String,
    },
}

impl StorageError {
    /// Wrap an [`std::io::Error`] with context about what was attempted.
    pub fn from_io(context: &str, err: &std::io::Error) -> StorageError {
        StorageError::Io { detail: format!("{context}: {err}") }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RidOutOfRange { rid, len } => {
                write!(f, "rid {rid} out of range (heap has {len} rows)")
            }
            StorageError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (file has {pages} pages)")
            }
            StorageError::SchemaMismatch { detail } => {
                write!(f, "schema mismatch: {detail}")
            }
            StorageError::UnknownColumn { name } => {
                write!(f, "unknown column: {name}")
            }
            StorageError::Io { detail } => {
                write!(f, "file backend I/O error: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::RidOutOfRange { rid: 9, len: 3 };
        assert_eq!(e.to_string(), "rid 9 out of range (heap has 3 rows)");
        let e = StorageError::PageOutOfRange { page: 5, pages: 2 };
        assert_eq!(e.to_string(), "page 5 out of range (file has 2 pages)");
        let e = StorageError::UnknownColumn { name: "zip".into() };
        assert_eq!(e.to_string(), "unknown column: zip");
        let e = StorageError::SchemaMismatch { detail: "arity 2 != 3".into() };
        assert!(e.to_string().contains("arity"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let e = StorageError::from_io("open /tmp/x/f0.pages", &io);
        assert_eq!(e.to_string(), "file backend I/O error: open /tmp/x/f0.pages: no such file");
    }
}
