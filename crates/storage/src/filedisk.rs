//! Real-file storage backend: a page store over actual on-disk files.
//!
//! Every headline number in this repo so far is priced in [`DiskSim`](crate::DiskSim)
//! sim-ms — deterministic, but unproven against hardware. [`FileDisk`]
//! closes that gap: it maps each [`FileId`] to a real file of fixed-size
//! pages under one directory and performs the *actual I/O* for every
//! charge — `pread`/`pwrite` per page
//! ([`std::os::unix::fs::FileExt::read_at`] / `write_at`), and **one
//! vectored syscall per contiguous run** for `read_run`/`write_run`
//! (a single `read_exact_at` spanning the whole run, the real-device
//! realisation of the vectored run API from the run-I/O PR).
//!
//! Pair it with [`DiskSim::with_backing`](crate::DiskSim::with_backing) and the simulator keeps doing
//! what it always did — count seeks and sequential pages, price them
//! with Table 1's constants — while every charge *also* hits the real
//! device and its wall-clock nanoseconds accumulate in
//! [`IoStats::read_wall_ns`](crate::IoStats::read_wall_ns) / [`IoStats::write_wall_ns`](crate::IoStats::write_wall_ns). Benchmarks
//! can then report sim-ms and wall-ms side by side and check whether the
//! sim's cost *ordering* predicts the hardware's (the `file_io` bench).
//!
//! ## O_DIRECT
//!
//! Buffered reads measure the OS page cache as much as the device; a
//! "cold" sweep that is warm in the kernel's cache tells you nothing
//! about seek-vs-sequential behaviour. Opening with `O_DIRECT`
//! ([`std::os::unix::fs::OpenOptionsExt::custom_flags`]) bypasses the
//! page cache so repeated cold-scan experiments stay honestly cold.
//! `O_DIRECT` demands block-aligned buffers, offsets, and lengths, and
//! some filesystems (notably tmpfs) reject it outright — so
//! [`FileDisk::new`] *probes* support with a one-page write/read and
//! silently falls back to buffered I/O when the probe fails
//! ([`FileDisk::is_direct`] reports the effective mode,
//! [`FileDisk::direct_requested`] what was asked for).
//!
//! ## What the bytes mean
//!
//! Row data lives in memory throughout this workspace; the disk layer
//! has always been an *access-pattern* instrument. `FileDisk` keeps that
//! contract: pages are real (each page's header is stamped with its file
//! id and page number on write; never-written pages read back as zeros
//! from sparse extents) but carry no row payload. What is measured is
//! the device servicing the exact page-access pattern the engine
//! generates — which is precisely the quantity DiskSim prices.

use crate::disk::{FileId, PageAccessor};
use parking_lot::Mutex;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::{FileExt, OpenOptionsExt};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `O_DIRECT` open flag (Linux; the value is architecture-dependent and
/// `std` does not re-export it).
#[cfg(all(target_os = "linux", any(target_arch = "aarch64", target_arch = "arm")))]
const O_DIRECT: i32 = 0o200000;
/// `O_DIRECT` open flag (Linux, x86 and everything else).
#[cfg(all(target_os = "linux", not(any(target_arch = "aarch64", target_arch = "arm"))))]
const O_DIRECT: i32 = 0o40000;
/// Non-Linux unix: no `O_DIRECT`; the probe fails and buffered I/O is used.
#[cfg(not(target_os = "linux"))]
const O_DIRECT: i32 = 0;

/// Buffer alignment for `O_DIRECT` transfers. 4096 covers every common
/// logical block size (512/4096); buffered I/O tolerates any alignment.
const DIRECT_ALIGN: usize = 4096;

/// Upper bound on the bytes moved by one syscall. Runs longer than this
/// are split into ceiling(run_bytes / MAX_RUN_BYTES) back-to-back
/// syscalls — still vectored (a 27 MB full-table sweep is 2 syscalls,
/// not 3300), while bounding the scratch buffer a scan can pin.
const MAX_RUN_BYTES: usize = 16 << 20;

/// A page-aligned scratch buffer for direct I/O (usable, and reused, for
/// buffered I/O too).
struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the buffer is a plain owned allocation; the raw pointer is
// only ever dereferenced through &self/&mut self borrows.
unsafe impl Send for AlignedBuf {}

impl AlignedBuf {
    fn new(len: usize) -> AlignedBuf {
        let layout = Layout::from_size_align(len.max(DIRECT_ALIGN), DIRECT_ALIGN)
            .expect("valid aligned layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "aligned buffer allocation failed");
        AlignedBuf { ptr, len: layout.size() }
    }

    /// Grow (reallocating) so at least `len` bytes are available.
    fn ensure(&mut self, len: usize) {
        if len > self.len {
            *self = AlignedBuf::new(len);
        }
    }

    fn as_mut_slice(&mut self, len: usize) -> &mut [u8] {
        debug_assert!(len <= self.len);
        // SAFETY: ptr is a live allocation of at least self.len bytes.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, DIRECT_ALIGN).expect("valid layout");
        // SAFETY: ptr was allocated with exactly this layout.
        unsafe { dealloc(self.ptr, layout) };
    }
}

/// One backing file plus its known length (tracked so sparse reads of
/// never-written pages can extend the file instead of hitting EOF).
struct FileEntry {
    file: File,
    /// Length the file is known to cover, in bytes. Grown monotonically
    /// under [`FileEntry::grow`]'s lock (never shrunk — `set_len` would
    /// truncate concurrent extents otherwise).
    len: AtomicU64,
    grow: Mutex<()>,
}

impl FileEntry {
    /// Make sure the file covers `end` bytes (extending sparsely), so a
    /// read of a never-written page returns zeros instead of failing.
    fn ensure_len(&self, end: u64) -> io::Result<()> {
        if self.len.load(Ordering::Acquire) >= end {
            return Ok(());
        }
        let _g = self.grow.lock();
        if self.len.load(Ordering::Acquire) < end {
            self.file.set_len(end)?;
            self.len.store(end, Ordering::Release);
        }
        Ok(())
    }

    /// Record that a write extended the file to at least `end` bytes.
    fn note_len(&self, end: u64) {
        self.len.fetch_max(end, Ordering::AcqRel);
    }
}

/// A real-file page store: each [`FileId`] is one file of fixed-size
/// pages under a common directory. See the [module docs](self) for the
/// design; see [`DiskSim::with_backing`](crate::DiskSim::with_backing) for the usual way to use one.
///
/// Implements [`PageAccessor`] directly (raw device traffic, no
/// accounting): `read`/`write` are one `pread`/`pwrite` per page,
/// `read_run`/`write_run` one syscall per contiguous run.
pub struct FileDisk {
    dir: PathBuf,
    page_bytes: usize,
    direct: bool,
    direct_requested: bool,
    files: Mutex<HashMap<FileId, Arc<FileEntry>>>,
    scratch: Mutex<AlignedBuf>,
}

impl std::fmt::Debug for FileDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileDisk")
            .field("dir", &self.dir)
            .field("page_bytes", &self.page_bytes)
            .field("direct", &self.direct)
            .field("direct_requested", &self.direct_requested)
            .finish_non_exhaustive()
    }
}

impl FileDisk {
    /// Open (creating `dir` if needed) a file-backed page store with the
    /// given page size. When `direct` is requested, `O_DIRECT` support
    /// is probed with a one-page write/read in `dir`; on probe failure
    /// (tmpfs, unaligned page size, non-Linux) the store falls back to
    /// buffered I/O and [`FileDisk::is_direct`] returns `false`.
    pub fn new(dir: impl Into<PathBuf>, page_bytes: usize, direct: bool) -> io::Result<FileDisk> {
        assert!(page_bytes > 0, "page size must be positive");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let effective = direct && page_bytes.is_multiple_of(DIRECT_ALIGN) && probe_direct(&dir, page_bytes);
        Ok(FileDisk {
            dir,
            page_bytes,
            direct: effective,
            direct_requested: direct,
            files: Mutex::new(HashMap::new()),
            scratch: Mutex::new(AlignedBuf::new(DIRECT_ALIGN)),
        })
    }

    /// The directory holding the page files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Page size in bytes (transfer granularity).
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Is I/O actually bypassing the OS page cache (`O_DIRECT`)?
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// Was `O_DIRECT` requested at construction (whether or not the
    /// probe granted it)?
    pub fn direct_requested(&self) -> bool {
        self.direct_requested
    }

    fn entry(&self, file: FileId) -> io::Result<Arc<FileEntry>> {
        let mut files = self.files.lock();
        if let Some(e) = files.get(&file) {
            return Ok(e.clone());
        }
        let path = self.dir.join(format!("f{}.pages", file.0));
        let mut opts = OpenOptions::new();
        opts.read(true).write(true).create(true).truncate(false);
        if self.direct {
            opts.custom_flags(O_DIRECT);
        }
        let f = opts.open(&path)?;
        let len = f.metadata()?.len();
        let e = Arc::new(FileEntry { file: f, len: AtomicU64::new(len), grow: Mutex::new(()) });
        files.insert(file, e.clone());
        Ok(e)
    }

    /// Perform the read for the contiguous page run `lo..=hi` of `file`:
    /// one `read_exact_at` per `MAX_RUN_BYTES` chunk (a single syscall
    /// for any run the benchmarks issue). Never-written pages read back
    /// as zeros from sparse extents.
    pub fn read_pages(&self, file: FileId, lo: u64, hi: u64) -> io::Result<()> {
        assert!(lo <= hi, "run bounds inverted: {lo}..={hi}");
        let e = self.entry(file)?;
        let page = self.page_bytes as u64;
        e.ensure_len((hi + 1) * page)?;
        let mut scratch = self.scratch.lock();
        let mut off = lo * page;
        let mut remaining = (hi - lo + 1) * page;
        while remaining > 0 {
            let chunk = remaining.min(MAX_RUN_BYTES as u64) as usize;
            scratch.ensure(chunk);
            e.file.read_exact_at(scratch.as_mut_slice(chunk), off)?;
            off += chunk as u64;
            remaining -= chunk as u64;
        }
        Ok(())
    }

    /// Perform the write for the contiguous page run `lo..=hi` of
    /// `file`: each page's header is stamped with `(file, page)`, then
    /// the whole run goes down in one `write_all_at` per
    /// `MAX_RUN_BYTES` chunk.
    pub fn write_pages(&self, file: FileId, lo: u64, hi: u64) -> io::Result<()> {
        assert!(lo <= hi, "run bounds inverted: {lo}..={hi}");
        let e = self.entry(file)?;
        let page = self.page_bytes;
        let mut scratch = self.scratch.lock();
        let mut next = lo;
        let pages_per_chunk = (MAX_RUN_BYTES / page).max(1);
        while next <= hi {
            let count = ((hi - next + 1) as usize).min(pages_per_chunk);
            let chunk = count * page;
            scratch.ensure(chunk);
            let buf = scratch.as_mut_slice(chunk);
            for i in 0..count {
                stamp_page(&mut buf[i * page..], file, next + i as u64);
            }
            let off = next * page as u64;
            e.file.write_all_at(buf, off)?;
            e.note_len(off + chunk as u64);
            next += count as u64;
        }
        Ok(())
    }

    /// Bytes the store's files currently cover (sum of known lengths) —
    /// diagnostics for benchmarks.
    pub fn bytes_on_disk(&self) -> u64 {
        self.files.lock().values().map(|e| e.len.load(Ordering::Acquire)).sum()
    }
}

/// Stamp a page image's header with its identity (a shred of
/// verifiability; the payload is not row data — see the module docs).
fn stamp_page(buf: &mut [u8], file: FileId, page: u64) {
    buf[..4].copy_from_slice(&file.0.to_le_bytes());
    buf[4..12].copy_from_slice(&page.to_le_bytes());
}

/// Can `dir`'s filesystem serve `O_DIRECT` transfers of `page_bytes`?
/// Tried with a real one-page write + read-back on a probe file.
fn probe_direct(dir: &Path, page_bytes: usize) -> bool {
    if O_DIRECT == 0 {
        return false;
    }
    let path = dir.join(".direct_probe");
    let ok = (|| -> io::Result<()> {
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .custom_flags(O_DIRECT)
            .open(&path)?;
        let mut buf = AlignedBuf::new(page_bytes);
        f.write_all_at(buf.as_mut_slice(page_bytes), 0)?;
        f.read_exact_at(buf.as_mut_slice(page_bytes), 0)?;
        Ok(())
    })()
    .is_ok();
    let _ = std::fs::remove_file(&path);
    ok
}

impl PageAccessor for FileDisk {
    fn read(&self, file: FileId, page: u64) {
        self.read_pages(file, page, page)
            .unwrap_or_else(|e| panic!("file-backed read {file:?} page {page}: {e}"));
    }

    fn write(&self, file: FileId, page: u64) {
        self.write_pages(file, page, page)
            .unwrap_or_else(|e| panic!("file-backed write {file:?} page {page}: {e}"));
    }

    fn read_run(&self, file: FileId, lo: u64, hi: u64) {
        self.read_pages(file, lo, hi)
            .unwrap_or_else(|e| panic!("file-backed read {file:?} run {lo}..={hi}: {e}"));
    }

    fn write_run(&self, file: FileId, lo: u64, hi: u64) {
        self.write_pages(file, lo, hi)
            .unwrap_or_else(|e| panic!("file-backed write {file:?} run {lo}..={hi}: {e}"));
    }
}

/// A self-deleting temporary directory for file-backed tests and
/// benchmarks (std-only; the workspace has no registry access for the
/// `tempfile` crate). Unique per process × instance.
#[derive(Debug)]
pub struct TempDir(PathBuf);

impl TempDir {
    /// Create `${TMPDIR}/<prefix>-<pid>-<seq>-<nanos>/`.
    pub fn new(prefix: &str) -> io::Result<TempDir> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}-{nanos}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir(path))
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_roundtrip_and_files_materialize() {
        let tmp = TempDir::new("cm-filedisk").unwrap();
        let fd = FileDisk::new(tmp.path().join("d"), 8192, false).unwrap();
        let f = FileId(3);
        fd.write_pages(f, 0, 4).unwrap();
        fd.read_pages(f, 0, 4).unwrap();
        let path = fd.dir().join("f3.pages");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 5 * 8192);
        // The stamp is really on disk.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..4], &3u32.to_le_bytes());
        assert_eq!(&bytes[8192 + 4..8192 + 12], &1u64.to_le_bytes());
        assert_eq!(fd.bytes_on_disk(), 5 * 8192);
    }

    #[test]
    fn reading_never_written_pages_returns_zeros_not_errors() {
        let tmp = TempDir::new("cm-filedisk").unwrap();
        let fd = FileDisk::new(tmp.path().join("d"), 4096, false).unwrap();
        let f = FileId(0);
        // A cold read far past EOF: the sparse extension covers it.
        fd.read_pages(f, 10, 20).unwrap();
        assert_eq!(std::fs::metadata(fd.dir().join("f0.pages")).unwrap().len(), 21 * 4096);
    }

    #[test]
    fn sparse_extension_never_truncates() {
        let tmp = TempDir::new("cm-filedisk").unwrap();
        let fd = FileDisk::new(tmp.path().join("d"), 4096, false).unwrap();
        let f = FileId(0);
        fd.write_pages(f, 0, 9).unwrap();
        fd.read_pages(f, 2, 3).unwrap(); // shorter than the file: no shrink
        assert_eq!(std::fs::metadata(fd.dir().join("f0.pages")).unwrap().len(), 10 * 4096);
    }

    #[test]
    fn direct_mode_is_probed_not_assumed() {
        let tmp = TempDir::new("cm-filedisk").unwrap();
        let fd = FileDisk::new(tmp.path().join("d"), 8192, true).unwrap();
        assert!(fd.direct_requested());
        // Whatever the filesystem granted, I/O must work.
        let f = FileId(1);
        fd.write_pages(f, 0, 3).unwrap();
        fd.read_pages(f, 0, 3).unwrap();
        // An unalignable page size can never be direct.
        let fd = FileDisk::new(tmp.path().join("odd"), 1000, true).unwrap();
        assert!(!fd.is_direct(), "1000-byte pages cannot satisfy O_DIRECT alignment");
        fd.write_pages(f, 0, 1).unwrap();
    }

    #[test]
    fn page_accessor_impl_performs_real_io() {
        let tmp = TempDir::new("cm-filedisk").unwrap();
        let fd = FileDisk::new(tmp.path().join("d"), 4096, false).unwrap();
        let f = FileId(7);
        fd.write(f, 0);
        fd.write_run(f, 1, 3);
        fd.read(f, 2);
        fd.read_run(f, 0, 3);
        assert_eq!(fd.bytes_on_disk(), 4 * 4096);
    }

    #[test]
    fn tempdir_removes_itself() {
        let path;
        {
            let tmp = TempDir::new("cm-filedisk-rm").unwrap();
            path = tmp.path().to_path_buf();
            std::fs::write(path.join("x"), b"y").unwrap();
        }
        assert!(!path.exists(), "TempDir cleans up on drop");
    }
}
