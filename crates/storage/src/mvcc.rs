//! Multi-version concurrency control: the global commit clock, the
//! pending-transaction commit table, and snapshot handles.
//!
//! The engine keeps every shard behind a `RwLock`, which means a writer
//! used to block all readers on its shard. MVCC decouples them: each
//! heap slot carries a `begin`/`end` **stamp pair** and every query
//! reads at a **snapshot timestamp**, filtering row visibility instead
//! of waiting for locks. Readers still take the shard *read* lock (the
//! heap `Vec` must not be reallocated under them) but never wait on a
//! logical writer's transaction, and writers never wait for readers.
//!
//! ## Stamp encoding
//!
//! A stamp is a `u64` with two interpretations:
//!
//! * **Commit timestamp** (high bit clear, or [`LIVE_TS`]): the row
//!   version was created / ended at that clock tick. [`LIVE_TS`]
//!   (`u64::MAX`) as an `end` stamp means "still live".
//! * **Pending marker** (high bit set via [`TXN_STAMP_BIT`]): the
//!   mutation belongs to transaction `stamp & !TXN_STAMP_BIT` that has
//!   not committed yet. Readers resolve it through the commit table:
//!   unresolvable means "invisible".
//!
//! ## Commit protocol
//!
//! [`MvccState::commit_txn`] serialises on a private mutex and performs
//! *(1)* insert `txn → ts` into the commit table, *(2)* publish `ts` as
//! the new clock value — in that order. A snapshot therefore can never
//! observe `clock ≥ ts` without the commit-table entry being readable,
//! so a pending stamp visible to a snapshot always resolves.
//!
//! ## Garbage collection
//!
//! Ended versions stay in the heap (and in the access structures) until
//! a vacuum pass reclaims every version whose end stamp is at or below
//! the **oldest live snapshot** ([`MvccState::oldest_live`]). Snapshots
//! register themselves in an active set on creation and deregister on
//! drop, so the oldest-live bound is exact. Vacuum also rewrites
//! resolvable pending stamps to their plain commit timestamps, which is
//! what lets it prune the commit table ([`MvccState::prune_commits`])
//! without leaving dangling pending markers behind.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// `end` stamp of a live (not yet deleted) row version.
pub const LIVE_TS: u64 = u64::MAX;

/// High bit marking a stamp as a pending-transaction marker rather than
/// a plain commit timestamp. ([`LIVE_TS`] also has the bit set and is
/// special-cased: it is never a pending marker.)
pub const TXN_STAMP_BIT: u64 = 1 << 63;

/// Encode "written by still-pending transaction `txn`" as a stamp.
pub fn pending_stamp(txn: u64) -> u64 {
    debug_assert_eq!(txn & TXN_STAMP_BIT, 0, "txn id overflows stamp space");
    txn | TXN_STAMP_BIT
}

/// Is this stamp a pending-transaction marker (vs. a plain timestamp)?
pub fn is_pending(stamp: u64) -> bool {
    stamp != LIVE_TS && stamp & TXN_STAMP_BIT != 0
}

/// The transaction id inside a pending stamp.
pub fn pending_txn(stamp: u64) -> u64 {
    stamp & !TXN_STAMP_BIT
}

/// Counters describing the MVCC machinery, in the spirit of
/// [`crate::IoStats`]: cheap to snapshot, monotone where meaningful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MvccStats {
    /// Current value of the commit clock.
    pub clock: u64,
    /// Snapshots currently registered (live readers).
    pub active_snapshots: u64,
    /// Oldest live snapshot timestamp (== `clock` when none active).
    pub oldest_live: u64,
    /// Entries still in the commit table (committed txns whose stamps
    /// have not all been rewritten by vacuum yet).
    pub pending_commits: u64,
    /// Row versions physically reclaimed by vacuum since start.
    pub reclaimed_versions: u64,
    /// Pending stamps rewritten to plain commit timestamps by vacuum.
    pub resolved_stamps: u64,
    /// Completed vacuum passes.
    pub vacuum_runs: u64,
}

/// Shared MVCC state: the commit clock, the commit table, and the
/// active-snapshot registry. One per [`crate::DiskSim`]-backed engine.
#[derive(Debug, Default)]
pub struct MvccState {
    clock: AtomicU64,
    commit_lock: Mutex<()>,
    commits: RwLock<HashMap<u64, u64>>,
    active: Mutex<BTreeMap<u64, usize>>,
    reclaimed: AtomicU64,
    resolved: AtomicU64,
    vacuums: AtomicU64,
}

impl MvccState {
    /// Fresh state; the clock starts at 1 so bulk-loaded rows stamped
    /// with `begin = 1` are visible to every snapshot.
    pub fn new() -> Self {
        Self { clock: AtomicU64::new(1), ..Self::default() }
    }

    // Poison-tolerant lock helpers. The std locks poison when a holder
    // panics; here every critical section only moves the protected map
    // between internally-consistent states (insert / remove / retain /
    // clear — no multi-step invariants are ever exposed mid-flight), so
    // a panicked holder must not wedge every subsequent reader and
    // writer behind `PoisonError`. `into_inner` recovers the guard.

    fn commits_read(&self) -> RwLockReadGuard<'_, HashMap<u64, u64>> {
        self.commits.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn commits_write(&self) -> RwLockWriteGuard<'_, HashMap<u64, u64>> {
        self.commits.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn active_lock(&self) -> MutexGuard<'_, BTreeMap<u64, usize>> {
        self.active.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn commit_guard(&self) -> MutexGuard<'_, ()> {
        self.commit_lock.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current clock value — the timestamp a snapshot taken now reads at.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Allocate a fresh commit timestamp for a single-shot autocommit
    /// mutation. Must be called while holding the write lock of the one
    /// shard the mutation touches: any snapshot new enough to see the
    /// stamp then can't scan that shard until the row is in place.
    pub fn next_ts(&self) -> u64 {
        let _g = self.commit_guard();
        let ts = self.now() + 1;
        self.clock.store(ts, Ordering::Release);
        ts
    }

    /// Commit `txn`: allocate its timestamp, record it in the commit
    /// table, then publish the clock. Returns the commit timestamp.
    pub fn commit_txn(&self, txn: u64) -> u64 {
        let _g = self.commit_guard();
        let ts = self.now() + 1;
        self.commits_write().insert(txn, ts);
        self.clock.store(ts, Ordering::Release);
        ts
    }

    /// Resolve a pending stamp to its commit timestamp, if the owning
    /// transaction has committed.
    pub fn resolve(&self, stamp: u64) -> Option<u64> {
        self.commits_read().get(&pending_txn(stamp)).copied()
    }

    /// After a crash restart: force the clock to `ts` (recovery sets it
    /// past the largest logged commit timestamp) and drop all volatile
    /// commit-table / snapshot state.
    pub fn reset_clock(&self, ts: u64) {
        let _g = self.commit_guard();
        self.clock.store(ts.max(1), Ordering::Release);
        self.commits_write().clear();
    }

    /// Open a registered snapshot at the current clock. The snapshot
    /// pins its timestamp in the active set until dropped, which is
    /// what holds vacuum back from reclaiming versions it can see.
    pub fn begin(self: &Arc<Self>) -> Snapshot {
        let mut active = self.active_lock();
        let ts = self.now();
        *active.entry(ts).or_insert(0) += 1;
        Snapshot { ts, state: Arc::clone(self) }
    }

    /// The oldest snapshot timestamp still registered, or the current
    /// clock when no reader is active. Versions ended at or below this
    /// are invisible to every present and future snapshot.
    pub fn oldest_live(&self) -> u64 {
        let active = self.active_lock();
        active.keys().next().copied().unwrap_or_else(|| self.now())
    }

    /// Drop commit-table entries with `ts <= cutoff`. Only safe after
    /// every stamp of those transactions has been rewritten to its
    /// plain timestamp (vacuum's rewrite pass guarantees this).
    pub fn prune_commits(&self, cutoff: u64) {
        self.commits_write().retain(|_, ts| *ts > cutoff);
    }

    /// Record `n` versions physically reclaimed by vacuum.
    pub fn note_reclaimed(&self, n: u64) {
        self.reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` pending stamps rewritten to plain timestamps.
    pub fn note_resolved(&self, n: u64) {
        self.resolved.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one completed vacuum pass.
    pub fn note_vacuum(&self) {
        self.vacuums.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> MvccStats {
        let active = self.active_lock();
        MvccStats {
            clock: self.now(),
            active_snapshots: active.values().map(|&n| n as u64).sum(),
            oldest_live: active.keys().next().copied().unwrap_or_else(|| self.now()),
            pending_commits: self.commits_read().len() as u64,
            reclaimed_versions: self.reclaimed.load(Ordering::Relaxed),
            resolved_stamps: self.resolved.load(Ordering::Relaxed),
            vacuum_runs: self.vacuums.load(Ordering::Relaxed),
        }
    }
}

/// A registered read snapshot: "the database as of clock tick `ts`".
/// Deregisters itself on drop.
#[derive(Debug)]
pub struct Snapshot {
    ts: u64,
    state: Arc<MvccState>,
}

impl Snapshot {
    /// The snapshot timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Did `stamp` commit at or before this snapshot? Pending stamps go
    /// through the commit table; unresolvable means "no".
    pub fn committed_before(&self, stamp: u64) -> bool {
        if is_pending(stamp) {
            match self.state.resolve(stamp) {
                Some(ts) => ts <= self.ts,
                None => false,
            }
        } else {
            stamp <= self.ts
        }
    }

    /// Is a row version with this stamp pair visible to the snapshot?
    /// Visible iff its begin committed at or before `ts` and its end
    /// (if any) did not.
    pub fn sees(&self, begin: u64, end: u64) -> bool {
        self.committed_before(begin) && !self.committed_before(end)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut active = self.state.active_lock();
        if let std::collections::btree_map::Entry::Occupied(mut e) = active.entry(self.ts) {
            *e.get_mut() -= 1;
            if *e.get() == 0 {
                e.remove();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_encoding_roundtrips_and_live_is_not_pending() {
        let s = pending_stamp(42);
        assert!(is_pending(s));
        assert_eq!(pending_txn(s), 42);
        assert!(!is_pending(7));
        assert!(!is_pending(LIVE_TS), "LIVE_TS is a timestamp, not a pending marker");
    }

    #[test]
    fn commit_advances_clock_and_resolves() {
        let mv = Arc::new(MvccState::new());
        assert_eq!(mv.now(), 1);
        let ts = mv.commit_txn(9);
        assert_eq!(ts, 2);
        assert_eq!(mv.now(), 2);
        assert_eq!(mv.resolve(pending_stamp(9)), Some(2));
        assert_eq!(mv.resolve(pending_stamp(8)), None);
    }

    #[test]
    fn snapshot_visibility_rules() {
        let mv = Arc::new(MvccState::new());
        let t1 = mv.next_ts(); // 2
        let snap = mv.begin(); // at 2
        let t2 = mv.next_ts(); // 3, after the snapshot
        assert!(snap.sees(t1, LIVE_TS), "committed before snapshot, live");
        assert!(!snap.sees(t2, LIVE_TS), "committed after snapshot");
        assert!(!snap.sees(1, t1), "ended before snapshot");
        assert!(snap.sees(1, t2), "ended after snapshot: still visible");
    }

    #[test]
    fn pending_stamps_are_invisible_until_commit() {
        let mv = Arc::new(MvccState::new());
        let stamp = pending_stamp(5);
        let early = mv.begin();
        assert!(!early.sees(stamp, LIVE_TS), "uncommitted write invisible");
        let ts = mv.commit_txn(5);
        assert!(!early.sees(stamp, LIVE_TS), "still invisible to the older snapshot");
        let late = mv.begin();
        assert!(late.ts() >= ts);
        assert!(late.sees(stamp, LIVE_TS), "resolves through the commit table");
        // A pending *end* stamp hides the row only once committed.
        assert!(!late.sees(1, stamp), "end stamp resolved: deleted");
        assert!(early.sees(1, stamp), "deletion is after the early snapshot");
    }

    #[test]
    fn oldest_live_tracks_registration() {
        let mv = Arc::new(MvccState::new());
        assert_eq!(mv.oldest_live(), 1);
        let s1 = mv.begin();
        mv.next_ts();
        mv.next_ts();
        let s2 = mv.begin();
        assert_eq!(mv.oldest_live(), s1.ts());
        drop(s1);
        assert_eq!(mv.oldest_live(), s2.ts());
        drop(s2);
        assert_eq!(mv.oldest_live(), mv.now());
    }

    #[test]
    fn duplicate_timestamps_refcount() {
        let mv = Arc::new(MvccState::new());
        let a = mv.begin();
        let b = mv.begin();
        assert_eq!(a.ts(), b.ts());
        assert_eq!(mv.stats().active_snapshots, 2);
        drop(a);
        assert_eq!(mv.oldest_live(), b.ts(), "refcounted: still pinned");
        drop(b);
        assert_eq!(mv.stats().active_snapshots, 0);
    }

    #[test]
    fn prune_drops_only_old_entries() {
        let mv = Arc::new(MvccState::new());
        let t1 = mv.commit_txn(1);
        let t2 = mv.commit_txn(2);
        mv.prune_commits(t1);
        assert_eq!(mv.resolve(pending_stamp(1)), None, "pruned");
        assert_eq!(mv.resolve(pending_stamp(2)), Some(t2), "kept");
    }

    #[test]
    fn poisoned_locks_do_not_wedge_readers() {
        // A thread that panics while holding the commit-table write lock
        // (and the active-set mutex) poisons both std locks. The
        // poison-tolerant helpers must keep every subsequent operation
        // working — a crashed writer can't take the MVCC state down.
        let mv = Arc::new(MvccState::new());
        let t1 = mv.commit_txn(1);
        let poisoner = Arc::clone(&mv);
        let _ = std::thread::spawn(move || {
            let _commits = poisoner.commits.write().unwrap();
            let _active = poisoner.active.lock().unwrap();
            panic!("die holding both locks");
        })
        .join();
        assert!(mv.commits.write().is_err(), "lock really is poisoned");
        assert!(mv.active.lock().is_err(), "lock really is poisoned");
        // Reads, writes, snapshots, and stats all still work.
        assert_eq!(mv.resolve(pending_stamp(1)), Some(t1));
        let t2 = mv.commit_txn(2);
        assert_eq!(mv.resolve(pending_stamp(2)), Some(t2));
        let snap = mv.begin();
        assert!(snap.sees(t1, LIVE_TS));
        assert_eq!(mv.stats().active_snapshots, 1);
        assert_eq!(mv.oldest_live(), snap.ts());
        drop(snap); // Snapshot::drop also takes the poisoned active lock
        assert_eq!(mv.stats().active_snapshots, 0);
        mv.prune_commits(t1);
        assert_eq!(mv.resolve(pending_stamp(1)), None);
        mv.reset_clock(50);
        assert_eq!(mv.now(), 50);
    }

    #[test]
    fn reset_clock_clears_volatile_state() {
        let mv = Arc::new(MvccState::new());
        mv.commit_txn(3);
        mv.reset_clock(100);
        assert_eq!(mv.now(), 100);
        assert_eq!(mv.resolve(pending_stamp(3)), None);
        mv.reset_clock(0);
        assert_eq!(mv.now(), 1, "clock floor is 1");
    }
}
