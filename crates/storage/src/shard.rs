//! Sharded storage backends.
//!
//! The simulated disk has one head: two concurrent sequential scans on
//! the same [`DiskSim`] interleave their page accesses and turn each
//! other's sequential reads into seeks — exactly like two scans sharing
//! one spindle. A [`StorageShard`] bundles one disk with its own
//! [`BufferPool`] so a higher layer can partition data across N shards
//! and let concurrent scans on different shards keep their
//! sequentiality (the hybrid per-partition storage HRDBMS argues for).

use crate::bufferpool::{BufferPool, PoolStats};
use crate::disk::{DiskConfig, DiskSim, IoStats};
use crate::error::StorageError;
use crate::filedisk::FileDisk;
use std::path::PathBuf;
use std::sync::Arc;

/// Which device a shard's (or the WAL's) disk runs on.
///
/// [`Backend::Sim`] is the deterministic default: pure [`DiskSim`],
/// sim-ms only, byte-for-byte reproducible — every existing test and
/// experiment uses it. [`Backend::File`] additionally backs each disk
/// with a [`FileDisk`] under `dir` (each disk gets its own
/// subdirectory), so every charge performs the real `pread`/`pwrite`
/// and the wall clock lands in [`IoStats::read_wall_ns`] /
/// [`IoStats::write_wall_ns`]. The sim counters are identical either
/// way — the backend knob changes what is *measured*, never what is
/// *computed*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Backend {
    /// Pure simulation (the deterministic oracle).
    #[default]
    Sim,
    /// Real files under `dir`; `direct` requests `O_DIRECT` (falls back
    /// to buffered I/O where unsupported — tmpfs, odd page sizes).
    File {
        /// Directory that holds one subdirectory per disk.
        dir: PathBuf,
        /// Request `O_DIRECT` (bypass the OS page cache).
        direct: bool,
    },
}

impl Backend {
    /// Build one disk on this backend. `name` keys the disk's
    /// subdirectory under a [`Backend::File`] root (e.g. `"shard0"`,
    /// `"wal"`); [`Backend::Sim`] ignores it.
    pub fn make_disk(&self, cfg: DiskConfig, name: &str) -> Result<Arc<DiskSim>, StorageError> {
        match self {
            Backend::Sim => Ok(DiskSim::new(cfg)),
            Backend::File { dir, direct } => {
                let fd = FileDisk::new(dir.join(name), cfg.page_bytes, *direct)
                    .map_err(|e| StorageError::from_io(&format!("open backend dir for {name}"), &e))?;
                Ok(DiskSim::with_backing(cfg, fd))
            }
        }
    }
}

/// One storage backend: a simulated disk plus its private buffer pool.
pub struct StorageShard {
    disk: Arc<DiskSim>,
    pool: BufferPool,
}

impl StorageShard {
    /// A fresh shard with its own disk (head position, file ids, stats)
    /// and a pool of `pool_pages` frames.
    pub fn new(cfg: DiskConfig, pool_pages: usize) -> Self {
        let disk = DiskSim::new(cfg);
        let pool = BufferPool::new(disk.clone(), pool_pages);
        StorageShard { disk, pool }
    }

    /// Like [`StorageShard::new`], but the disk is built on `backend`
    /// (`name` keys its directory under a [`Backend::File`] root).
    pub fn with_backend(
        cfg: DiskConfig,
        pool_pages: usize,
        backend: &Backend,
        name: &str,
    ) -> Result<Self, StorageError> {
        let disk = backend.make_disk(cfg, name)?;
        let pool = BufferPool::new(disk.clone(), pool_pages);
        Ok(StorageShard { disk, pool })
    }

    /// The shard's simulated disk.
    pub fn disk(&self) -> &Arc<DiskSim> {
        &self.disk
    }

    /// The shard's buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Cumulative I/O counters of this shard's disk.
    pub fn io_stats(&self) -> IoStats {
        self.disk.stats()
    }

    /// Hit/miss/eviction counters of this shard's pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Drop every pool frame (writing dirty ones back) and return the
    /// I/O charged — the per-shard leg of between-trial cache flushing.
    pub fn flush(&self) -> IoStats {
        self.pool.flush_all()
    }

    /// Reset the disk counters and head position.
    pub fn reset_io(&self) {
        self.disk.reset();
    }
}

/// Sum I/O counters across shards (total traffic, as if the shards were
/// one serial device). For wall-clock-style readings over parallel
/// spindles, see [`makespan_ms`].
pub fn aggregate_io<'a>(shards: impl IntoIterator<Item = &'a IoStats>) -> IoStats {
    let mut total = IoStats::default();
    for s in shards {
        total.add(s);
    }
    total
}

/// Sum pool counters across shards.
pub fn aggregate_pool<'a>(shards: impl IntoIterator<Item = &'a PoolStats>) -> PoolStats {
    let mut total = PoolStats::default();
    for s in shards {
        total.add(s);
    }
    total
}

/// The busiest shard's simulated elapsed time — the makespan of a window
/// in which the shards' disks worked in parallel.
pub fn makespan_ms<'a>(shards: impl IntoIterator<Item = &'a IoStats>) -> f64 {
    shards.into_iter().map(|s| s.elapsed_ms).fold(0.0, f64::max)
}

// A shard backend is handed by reference to executor worker threads
// running per-shard query legs, so disk and pool must both be shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StorageShard>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::PageAccessor;

    #[test]
    fn shards_have_independent_heads() {
        let a = StorageShard::new(DiskConfig::default(), 8);
        let b = StorageShard::new(DiskConfig::default(), 8);
        let fa = a.disk().alloc_file();
        let fb = b.disk().alloc_file();
        // Interleave two "scans" across *different* shards: each disk
        // still sees a pure sequential run.
        for p in 0..10u64 {
            a.disk().read(fa, p);
            b.disk().read(fb, p);
        }
        assert_eq!(a.io_stats().seeks, 1);
        assert_eq!(a.io_stats().seq_reads, 9);
        assert_eq!(b.io_stats().seeks, 1);
        // The same interleaving on one shared disk seeks every access.
        let shared = StorageShard::new(DiskConfig::default(), 8);
        let f1 = shared.disk().alloc_file();
        let f2 = shared.disk().alloc_file();
        for p in 0..10u64 {
            shared.disk().read(f1, p);
            shared.disk().read(f2, p);
        }
        assert_eq!(shared.io_stats().seq_reads, 0, "interleaving kills sequentiality");
    }

    #[test]
    fn aggregation_and_makespan() {
        let a = IoStats {
            seeks: 2,
            seq_reads: 10,
            page_writes: 1,
            write_seeks: 1,
            elapsed_ms: 12.0,
            ..Default::default()
        };
        let b = IoStats {
            seeks: 1,
            seq_reads: 0,
            page_writes: 0,
            write_seeks: 0,
            elapsed_ms: 5.5,
            ..Default::default()
        };
        let total = aggregate_io([&a, &b]);
        assert_eq!(total.seeks, 3);
        assert_eq!(total.pages(), 14);
        assert!((total.elapsed_ms - 17.5).abs() < 1e-9);
        assert!((makespan_ms([&a, &b]) - 12.0).abs() < 1e-9);
        let p1 = PoolStats { hits: 5, misses: 2, dirty_evictions: 1, clean_evictions: 0 };
        let p2 = PoolStats { hits: 1, misses: 1, dirty_evictions: 0, clean_evictions: 3 };
        let pt = aggregate_pool([&p1, &p2]);
        assert_eq!((pt.hits, pt.misses, pt.dirty_evictions, pt.clean_evictions), (6, 3, 1, 3));
    }

    #[test]
    fn flush_writes_back_dirty_pool_frames() {
        let s = StorageShard::new(DiskConfig::default(), 8);
        let f = s.disk().alloc_file();
        s.pool().write(f, 0);
        s.pool().write(f, 1);
        let io = s.flush();
        assert_eq!(io.page_writes, 2);
        s.reset_io();
        assert_eq!(s.io_stats(), IoStats::default());
    }

    #[test]
    fn file_backend_shards_measure_wall_clock() {
        use crate::filedisk::TempDir;
        let tmp = TempDir::new("cm-shard-backend").unwrap();
        let backend =
            Backend::File { dir: tmp.path().to_path_buf(), direct: false };
        let sim = StorageShard::with_backend(DiskConfig::default(), 8, &Backend::Sim, "s").unwrap();
        let file =
            StorageShard::with_backend(DiskConfig::default(), 8, &backend, "shard0").unwrap();
        for s in [&sim, &file] {
            let f = s.disk().alloc_file();
            s.disk().read_run(f, 0, 9);
        }
        // Identical sim accounting, wall clock only on the file backend.
        assert_eq!(sim.io_stats().seeks, file.io_stats().seeks);
        assert_eq!(sim.io_stats().seq_reads, file.io_stats().seq_reads);
        assert_eq!(sim.io_stats().read_wall_ns, 0);
        assert!(file.io_stats().read_wall_ns > 0);
        // The disk's files landed under its named subdirectory.
        assert!(tmp.path().join("shard0").join("f0.pages").exists());
        assert!(file.disk().backing().is_some());
        assert_eq!(Backend::default(), Backend::Sim);
    }
}
