//! Sharded storage backends.
//!
//! The simulated disk has one head: two concurrent sequential scans on
//! the same [`DiskSim`] interleave their page accesses and turn each
//! other's sequential reads into seeks — exactly like two scans sharing
//! one spindle. A [`StorageShard`] bundles one disk with its own
//! [`BufferPool`] so a higher layer can partition data across N shards
//! and let concurrent scans on different shards keep their
//! sequentiality (the hybrid per-partition storage HRDBMS argues for).

use crate::bufferpool::{BufferPool, PoolStats};
use crate::disk::{DiskConfig, DiskSim, IoStats};
use std::sync::Arc;

/// One storage backend: a simulated disk plus its private buffer pool.
pub struct StorageShard {
    disk: Arc<DiskSim>,
    pool: BufferPool,
}

impl StorageShard {
    /// A fresh shard with its own disk (head position, file ids, stats)
    /// and a pool of `pool_pages` frames.
    pub fn new(cfg: DiskConfig, pool_pages: usize) -> Self {
        let disk = DiskSim::new(cfg);
        let pool = BufferPool::new(disk.clone(), pool_pages);
        StorageShard { disk, pool }
    }

    /// The shard's simulated disk.
    pub fn disk(&self) -> &Arc<DiskSim> {
        &self.disk
    }

    /// The shard's buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Cumulative I/O counters of this shard's disk.
    pub fn io_stats(&self) -> IoStats {
        self.disk.stats()
    }

    /// Hit/miss/eviction counters of this shard's pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Drop every pool frame (writing dirty ones back) and return the
    /// I/O charged — the per-shard leg of between-trial cache flushing.
    pub fn flush(&self) -> IoStats {
        self.pool.flush_all()
    }

    /// Reset the disk counters and head position.
    pub fn reset_io(&self) {
        self.disk.reset();
    }
}

/// Sum I/O counters across shards (total traffic, as if the shards were
/// one serial device). For wall-clock-style readings over parallel
/// spindles, see [`makespan_ms`].
pub fn aggregate_io<'a>(shards: impl IntoIterator<Item = &'a IoStats>) -> IoStats {
    let mut total = IoStats::default();
    for s in shards {
        total.add(s);
    }
    total
}

/// Sum pool counters across shards.
pub fn aggregate_pool<'a>(shards: impl IntoIterator<Item = &'a PoolStats>) -> PoolStats {
    let mut total = PoolStats::default();
    for s in shards {
        total.add(s);
    }
    total
}

/// The busiest shard's simulated elapsed time — the makespan of a window
/// in which the shards' disks worked in parallel.
pub fn makespan_ms<'a>(shards: impl IntoIterator<Item = &'a IoStats>) -> f64 {
    shards.into_iter().map(|s| s.elapsed_ms).fold(0.0, f64::max)
}

// A shard backend is handed by reference to executor worker threads
// running per-shard query legs, so disk and pool must both be shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StorageShard>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::PageAccessor;

    #[test]
    fn shards_have_independent_heads() {
        let a = StorageShard::new(DiskConfig::default(), 8);
        let b = StorageShard::new(DiskConfig::default(), 8);
        let fa = a.disk().alloc_file();
        let fb = b.disk().alloc_file();
        // Interleave two "scans" across *different* shards: each disk
        // still sees a pure sequential run.
        for p in 0..10u64 {
            a.disk().read(fa, p);
            b.disk().read(fb, p);
        }
        assert_eq!(a.io_stats().seeks, 1);
        assert_eq!(a.io_stats().seq_reads, 9);
        assert_eq!(b.io_stats().seeks, 1);
        // The same interleaving on one shared disk seeks every access.
        let shared = StorageShard::new(DiskConfig::default(), 8);
        let f1 = shared.disk().alloc_file();
        let f2 = shared.disk().alloc_file();
        for p in 0..10u64 {
            shared.disk().read(f1, p);
            shared.disk().read(f2, p);
        }
        assert_eq!(shared.io_stats().seq_reads, 0, "interleaving kills sequentiality");
    }

    #[test]
    fn aggregation_and_makespan() {
        let a = IoStats {
            seeks: 2,
            seq_reads: 10,
            page_writes: 1,
            write_seeks: 1,
            elapsed_ms: 12.0,
        };
        let b = IoStats {
            seeks: 1,
            seq_reads: 0,
            page_writes: 0,
            write_seeks: 0,
            elapsed_ms: 5.5,
        };
        let total = aggregate_io([&a, &b]);
        assert_eq!(total.seeks, 3);
        assert_eq!(total.pages(), 14);
        assert!((total.elapsed_ms - 17.5).abs() < 1e-9);
        assert!((makespan_ms([&a, &b]) - 12.0).abs() < 1e-9);
        let p1 = PoolStats { hits: 5, misses: 2, dirty_evictions: 1, clean_evictions: 0 };
        let p2 = PoolStats { hits: 1, misses: 1, dirty_evictions: 0, clean_evictions: 3 };
        let pt = aggregate_pool([&p1, &p2]);
        assert_eq!((pt.hits, pt.misses, pt.dirty_evictions, pt.clean_evictions), (6, 3, 1, 3));
    }

    #[test]
    fn flush_writes_back_dirty_pool_frames() {
        let s = StorageShard::new(DiskConfig::default(), 8);
        let f = s.disk().alloc_file();
        s.pool().write(f, 0);
        s.pool().write(f, 1);
        let io = s.flush();
        assert_eq!(io.page_writes, 2);
        s.reset_io();
        assert_eq!(s.io_stats(), IoStats::default());
    }
}
