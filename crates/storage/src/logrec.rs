//! Typed, checksummed WAL records.
//!
//! PR 2 gave the engine a group-committed WAL, but its records were raw
//! byte volumes — enough to *price* logging (Experiment 3 counts "all
//! costs involved in maintaining a CM, including transaction logging")
//! but useless for *recovery*. This module adds the logical layer an
//! ARIES-style restart needs: every record is a [`LogPayload`] framed as
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload bytes]
//! ```
//!
//! where `crc32` is CRC-32 (IEEE) over the payload and `len` is the
//! payload length. The **LSN** of a record is the byte offset of its
//! frame start in the log stream — LSNs are never stored in the payload;
//! [`decode_stream`] stamps them from stream position, and
//! [`crate::Wal::log`] returns them at append time.
//!
//! The payload itself begins `[kind: u8][txn: u64 LE]` followed by
//! kind-specific fields. Values are encoded tag + little-endian payload;
//! rows as a `u16` arity followed by their values.
//!
//! **Torn-tail rule:** a crash can cut the stream anywhere, including
//! mid-frame. [`decode_stream`] stops at the first frame that is short
//! or whose checksum fails, reports the prefix length that survived
//! ([`DecodedLog::valid_bytes`]) and whether anything was truncated
//! ([`DecodedLog::torn`]). Recovery replays only the surviving prefix.

use crate::schema::Row;
use crate::value::{OrdF64, Value};

/// Log sequence number: byte offset of a record's frame start in the
/// log stream.
pub type Lsn = u64;

/// The transaction id used by auto-committed (sessionless) mutations.
/// Records tagged with it are always treated as committed by recovery.
pub const AUTOCOMMIT_TXN: u64 = 0;

/// Bytes of framing overhead per record (`len` + `crc32`).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Bytes of payload header per record (`kind` + `txn`).
pub const PAYLOAD_HEADER_BYTES: usize = 9;

const KIND_MAINTENANCE: u8 = 0;
const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_DELETE_SET: u8 = 3;
const KIND_COMMIT: u8 = 4;
const KIND_CKPT_BEGIN: u8 = 5;
const KIND_CKPT_END: u8 = 6;
const KIND_DESIGN_CHANGE: u8 = 7;

/// One logical WAL record (without its transaction id or LSN — those
/// live in [`LogRecord`] and the frame position respectively).
#[derive(Debug, Clone, PartialEq)]
pub enum LogPayload {
    /// Structure-maintenance volume (index/CM upkeep): `bytes` of
    /// padding whose only job is to keep the log's byte accounting
    /// identical to what the paper's Experiment 3 charges. Redo no-op —
    /// structures are rebuilt from the recovered heap.
    Maintenance {
        /// Padding bytes appended after the header.
        bytes: u32,
    },
    /// A row insert into `table`'s shard `shard` at local rid `rid`.
    Insert {
        /// Table name.
        table: String,
        /// Shard index within the table's range partitioning.
        shard: u16,
        /// Local (per-shard) row ordinal.
        rid: u64,
        /// The inserted row (redo image).
        row: Row,
    },
    /// A row delete; carries the before-image so an uncommitted delete
    /// can be undone.
    Delete {
        /// Table name.
        table: String,
        /// Shard index.
        shard: u16,
        /// Local row ordinal.
        rid: u64,
        /// The deleted row (undo image).
        row: Row,
    },
    /// The result set of one `delete_where` leg: every victim with its
    /// before-image, in scan order.
    DeleteSet {
        /// Table name.
        table: String,
        /// Shard index.
        shard: u16,
        /// `(local rid, before-image)` per deleted row.
        victims: Vec<(u64, Row)>,
    },
    /// Transaction commit marker carrying the commit timestamp the MVCC
    /// clock handed out, so recovery can rebuild the snapshot clock
    /// (`max ts + 1`) as well as the committed-txn set. Non-MVCC engines
    /// log `ts = 0`.
    Commit {
        /// Commit timestamp assigned by the engine's global clock
        /// (0 when the engine runs without MVCC).
        ts: u64,
    },
    /// Fuzzy checkpoint start. Its own LSN becomes the `redo_lsn`
    /// recorded by the matching [`LogPayload::CheckpointEnd`].
    CheckpointBegin,
    /// Fuzzy checkpoint end: the snapshot taken since the matching
    /// begin is durable; redo may start at `redo_lsn`.
    CheckpointEnd {
        /// LSN of the matching [`LogPayload::CheckpointBegin`].
        redo_lsn: Lsn,
    },
    /// A physical-design change (CM / B+Tree set replacement). The
    /// design itself travels as opaque bytes so this crate stays below
    /// `cm-core` in the dependency order; `cm-core` provides the codec.
    DesignChange {
        /// Table name.
        table: String,
        /// Opaque encoded design (see `cm_core` spec codecs).
        design: Vec<u8>,
    },
}

/// A decoded record: payload plus the frame position and transaction id.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Byte offset of the frame start in the decoded stream.
    pub lsn: Lsn,
    /// Owning transaction ([`AUTOCOMMIT_TXN`] for sessionless work).
    pub txn: u64,
    /// The logical record.
    pub payload: LogPayload,
}

/// Result of scanning a (possibly torn) log stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedLog {
    /// Records recovered, in LSN order.
    pub records: Vec<LogRecord>,
    /// Length of the stream prefix that decoded cleanly.
    pub valid_bytes: u64,
    /// Whether bytes past `valid_bytes` were discarded (torn tail).
    pub torn: bool,
}

// ---------------------------------------------------------------- crc32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------- encode

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.get().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn put_row(out: &mut Vec<u8>, row: &Row) {
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        put_value(out, v);
    }
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

/// Encode one record as a complete frame (`len` + `crc` + payload).
pub fn encode_frame(txn: u64, payload: &LogPayload) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    body.push(kind_of(payload));
    body.extend_from_slice(&txn.to_le_bytes());
    match payload {
        LogPayload::Maintenance { bytes } => {
            body.extend_from_slice(&bytes.to_le_bytes());
            body.resize(body.len() + *bytes as usize, 0);
        }
        LogPayload::Insert { table, shard, rid, row }
        | LogPayload::Delete { table, shard, rid, row } => {
            put_name(&mut body, table);
            body.extend_from_slice(&shard.to_le_bytes());
            body.extend_from_slice(&rid.to_le_bytes());
            put_row(&mut body, row);
        }
        LogPayload::DeleteSet { table, shard, victims } => {
            put_name(&mut body, table);
            body.extend_from_slice(&shard.to_le_bytes());
            body.extend_from_slice(&(victims.len() as u32).to_le_bytes());
            for (rid, row) in victims {
                body.extend_from_slice(&rid.to_le_bytes());
                put_row(&mut body, row);
            }
        }
        LogPayload::Commit { ts } => {
            body.extend_from_slice(&ts.to_le_bytes());
        }
        LogPayload::CheckpointBegin => {}
        LogPayload::CheckpointEnd { redo_lsn } => {
            body.extend_from_slice(&redo_lsn.to_le_bytes());
        }
        LogPayload::DesignChange { table, design } => {
            put_name(&mut body, table);
            body.extend_from_slice(&(design.len() as u32).to_le_bytes());
            body.extend_from_slice(design);
        }
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn kind_of(p: &LogPayload) -> u8 {
    match p {
        LogPayload::Maintenance { .. } => KIND_MAINTENANCE,
        LogPayload::Insert { .. } => KIND_INSERT,
        LogPayload::Delete { .. } => KIND_DELETE,
        LogPayload::DeleteSet { .. } => KIND_DELETE_SET,
        LogPayload::Commit { .. } => KIND_COMMIT,
        LogPayload::CheckpointBegin => KIND_CKPT_BEGIN,
        LogPayload::CheckpointEnd { .. } => KIND_CKPT_END,
        LogPayload::DesignChange { .. } => KIND_DESIGN_CHANGE,
    }
}

// ---------------------------------------------------------------- decode

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.u64()? as i64),
            2 => Value::Float(OrdF64(f64::from_bits(self.u64()?))),
            3 => {
                let n = self.u32()? as usize;
                Value::Str(std::str::from_utf8(self.take(n)?).ok()?.into())
            }
            4 => Value::Date(self.u32()? as i32),
            _ => return None,
        })
    }

    fn row(&mut self) -> Option<Row> {
        let arity = self.u16()? as usize;
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(self.value()?);
        }
        Some(row)
    }

    fn name(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        Some(std::str::from_utf8(self.take(n)?).ok()?.to_owned())
    }
}

fn decode_payload(body: &[u8]) -> Option<(u64, LogPayload)> {
    let mut c = Cursor { buf: body, pos: 0 };
    let kind = c.u8()?;
    let txn = c.u64()?;
    let payload = match kind {
        KIND_MAINTENANCE => {
            let bytes = c.u32()?;
            c.take(bytes as usize)?;
            LogPayload::Maintenance { bytes }
        }
        KIND_INSERT | KIND_DELETE => {
            let table = c.name()?;
            let shard = c.u16()?;
            let rid = c.u64()?;
            let row = c.row()?;
            if kind == KIND_INSERT {
                LogPayload::Insert { table, shard, rid, row }
            } else {
                LogPayload::Delete { table, shard, rid, row }
            }
        }
        KIND_DELETE_SET => {
            let table = c.name()?;
            let shard = c.u16()?;
            let n = c.u32()? as usize;
            let mut victims = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let rid = c.u64()?;
                victims.push((rid, c.row()?));
            }
            LogPayload::DeleteSet { table, shard, victims }
        }
        KIND_COMMIT => LogPayload::Commit { ts: c.u64()? },
        KIND_CKPT_BEGIN => LogPayload::CheckpointBegin,
        KIND_CKPT_END => LogPayload::CheckpointEnd { redo_lsn: c.u64()? },
        KIND_DESIGN_CHANGE => {
            let table = c.name()?;
            let n = c.u32()? as usize;
            LogPayload::DesignChange { table, design: c.take(n)?.to_vec() }
        }
        _ => return None,
    };
    if c.pos != body.len() {
        return None;
    }
    Some((txn, payload))
}

/// Scan a log byte stream into records, truncating at the first short
/// or corrupt frame (see the module docs' torn-tail rule).
pub fn decode_stream(bytes: &[u8]) -> DecodedLog {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER_BYTES {
            return DecodedLog {
                records,
                valid_bytes: pos as u64,
                torn: !rest.is_empty(),
            };
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let Some(body) = rest.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len) else {
            return DecodedLog { records, valid_bytes: pos as u64, torn: true };
        };
        if crc32(body) != crc {
            return DecodedLog { records, valid_bytes: pos as u64, torn: true };
        }
        let Some((txn, payload)) = decode_payload(body) else {
            return DecodedLog { records, valid_bytes: pos as u64, torn: true };
        };
        records.push(LogRecord { lsn: pos as Lsn, txn, payload });
        pos += FRAME_HEADER_BYTES + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![
            Value::Int(-7),
            Value::float(2.5),
            Value::str("boston"),
            Value::Date(1234),
            Value::Null,
        ]
    }

    fn samples() -> Vec<(u64, LogPayload)> {
        vec![
            (AUTOCOMMIT_TXN, LogPayload::Maintenance { bytes: 37 }),
            (3, LogPayload::Insert { table: "t".into(), shard: 2, rid: 99, row: row() }),
            (3, LogPayload::Delete { table: "t".into(), shard: 0, rid: 4, row: row() }),
            (
                5,
                LogPayload::DeleteSet {
                    table: "orders".into(),
                    shard: 1,
                    victims: vec![(1, row()), (17, row())],
                },
            ),
            (3, LogPayload::Commit { ts: 41 }),
            (AUTOCOMMIT_TXN, LogPayload::CheckpointBegin),
            (AUTOCOMMIT_TXN, LogPayload::CheckpointEnd { redo_lsn: 123 }),
            (AUTOCOMMIT_TXN, LogPayload::DesignChange { table: "t".into(), design: vec![9, 8, 7] }),
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE reference vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn roundtrip_every_kind() {
        let mut stream = Vec::new();
        let mut lsns = Vec::new();
        for (txn, p) in &samples() {
            lsns.push(stream.len() as u64);
            stream.extend_from_slice(&encode_frame(*txn, p));
        }
        let decoded = decode_stream(&stream);
        assert!(!decoded.torn);
        assert_eq!(decoded.valid_bytes, stream.len() as u64);
        assert_eq!(decoded.records.len(), samples().len());
        for ((rec, (txn, p)), lsn) in decoded.records.iter().zip(samples()).zip(lsns) {
            assert_eq!(rec.lsn, lsn, "LSN is the frame's stream offset");
            assert_eq!(rec.txn, txn);
            assert_eq!(rec.payload, p);
        }
    }

    #[test]
    fn maintenance_frame_carries_its_advertised_volume() {
        let frame = encode_frame(AUTOCOMMIT_TXN, &LogPayload::Maintenance { bytes: 100 });
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + PAYLOAD_HEADER_BYTES + 4 + 100);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let a = encode_frame(1, &LogPayload::Commit { ts: 1 });
        let b = encode_frame(2, &LogPayload::Insert {
            table: "t".into(),
            shard: 0,
            rid: 0,
            row: row(),
        });
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        // Cut anywhere inside the second frame: only the first survives.
        for cut in a.len() + 1..stream.len() {
            let d = decode_stream(&stream[..cut]);
            assert_eq!(d.records.len(), 1, "cut at {cut}");
            assert_eq!(d.valid_bytes, a.len() as u64);
            assert!(d.torn);
        }
        // Cut inside the first frame: nothing survives.
        for cut in 1..a.len() {
            let d = decode_stream(&stream[..cut]);
            assert!(d.records.is_empty(), "cut at {cut}");
            assert_eq!(d.valid_bytes, 0);
            assert!(d.torn);
        }
        // Exact frame boundaries are clean.
        let d = decode_stream(&stream[..a.len()]);
        assert!(!d.torn);
        assert_eq!(d.records.len(), 1);
    }

    #[test]
    fn corrupt_bytes_fail_the_checksum() {
        let mut stream = encode_frame(1, &LogPayload::Commit { ts: 1 });
        let last = stream.len() - 1;
        stream[last] ^= 0x40;
        let d = decode_stream(&stream);
        assert!(d.records.is_empty());
        assert!(d.torn);
        assert_eq!(d.valid_bytes, 0);
    }

    #[test]
    fn garbage_length_is_torn_not_panic() {
        let mut stream = encode_frame(1, &LogPayload::Commit { ts: 1 });
        stream[0] = 0xFF;
        stream[1] = 0xFF;
        stream[2] = 0xFF;
        stream[3] = 0x7F;
        let d = decode_stream(&stream);
        assert!(d.records.is_empty());
        assert!(d.torn);
    }
}
