//! Paged heap files.
//!
//! A [`HeapFile`] stores rows densely, `tups_per_page` per page, in load
//! order. "Clustering on attribute A" — what the paper obtains with
//! PostgreSQL's `CLUSTER` command — is achieved by bulk-loading rows sorted
//! on A; the clustered index and the CM bucket directory are then built on
//! top. Appends go to the tail, which is exactly how a clustered-once table
//! degrades under inserts in PostgreSQL.

use crate::disk::{DiskSim, FileId, PageAccessor};
use crate::error::StorageError;
use crate::rid::Rid;
use crate::schema::{Row, Schema};
use crate::Result;
use std::sync::Arc;

/// A paged, append-only heap of rows.
pub struct HeapFile {
    schema: Arc<Schema>,
    file: FileId,
    rows: Vec<Row>,
    tups_per_page: usize,
}

impl HeapFile {
    /// Bulk-load a heap file. The caller controls clustering by sorting
    /// `rows` before loading (see [`HeapFile::bulk_load_clustered`]).
    ///
    /// No I/O is charged for the load itself; the experiments measure query
    /// and maintenance cost, not initial load (the paper's tables are built
    /// before measurement begins).
    pub fn bulk_load(
        disk: &DiskSim,
        schema: Arc<Schema>,
        rows: Vec<Row>,
        tups_per_page: usize,
    ) -> Result<Self> {
        assert!(tups_per_page > 0, "tups_per_page must be positive");
        if let Some(row) = rows.first() {
            schema.validate(row)?;
        }
        Ok(HeapFile { schema, file: disk.alloc_file(), rows, tups_per_page })
    }

    /// Bulk-load clustered on a column: rows are sorted by that column
    /// (ties keep their input order, so secondary correlations survive as
    /// they would under PostgreSQL's `CLUSTER`).
    pub fn bulk_load_clustered(
        disk: &DiskSim,
        schema: Arc<Schema>,
        mut rows: Vec<Row>,
        tups_per_page: usize,
        cluster_col: usize,
    ) -> Result<Self> {
        rows.sort_by(|a, b| a[cluster_col].cmp(&b[cluster_col]));
        Self::bulk_load(disk, schema, rows, tups_per_page)
    }

    /// The table schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The simulated file this heap is charged against.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Tuples per page.
    pub fn tups_per_page(&self) -> usize {
        self.tups_per_page
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of pages (`ceil(len / tups_per_page)`).
    pub fn num_pages(&self) -> u64 {
        (self.rows.len() as u64).div_ceil(self.tups_per_page as u64)
    }

    /// Page number of a RID.
    pub fn page_of(&self, rid: Rid) -> u64 {
        rid.page(self.tups_per_page)
    }

    /// Fetch one row by RID, charging a read of its page.
    pub fn fetch(&self, io: &dyn PageAccessor, rid: Rid) -> Result<&Row> {
        let row = self.peek(rid)?;
        io.read(self.file, self.page_of(rid));
        Ok(row)
    }

    /// Read one row without charging I/O (for building statistics and
    /// structures outside the measured window).
    pub fn peek(&self, rid: Rid) -> Result<&Row> {
        self.rows.get(rid.0 as usize).ok_or(StorageError::RidOutOfRange {
            rid: rid.0,
            len: self.rows.len() as u64,
        })
    }

    /// The rows on one page, charging a read of that page.
    pub fn read_page(&self, io: &dyn PageAccessor, page: u64) -> Result<&[Row]> {
        if page >= self.num_pages() {
            return Err(StorageError::PageOutOfRange { page, pages: self.num_pages() });
        }
        io.read(self.file, page);
        let lo = page as usize * self.tups_per_page;
        let hi = (lo + self.tups_per_page).min(self.rows.len());
        Ok(&self.rows[lo..hi])
    }

    /// Visit the rows of the contiguous page run `lo..=hi`, charging the
    /// whole run as **one** vectored read (one seek plus sequential
    /// pages, atomic against concurrent sessions on the same device).
    /// The visitor receives each page number with its row slice, in page
    /// order. An empty run (`lo > hi`) is a free no-op.
    pub fn read_run_visit(
        &self,
        io: &dyn PageAccessor,
        lo: u64,
        hi: u64,
        mut visit: impl FnMut(u64, &[Row]),
    ) -> Result<()> {
        if lo > hi {
            return Ok(());
        }
        if hi >= self.num_pages() {
            return Err(StorageError::PageOutOfRange { page: hi, pages: self.num_pages() });
        }
        io.read_run(self.file, lo, hi);
        for page in lo..=hi {
            let start = page as usize * self.tups_per_page;
            let end = (start + self.tups_per_page).min(self.rows.len());
            visit(page, &self.rows[start..end]);
        }
        Ok(())
    }

    /// RID range `[lo, hi)` of the rows stored on `page`.
    pub fn page_rid_range(&self, page: u64) -> (Rid, Rid) {
        let lo = page * self.tups_per_page as u64;
        let hi = (lo + self.tups_per_page as u64).min(self.len());
        (Rid(lo), Rid(hi))
    }

    /// Iterate all rows with their RIDs, charging nothing (structure
    /// construction). Use [`HeapFile::read_page`] in measured code.
    pub fn iter(&self) -> impl Iterator<Item = (Rid, &Row)> {
        self.rows.iter().enumerate().map(|(i, r)| (Rid(i as u64), r))
    }

    /// Append a row to the tail, charging a write of the tail page, and
    /// return its RID. This is the INSERT path of the maintenance
    /// experiments (Experiment 3).
    pub fn append(&mut self, io: &dyn PageAccessor, row: Row) -> Result<Rid> {
        self.schema.validate(&row)?;
        let rid = Rid(self.rows.len() as u64);
        self.rows.push(row);
        io.write(self.file, self.page_of(rid));
        Ok(rid)
    }

    /// Append an all-NULL placeholder row without charging I/O. Recovery
    /// uses this to grow a shard's heap up to a logged RID whose
    /// intervening slots were deleted before the crash (their delete
    /// records will be — or already were — replayed as no-ops).
    pub fn append_tombstone(&mut self) -> Rid {
        let rid = Rid(self.rows.len() as u64);
        self.rows.push(vec![crate::value::Value::Null; self.schema.arity()]);
        rid
    }

    /// Reinstate a row into a tombstoned slot, charging a write of the
    /// page — redo of a logged insert whose slot exists but was emptied,
    /// and undo of an uncommitted delete. Errors if the slot is out of
    /// range; panics (debug) if the slot is live, because recovery must
    /// never clobber a row that survived.
    pub fn restore_row(&mut self, io: &dyn PageAccessor, rid: Rid, row: Row) -> Result<Row> {
        self.schema.validate(&row)?;
        let len = self.rows.len() as u64;
        let slot = self
            .rows
            .get_mut(rid.0 as usize)
            .ok_or(StorageError::RidOutOfRange { rid: rid.0, len })?;
        debug_assert!(
            slot.iter().all(|v| v.is_null()),
            "restore_row target must be a tombstone"
        );
        let old = std::mem::replace(slot, row);
        io.write(self.file, rid.page(self.tups_per_page));
        Ok(old)
    }

    /// Remove a row by RID. The slot is tombstoned (set to all-NULL) rather
    /// than compacted, as in a real heap; the caller (indexes, CMs) is
    /// responsible for unindexing first. Charges a write of the page.
    pub fn delete(&mut self, io: &dyn PageAccessor, rid: Rid) -> Result<Row> {
        let arity = self.schema.arity();
        let len = self.rows.len() as u64;
        let slot = self
            .rows
            .get_mut(rid.0 as usize)
            .ok_or(StorageError::RidOutOfRange { rid: rid.0, len })?;
        let old = std::mem::replace(slot, vec![crate::value::Value::Null; arity]);
        io.write(self.file, rid.page(self.tups_per_page));
        Ok(old)
    }

    /// Column value of a row, uncharged.
    pub fn peek_col(&self, rid: Rid, col: usize) -> Result<&crate::value::Value> {
        Ok(&self.peek(rid)?[col])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ValueType};
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("k", ValueType::Int),
            Column::new("v", ValueType::Str),
        ]))
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| vec![Value::Int(i), Value::str(format!("r{i}"))]).collect()
    }

    #[test]
    fn paging_math() {
        let disk = DiskSim::with_defaults();
        let h = HeapFile::bulk_load(&disk, schema(), rows(250), 100).unwrap();
        assert_eq!(h.len(), 250);
        assert_eq!(h.num_pages(), 3);
        assert_eq!(h.page_of(Rid(0)), 0);
        assert_eq!(h.page_of(Rid(99)), 0);
        assert_eq!(h.page_of(Rid(100)), 1);
        assert_eq!(h.page_of(Rid(249)), 2);
        let (lo, hi) = h.page_rid_range(2);
        assert_eq!((lo, hi), (Rid(200), Rid(250)));
    }

    #[test]
    fn fetch_charges_page_read() {
        let disk = DiskSim::with_defaults();
        let h = HeapFile::bulk_load(&disk, schema(), rows(10), 4).unwrap();
        let row = h.fetch(disk.as_ref(), Rid(5)).unwrap();
        assert_eq!(row[0], Value::Int(5));
        assert_eq!(disk.stats().seeks, 1);
        // Peek does not charge.
        let _ = h.peek(Rid(6)).unwrap();
        assert_eq!(disk.stats().pages(), 1);
    }

    #[test]
    fn read_page_returns_partial_tail_page() {
        let disk = DiskSim::with_defaults();
        let h = HeapFile::bulk_load(&disk, schema(), rows(10), 4).unwrap();
        assert_eq!(h.read_page(disk.as_ref(), 0).unwrap().len(), 4);
        assert_eq!(h.read_page(disk.as_ref(), 2).unwrap().len(), 2);
        assert!(h.read_page(disk.as_ref(), 3).is_err());
    }

    #[test]
    fn read_run_visit_charges_one_run_and_visits_every_row() {
        let disk = DiskSim::with_defaults();
        let h = HeapFile::bulk_load(&disk, schema(), rows(10), 4).unwrap();
        let mut seen: Vec<(u64, usize)> = Vec::new();
        h.read_run_visit(disk.as_ref(), 0, 2, |page, rows| {
            seen.push((page, rows.len()));
        })
        .unwrap();
        assert_eq!(seen, vec![(0, 4), (1, 4), (2, 2)]);
        let s = disk.stats();
        assert_eq!(s.seeks, 1, "whole sweep is one vectored run");
        assert_eq!(s.seq_reads, 2);
        // Out-of-range and empty runs.
        assert!(h.read_run_visit(disk.as_ref(), 0, 3, |_, _| {}).is_err());
        let before = disk.stats();
        h.read_run_visit(disk.as_ref(), 2, 1, |_, _| panic!("empty run visits nothing"))
            .unwrap();
        assert_eq!(disk.stats(), before);
    }

    #[test]
    fn clustered_load_sorts_rows() {
        let disk = DiskSim::with_defaults();
        let mut input = rows(50);
        // Shuffle deterministically by reversing.
        input.reverse();
        let h = HeapFile::bulk_load_clustered(&disk, schema(), input, 10, 0).unwrap();
        let keys: Vec<i64> =
            h.iter().map(|(_, r)| r[0].as_int().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn clustered_load_is_stable_on_ties() {
        let disk = DiskSim::with_defaults();
        let input = vec![
            vec![Value::Int(1), Value::str("first")],
            vec![Value::Int(0), Value::str("zero")],
            vec![Value::Int(1), Value::str("second")],
        ];
        let h = HeapFile::bulk_load_clustered(&disk, schema(), input, 10, 0).unwrap();
        assert_eq!(h.peek(Rid(1)).unwrap()[1], Value::str("first"));
        assert_eq!(h.peek(Rid(2)).unwrap()[1], Value::str("second"));
    }

    #[test]
    fn append_goes_to_tail_and_charges_write() {
        let disk = DiskSim::with_defaults();
        let mut h = HeapFile::bulk_load(&disk, schema(), rows(5), 4).unwrap();
        let rid = h.append(disk.as_ref(), vec![Value::Int(99), Value::str("new")]).unwrap();
        assert_eq!(rid, Rid(5));
        assert_eq!(h.page_of(rid), 1);
        assert_eq!(disk.stats().page_writes, 1);
        assert_eq!(h.peek(rid).unwrap()[0], Value::Int(99));
    }

    #[test]
    fn append_rejects_schema_violation() {
        let disk = DiskSim::with_defaults();
        let mut h = HeapFile::bulk_load(&disk, schema(), rows(1), 4).unwrap();
        assert!(h.append(disk.as_ref(), vec![Value::Int(0)]).is_err());
        assert!(h
            .append(disk.as_ref(), vec![Value::str("x"), Value::str("y")])
            .is_err());
    }

    #[test]
    fn delete_tombstones_slot() {
        let disk = DiskSim::with_defaults();
        let mut h = HeapFile::bulk_load(&disk, schema(), rows(3), 4).unwrap();
        let old = h.delete(disk.as_ref(), Rid(1)).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert!(h.peek(Rid(1)).unwrap()[0].is_null());
        assert_eq!(h.len(), 3, "tombstone keeps slots stable");
        assert!(h.delete(disk.as_ref(), Rid(9)).is_err());
    }

    #[test]
    fn tombstone_append_and_restore_roundtrip() {
        let disk = DiskSim::with_defaults();
        let mut h = HeapFile::bulk_load(&disk, schema(), rows(2), 4).unwrap();
        let before = disk.stats();
        let rid = h.append_tombstone();
        assert_eq!(rid, Rid(2));
        assert!(h.peek(rid).unwrap().iter().all(|v| v.is_null()));
        assert_eq!(disk.stats(), before, "placeholder growth is uncharged");
        let row = vec![Value::Int(42), Value::str("back")];
        h.restore_row(disk.as_ref(), rid, row.clone()).unwrap();
        assert_eq!(h.peek(rid).unwrap(), &row);
        assert_eq!(disk.stats().page_writes, before.page_writes + 1);
        assert!(h.restore_row(disk.as_ref(), Rid(9), row).is_err());
    }

    #[test]
    fn out_of_range_rid_errors() {
        let disk = DiskSim::with_defaults();
        let h = HeapFile::bulk_load(&disk, schema(), rows(3), 4).unwrap();
        assert!(matches!(
            h.peek(Rid(3)),
            Err(StorageError::RidOutOfRange { rid: 3, len: 3 })
        ));
    }
}
