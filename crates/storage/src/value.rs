//! Dynamically-typed scalar values.
//!
//! The datasets in the paper mix integers (keys, category ids), floats
//! (prices, right ascension / declination, magnitudes), strings (category
//! names, cities, states) and dates (ship / receipt dates). [`Value`] covers
//! exactly those, with a *total* order so values can key B+Trees and sort
//! heap files, and a stable hash so they can key correlation maps.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An `f64` with a total order (`NaN` sorts greater than all numbers and
/// equal to itself), usable as a B+Tree key and hash-map key.
///
/// The SDSS attributes (`ra`, `dec`, `psfMag_g`, …) are real-valued; the
/// paper buckets and indexes them, which requires ordering and hashing.
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Canonical bit pattern: all NaNs collapse to one representation and
    /// `-0.0` collapses to `0.0` so that `Eq`/`Hash` agree with `Ord`.
    #[inline]
    fn canonical_bits(self) -> u64 {
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else if self.0 == 0.0 {
            0u64
        } else {
            self.0.to_bits()
        }
    }
}

impl PartialEq for OrdF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare canonicalized bit patterns so that `-0.0 == 0.0` and all
        // NaNs are one value, keeping Ord consistent with Eq and Hash.
        f64::from_bits(self.canonical_bits()).total_cmp(&f64::from_bits(other.canonical_bits()))
    }
}

impl Hash for OrdF64 {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

/// A scalar value stored in a tuple.
///
/// `Str` uses `Arc<str>` because categorical columns (eBay `CAT1..CAT6`,
/// city/state examples) repeat a small dictionary of strings across
/// millions of rows; sharing the allocation keeps generated tables within
/// laptop memory (see the heap-allocation guidance in the Rust perf book).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// 64-bit signed integer (keys, counts, category ids).
    Int(i64),
    /// Total-ordered float (prices, sky coordinates, magnitudes).
    Float(OrdF64),
    /// Interned string (category names, cities, states).
    Str(Arc<str>),
    /// Date as days since 1970-01-01 (ship/receipt/commit dates).
    Date(i32),
}

impl Value {
    /// Construct a float value.
    #[inline]
    pub fn float(v: f64) -> Self {
        Value::Float(OrdF64(v))
    }

    /// Construct an interned string value.
    #[inline]
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The integer payload, if this is an `Int`.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float`.
    #[inline]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(v.0),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The date payload (days since epoch), if this is a `Date`.
    #[inline]
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// A numeric view used by bucketing: `Int` and `Date` promote to `f64`,
    /// `Float` is itself, others are `None`.
    #[inline]
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(v.0),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// `true` if this value is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate on-disk footprint of the value in bytes, used by the
    /// size accounting that reproduces the paper's index-size comparisons
    /// (e.g. "the CM is 0.9 MB on disk, the secondary B+Tree is 860 MB").
    #[inline]
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() + 1,
            Value::Date(_) => 4,
        }
    }

    /// Ordinal of the variant, used only to order values of mixed types
    /// deterministically (mixed-type columns do not occur in the datasets,
    /// but a total order must still be defined).
    #[inline]
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }
}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Numeric cross-type comparisons keep Int/Float interoperable
            // (bucket bounds are often produced as floats over int columns).
            (Int(a), Float(b)) => OrdF64(*a as f64).cmp(b),
            (Float(a), Int(b)) => a.cmp(&OrdF64(*b as f64)),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{}", v.0),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "date#{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordf64_total_order_handles_nan_and_zero() {
        let nan = OrdF64(f64::NAN);
        let one = OrdF64(1.0);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan.cmp(&one), Ordering::Greater);
        assert_eq!(OrdF64(0.0), OrdF64(-0.0));
        assert_eq!(hash_of(&OrdF64(0.0)), hash_of(&OrdF64(-0.0)));
    }

    #[test]
    fn value_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::float(1.5) < Value::float(2.5));
        assert!(Value::str("MA") < Value::str("NH"));
        assert!(Value::Date(10) < Value::Date(20));
        assert!(Value::Null < Value::Int(i64::MIN));
    }

    #[test]
    fn int_float_cross_comparison() {
        assert_eq!(Value::Int(2).cmp(&Value::float(2.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::float(2.5));
        assert!(Value::float(1.5) < Value::Int(2));
    }

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("boston").as_str(), Some("boston"));
        assert_eq!(Value::Date(42).as_date(), Some(42));
        assert_eq!(Value::Int(7).as_float(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn numeric_view_promotes_ints_and_dates() {
        assert_eq!(Value::Int(3).as_numeric(), Some(3.0));
        assert_eq!(Value::Date(5).as_numeric(), Some(5.0));
        assert_eq!(Value::float(1.25).as_numeric(), Some(1.25));
        assert_eq!(Value::str("x").as_numeric(), None);
        assert_eq!(Value::Null.as_numeric(), None);
    }

    #[test]
    fn size_bytes_model() {
        assert_eq!(Value::Int(0).size_bytes(), 8);
        assert_eq!(Value::float(0.0).size_bytes(), 8);
        assert_eq!(Value::Date(0).size_bytes(), 4);
        assert_eq!(Value::str("boston").size_bytes(), 7);
        assert_eq!(Value::Null.size_bytes(), 1);
    }

    #[test]
    fn shared_strings_compare_equal_and_hash_equal() {
        let a = Value::str("antiques");
        let b = Value::str("antiques");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("MA").to_string(), "MA");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(3).to_string(), "date#3");
    }
}
