//! Capacity-bounded buffer pool with dirty write-back.
//!
//! Experiment 3 of the paper hinges on buffer-pool mechanics: every extra
//! secondary B+Tree makes each INSERT dirty more pages than fit in RAM, so
//! evictions force random page writes and throughput collapses (29
//! tuples/s with 10 B+Trees vs. 900 with 10 CMs). CMs survive because they
//! are small enough to stay resident. [`BufferPool`] reproduces exactly
//! that mechanism: an LRU cache of `(file, page)` frames; hits are free,
//! misses charge a disk read, and evicting a dirty frame charges a disk
//! write.

use crate::disk::{DiskSim, FileId, IoStats, PageAccessor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Counters describing pool behaviour during a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses served from the pool.
    pub hits: u64,
    /// Accesses that had to read from disk.
    pub misses: u64,
    /// Dirty frames written back on eviction.
    pub dirty_evictions: u64,
    /// Clean frames dropped on eviction.
    pub clean_evictions: u64,
}

impl PoolStats {
    /// `self - earlier`, for snapshot-delta reporting.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            dirty_evictions: self.dirty_evictions - earlier.dirty_evictions,
            clean_evictions: self.clean_evictions - earlier.clean_evictions,
        }
    }

    /// Accumulate another stats delta into this one.
    pub fn add(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.dirty_evictions += other.dirty_evictions;
        self.clean_evictions += other.clean_evictions;
    }
}

struct Frame {
    dirty: bool,
    /// Clock reference bit (second-chance eviction, like PostgreSQL's
    /// clock-sweep — cheap and scan-resistant enough for the experiments).
    referenced: bool,
}

struct PoolState {
    frames: HashMap<(FileId, u64), Frame>,
    /// Clock order of resident frames.
    clock: VecDeque<(FileId, u64)>,
    stats: PoolStats,
}

/// A page cache in front of the simulated disk.
pub struct BufferPool {
    disk: Arc<DiskSim>,
    capacity: usize,
    state: Mutex<PoolState>,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    pub fn new(disk: Arc<DiskSim>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            disk,
            capacity,
            state: Mutex::new(PoolState {
                frames: HashMap::with_capacity(capacity),
                clock: VecDeque::with_capacity(capacity),
                stats: PoolStats::default(),
            }),
        }
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<DiskSim> {
        &self.disk
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        self.state.lock().stats
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.state.lock().frames.len()
    }

    /// Drop every frame, writing dirty ones back (used between experiment
    /// trials to mimic the paper's cache flushing; returns the I/O charged).
    pub fn flush_all(&self) -> IoStats {
        let before = self.disk.stats();
        let mut st = self.state.lock();
        let mut dirty: Vec<(FileId, u64)> = st
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(k, _)| *k)
            .collect();
        // Background writer behaviour: flush in file/page order so the
        // writes get whatever sequentiality the dirty set allows.
        dirty.sort();
        for (file, page) in dirty {
            self.disk.write(file, page);
        }
        st.frames.clear();
        st.clock.clear();
        self.disk.stats().since(&before)
    }

    /// Reset the counters without touching residency.
    pub fn reset_stats(&self) {
        self.state.lock().stats = PoolStats::default();
    }

    fn access(&self, file: FileId, page: u64, mark_dirty: bool) {
        let mut st = self.state.lock();
        if let Some(frame) = st.frames.get_mut(&(file, page)) {
            frame.referenced = true;
            frame.dirty |= mark_dirty;
            st.stats.hits += 1;
            return;
        }
        st.stats.misses += 1;
        // Fault the page in. A write to a non-resident page still reads it
        // first (read-modify-write of a slotted page).
        self.disk.read(file, page);
        // Make room.
        while st.frames.len() >= self.capacity {
            let victim = st
                .clock
                .pop_front()
                .expect("clock queue tracks every resident frame");
            let frame = st.frames.get_mut(&victim).expect("clock entry is resident");
            if frame.referenced {
                frame.referenced = false;
                st.clock.push_back(victim);
                continue;
            }
            let frame = st.frames.remove(&victim).expect("checked above");
            if frame.dirty {
                st.stats.dirty_evictions += 1;
                self.disk.write(victim.0, victim.1);
            } else {
                st.stats.clean_evictions += 1;
            }
        }
        st.frames.insert((file, page), Frame { dirty: mark_dirty, referenced: true });
        st.clock.push_back((file, page));
    }
}

impl PageAccessor for BufferPool {
    fn read(&self, file: FileId, page: u64) {
        self.access(file, page, false);
    }

    fn write(&self, file: FileId, page: u64) {
        self.access(file, page, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_free() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 8);
        let f = disk.alloc_file();
        pool.read(f, 0);
        let after_first = disk.stats();
        pool.read(f, 0);
        pool.read(f, 0);
        assert_eq!(disk.stats(), after_first, "repeat reads never touch disk");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn capacity_bound_is_respected() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 4);
        let f = disk.alloc_file();
        for p in 0..20 {
            pool.read(f, p);
        }
        assert!(pool.resident() <= 4);
        assert_eq!(pool.stats().misses, 20);
    }

    #[test]
    fn clean_evictions_cost_nothing_extra() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 2);
        let f = disk.alloc_file();
        for p in 0..10 {
            pool.read(f, p);
        }
        assert_eq!(disk.stats().page_writes, 0);
        assert_eq!(pool.stats().clean_evictions, 8);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 2);
        let f = disk.alloc_file();
        pool.write(f, 0);
        pool.write(f, 1);
        // Fill past capacity with clean reads; the dirty frames must be
        // written out as they are evicted.
        for p in 2..6 {
            pool.read(f, p);
        }
        assert_eq!(pool.stats().dirty_evictions, 2);
        assert_eq!(disk.stats().page_writes, 2);
    }

    #[test]
    fn second_chance_protects_rereferenced_pages() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 3);
        let f = disk.alloc_file();
        pool.read(f, 0);
        pool.read(f, 1);
        pool.read(f, 2);
        // Fault page 3: the sweep clears all reference bits and evicts the
        // oldest frame (0). Clock order is now 1, 2, 3 with only 3 marked.
        pool.read(f, 3);
        // Re-reference 1 so it earns a second chance.
        pool.read(f, 1);
        // Fault page 4: the sweep skips 1 (referenced) and evicts 2.
        pool.read(f, 4);
        let before = disk.stats();
        pool.read(f, 1);
        assert_eq!(disk.stats(), before, "re-referenced page still resident");
        let after = disk.stats();
        pool.read(f, 2);
        assert_ne!(disk.stats(), after, "page 2 was the eviction victim");
    }

    #[test]
    fn flush_all_writes_dirty_frames_in_order() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 8);
        let f = disk.alloc_file();
        pool.write(f, 5);
        pool.write(f, 3);
        pool.write(f, 4);
        pool.read(f, 6);
        let io = pool.flush_all();
        assert_eq!(io.page_writes, 3);
        // 3,4,5 are contiguous: one seek then sequential.
        assert!((io.elapsed_ms - (5.5 + 2.0 * 0.078)).abs() < 1e-9);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn write_to_cached_page_marks_dirty_without_io() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 8);
        let f = disk.alloc_file();
        pool.read(f, 0);
        let before = disk.stats();
        pool.write(f, 0); // hit: becomes dirty, no disk traffic
        assert_eq!(disk.stats(), before);
        let io = pool.flush_all();
        assert_eq!(io.page_writes, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let disk = DiskSim::with_defaults();
        let _ = BufferPool::new(disk, 0);
    }
}
