//! Capacity-bounded buffer pool with dirty write-back.
//!
//! Experiment 3 of the paper hinges on buffer-pool mechanics: every extra
//! secondary B+Tree makes each INSERT dirty more pages than fit in RAM, so
//! evictions force random page writes and throughput collapses (29
//! tuples/s with 10 B+Trees vs. 900 with 10 CMs). CMs survive because they
//! are small enough to stay resident. [`BufferPool`] reproduces exactly
//! that mechanism: an LRU cache of `(file, page)` frames; hits are free,
//! misses charge a disk read, and evicting a dirty frame charges a disk
//! write.

use crate::disk::{DiskSim, FileId, IoStats, PageAccessor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Counters describing pool behaviour during a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses served from the pool.
    pub hits: u64,
    /// Accesses that had to read from disk.
    pub misses: u64,
    /// Dirty frames written back on eviction.
    pub dirty_evictions: u64,
    /// Clean frames dropped on eviction.
    pub clean_evictions: u64,
}

impl PoolStats {
    /// `self - earlier`, for snapshot-delta reporting.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            dirty_evictions: self.dirty_evictions - earlier.dirty_evictions,
            clean_evictions: self.clean_evictions - earlier.clean_evictions,
        }
    }

    /// Accumulate another stats delta into this one.
    pub fn add(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.dirty_evictions += other.dirty_evictions;
        self.clean_evictions += other.clean_evictions;
    }

    /// Fraction of accesses served without disk I/O (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    dirty: bool,
    /// Clock reference bit (second-chance eviction, like PostgreSQL's
    /// clock-sweep — cheap and scan-resistant enough for the experiments).
    referenced: bool,
}

struct PoolState {
    frames: HashMap<(FileId, u64), Frame>,
    /// Clock order of resident frames.
    clock: VecDeque<(FileId, u64)>,
    stats: PoolStats,
}

/// A page cache in front of the simulated disk.
pub struct BufferPool {
    disk: Arc<DiskSim>,
    capacity: usize,
    state: Mutex<PoolState>,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    pub fn new(disk: Arc<DiskSim>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            disk,
            capacity,
            state: Mutex::new(PoolState {
                frames: HashMap::with_capacity(capacity),
                clock: VecDeque::with_capacity(capacity),
                stats: PoolStats::default(),
            }),
        }
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<DiskSim> {
        &self.disk
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        self.state.lock().stats
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.state.lock().frames.len()
    }

    /// Drop every frame, writing dirty ones back (used between experiment
    /// trials to mimic the paper's cache flushing; returns the I/O charged).
    pub fn flush_all(&self) -> IoStats {
        let before = self.disk.stats();
        let mut st = self.state.lock();
        let mut dirty: Vec<(FileId, u64)> = st
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(k, _)| *k)
            .collect();
        // Background writer behaviour: flush in file/page order and write
        // each maximal contiguous run vectored, so checkpoint write-back
        // prices one seek per run — and stays that way even when other
        // sessions are hammering the same disk.
        dirty.sort();
        for file_group in dirty.chunk_by(|a, b| a.0 == b.0) {
            let file = file_group[0].0;
            let pages: Vec<u64> = file_group.iter().map(|&(_, p)| p).collect();
            crate::disk::for_each_page_run(&pages, |lo, hi| {
                self.disk.write_run(file, lo, hi);
            });
        }
        st.frames.clear();
        st.clock.clear();
        self.disk.stats().since(&before)
    }

    /// Reset the counters without touching residency.
    pub fn reset_stats(&self) {
        self.state.lock().stats = PoolStats::default();
    }

    fn access(&self, file: FileId, page: u64, mark_dirty: bool) {
        self.access_run(file, page, page, mark_dirty);
    }

    /// Serve the contiguous run `lo..=hi` under **one** pool lock:
    /// resident pages are hits, each maximal non-resident sub-run is
    /// charged as a single vectored disk read (readahead), and the
    /// faulted frames are admitted with the usual clock eviction.
    ///
    /// The per-page behaviour (hit/miss classification, eviction victims,
    /// and — single-threaded — even the disk pricing) is bit-identical to
    /// calling [`BufferPool::read`]/[`BufferPool::write`] page by page;
    /// what the run adds is atomicity: neither the pool state nor the
    /// disk head can be interleaved by a concurrent session mid-run.
    fn access_run(&self, file: FileId, lo: u64, hi: u64, mark_dirty: bool) {
        assert!(lo <= hi, "run bounds inverted: {lo}..={hi}");
        let mut st = self.state.lock();
        // Start of the current miss sub-run whose disk read is deferred
        // (batched). Invariant: when `Some(s)`, every page in `s..=page`
        // is a miss of this run that has been counted but not charged.
        let mut pending: Option<u64> = None;
        for page in lo..=hi {
            if let Some(frame) = st.frames.get_mut(&(file, page)) {
                frame.referenced = true;
                frame.dirty |= mark_dirty;
                st.stats.hits += 1;
                if let Some(s) = pending.take() {
                    self.disk.read_run(file, s, page - 1);
                }
                continue;
            }
            st.stats.misses += 1;
            // Fault the page in (charged with its sub-run; a write to a
            // non-resident page still reads it first — read-modify-write
            // of a slotted page). Then make room.
            pending.get_or_insert(page);
            while st.frames.len() >= self.capacity {
                let victim = st
                    .clock
                    .pop_front()
                    .expect("clock queue tracks every resident frame");
                let frame = st.frames.get_mut(&victim).expect("clock entry is resident");
                if frame.referenced {
                    frame.referenced = false;
                    st.clock.push_back(victim);
                    continue;
                }
                let frame = st.frames.remove(&victim).expect("checked above");
                if frame.dirty {
                    st.stats.dirty_evictions += 1;
                    // The write-back splits the read run: charge the
                    // pending reads (whose fault-ins precede the
                    // eviction) before moving the head to the victim.
                    if let Some(s) = pending.take() {
                        self.disk.read_run(file, s, page);
                    }
                    self.disk.write(victim.0, victim.1);
                } else {
                    st.stats.clean_evictions += 1;
                }
            }
            st.frames.insert((file, page), Frame { dirty: mark_dirty, referenced: true });
            st.clock.push_back((file, page));
        }
        if let Some(s) = pending {
            self.disk.read_run(file, s, hi);
        }
    }
}

impl PageAccessor for BufferPool {
    fn read(&self, file: FileId, page: u64) {
        self.access(file, page, false);
    }

    fn write(&self, file: FileId, page: u64) {
        self.access(file, page, true);
    }

    fn read_run(&self, file: FileId, lo: u64, hi: u64) {
        self.access_run(file, lo, hi, false);
    }

    fn write_run(&self, file: FileId, lo: u64, hi: u64) {
        self.access_run(file, lo, hi, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_free() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 8);
        let f = disk.alloc_file();
        pool.read(f, 0);
        let after_first = disk.stats();
        pool.read(f, 0);
        pool.read(f, 0);
        assert_eq!(disk.stats(), after_first, "repeat reads never touch disk");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn capacity_bound_is_respected() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 4);
        let f = disk.alloc_file();
        for p in 0..20 {
            pool.read(f, p);
        }
        assert!(pool.resident() <= 4);
        assert_eq!(pool.stats().misses, 20);
    }

    #[test]
    fn clean_evictions_cost_nothing_extra() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 2);
        let f = disk.alloc_file();
        for p in 0..10 {
            pool.read(f, p);
        }
        assert_eq!(disk.stats().page_writes, 0);
        assert_eq!(pool.stats().clean_evictions, 8);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 2);
        let f = disk.alloc_file();
        pool.write(f, 0);
        pool.write(f, 1);
        // Fill past capacity with clean reads; the dirty frames must be
        // written out as they are evicted.
        for p in 2..6 {
            pool.read(f, p);
        }
        assert_eq!(pool.stats().dirty_evictions, 2);
        assert_eq!(disk.stats().page_writes, 2);
    }

    #[test]
    fn second_chance_protects_rereferenced_pages() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 3);
        let f = disk.alloc_file();
        pool.read(f, 0);
        pool.read(f, 1);
        pool.read(f, 2);
        // Fault page 3: the sweep clears all reference bits and evicts the
        // oldest frame (0). Clock order is now 1, 2, 3 with only 3 marked.
        pool.read(f, 3);
        // Re-reference 1 so it earns a second chance.
        pool.read(f, 1);
        // Fault page 4: the sweep skips 1 (referenced) and evicts 2.
        pool.read(f, 4);
        let before = disk.stats();
        pool.read(f, 1);
        assert_eq!(disk.stats(), before, "re-referenced page still resident");
        let after = disk.stats();
        pool.read(f, 2);
        assert_ne!(disk.stats(), after, "page 2 was the eviction victim");
    }

    #[test]
    fn flush_all_writes_dirty_frames_in_order() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 8);
        let f = disk.alloc_file();
        pool.write(f, 5);
        pool.write(f, 3);
        pool.write(f, 4);
        pool.read(f, 6);
        let io = pool.flush_all();
        assert_eq!(io.page_writes, 3);
        // 3,4,5 are contiguous: one seek then sequential.
        assert!((io.elapsed_ms - (5.5 + 2.0 * 0.078)).abs() < 1e-9);
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn read_run_splits_hits_and_miss_sub_runs() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 16);
        let f = disk.alloc_file();
        // Warm pages 3 and 4.
        pool.read(f, 3);
        pool.read(f, 4);
        let io_before = disk.stats();
        let ps_before = pool.stats();
        pool.read_run(f, 0, 9);
        let io = disk.stats().since(&io_before);
        let ps = pool.stats().since(&ps_before);
        assert_eq!((ps.hits, ps.misses), (2, 8));
        assert_eq!(io.pages(), 8, "resident pages charge nothing");
        // Two vectored miss sub-runs reach the disk: 0..=2 and 5..=9.
        // (0 is a backward seek, 5 continues from 2 as a read-through.)
        assert_eq!(io.seeks + io.seq_reads, 8);
        // A fully-resident run is all hits, no I/O.
        let before = disk.stats();
        pool.read_run(f, 0, 9);
        assert_eq!(disk.stats(), before);
        assert_eq!(pool.stats().since(&ps_before).hits, 2 + 10);
    }

    #[test]
    fn read_run_matches_per_page_pool_exactly() {
        // Hit/miss classification, eviction victims, disk page counts and
        // (single-threaded) pricing are identical to per-page access —
        // the vectored path changes atomicity, not behaviour.
        let run_disk = DiskSim::with_defaults();
        let page_disk = DiskSim::with_defaults();
        let run_pool = BufferPool::new(run_disk.clone(), 6);
        let page_pool = BufferPool::new(page_disk.clone(), 6);
        let fr = run_disk.alloc_file();
        let fp = page_disk.alloc_file();
        let sweeps: [(u64, u64, bool); 5] =
            [(0, 9, false), (4, 12, true), (2, 7, false), (0, 15, false), (5, 6, true)];
        for &(lo, hi, dirty) in &sweeps {
            if dirty {
                run_pool.write_run(fr, lo, hi);
                for p in lo..=hi {
                    page_pool.write(fp, p);
                }
            } else {
                run_pool.read_run(fr, lo, hi);
                for p in lo..=hi {
                    page_pool.read(fp, p);
                }
            }
            assert_eq!(run_pool.stats(), page_pool.stats(), "after {lo}..={hi}");
            let (a, b) = (run_disk.stats(), page_disk.stats());
            assert_eq!(
                (a.seeks, a.seq_reads, a.page_writes, a.write_seeks),
                (b.seeks, b.seq_reads, b.page_writes, b.write_seeks),
                "after {lo}..={hi}"
            );
            assert!((a.elapsed_ms - b.elapsed_ms).abs() < 1e-9, "after {lo}..={hi}");
        }
    }

    #[test]
    fn run_larger_than_capacity_still_admits_and_charges_once() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 4);
        let f = disk.alloc_file();
        pool.read_run(f, 0, 19);
        let s = disk.stats();
        assert_eq!(s.seeks, 1, "one vectored read for the whole run");
        assert_eq!(s.seq_reads, 19);
        assert!(pool.resident() <= 4);
        assert_eq!(pool.stats().misses, 20);
        assert_eq!(pool.stats().clean_evictions, 16);
    }

    #[test]
    fn flush_all_writes_runs_not_frames() {
        // Regression (checkpoint write-back): contiguous dirty frames
        // must flush as vectored runs — far fewer write seeks than
        // frames, even though the dirty set was produced out of order.
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 32);
        let f = disk.alloc_file();
        for page in [504u64, 500, 502, 501, 503, 2, 1, 0] {
            pool.write(f, page);
        }
        // A second file's dirty pages form their own run.
        let g = disk.alloc_file();
        pool.write(g, 100);
        pool.write(g, 101);
        disk.reset();
        let io = pool.flush_all();
        assert_eq!(io.page_writes, 10);
        assert!(
            io.write_seeks < io.page_writes,
            "vectored flush: {} write seeks for {} frames",
            io.write_seeks,
            io.page_writes
        );
        // One seek per contiguous run: {0..=2}, {500..=504}, {100..=101}.
        assert_eq!(io.write_seeks, 3);
    }

    #[test]
    fn write_to_cached_page_marks_dirty_without_io() {
        let disk = DiskSim::with_defaults();
        let pool = BufferPool::new(disk.clone(), 8);
        let f = disk.alloc_file();
        pool.read(f, 0);
        let before = disk.stats();
        pool.write(f, 0); // hit: becomes dirty, no disk traffic
        assert_eq!(disk.stats(), before);
        let io = pool.flush_all();
        assert_eq!(io.page_writes, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let disk = DiskSim::with_defaults();
        let _ = BufferPool::new(disk, 0);
    }
}
