//! # cm-storage
//!
//! Storage substrate for the Correlation Maps (VLDB 2009) reproduction.
//!
//! The paper runs on PostgreSQL over a 7200rpm disk and all of its
//! experiments are disk-bound: what matters is the *pattern* of page
//! accesses (random seeks vs. sequential reads), priced with the constants
//! from Table 1 of the paper (`seek_cost = 5.5 ms`,
//! `seq_page_cost = 0.078 ms`). This crate provides that substrate:
//!
//! * [`Value`], [`Schema`], [`Row`] — a small dynamically-typed tuple model
//!   sufficient for the eBay / TPC-H / SDSS schemas used in the paper.
//! * [`DiskSim`] — a simulated disk that records every page access and
//!   charges seek or sequential cost depending on head position, exactly
//!   the methodology the paper itself uses in §6.1.1 ("we simulated the
//!   disk behavior by counting scanned pages and seeks"). Vectored
//!   `read_run`/`write_run` charge a whole contiguous page run atomically
//!   under one lock — one seek plus sequential pages — so concurrent
//!   sessions cannot interleave into the middle of a sweep and shatter
//!   its sequential pricing ([`PerPageIo`] restores the page-at-a-time
//!   baseline for comparison).
//! * [`HeapFile`] — a paged heap of rows; clustering is achieved by bulk
//!   loading rows sorted on the clustered attribute.
//! * [`BufferPool`] — a capacity-bounded page cache with dirty write-back,
//!   reproducing the mechanism behind the paper's Experiment 3 (index
//!   maintenance pressure on the buffer pool).
//! * [`Wal`] — a write-ahead log whose flushes are charged to the disk,
//!   used to give CMs recoverability comparable to B+Trees (§7.1). Since
//!   the recovery PR its records are typed, checksummed [`LogPayload`]
//!   frames ([`logrec`]) with stream-offset LSNs, and the framed stream
//!   is retained so [`decode_stream`] can replay it after a crash.
//! * [`FileDisk`] — a real-file page store (`pread`/`pwrite`, one
//!   vectored syscall per contiguous run, optional `O_DIRECT`). Pair it
//!   with [`DiskSim::with_backing`] ([`Backend::File`]) and every charge
//!   also hits the device, landing wall-clock nanoseconds in
//!   [`IoStats::read_wall_ns`]/[`IoStats::write_wall_ns`] next to the
//!   sim-ms — the `file_io` bench's sim-vs-hardware methodology.
//! * [`StorageShard`] — one disk + pool pair; a set of them lets a higher
//!   layer partition data so concurrent scans stop interleaving a single
//!   simulated head. [`Backend`] picks the device each shard runs on.
//! * [`GroupCommitWal`] — leader-elected batched commits over a [`Wal`]:
//!   concurrent committers share one tail flush.
//! * [`MvccState`] / [`Snapshot`] — the multi-version commit clock,
//!   commit table, and registered read snapshots that let the engine
//!   serve readers under shard *read* locks while writers stamp new
//!   versions (see the [`mvcc`] module docs for the protocol).
//!
//! All higher layers (`cm-index`, `cm-core`, `cm-query`, …) charge their
//! I/O through the [`PageAccessor`] trait so that an experiment can route
//! accesses either straight to the simulated disk (cold runs) or through a
//! buffer pool (mixed workloads).

pub mod bufferpool;
pub mod cache;
pub mod disk;
pub mod error;
pub mod filedisk;
pub mod group_commit;
pub mod heap;
pub mod logrec;
pub mod mvcc;
pub mod rid;
pub mod schema;
pub mod shard;
pub mod value;
pub mod wal;

pub use bufferpool::{BufferPool, PoolStats};
pub use cache::ReadCache;
pub use disk::{for_each_page_run, DiskConfig, DiskSim, FileId, IoStats, PageAccessor, PerPageIo};
pub use error::StorageError;
pub use filedisk::{FileDisk, TempDir};
pub use group_commit::{GroupCommitConfig, GroupCommitStats, GroupCommitWal};
pub use heap::HeapFile;
pub use logrec::{
    crc32, decode_stream, encode_frame, DecodedLog, LogPayload, LogRecord, Lsn, AUTOCOMMIT_TXN,
    FRAME_HEADER_BYTES, PAYLOAD_HEADER_BYTES,
};
pub use mvcc::{
    is_pending, pending_stamp, pending_txn, MvccState, MvccStats, Snapshot, LIVE_TS, TXN_STAMP_BIT,
};
pub use rid::Rid;
pub use schema::{Column, Row, Schema, ValueType};
pub use shard::{aggregate_io, aggregate_pool, makespan_ms, Backend, StorageShard};
pub use value::{OrdF64, Value};
pub use wal::{LogWrite, Wal, WalBatch};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
