//! Query-local read cache.
//!
//! Within a single query, any real engine keeps the pages it has already
//! read — in particular the upper levels of a B+Tree, which every probe
//! revisits — in its buffer pool. [`ReadCache`] is that behaviour as a
//! composable adapter: the first read of a page is charged to the inner
//! accessor, repeats are free; writes always pass through. Executors wrap
//! their *index* accesses in one of these per query, so a 100-value IN
//! lookup charges the index's upper levels once, not 100 times, exactly
//! as PostgreSQL's shared buffers would behave in the paper's runs (the
//! heap sweep is deliberately NOT cached: its access pattern is the
//! object of study).

use crate::disk::{FileId, PageAccessor};
use parking_lot::Mutex;
use std::collections::HashSet;

/// Deduplicating read adapter over another accessor.
pub struct ReadCache<'a> {
    inner: &'a dyn PageAccessor,
    seen: Mutex<HashSet<(FileId, u64)>>,
}

impl<'a> ReadCache<'a> {
    /// A fresh (empty) cache over `inner`.
    pub fn new(inner: &'a dyn PageAccessor) -> Self {
        ReadCache { inner, seen: Mutex::new(HashSet::new()) }
    }

    /// Number of distinct pages read through this cache.
    pub fn distinct_reads(&self) -> usize {
        self.seen.lock().len()
    }
}

impl PageAccessor for ReadCache<'_> {
    fn read(&self, file: FileId, page: u64) {
        if self.seen.lock().insert((file, page)) {
            self.inner.read(file, page);
        }
    }

    fn write(&self, file: FileId, page: u64) {
        // Writes invalidate nothing here (the simulator carries no data),
        // but they must reach the inner accessor for cost accounting.
        self.inner.write(file, page);
    }

    fn read_run(&self, file: FileId, lo: u64, hi: u64) {
        // Forward the maximal unseen sub-runs as vectored reads so the
        // inner accessor keeps the one-seek-per-run pricing; already-seen
        // pages split a run but cost nothing themselves.
        let mut seen = self.seen.lock();
        let mut start: Option<u64> = None;
        for page in lo..=hi {
            if seen.insert((file, page)) {
                start.get_or_insert(page);
            } else if let Some(s) = start.take() {
                self.inner.read_run(file, s, page - 1);
            }
        }
        if let Some(s) = start {
            self.inner.read_run(file, s, hi);
        }
    }

    fn write_run(&self, file: FileId, lo: u64, hi: u64) {
        self.inner.write_run(file, lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskSim;

    #[test]
    fn repeat_reads_are_free() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        let cache = ReadCache::new(disk.as_ref());
        cache.read(f, 0);
        cache.read(f, 0);
        cache.read(f, 0);
        assert_eq!(disk.stats().pages(), 1);
        assert_eq!(cache.distinct_reads(), 1);
    }

    #[test]
    fn distinct_reads_all_charge() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        let cache = ReadCache::new(disk.as_ref());
        for p in 0..5 {
            cache.read(f, p);
        }
        assert_eq!(disk.stats().pages(), 5);
    }

    #[test]
    fn writes_always_pass_through() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        let cache = ReadCache::new(disk.as_ref());
        cache.write(f, 3);
        cache.write(f, 3);
        assert_eq!(disk.stats().page_writes, 2);
    }

    #[test]
    fn read_run_charges_only_unseen_sub_runs() {
        let disk = DiskSim::with_defaults();
        let f = disk.alloc_file();
        let cache = ReadCache::new(disk.as_ref());
        // Pre-warm pages 3 and 4: a later run over 0..=9 must charge the
        // two flanking sub-runs, vectored.
        cache.read(f, 3);
        cache.read(f, 4);
        let before = disk.stats();
        cache.read_run(f, 0, 9);
        let d = disk.stats().since(&before);
        assert_eq!(d.pages(), 8, "pages 3 and 4 are free");
        // Two vectored sub-runs reach the disk: 0..=2 (a backward seek)
        // and 5..=9 (a short forward skip, priced as read-through).
        assert_eq!(d.seeks, 1);
        assert_eq!(d.seq_reads, 7);
        assert_eq!(cache.distinct_reads(), 10);
        // A fully-seen run charges nothing.
        let before = disk.stats();
        cache.read_run(f, 0, 9);
        assert_eq!(disk.stats(), before);
    }

    #[test]
    fn caches_distinguish_files() {
        let disk = DiskSim::with_defaults();
        let f1 = disk.alloc_file();
        let f2 = disk.alloc_file();
        let cache = ReadCache::new(disk.as_ref());
        cache.read(f1, 7);
        cache.read(f2, 7);
        assert_eq!(disk.stats().pages(), 2);
    }
}
