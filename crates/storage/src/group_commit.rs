//! Group commit over the write-ahead log.
//!
//! Every committed transaction must have its log records on disk, but
//! nothing says each transaction needs its *own* flush: a single tail
//! write can make many sessions' records durable at once (the classic
//! group commit of System R descendants, and what PostgreSQL's
//! `commit_delay` buys). [`GroupCommitWal`] wraps a [`Wal`] with that
//! protocol: sessions append records as before, and concurrent
//! [`GroupCommitWal::commit`] calls elect one leader that flushes the
//! combined tail while the followers are absorbed for free.

use crate::disk::IoStats;
use crate::logrec::{LogPayload, Lsn};
use crate::wal::Wal;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Condvar;
use std::time::Duration;

/// Batching knobs for [`GroupCommitWal`].
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitConfig {
    /// A commit leads (flushes) immediately once this many sessions are
    /// waiting to commit. `1` disables grouping: every commit flushes.
    pub max_batch: usize,
    /// How long a lone committer lingers for company before flushing
    /// anyway. `Duration::ZERO` disables lingering.
    pub linger: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        // A small batch and a sub-millisecond linger: enough to merge
        // concurrent committers without a visible latency tax.
        GroupCommitConfig { max_batch: 4, linger: Duration::from_micros(200) }
    }
}

impl GroupCommitConfig {
    /// Flush on every commit (no grouping) — the pre-group-commit
    /// behaviour, kept for comparisons.
    pub fn per_commit() -> Self {
        GroupCommitConfig { max_batch: 1, linger: Duration::ZERO }
    }
}

/// Counters describing group-commit behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// `commit` calls observed.
    pub commit_requests: u64,
    /// Commits that found their records already durable (merged into an
    /// earlier or concurrent flush) and did no I/O.
    pub absorbed: u64,
    /// Leader flushes that actually wrote log pages.
    pub flushes: u64,
    /// Log pages written by those flushes.
    pub pages_flushed: u64,
}

impl GroupCommitStats {
    /// `self - earlier`, for snapshot-delta reporting.
    pub fn since(&self, earlier: &GroupCommitStats) -> GroupCommitStats {
        GroupCommitStats {
            commit_requests: self.commit_requests - earlier.commit_requests,
            absorbed: self.absorbed - earlier.absorbed,
            flushes: self.flushes - earlier.flushes,
            pages_flushed: self.pages_flushed - earlier.pages_flushed,
        }
    }
}

struct GcState {
    /// Record count (monotone, from [`Wal::records`]) known durable.
    durable: u64,
    /// A leader is currently flushing.
    flushing: bool,
    /// Committers lingering for company.
    lingering: usize,
    stats: GroupCommitStats,
}

/// A [`Wal`] with leader-elected batched commits.
pub struct GroupCommitWal {
    wal: Mutex<Wal>,
    /// [`Wal::records`] after the most recent append batch — the commit
    /// horizon a `commit` call must make durable.
    appended: AtomicU64,
    state: Mutex<GcState>,
    cond: Condvar,
    cfg: GroupCommitConfig,
}

impl GroupCommitWal {
    /// Wrap a log with the given batching knobs. A wrapped log with no
    /// pending bytes starts fully durable; one with a pending tail will
    /// be flushed by the first commit.
    pub fn new(wal: Wal, cfg: GroupCommitConfig) -> Self {
        let durable = if wal.pending_bytes() == 0 { wal.records() } else { 0 };
        GroupCommitWal {
            appended: AtomicU64::new(wal.records()),
            wal: Mutex::new(wal),
            state: Mutex::new(GcState {
                durable,
                flushing: false,
                lingering: 0,
                stats: GroupCommitStats::default(),
            }),
            cond: Condvar::new(),
            cfg,
        }
    }

    /// The configured batching knobs.
    pub fn config(&self) -> GroupCommitConfig {
        self.cfg
    }

    /// Run `f` with exclusive access to the underlying log (the append
    /// path: writers log their records inside one such critical
    /// section). The commit horizon advances when `f` returns. Prefer
    /// [`GroupCommitWal::append_batch`] for maintenance work: gather the
    /// encoded frames outside the lock, then append them here in one
    /// short critical section.
    pub fn with_wal<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        let mut wal = self.wal.lock();
        let out = f(&mut wal);
        self.appended.store(wal.records(), Ordering::Release);
        out
    }

    /// Append a batch of records gathered off-lock (see
    /// [`crate::WalBatch`]); the log lock is held only for the appends.
    pub fn append_batch(&self, batch: &crate::WalBatch) {
        if batch.is_empty() {
            return;
        }
        self.with_wal(|w| batch.append_into(w));
    }

    /// Append one typed record and return its LSN.
    pub fn log(&self, txn: u64, payload: &LogPayload) -> Lsn {
        self.with_wal(|w| w.log(txn, payload))
    }

    /// Records appended since creation.
    pub fn records(&self) -> u64 {
        self.wal.lock().records()
    }

    /// Bytes made durable so far.
    pub fn durable_bytes(&self) -> u64 {
        self.wal.lock().durable_bytes()
    }

    /// Bytes appended so far (durable or not).
    pub fn appended_bytes(&self) -> u64 {
        self.wal.lock().appended_bytes()
    }

    /// The durable prefix of the framed record stream (see
    /// [`Wal::durable_log`]).
    pub fn durable_log(&self) -> Vec<u8> {
        self.wal.lock().durable_log()
    }

    /// The full appended stream including the pending tail (see
    /// [`Wal::appended_log`]).
    pub fn appended_log(&self) -> Vec<u8> {
        self.wal.lock().appended_log()
    }

    /// Group-commit behaviour counters.
    pub fn stats(&self) -> GroupCommitStats {
        self.state.lock().stats
    }

    /// Make every record appended so far durable; returns the I/O this
    /// call charged (zero when an earlier or concurrent flush already
    /// covered it).
    ///
    /// Concurrent callers elect a leader: the first to find no flush in
    /// flight lingers up to [`GroupCommitConfig::linger`] (or until
    /// [`GroupCommitConfig::max_batch`] committers are waiting), then
    /// flushes the combined tail once. Followers whose records the
    /// flush covered return without touching the disk.
    pub fn commit(&self) -> IoStats {
        let target = self.appended.load(Ordering::Acquire);
        let mut st = self.state.lock();
        st.stats.commit_requests += 1;
        loop {
            if st.durable >= target {
                st.stats.absorbed += 1;
                return IoStats::default();
            }
            if st.flushing {
                st = match self.cond.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                continue;
            }
            // No flush in flight: lead now, or linger for company.
            let quorum = st.lingering + 1 >= self.cfg.max_batch;
            if quorum || self.cfg.linger.is_zero() {
                break;
            }
            st.lingering += 1;
            // Lingerers count toward the next arrival's quorum check and
            // are woken by it (or flush anyway once the linger expires).
            let (g, _timeout) = match self.cond.wait_timeout(st, self.cfg.linger) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            st = g;
            st.lingering -= 1;
            if st.durable >= target {
                st.stats.absorbed += 1;
                return IoStats::default();
            }
            if st.flushing {
                continue;
            }
            break;
        }
        st.flushing = true;
        drop(st);

        let (covered, io) = {
            let mut wal = self.wal.lock();
            let covered = wal.records();
            (covered, wal.commit())
        };

        let mut st = self.state.lock();
        st.durable = st.durable.max(covered);
        st.flushing = false;
        if io.page_writes > 0 {
            st.stats.flushes += 1;
            st.stats.pages_flushed += io.page_writes;
        }
        drop(st);
        self.cond.notify_all();
        io
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskSim;
    use std::sync::Barrier;

    fn gc(cfg: GroupCommitConfig) -> (std::sync::Arc<DiskSim>, GroupCommitWal) {
        let disk = DiskSim::with_defaults();
        (disk.clone(), GroupCommitWal::new(Wal::new(disk), cfg))
    }

    #[test]
    fn repeat_commit_with_no_new_records_is_absorbed() {
        let (disk, gc) = gc(GroupCommitConfig::per_commit());
        gc.with_wal(|w| w.append_sized(6));
        let io1 = gc.commit();
        assert_eq!(io1.page_writes, 1);
        let before = disk.stats();
        let io2 = gc.commit();
        assert_eq!(io2, IoStats::default());
        assert_eq!(disk.stats(), before);
        let s = gc.stats();
        assert_eq!(s.commit_requests, 2);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.absorbed, 1);
        assert_eq!(s.pages_flushed, 1);
    }

    #[test]
    fn commit_on_empty_log_is_free() {
        let (disk, gc) = gc(GroupCommitConfig::default());
        assert_eq!(gc.commit(), IoStats::default());
        assert_eq!(disk.stats(), IoStats::default());
        assert_eq!(gc.stats().absorbed, 1);
    }

    #[test]
    fn concurrent_commits_share_flushes() {
        let (_disk, gc) = gc(GroupCommitConfig {
            max_batch: 4,
            linger: Duration::from_millis(20),
        });
        let threads = 8;
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let gc = &gc;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    gc.with_wal(|w| w.append_sized(64 + t));
                    gc.commit();
                });
            }
        });
        let s = gc.stats();
        assert_eq!(s.commit_requests, threads as u64);
        assert_eq!(
            s.flushes + s.absorbed,
            threads as u64,
            "every commit either flushed or was absorbed: {s:?}"
        );
        assert!(s.flushes >= 1, "someone flushed");
        // All records are durable afterwards.
        assert_eq!(gc.commit(), IoStats::default(), "nothing left to flush");
    }

    #[test]
    fn wrapping_an_already_durable_wal_starts_absorbed() {
        // Regression: a wrapped log whose records were already flushed
        // must not trigger a phantom leader flush that breaks the
        // commit_requests == flushes + absorbed invariant.
        let disk = DiskSim::with_defaults();
        let mut wal = Wal::new(disk.clone());
        wal.append_sized(3);
        wal.commit();
        let gc = GroupCommitWal::new(wal, GroupCommitConfig::per_commit());
        assert_eq!(gc.commit(), IoStats::default());
        let s = gc.stats();
        assert_eq!(s.commit_requests, 1);
        assert_eq!(s.absorbed, 1);
        assert_eq!(s.flushes, 0);
        // A wrapped log with a pending tail is flushed by the first
        // commit and counted as a flush.
        let mut wal = Wal::new(disk);
        wal.append_sized(7);
        let gc = GroupCommitWal::new(wal, GroupCommitConfig::per_commit());
        let io = gc.commit();
        assert_eq!(io.page_writes, 1);
        let s = gc.stats();
        assert_eq!((s.flushes, s.absorbed), (1, 0));
    }

    #[test]
    fn per_commit_config_flushes_every_time() {
        let (_disk, gc) = gc(GroupCommitConfig::per_commit());
        for _ in 0..3 {
            gc.with_wal(|w| w.append_sized(1));
            let io = gc.commit();
            assert_eq!(io.page_writes, 1);
        }
        let s = gc.stats();
        assert_eq!(s.flushes, 3);
        assert_eq!(s.absorbed, 0);
    }

    #[test]
    fn durable_bytes_and_records_pass_through() {
        let (_disk, gc) = gc(GroupCommitConfig::default());
        gc.with_wal(|w| {
            w.append_sized(4);
            w.append_sized(4);
        });
        assert_eq!(gc.records(), 2);
        gc.commit();
        assert_eq!(
            gc.durable_bytes(),
            gc.appended_bytes(),
            "everything appended is durable after commit"
        );
        // The retained stream decodes back to the two records.
        let decoded = crate::logrec::decode_stream(&gc.durable_log());
        assert!(!decoded.torn);
        assert_eq!(decoded.records.len(), 2);
    }
}
