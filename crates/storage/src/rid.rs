//! Record identifiers.

/// A record identifier: the ordinal position of a row in its heap file.
///
/// Because [`HeapFile`](crate::heap::HeapFile) stores a fixed number of
/// tuples per page, the page number and slot are derived (`rid / tpp`,
/// `rid % tpp`) rather than stored, matching the (page, slot) RIDs of the
/// paper while staying a single machine word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid(pub u64);

impl Rid {
    /// The page this RID lives on for a file with `tups_per_page` tuples
    /// per page.
    #[inline]
    pub fn page(self, tups_per_page: usize) -> u64 {
        self.0 / tups_per_page as u64
    }

    /// The slot within the page.
    #[inline]
    pub fn slot(self, tups_per_page: usize) -> usize {
        (self.0 % tups_per_page as u64) as usize
    }
}

impl From<u64> for Rid {
    fn from(v: u64) -> Self {
        Rid(v)
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rid:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_slot_derivation() {
        let rid = Rid(1005);
        assert_eq!(rid.page(100), 10);
        assert_eq!(rid.slot(100), 5);
        assert_eq!(Rid(0).page(64), 0);
        assert_eq!(Rid(63).page(64), 0);
        assert_eq!(Rid(64).page(64), 1);
    }

    #[test]
    fn ordering_follows_heap_order() {
        assert!(Rid(1) < Rid(2));
        let mut v = vec![Rid(5), Rid(1), Rid(3)];
        v.sort();
        assert_eq!(v, vec![Rid(1), Rid(3), Rid(5)]);
    }
}
