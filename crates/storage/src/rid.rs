//! Record identifiers.

/// A record identifier: the ordinal position of a row in its heap file.
///
/// Because [`HeapFile`](crate::heap::HeapFile) stores a fixed number of
/// tuples per page, the page number and slot are derived (`rid / tpp`,
/// `rid % tpp`) rather than stored, matching the (page, slot) RIDs of the
/// paper while staying a single machine word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid(pub u64);

impl Rid {
    /// Bits reserved (at the top of the word) for a shard index when a
    /// table is partitioned across storage shards. 56 bits remain for
    /// the in-shard row ordinal — far beyond any heap this simulator
    /// will hold.
    pub const SHARD_BITS: u32 = 8;
    /// Maximum number of shards a sharded RID can address.
    pub const MAX_SHARDS: usize = 1 << Self::SHARD_BITS;
    const LOCAL_MASK: u64 = (1 << (64 - Self::SHARD_BITS)) - 1;

    /// The page this RID lives on for a file with `tups_per_page` tuples
    /// per page.
    #[inline]
    pub fn page(self, tups_per_page: usize) -> u64 {
        self.0 / tups_per_page as u64
    }

    /// The slot within the page.
    #[inline]
    pub fn slot(self, tups_per_page: usize) -> usize {
        (self.0 % tups_per_page as u64) as usize
    }

    /// Tag a shard-local RID with its shard index. Shard 0 is the
    /// identity, so unsharded code keeps seeing plain ordinals.
    #[inline]
    pub fn sharded(shard: usize, local: Rid) -> Rid {
        debug_assert!(shard < Self::MAX_SHARDS, "shard index fits the tag");
        debug_assert_eq!(local.0 & !Self::LOCAL_MASK, 0, "local rid fits 56 bits");
        Rid(((shard as u64) << (64 - Self::SHARD_BITS)) | local.0)
    }

    /// The shard index encoded in a sharded RID (0 for plain RIDs).
    #[inline]
    pub fn shard_index(self) -> usize {
        (self.0 >> (64 - Self::SHARD_BITS)) as usize
    }

    /// The shard-local RID (the RID itself for plain RIDs).
    #[inline]
    pub fn local(self) -> Rid {
        Rid(self.0 & Self::LOCAL_MASK)
    }
}

impl From<u64> for Rid {
    fn from(v: u64) -> Self {
        Rid(v)
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rid:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_slot_derivation() {
        let rid = Rid(1005);
        assert_eq!(rid.page(100), 10);
        assert_eq!(rid.slot(100), 5);
        assert_eq!(Rid(0).page(64), 0);
        assert_eq!(Rid(63).page(64), 0);
        assert_eq!(Rid(64).page(64), 1);
    }

    #[test]
    fn shard_tagging_roundtrips() {
        let r = Rid::sharded(3, Rid(1005));
        assert_eq!(r.shard_index(), 3);
        assert_eq!(r.local(), Rid(1005));
        // Shard 0 is the identity encoding.
        assert_eq!(Rid::sharded(0, Rid(42)), Rid(42));
        assert_eq!(Rid(42).shard_index(), 0);
        assert_eq!(Rid(42).local(), Rid(42));
    }

    #[test]
    fn ordering_follows_heap_order() {
        assert!(Rid(1) < Rid(2));
        let mut v = vec![Rid(5), Rid(1), Rid(3)];
        v.sort();
        assert_eq!(v, vec![Rid(1), Rid(3), Rid(5)]);
    }
}
