//! Property tests: the B+Tree must behave exactly like `BTreeMap` under
//! arbitrary interleavings of inserts, removals, lookups, and range scans,
//! while maintaining its structural invariants.

use cm_index::BPlusTree;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Op {
    Insert(i32, u32),
    Remove(i32),
    Get(i32),
    Range(i32, i32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i32>().prop_map(|k| k % 200), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<i32>().prop_map(|k| k % 200)).prop_map(Op::Remove),
        (any::<i32>().prop_map(|k| k % 200)).prop_map(Op::Get),
        (any::<i32>(), any::<i32>()).prop_map(|(a, b)| Op::Range(a % 200, b % 200)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model(ops in prop::collection::vec(op_strategy(), 1..400), order in 3usize..16) {
        let mut tree: BPlusTree<i32, u32> = BPlusTree::new(order);
        let mut model: BTreeMap<i32, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => prop_assert_eq!(tree.insert(k, v), model.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(tree.get(&k), model.get(&k)),
                Op::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got: Vec<(i32, u32)> = tree
                        .range(Bound::Included(&lo), Bound::Included(&hi))
                        .map(|(_, k, v)| (*k, *v))
                        .collect();
                    let want: Vec<(i32, u32)> =
                        model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
        let all: Vec<(i32, u32)> = tree.iter().map(|(_, k, v)| (*k, *v)).collect();
        let want: Vec<(i32, u32)> = model.into_iter().collect();
        prop_assert_eq!(all, want);
    }

    #[test]
    fn bulk_insert_then_drain(keys in prop::collection::btree_set(any::<i64>(), 0..300), order in 3usize..32) {
        let mut tree: BPlusTree<i64, i64> = BPlusTree::new(order);
        for &k in &keys {
            tree.insert(k, -k);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), keys.len());
        for &k in &keys {
            prop_assert_eq!(tree.remove(&k), Some(-k));
        }
        prop_assert_eq!(tree.len(), 0);
        prop_assert_eq!(tree.height(), 1);
        tree.check_invariants();
    }

    #[test]
    fn probe_path_length_equals_height(keys in prop::collection::vec(any::<i64>(), 1..500)) {
        let mut tree: BPlusTree<i64, ()> = BPlusTree::new(4);
        for &k in &keys {
            tree.insert(k, ());
        }
        for &k in keys.iter().take(20) {
            prop_assert_eq!(tree.probe_path(&k).len(), tree.height());
        }
    }
}
