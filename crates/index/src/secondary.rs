//! Dense secondary indexes (the paper's comparison baseline).
//!
//! A [`SecondaryIndex`] is a B+Tree from an [`IndexKey`] to the sorted
//! posting list of every RID whose tuple carries that key — the
//! PostgreSQL-style unclustered index the paper measures CMs against. It
//! is *dense*: one posting per tuple, which is precisely why it is three
//! orders of magnitude larger than the equivalent CM and why maintaining
//! many of them floods the buffer pool in Experiment 3.

use crate::btree::BPlusTree;
use crate::key::IndexKey;
use cm_storage::{FileId, PageAccessor, Rid, Value};
use std::ops::Bound;

/// PostgreSQL-like leaf fill factor used by the size model.
const FILL_FACTOR: f64 = 0.9;
/// Per-posting overhead: index tuple header (8) + heap TID (6), rounded up
/// to alignment.
const POSTING_OVERHEAD: usize = 16;

/// A dense unclustered B+Tree index over one or more columns.
pub struct SecondaryIndex {
    name: String,
    cols: Vec<usize>,
    tree: BPlusTree<IndexKey, Vec<Rid>>,
    file: FileId,
    /// Total postings (= indexed tuples).
    entries: u64,
    /// Total key bytes across all postings (keys repeat per posting, as in
    /// a real dense index).
    key_bytes: u64,
}

impl SecondaryIndex {
    /// An empty index on `cols` charged against `file`.
    pub fn new(name: impl Into<String>, cols: Vec<usize>, file: FileId, order: usize) -> Self {
        assert!(!cols.is_empty(), "index needs at least one column");
        SecondaryIndex {
            name: name.into(),
            cols,
            tree: BPlusTree::new(order),
            file,
            entries: 0,
            key_bytes: 0,
        }
    }

    /// Bulk-build from `(rid, row)` pairs without charging I/O (structure
    /// construction happens outside the measured window, as in the paper).
    pub fn build<'a>(
        name: impl Into<String>,
        cols: Vec<usize>,
        file: FileId,
        order: usize,
        rows: impl Iterator<Item = (Rid, &'a [Value])>,
    ) -> Self {
        let mut idx = Self::new(name, cols, file, order);
        for (rid, row) in rows {
            idx.insert_unlogged(row, rid);
        }
        idx
    }

    /// Index name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed column positions.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The simulated file holding this index's pages.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// `btree_height` of this index, as used by the cost model.
    pub fn height(&self) -> usize {
        self.tree.height()
    }

    /// Total postings (indexed tuples).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.tree.len()
    }

    /// Modeled on-disk size in bytes: dense leaf entries (key + posting
    /// overhead per tuple) at the configured fill factor, plus the live
    /// node pages' fixed overhead. This is the figure compared against
    /// `CorrelationMap::size_bytes` in the size-ratio experiments.
    pub fn size_bytes(&self) -> u64 {
        let leaf_payload = self.key_bytes + self.entries * POSTING_OVERHEAD as u64;
        let leaf = (leaf_payload as f64 / FILL_FACTOR) as u64;
        // Internal levels are a small fraction of leaf volume; model them
        // via the actual node count (~24 bytes of header per node page).
        leaf + self.tree.node_count() as u64 * 24
    }

    /// Extract this index's key from a row.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        IndexKey::from_row(row, &self.cols)
    }

    /// Probe one key, charging `height` page reads; returns the posting
    /// list (empty if the key is absent).
    pub fn probe(&self, io: &dyn PageAccessor, key: &IndexKey) -> &[Rid] {
        for node in self.tree.probe_path(key) {
            io.read(self.file, node as u64);
        }
        self.tree.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Probe a key range, charging the descent plus one read per distinct
    /// leaf visited; returns all postings in key order.
    pub fn probe_range(
        &self,
        io: &dyn PageAccessor,
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
    ) -> Vec<Rid> {
        // Charge the descent to the first leaf.
        let descend_key = match lo {
            Bound::Included(k) | Bound::Excluded(k) => Some(k),
            Bound::Unbounded => None,
        };
        if let Some(k) = descend_key {
            for node in self.tree.probe_path(k) {
                io.read(self.file, node as u64);
            }
        }
        let mut out = Vec::new();
        let mut last_leaf = None;
        for (leaf, _k, rids) in self.tree.range(lo, hi) {
            if last_leaf != Some(leaf) {
                io.read(self.file, leaf as u64);
                last_leaf = Some(leaf);
            }
            out.extend_from_slice(rids);
        }
        out
    }

    /// Probe every key whose **first** column lies in `[lo, hi]`,
    /// charging the descent plus one read per distinct leaf. This is how
    /// a range (or per-value prefix) predicate uses a composite index:
    /// only the first key column narrows the scan — the prefix limitation
    /// the paper's Experiment 5 exposes for `B+Tree(ra, dec)`.
    pub fn probe_first_col_range(
        &self,
        io: &dyn PageAccessor,
        lo: &Value,
        hi: &Value,
    ) -> Vec<Rid> {
        let start = if self.cols.len() == 1 {
            IndexKey::single(lo.clone())
        } else {
            IndexKey::prefix_lower(std::slice::from_ref(lo))
        };
        for node in self.tree.probe_path(&start) {
            io.read(self.file, node as u64);
        }
        let mut out = Vec::new();
        let mut last_leaf = None;
        for (leaf, key, rids) in self.tree.range(Bound::Included(&start), Bound::Unbounded) {
            if &key.values()[0] > hi {
                break;
            }
            if last_leaf != Some(leaf) {
                io.read(self.file, leaf as u64);
                last_leaf = Some(leaf);
            }
            out.extend_from_slice(rids);
        }
        out
    }

    /// Insert a posting for `row` at `rid`, charging a root-to-leaf read
    /// and a leaf write (plus one write per node created by splits).
    pub fn insert(&mut self, io: &dyn PageAccessor, row: &[Value], rid: Rid) {
        let key = self.key_of(row);
        let path = self.tree.probe_path(&key);
        for &node in &path {
            io.read(self.file, node as u64);
        }
        io.write(self.file, *path.last().expect("non-empty path") as u64);
        let nodes_before = self.tree.node_count();
        self.insert_posting(key, rid);
        for _ in nodes_before..self.tree.node_count() {
            // Each split allocates a page that must be written out.
            io.write(self.file, self.tree.root_id() as u64);
        }
    }

    /// Insert without I/O charging (bulk build).
    pub fn insert_unlogged(&mut self, row: &[Value], rid: Rid) {
        let key = self.key_of(row);
        self.insert_posting(key, rid);
    }

    fn insert_posting(&mut self, key: IndexKey, rid: Rid) {
        self.entries += 1;
        self.key_bytes += key.size_bytes() as u64;
        if let Some(list) = self.tree.get_mut(&key) {
            match list.binary_search(&rid) {
                Ok(_) => {} // duplicate posting: idempotent
                Err(pos) => list.insert(pos, rid),
            }
        } else {
            self.tree.insert(key, vec![rid]);
        }
    }

    /// Remove the posting for `row` at `rid`; returns whether it existed.
    /// Charges a root-to-leaf read and a leaf write.
    pub fn remove(&mut self, io: &dyn PageAccessor, row: &[Value], rid: Rid) -> bool {
        let key = self.key_of(row);
        let path = self.tree.probe_path(&key);
        for &node in &path {
            io.read(self.file, node as u64);
        }
        io.write(self.file, *path.last().expect("non-empty path") as u64);
        let key_size = key.size_bytes() as u64;
        let Some(list) = self.tree.get_mut(&key) else {
            return false;
        };
        let Ok(pos) = list.binary_search(&rid) else {
            return false;
        };
        list.remove(pos);
        if list.is_empty() {
            self.tree.remove(&key);
        }
        self.entries -= 1;
        self.key_bytes -= key_size;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_storage::DiskSim;

    fn sample_rows() -> Vec<Vec<Value>> {
        // (id, city, state)
        [
            (0, "boston", "MA"),
            (1, "boston", "NH"),
            (2, "springfield", "MA"),
            (3, "springfield", "OH"),
            (4, "boston", "MA"),
            (5, "toledo", "OH"),
        ]
        .iter()
        .map(|(id, c, s)| vec![Value::Int(*id), Value::str(*c), Value::str(*s)])
        .collect()
    }

    fn build_city_index(disk: &DiskSim) -> SecondaryIndex {
        let rows = sample_rows();
        SecondaryIndex::build(
            "city_idx",
            vec![1],
            disk.alloc_file(),
            4,
            rows.iter().enumerate().map(|(i, r)| (Rid(i as u64), r.as_slice())),
        )
    }

    #[test]
    fn probe_returns_all_postings_sorted() {
        let disk = DiskSim::with_defaults();
        let idx = build_city_index(&disk);
        let rids = idx.probe(disk.as_ref(), &IndexKey::single(Value::str("boston")));
        assert_eq!(rids, &[Rid(0), Rid(1), Rid(4)]);
        assert_eq!(disk.stats().pages() as usize, idx.height());
    }

    #[test]
    fn probe_missing_key_charges_but_returns_empty() {
        let disk = DiskSim::with_defaults();
        let idx = build_city_index(&disk);
        let rids = idx.probe(disk.as_ref(), &IndexKey::single(Value::str("nowhere")));
        assert!(rids.is_empty());
        assert!(disk.stats().pages() > 0);
    }

    #[test]
    fn insert_and_remove_maintain_entries() {
        let disk = DiskSim::with_defaults();
        let mut idx = build_city_index(&disk);
        assert_eq!(idx.entries(), 6);
        let row = vec![Value::Int(6), Value::str("boston"), Value::str("MA")];
        idx.insert(disk.as_ref(), &row, Rid(6));
        assert_eq!(idx.entries(), 7);
        assert_eq!(
            idx.probe(disk.as_ref(), &IndexKey::single(Value::str("boston"))).len(),
            4
        );
        assert!(idx.remove(disk.as_ref(), &row, Rid(6)));
        assert!(!idx.remove(disk.as_ref(), &row, Rid(6)), "double remove is false");
        assert_eq!(idx.entries(), 6);
    }

    #[test]
    fn removing_last_posting_drops_key() {
        let disk = DiskSim::with_defaults();
        let mut idx = build_city_index(&disk);
        let row = &sample_rows()[5]; // the only toledo
        assert!(idx.remove(disk.as_ref(), row, Rid(5)));
        assert_eq!(
            idx.probe(disk.as_ref(), &IndexKey::single(Value::str("toledo"))).len(),
            0
        );
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent_in_postings() {
        let disk = DiskSim::with_defaults();
        let mut idx = build_city_index(&disk);
        let row = &sample_rows()[0];
        idx.insert(disk.as_ref(), row, Rid(0)); // already present
        let rids = idx.probe(disk.as_ref(), &IndexKey::single(Value::str("boston")));
        assert_eq!(rids, &[Rid(0), Rid(1), Rid(4)]);
    }

    #[test]
    fn insert_charges_read_path_plus_leaf_write() {
        let disk = DiskSim::with_defaults();
        let mut idx = build_city_index(&disk);
        let h = idx.height() as u64;
        let row = vec![Value::Int(9), Value::str("akron"), Value::str("OH")];
        let before = disk.stats();
        idx.insert(disk.as_ref(), &row, Rid(9));
        let d = disk.stats().since(&before);
        assert_eq!(d.seeks + d.seq_reads, h);
        assert!(d.page_writes >= 1);
    }

    #[test]
    fn composite_keys_and_prefix_range() {
        let disk = DiskSim::with_defaults();
        let rows = sample_rows();
        let idx = SecondaryIndex::build(
            "city_state",
            vec![1, 2],
            disk.alloc_file(),
            4,
            rows.iter().enumerate().map(|(i, r)| (Rid(i as u64), r.as_slice())),
        );
        // All boston rows regardless of state, via prefix bounds.
        let lo = IndexKey::prefix_lower(&[Value::str("boston")]);
        let hi = IndexKey::prefix_lower(&[Value::str("bostoo")]);
        let rids =
            idx.probe_range(disk.as_ref(), Bound::Included(&lo), Bound::Excluded(&hi));
        assert_eq!(rids.len(), 3);
    }

    #[test]
    fn probe_range_collects_in_key_order() {
        let disk = DiskSim::with_defaults();
        let idx = build_city_index(&disk);
        let lo = IndexKey::single(Value::str("a"));
        let hi = IndexKey::single(Value::str("zzzz"));
        let rids =
            idx.probe_range(disk.as_ref(), Bound::Included(&lo), Bound::Included(&hi));
        assert_eq!(rids.len(), 6);
    }

    #[test]
    fn size_grows_linearly_with_entries() {
        let disk = DiskSim::with_defaults();
        let mut small = SecondaryIndex::new("s", vec![0], disk.alloc_file(), 64);
        let mut large = SecondaryIndex::new("l", vec![0], disk.alloc_file(), 64);
        for i in 0..100i64 {
            small.insert_unlogged(&[Value::Int(i)], Rid(i as u64));
        }
        for i in 0..10_000i64 {
            large.insert_unlogged(&[Value::Int(i)], Rid(i as u64));
        }
        let ratio = large.size_bytes() as f64 / small.size_bytes() as f64;
        assert!((50.0..200.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dense_index_is_much_larger_than_distinct_count_suggests() {
        // 10k tuples over 10 distinct keys still cost ~10k postings.
        let disk = DiskSim::with_defaults();
        let mut idx = SecondaryIndex::new("dense", vec![0], disk.alloc_file(), 64);
        for i in 0..10_000i64 {
            idx.insert_unlogged(&[Value::Int(i % 10)], Rid(i as u64));
        }
        assert_eq!(idx.distinct_keys(), 10);
        assert_eq!(idx.entries(), 10_000);
        assert!(idx.size_bytes() > 10_000 * 16);
    }
}
