//! A generic, arena-allocated B+Tree.
//!
//! Nodes live in an arena and are identified by a [`NodeId`] that doubles
//! as the node's *page number* on the simulated disk: a root-to-leaf probe
//! touches `height` pages, which is exactly the `btree_height` term of the
//! paper's cost model (§3.1). Leaves are doubly linked for range scans.
//!
//! Deletion is lazy in the PostgreSQL-nbtree style: keys are removed in
//! place and a page is reclaimed only once it is completely empty. No
//! sibling rebalancing is performed; the tree remains correct and the
//! experiments (which are insert- and lookup-heavy, like the paper's) are
//! unaffected by the slightly lower occupancy after heavy deletion.

use std::borrow::Borrow;
use std::ops::Bound;

/// Identifier of a node; also its page number for I/O charging.
pub type NodeId = u32;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i + 1]`.
        keys: Vec<K>,
        children: Vec<NodeId>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        prev: Option<NodeId>,
        next: Option<NodeId>,
    },
}

/// What an insert into a subtree produced.
enum InsertUp<K> {
    /// Value replaced or plain insert; nothing to propagate.
    Done,
    /// The child split: push `sep` and the new right sibling up.
    Split { sep: K, right: NodeId },
}

/// A B+Tree with configurable fanout.
///
/// `order` is the maximum number of keys a node may hold; the default of
/// 64 gives trees of height 3–4 over the dataset sizes used in the
/// experiments, comparable to PostgreSQL's `btree_height` on the paper's
/// tables.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    arena: Vec<Option<Node<K, V>>>,
    free: Vec<NodeId>,
    root: NodeId,
    height: usize,
    len: usize,
    order: usize,
}

/// Default maximum keys per node.
pub const DEFAULT_ORDER: usize = 64;

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new(DEFAULT_ORDER)
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// An empty tree with the given maximum keys per node (minimum 3).
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "order must be at least 3");
        let mut t = BPlusTree {
            arena: Vec::new(),
            free: Vec::new(),
            root: 0,
            height: 1,
            len: 0,
            order,
        };
        t.root = t.alloc(Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            prev: None,
            next: None,
        });
        t
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Levels from root to leaf inclusive — the `btree_height` of the cost
    /// model.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of live nodes (pages) in the tree.
    pub fn node_count(&self) -> usize {
        self.arena.len() - self.free.len()
    }

    /// The root's node id (root page).
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    fn alloc(&mut self, node: Node<K, V>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.arena[id as usize] = Some(node);
            id
        } else {
            self.arena.push(Some(node));
            (self.arena.len() - 1) as NodeId
        }
    }

    fn dealloc(&mut self, id: NodeId) {
        self.arena[id as usize] = None;
        self.free.push(id);
    }

    fn node(&self, id: NodeId) -> &Node<K, V> {
        self.arena[id as usize].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node<K, V> {
        self.arena[id as usize].as_mut().expect("live node")
    }

    /// Child index to descend into for `key`.
    #[inline]
    fn child_slot<Q>(keys: &[K], key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        keys.partition_point(|k| k.borrow() <= key)
    }

    /// The node ids on the root-to-leaf path for `key`. The caller charges
    /// one page read per element to model an index probe.
    pub fn probe_path<Q>(&self, key: &Q) -> Vec<NodeId>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut path = Vec::with_capacity(self.height);
        let mut id = self.root;
        loop {
            path.push(id);
            match self.node(id) {
                Node::Internal { keys, children } => {
                    id = children[Self::child_slot(keys, key)];
                }
                Node::Leaf { .. } => return path,
            }
        }
    }

    /// Look up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let leaf = *self.probe_path(key).last().expect("path is never empty");
        match self.node(leaf) {
            Node::Leaf { keys, values, .. } => keys
                .binary_search_by(|k| k.borrow().cmp(key))
                .ok()
                .map(|i| &values[i]),
            Node::Internal { .. } => unreachable!("probe ends at a leaf"),
        }
    }

    /// Mutable lookup.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let leaf = *self.probe_path(key).last().expect("path is never empty");
        match self.node_mut(leaf) {
            Node::Leaf { keys, values, .. } => keys
                .binary_search_by(|k| k.borrow().cmp(key))
                .ok()
                .map(|i| &mut values[i]),
            Node::Internal { .. } => unreachable!("probe ends at a leaf"),
        }
    }

    /// Insert a key/value pair; returns the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let root = self.root;
        let (old, up) = self.insert_rec(root, key, value);
        if let InsertUp::Split { sep, right } = up {
            let new_root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            });
            self.root = new_root;
            self.height += 1;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(&mut self, id: NodeId, key: K, value: V) -> (Option<V>, InsertUp<K>) {
        match self.node_mut(id) {
            Node::Leaf { keys, values, .. } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut values[i], value);
                        (Some(old), InsertUp::Done)
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                        if keys.len() > self.order {
                            let up = self.split_leaf(id);
                            (None, up)
                        } else {
                            (None, InsertUp::Done)
                        }
                    }
                }
            }
            Node::Internal { keys, children } => {
                let slot = Self::child_slot(keys, &key);
                let child = children[slot];
                let (old, up) = self.insert_rec(child, key, value);
                if let InsertUp::Split { sep, right } = up {
                    match self.node_mut(id) {
                        Node::Internal { keys, children } => {
                            keys.insert(slot, sep);
                            children.insert(slot + 1, right);
                            if keys.len() > self.order {
                                return (old, self.split_internal(id));
                            }
                        }
                        Node::Leaf { .. } => unreachable!("id is internal"),
                    }
                }
                (old, InsertUp::Done)
            }
        }
    }

    fn split_leaf(&mut self, id: NodeId) -> InsertUp<K> {
        // Move the upper half into a fresh right sibling.
        let (right_keys, right_values, old_next) = match self.node_mut(id) {
            Node::Leaf { keys, values, next, .. } => {
                let mid = keys.len() / 2;
                (keys.split_off(mid), values.split_off(mid), *next)
            }
            Node::Internal { .. } => unreachable!("split_leaf on internal"),
        };
        let sep = right_keys[0].clone();
        let right = self.alloc(Node::Leaf {
            keys: right_keys,
            values: right_values,
            prev: Some(id),
            next: old_next,
        });
        if let Some(nn) = old_next {
            if let Node::Leaf { prev, .. } = self.node_mut(nn) {
                *prev = Some(right);
            }
        }
        if let Node::Leaf { next, .. } = self.node_mut(id) {
            *next = Some(right);
        }
        InsertUp::Split { sep, right }
    }

    fn split_internal(&mut self, id: NodeId) -> InsertUp<K> {
        let (sep, right_keys, right_children) = match self.node_mut(id) {
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid + 1);
                let sep = keys.pop().expect("mid key exists");
                let right_children = children.split_off(mid + 1);
                (sep, right_keys, right_children)
            }
            Node::Leaf { .. } => unreachable!("split_internal on leaf"),
        };
        let right = self.alloc(Node::Internal { keys: right_keys, children: right_children });
        InsertUp::Split { sep, right }
    }

    /// Remove a key; returns its value if present.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let root = self.root;
        let (old, _emptied) = self.remove_rec(root, key);
        if old.is_some() {
            self.len -= 1;
        }
        // Collapse a root that has dwindled to a single child.
        loop {
            let collapse = match self.node(self.root) {
                Node::Internal { children, .. } if children.len() == 1 => Some(children[0]),
                _ => None,
            };
            match collapse {
                Some(child) => {
                    self.dealloc(self.root);
                    self.root = child;
                    self.height -= 1;
                }
                None => break,
            }
        }
        old
    }

    /// Returns (removed value, whether `id` is now empty and was freed).
    fn remove_rec<Q>(&mut self, id: NodeId, key: &Q) -> (Option<V>, bool)
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match self.node_mut(id) {
            Node::Leaf { keys, values, .. } => {
                let old = match keys.binary_search_by(|k| k.borrow().cmp(key)) {
                    Ok(i) => {
                        keys.remove(i);
                        Some(values.remove(i))
                    }
                    Err(_) => None,
                };
                let emptied = old.is_some() && keys.is_empty() && id != self.root;
                if emptied {
                    self.unlink_leaf(id);
                    self.dealloc(id);
                }
                (old, emptied)
            }
            Node::Internal { keys, children } => {
                let slot = Self::child_slot(keys, key);
                let child = children[slot];
                let (old, child_emptied) = self.remove_rec(child, key);
                if child_emptied {
                    match self.node_mut(id) {
                        Node::Internal { keys, children } => {
                            children.remove(slot);
                            if !keys.is_empty() {
                                keys.remove(slot.max(1) - 1);
                            }
                            let emptied = children.is_empty() && id != self.root;
                            if emptied {
                                self.dealloc(id);
                            }
                            return (old, emptied);
                        }
                        Node::Leaf { .. } => unreachable!("id is internal"),
                    }
                }
                (old, false)
            }
        }
    }

    fn unlink_leaf(&mut self, id: NodeId) {
        let (prev, next) = match self.node(id) {
            Node::Leaf { prev, next, .. } => (*prev, *next),
            Node::Internal { .. } => unreachable!("unlink_leaf on internal"),
        };
        if let Some(p) = prev {
            if let Node::Leaf { next: pn, .. } = self.node_mut(p) {
                *pn = next;
            }
        }
        if let Some(n) = next {
            if let Node::Leaf { prev: np, .. } = self.node_mut(n) {
                *np = prev;
            }
        }
    }

    /// Iterate entries with keys in `(lo, hi)` in order. Each item carries
    /// the id of the leaf it came from so callers can charge one page read
    /// per distinct leaf.
    pub fn range<'a>(&'a self, lo: Bound<&K>, hi: Bound<&K>) -> RangeIter<'a, K, V> {
        // Find the first candidate leaf.
        let leaf = match &lo {
            Bound::Unbounded => self.leftmost_leaf(),
            Bound::Included(k) | Bound::Excluded(k) => {
                *self.probe_path::<K>(k).last().expect("non-empty path")
            }
        };
        let mut it = RangeIter {
            tree: self,
            leaf: Some(leaf),
            idx: 0,
            hi: match hi {
                Bound::Unbounded => Bound::Unbounded,
                Bound::Included(k) => Bound::Included(k.clone()),
                Bound::Excluded(k) => Bound::Excluded(k.clone()),
            },
        };
        // Skip entries below the lower bound within the first leaf.
        if let Node::Leaf { keys, .. } = self.node(leaf) {
            it.idx = match &lo {
                Bound::Unbounded => 0,
                Bound::Included(k) => keys.partition_point(|x| x < k),
                Bound::Excluded(k) => keys.partition_point(|x| x <= k),
            };
        }
        it
    }

    /// Iterate every entry in key order.
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    fn leftmost_leaf(&self) -> NodeId {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal { children, .. } => id = children[0],
                Node::Leaf { .. } => return id,
            }
        }
    }

    /// First (smallest) key, if any.
    pub fn first_key(&self) -> Option<&K> {
        self.iter().next().map(|(_, k, _)| k)
    }

    /// Check structural invariants; used by tests and debug assertions.
    /// Returns the number of entries found.
    pub fn check_invariants(&self) -> usize {
        fn walk<K: Ord + Clone, V>(
            t: &BPlusTree<K, V>,
            id: NodeId,
            depth: usize,
            leaf_depth: &mut Option<usize>,
            lo: Option<&K>,
            hi: Option<&K>,
        ) -> usize {
            match t.node(id) {
                Node::Leaf { keys, values, .. } => {
                    assert_eq!(keys.len(), values.len(), "leaf arity");
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
                    if let Some(l) = lo {
                        assert!(keys.iter().all(|k| k >= l), "leaf keys >= subtree lo");
                    }
                    if let Some(h) = hi {
                        assert!(keys.iter().all(|k| k < h), "leaf keys < subtree hi");
                    }
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "all leaves at same depth"),
                        None => *leaf_depth = Some(depth),
                    }
                    keys.len()
                }
                Node::Internal { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1, "internal arity");
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "internal keys sorted");
                    let mut n = 0;
                    for (i, &c) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                        let chi = if i == keys.len() { hi } else { Some(&keys[i]) };
                        n += walk(t, c, depth + 1, leaf_depth, clo, chi);
                    }
                    n
                }
            }
        }
        let mut leaf_depth = None;
        let n = walk(self, self.root, 1, &mut leaf_depth, None, None);
        assert_eq!(n, self.len, "len matches entry count");
        if let Some(d) = leaf_depth {
            assert_eq!(d, self.height, "height matches leaf depth");
        }
        n
    }
}

/// Ordered iterator over a key range; yields `(leaf_id, &key, &value)`.
pub struct RangeIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: Option<NodeId>,
    idx: usize,
    hi: Bound<K>,
}

impl<'a, K: Ord + Clone, V> Iterator for RangeIter<'a, K, V> {
    type Item = (NodeId, &'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            match self.tree.node(leaf) {
                Node::Leaf { keys, values, next, .. } => {
                    if self.idx >= keys.len() {
                        self.leaf = *next;
                        self.idx = 0;
                        continue;
                    }
                    let k = &keys[self.idx];
                    let in_range = match &self.hi {
                        Bound::Unbounded => true,
                        Bound::Included(h) => k <= h,
                        Bound::Excluded(h) => k < h,
                    };
                    if !in_range {
                        self.leaf = None;
                        return None;
                    }
                    let v = &values[self.idx];
                    self.idx += 1;
                    return Some((leaf, k, v));
                }
                Node::Internal { .. } => unreachable!("iterator only visits leaves"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new(4);
        for i in [5i64, 1, 9, 3, 7] {
            assert_eq!(t.insert(i, i * 10), None);
        }
        assert_eq!(t.len(), 5);
        for i in [1i64, 3, 5, 7, 9] {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        assert_eq!(t.get(&2), None);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t: BPlusTree<i64, &str> = BPlusTree::new(4);
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn grows_in_height_and_splits() {
        let mut t = BPlusTree::new(4);
        for i in 0..1000i64 {
            t.insert(i, i);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.height() >= 4, "height {}", t.height());
        t.check_invariants();
        // All present, in order.
        let collected: Vec<i64> = t.iter().map(|(_, k, _)| *k).collect();
        assert_eq!(collected, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        let mut t = BPlusTree::new(5);
        for i in (0..500i64).rev() {
            t.insert(i, ());
        }
        t.check_invariants();
        // Deterministic shuffle via multiplication by a unit mod 501.
        let mut t2 = BPlusTree::new(5);
        for i in 0..500i64 {
            t2.insert((i * 263) % 501, ());
        }
        t2.check_invariants();
    }

    #[test]
    fn probe_path_has_height_nodes() {
        let mut t = BPlusTree::new(4);
        for i in 0..500i64 {
            t.insert(i, i);
        }
        let path = t.probe_path(&250);
        assert_eq!(path.len(), t.height());
        assert_eq!(path[0], t.root_id());
    }

    #[test]
    fn range_scan_bounds() {
        let mut t = BPlusTree::new(4);
        for i in 0..100i64 {
            t.insert(i * 2, i); // even keys 0..198
        }
        let got: Vec<i64> = t
            .range(Bound::Included(&10), Bound::Excluded(&20))
            .map(|(_, k, _)| *k)
            .collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18]);
        let got: Vec<i64> = t
            .range(Bound::Excluded(&10), Bound::Included(&20))
            .map(|(_, k, _)| *k)
            .collect();
        assert_eq!(got, vec![12, 14, 16, 18, 20]);
        // Bounds between keys.
        let got: Vec<i64> = t
            .range(Bound::Included(&11), Bound::Included(&15))
            .map(|(_, k, _)| *k)
            .collect();
        assert_eq!(got, vec![12, 14]);
        // Empty range.
        assert_eq!(t.range(Bound::Included(&11), Bound::Excluded(&12)).count(), 0);
    }

    #[test]
    fn range_reports_leaf_transitions() {
        let mut t = BPlusTree::new(4);
        for i in 0..200i64 {
            t.insert(i, ());
        }
        let mut leaves: Vec<NodeId> = t.iter().map(|(l, _, _)| l).collect();
        leaves.dedup();
        // With order 4, 200 entries span many leaves.
        assert!(leaves.len() > 30, "distinct leaves: {}", leaves.len());
    }

    #[test]
    fn remove_simple_and_missing() {
        let mut t = BPlusTree::new(4);
        for i in 0..50i64 {
            t.insert(i, i);
        }
        assert_eq!(t.remove(&25), Some(25));
        assert_eq!(t.remove(&25), None);
        assert_eq!(t.len(), 49);
        assert_eq!(t.get(&25), None);
        t.check_invariants();
    }

    #[test]
    fn remove_everything_collapses_tree() {
        let mut t = BPlusTree::new(4);
        for i in 0..300i64 {
            t.insert(i, i);
        }
        for i in 0..300i64 {
            assert_eq!(t.remove(&i), Some(i), "remove {i}");
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1, "root collapsed back to a leaf");
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
        // Tree is reusable after total deletion.
        t.insert(7, 7);
        assert_eq!(t.get(&7), Some(&7));
    }

    #[test]
    fn remove_interleaved_with_inserts_matches_model() {
        let mut t = BPlusTree::new(4);
        let mut model = BTreeMap::new();
        // Deterministic pseudo-random ops.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for step in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 500) as i64;
            if step % 3 == 0 {
                assert_eq!(t.remove(&key), model.remove(&key), "step {step}");
            } else {
                assert_eq!(t.insert(key, step), model.insert(key, step), "step {step}");
            }
        }
        t.check_invariants();
        let tree_pairs: Vec<(i64, u64)> = t.iter().map(|(_, k, v)| (*k, *v)).collect();
        let model_pairs: Vec<(i64, u64)> = model.into_iter().collect();
        assert_eq!(tree_pairs, model_pairs);
    }

    #[test]
    fn leaf_chain_survives_deletions() {
        let mut t = BPlusTree::new(3);
        for i in 0..100i64 {
            t.insert(i, ());
        }
        // Delete a whole middle band, forcing leaf reclamation.
        for i in 20..80i64 {
            t.remove(&i);
        }
        let keys: Vec<i64> = t.iter().map(|(_, k, _)| *k).collect();
        let expected: Vec<i64> = (0..20).chain(80..100).collect();
        assert_eq!(keys, expected);
        t.check_invariants();
    }

    #[test]
    fn string_keys_work() {
        let mut t: BPlusTree<String, u32> = BPlusTree::new(4);
        for (i, city) in ["boston", "springfield", "manchester", "toledo", "jackson"]
            .iter()
            .enumerate()
        {
            t.insert(city.to_string(), i as u32);
        }
        assert_eq!(t.get("boston"), Some(&0));
        assert_eq!(t.get("nowhere"), None);
        let ordered: Vec<&String> = t.iter().map(|(_, k, _)| k).collect();
        assert_eq!(
            ordered,
            ["boston", "jackson", "manchester", "springfield", "toledo"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .iter()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "order must be at least 3")]
    fn tiny_order_rejected() {
        let _: BPlusTree<i64, ()> = BPlusTree::new(2);
    }

    #[test]
    fn node_reuse_after_free() {
        let mut t = BPlusTree::new(3);
        for i in 0..200i64 {
            t.insert(i, ());
        }
        let peak = t.node_count();
        for i in 0..200i64 {
            t.remove(&i);
        }
        for i in 0..200i64 {
            t.insert(i, ());
        }
        assert!(
            t.node_count() <= peak + 1,
            "arena reuses freed nodes: {} vs peak {}",
            t.node_count(),
            peak
        );
    }
}
