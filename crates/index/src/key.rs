//! Composite index keys.

use cm_storage::Value;
use std::fmt;

/// A (possibly composite) index key: one [`Value`] per indexed column, in
/// index-column order.
///
/// Comparison is lexicographic, which gives composite B+Trees the prefix
/// semantics the paper exploits in Experiment 5: a secondary index on
/// `(ra, dec)` can use a range predicate on `ra` (the prefix) but not on
/// `dec`, which is exactly why the composite CM beats it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexKey(Box<[Value]>);

impl IndexKey {
    /// A single-column key.
    pub fn single(v: Value) -> Self {
        IndexKey(Box::new([v]))
    }

    /// A composite key from column values in index order.
    pub fn composite(vs: Vec<Value>) -> Self {
        assert!(!vs.is_empty(), "index keys have at least one column");
        IndexKey(vs.into_boxed_slice())
    }

    /// Extract the key for `cols` from a row.
    pub fn from_row(row: &[Value], cols: &[usize]) -> Self {
        IndexKey(cols.iter().map(|&c| row[c].clone()).collect())
    }

    /// The key's column values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of columns in the key.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Approximate serialized size in bytes, for index-size accounting.
    pub fn size_bytes(&self) -> usize {
        self.0.iter().map(Value::size_bytes).sum()
    }

    /// The smallest composite key whose prefix equals `prefix` — used as a
    /// lower bound for prefix range scans.
    pub fn prefix_lower(prefix: &[Value]) -> Self {
        let mut v: Vec<Value> = prefix.to_vec();
        v.push(Value::Null); // Null sorts first
        IndexKey(v.into_boxed_slice())
    }
}

impl fmt::Display for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        let a = IndexKey::composite(vec![Value::Int(1), Value::Int(9)]);
        let b = IndexKey::composite(vec![Value::Int(2), Value::Int(0)]);
        assert!(a < b, "first column dominates");
        let c = IndexKey::composite(vec![Value::Int(1), Value::Int(10)]);
        assert!(a < c, "tie broken by second column");
    }

    #[test]
    fn from_row_projects_columns() {
        let row = vec![Value::Int(7), Value::str("MA"), Value::float(1.5)];
        let k = IndexKey::from_row(&row, &[2, 0]);
        assert_eq!(k.values(), &[Value::float(1.5), Value::Int(7)]);
        assert_eq!(k.arity(), 2);
    }

    #[test]
    fn size_accounting() {
        let k = IndexKey::composite(vec![Value::Int(1), Value::str("abc")]);
        assert_eq!(k.size_bytes(), 8 + 4);
    }

    #[test]
    fn prefix_lower_bounds_the_prefix_group() {
        let lo = IndexKey::prefix_lower(&[Value::Int(5)]);
        let first_real = IndexKey::composite(vec![Value::Int(5), Value::Int(i64::MIN)]);
        let prev_group = IndexKey::composite(vec![Value::Int(4), Value::Int(i64::MAX)]);
        assert!(lo < first_real);
        assert!(prev_group < lo);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_key_rejected() {
        IndexKey::composite(vec![]);
    }

    #[test]
    fn display_is_tuple_like() {
        let k = IndexKey::composite(vec![Value::Int(1), Value::str("MA")]);
        assert_eq!(k.to_string(), "(1, MA)");
    }
}
